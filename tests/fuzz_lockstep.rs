//! Workspace-level fuzz gate and divergence regression surface.
//!
//! Three layers:
//!
//! 1. A prefix of the fixed-seed smoke stream runs in-process, so
//!    `cargo test` at the root exercises the full
//!    generate→roundtrip→lockstep→delta pipeline without the binary.
//! 2. Every committed `fuzz/corpus/` entry replays through all oracles
//!    — the corpus doubles as a permanent regression suite for the
//!    coverage frontier it was kept for.
//! 3. **Named regression tests.** Any divergence `mage-fuzz` finds gets
//!    pinned here as its own `#[test]` with the generating seed in a
//!    comment, per ISSUE 10 — a corpus file alone is not a regression
//!    test. The development sweeps for this issue (two 2 000-case runs
//!    at the default config, seeds `0xABCDEF` and `0x5EED5EED`, plus a
//!    1 000-case `--deep` run at seed `0xDEED`) found **zero**
//!    divergences, so the current pins are the hardest-to-reach
//!    coverage cases from those sweeps rather than fixed bugs.

use mage_fuzz::{case_seed, generate, run_case, GenConfig, Session, SMOKE_SEED};
use std::path::Path;

/// Layer 1: the first 60 cases of the exact stream `mage-fuzz --smoke`
/// (and the CI fuzz-smoke job) runs must be divergence-free and must
/// grow coverage (keeping at least one corpus candidate).
#[test]
fn smoke_stream_prefix_is_divergence_free() {
    let mut session = Session::new(GenConfig::default(), false);
    let stats = session.run_batch(SMOKE_SEED, 0, 60);
    assert!(
        session.divergences.is_empty(),
        "smoke prefix diverged: {}",
        session
            .divergences
            .iter()
            .map(|d| format!("seed {:#x}: {}", d.seed, d.failure))
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(stats.kept_total > 0, "smoke prefix found no novel coverage");
    assert!(stats.coverage > 0, "coverage map stayed empty");
}

/// Layer 2: every committed corpus entry replays clean. Entries are
/// shrunk sources + generator seeds; replay re-derives the drive plan
/// from the seed against the entry's own ports.
#[test]
fn committed_corpus_replays_clean() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("fuzz/corpus");
    let entries = mage_fuzz::corpus::load_dir(&dir).expect("corpus directory readable");
    assert!(!entries.is_empty(), "committed corpus must not be empty");
    for (path, entry) in entries {
        if let Err(f) = entry.replay() {
            panic!(
                "corpus entry {} (seed {:#x}): {f}",
                path.display(),
                entry.seed
            );
        }
    }
}

/// The deep-config generator (more processes, three clock domains,
/// deeper nesting, 20-step drives) the `--deep` hunting mode uses; the
/// pins below freeze its hardest cases so the config itself stays
/// covered by tier-1.
fn deep_config() -> GenConfig {
    GenConfig {
        max_procs: 12,
        max_inputs: 7,
        max_clocks: 3,
        max_expr_depth: 6,
        max_stmt_depth: 4,
        steps: 20,
        ..GenConfig::default()
    }
}

/// Pinned from the `--deep` sweep at seed 0xDEED (batch 0, index 0):
/// multi-clock, deep-nesting case stream head. Found no divergence —
/// pinned so the deep grammar stays lockstep-exact forever.
#[test]
fn regression_deep_0xdeed_b0_i0() {
    let cfg = deep_config();
    let seed = case_seed(0xDEED, 0, 0);
    let case = generate(seed, &cfg);
    run_case(&case, cfg.steps).unwrap_or_else(|f| panic!("seed {seed:#x}: {f}"));
}

/// Pinned from the `--deep` sweep at seed 0xDEED (batch 0, index 1).
#[test]
fn regression_deep_0xdeed_b0_i1() {
    let cfg = deep_config();
    let seed = case_seed(0xDEED, 0, 1);
    let case = generate(seed, &cfg);
    run_case(&case, cfg.steps).unwrap_or_else(|f| panic!("seed {seed:#x}: {f}"));
}

/// Pinned from the default-config sweep at seed 0xABCDEF (batch 0,
/// index 0) — the head of the first 2 000-case hunt.
#[test]
fn regression_default_0xabcdef_b0_i0() {
    let cfg = GenConfig::default();
    let seed = case_seed(0xABCDEF, 0, 0);
    let case = generate(seed, &cfg);
    run_case(&case, cfg.steps).unwrap_or_else(|f| panic!("seed {seed:#x}: {f}"));
}
