//! Cross-crate integration tests: the full MAGE pipeline from natural
//! language spec to graded Verilog, spanning every workspace crate.

use mage::core::experiments::{evaluate_suite, grade, EvalOptions};
use mage::core::{compile, Mage, MageConfig, SystemKind, Task};
use mage::llm::{SyntheticModel, SyntheticModelConfig};
use mage::problems::{by_id, suite, SuiteId};
use mage::tb::{run_testbench, synthesize_testbench, CheckDensity};

#[test]
fn solve_and_grade_one_problem_end_to_end() {
    let problem = by_id("prob022_fulladd").expect("corpus problem");
    let seed = 0xE2E;
    let mut model = SyntheticModel::new(SyntheticModelConfig::default(), seed);
    model.register(problem.id, problem.oracle(seed));
    let mut engine = Mage::new(&mut model, MageConfig::high_temperature());
    let trace = engine.solve(&Task {
        id: problem.id,
        spec: problem.spec,
    });
    assert!(trace.final_score > 0.9, "full adder should be solved");
    assert!(grade(problem, &trace.final_source), "grading must concur");
    assert!(trace.usage.total() > 0, "token accounting must be live");
}

#[test]
fn engine_is_deterministic_given_seed() {
    let problem = by_id("prob029_alu4").expect("corpus problem");
    let solve = || {
        let mut model = SyntheticModel::new(SyntheticModelConfig::default(), 0xD7);
        model.register(problem.id, problem.oracle(0xD7));
        let mut engine = Mage::new(&mut model, MageConfig::high_temperature());
        engine
            .solve(&Task {
                id: problem.id,
                spec: problem.spec,
            })
            .final_source
    };
    assert_eq!(solve(), solve(), "same seed, same run");
}

#[test]
fn final_sources_always_target_the_right_module() {
    // Whatever the engine produces must either fail to compile or expose
    // the problem's interface.
    for id in ["prob010_mux2", "prob040_dff", "prob070_ripple4"] {
        let problem = by_id(id).expect("corpus problem");
        let mut model = SyntheticModel::new(SyntheticModelConfig::default(), 5);
        model.register(problem.id, problem.oracle(5));
        let mut engine = Mage::new(&mut model, MageConfig::low_temperature());
        let trace = engine.solve(&Task {
            id: problem.id,
            spec: problem.spec,
        });
        if let Ok(design) = compile(&trace.final_source) {
            let oracle = problem.oracle(5);
            assert_eq!(
                design.input_ports(),
                oracle.golden_design.input_ports(),
                "{id}: inputs"
            );
            assert_eq!(
                design.output_ports(),
                oracle.golden_design.output_ports(),
                "{id}: outputs"
            );
        }
    }
}

#[test]
fn ablation_ordering_holds_on_a_seed_batch() {
    // The paper's headline ordering (Table III): vanilla < single < multi.
    // One seed batch with a few runs is enough to see the ordering.
    let runs = 2;
    let ev = |system| {
        evaluate_suite(
            &EvalOptions::low(SuiteId::V2, system)
                .with_runs(runs)
                .with_seed(0x0B5),
        )
        .pass_at_1
    };
    let vanilla = ev(SystemKind::Vanilla);
    let single = ev(SystemKind::SingleAgent);
    let multi = ev(SystemKind::Mage);
    assert!(
        vanilla < single && single <= multi,
        "ordering violated: vanilla {vanilla:.3}, single {single:.3}, multi {multi:.3}"
    );
}

#[test]
fn graded_bench_rejects_subtle_bugs() {
    // The benchmark bench must catch a one-term bug that a short random
    // bench might miss.
    let problem = by_id("prob093_ece241_2014_q3").expect("corpus problem");
    let buggy = "module top_module(input c, input d, output reg [3:0] mux_in);
      always @(*) begin
        mux_in[0] = (~c & d) | (c & ~d);
        mux_in[1] = 1'b0;
        mux_in[2] = (~c & ~d) | (c & ~d);
        mux_in[3] = c & d;
      end
    endmodule";
    assert!(!grade(problem, buggy));
    assert!(grade(problem, problem.golden));
}

#[test]
fn every_problem_solves_under_zero_noise() {
    // With a perfectly competent channel the engine must solve the whole
    // corpus: any failure is an engine/substrate bug, not model noise.
    let cfg = SyntheticModelConfig {
        base_bug_rate: 0.0,
        syntax_error_rate: 0.0,
        tb_error_rate: 0.0,
        tb_error_rate_retry: 0.0,
        tb_weak_rate: 0.0,
        miscomprehension_rate: 0.0,
        ..SyntheticModelConfig::default()
    };
    for problem in suite(SuiteId::V2) {
        let mut model = SyntheticModel::new(cfg.clone(), 9);
        model.register(problem.id, problem.oracle(9));
        let mut engine = Mage::new(&mut model, MageConfig::high_temperature());
        let trace = engine.solve(&Task {
            id: problem.id,
            spec: problem.spec,
        });
        assert!(
            grade(problem, &trace.final_source),
            "{} failed under a zero-noise channel",
            problem.id
        );
    }
}

#[test]
fn checkpoint_bench_catches_wrong_edge_bugs() {
    // Regression: checks sampled mid-cycle make EdgeFlip observable.
    let problem = by_id("prob040_dff").expect("corpus problem");
    let oracle = problem.oracle(3);
    let tb = synthesize_testbench(
        problem.id,
        &oracle.golden_design,
        &oracle.stimulus,
        CheckDensity::EveryStep,
    );
    let flipped = compile(
        "module top_module(input clk, input rst, input d, output reg q);
           always @(negedge clk) begin
             if (rst) q <= 1'b0;
             else q <= d;
           end
         endmodule",
    )
    .expect("compiles");
    let report = run_testbench(&tb, &flipped).expect("interface matches");
    assert!(!report.passed(), "negedge bug must be observable");
}
