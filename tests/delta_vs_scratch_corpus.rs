//! Corpus-wide delta-compilation differential test: every benchmark
//! problem's golden design — and single-edit mutants of each — is built
//! twice, from scratch ([`mage::sim::elaborate`], the `MAGE_SIM_DELTA=off`
//! oracle path) and by delta elaboration against a parent design
//! ([`mage::sim::elaborate_with`] over [`mage::sim::DesignUnits`]), and
//! the two builds are asserted *store-exact*: structurally identical
//! (processes, signals, bytecode, fanout index) and bit-identical under
//! simulation on all three executors (bytecode four-state, bytecode
//! two-state, legacy tree-walker) after every poke of the problem's own
//! stimulus.
//!
//! This is the guarantee that lets the serve/fleet layers reuse cached
//! process units verbatim: a delta-built design is indistinguishable
//! from a from-scratch build, so unit reuse can never change a score.
//! Fingerprint-collision and binding-change cases ride along, proving
//! the full-verify-on-hit discipline rebuilds instead of serving the
//! wrong unit.

use mage::llm::mutate::{apply_mutation, sample_mutations};
use mage::logic::LogicVec;
use mage::problems::all_problems;
use mage::sim::{
    elaborate, elaborate_delta, elaborate_with, Design, DesignUnits, ExecMode, Simulator,
};
use mage::tb::Stimulus;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// The three executors every delta build must match its scratch twin
/// on: `(mode, two_state, label)`.
const EXECUTORS: [(ExecMode, bool, &str); 3] = [
    (ExecMode::Compiled, false, "compiled"),
    (ExecMode::Compiled, true, "compiled+2s"),
    (ExecMode::Legacy, false, "legacy"),
];

/// Assert the delta build is structurally identical to the scratch
/// build: same signals, same interpreter processes, same bytecode, same
/// fanout/trigger index. This is the "store-exact" contract at the
/// artifact level — the simulation sweep below re-proves it at runtime.
fn assert_structurally_exact(scratch: &Design, delta: &Design, label: &str) {
    assert_eq!(
        format!("{:?}", scratch.signals),
        format!("{:?}", delta.signals),
        "{label}: signal tables diverged"
    );
    assert_eq!(
        scratch.processes, delta.processes,
        "{label}: interpreter processes diverged"
    );
    assert_eq!(
        format!("{:?}", scratch.compiled()),
        format!("{:?}", delta.compiled()),
        "{label}: compiled artifacts diverged"
    );
}

/// Drive the scratch and delta designs through `stim` in lockstep on
/// one executor, comparing the full store after every poke. Stops
/// (without failing) at the first simulation fault, after asserting
/// both builds report the same fault.
fn lockstep_one(scratch: &Arc<Design>, delta: &Arc<Design>, stim: &Stimulus, label: &str) {
    for (mode, two_state, exec) in EXECUTORS {
        let label = format!("{label} [{exec}]");
        let mut a = Simulator::with_mode(Arc::clone(scratch), mode);
        let mut b = Simulator::with_mode(Arc::clone(delta), mode);
        a.set_two_state(two_state);
        b.set_two_state(two_state);
        let ra = a.settle();
        let rb = b.settle();
        assert_eq!(ra, rb, "{label}: settle diverged");
        compare_stores(scratch, &mut a, &mut b, &label, "boot");
        if ra.is_err() {
            continue;
        }
        let mut ok = true;
        let poke_both =
            |name: &str, v: LogicVec, a: &mut Simulator, b: &mut Simulator, at: &str| {
                let ra = a.poke(name, v.clone());
                let rb = b.poke(name, v);
                assert_eq!(ra, rb, "{label}: poke {name} at {at} diverged");
                compare_stores(scratch, a, b, &label, at);
                ra.is_ok()
            };
        if let Some(clk) = &stim.clock {
            ok = poke_both(clk, LogicVec::from_bool(false), &mut a, &mut b, "clk boot");
        }
        for (i, step) in stim.steps.iter().enumerate() {
            if !ok {
                break;
            }
            for (name, v) in step {
                ok = poke_both(name, v.clone(), &mut a, &mut b, &format!("step {i}"));
                if !ok {
                    break;
                }
            }
            if let Some(clk) = &stim.clock {
                if ok {
                    ok = poke_both(
                        clk,
                        LogicVec::from_bool(true),
                        &mut a,
                        &mut b,
                        &format!("step {i} rise"),
                    );
                }
                if ok {
                    ok = poke_both(
                        clk,
                        LogicVec::from_bool(false),
                        &mut a,
                        &mut b,
                        &format!("step {i} fall"),
                    );
                }
            }
            if !ok {
                break;
            }
            let ra = a.settle();
            let rb = b.settle();
            assert_eq!(ra, rb, "{label}: settle at step {i} diverged");
            compare_stores(scratch, &mut a, &mut b, &label, &format!("step {i} settle"));
            ok = ra.is_ok();
        }
    }
}

fn compare_stores(design: &Design, a: &mut Simulator, b: &mut Simulator, label: &str, at: &str) {
    for decl in &design.signals {
        let id = design.signal(&decl.name).expect("name resolves");
        let (va, vb) = (a.peek(id).clone(), b.peek(id));
        assert!(
            va.case_eq(vb),
            "{label} at {at}: signal `{}` diverged\n  scratch: {}\n  delta:   {}",
            decl.name,
            va.to_binary_string(),
            vb.to_binary_string(),
        );
    }
}

#[test]
fn full_corpus_golden_self_delta_reuses_everything() {
    // Rebuilding a design against itself as parent must reuse every
    // unit and still be store-exact — the degenerate delta.
    for p in all_problems() {
        let oracle = p.oracle(0xD1FF);
        let parent = DesignUnits::new(Arc::clone(&oracle.golden_design));
        let (delta, stats) =
            elaborate_with(&oracle.golden, &oracle.top, &parent).expect("golden re-elaborates");
        assert_eq!(
            stats.rebuilt, 0,
            "{}: self-delta rebuilt {} units",
            p.id, stats.rebuilt
        );
        assert_eq!(stats.reused, delta.processes.len(), "{}: reuse count", p.id);
        let delta = Arc::new(delta);
        assert_structurally_exact(&oracle.golden_design, &delta, p.id);
        lockstep_one(&oracle.golden_design, &delta, &oracle.stimulus, p.id);
    }
}

#[test]
fn full_corpus_single_edit_mutants_are_store_exact() {
    // A single-edit mutant delta-built against the unedited golden must
    // equal its own from-scratch build exactly — on every problem, on
    // all three executors.
    for (pi, p) in all_problems().iter().enumerate() {
        let oracle = p.oracle(0xD1FF);
        let mut rng = StdRng::seed_from_u64(0xDE17A ^ ((pi as u64) << 8));
        let mut file = oracle.golden.clone();
        let top_ix = file
            .modules
            .iter()
            .position(|m| m.name == oracle.top)
            .expect("top module present");
        for m in sample_mutations(&file.modules[top_ix].clone(), 1, &mut rng) {
            apply_mutation(&mut file.modules[top_ix], &m);
        }
        // Mutations keep the source parseable; elaboration can still
        // fail (e.g. a select pushed out of range) — delta elaboration
        // must fail identically.
        let parent = DesignUnits::new(Arc::clone(&oracle.golden_design));
        let scratch = elaborate(&file, &oracle.top);
        let delta = elaborate_with(&file, &oracle.top, &parent);
        match (scratch, delta) {
            (Ok(scratch), Ok((delta, stats))) => {
                assert_eq!(
                    stats.reused + stats.rebuilt,
                    delta.processes.len(),
                    "{}: unit accounting",
                    p.id
                );
                let (scratch, delta) = (Arc::new(scratch), Arc::new(delta));
                let label = format!("{} (mutant)", p.id);
                assert_structurally_exact(&scratch, &delta, &label);
                lockstep_one(&scratch, &delta, &oracle.stimulus, &label);
            }
            (Err(es), Err(ed)) => assert_eq!(es, ed, "{}: error divergence", p.id),
            (s, d) => panic!(
                "{}: scratch and delta disagree on elaborability: scratch {:?}, delta {:?}",
                p.id,
                s.map(|_| ()),
                d.map(|_| ())
            ),
        }
    }
}

#[test]
fn fingerprint_collisions_never_serve_the_wrong_unit() {
    // Degenerate hasher: every item fingerprint and binding hash is the
    // same constant, so every parent lookup is a key hit that must be
    // rejected by full text/env verification and rebuilt. The result
    // must still match the honest from-scratch build.
    fn collide(_: &str) -> u64 {
        0x42
    }
    for p in all_problems().iter().take(8) {
        let oracle = p.oracle(0xD1FF);
        let (parent, _) = elaborate_delta(&oracle.golden, &oracle.top, None, collide)
            .expect("golden elaborates under the colliding hasher");
        let parent = Arc::new(parent);
        // A *different* source (the first other problem) probed against
        // this parent: every key collides, nothing may be served.
        let mut rng = StdRng::seed_from_u64(0xC0111DE ^ p.id.len() as u64);
        let mut file = oracle.golden.clone();
        let top_ix = file
            .modules
            .iter()
            .position(|m| m.name == oracle.top)
            .expect("top module present");
        for m in sample_mutations(&file.modules[top_ix].clone(), 1, &mut rng) {
            apply_mutation(&mut file.modules[top_ix], &m);
        }
        let provider = DesignUnits::new(Arc::clone(&parent));
        let (Ok(scratch), Ok((delta, _))) = (
            elaborate(&file, &oracle.top),
            elaborate_delta(&file, &oracle.top, Some(&provider), collide),
        ) else {
            continue;
        };
        let label = format!("{} (collision)", p.id);
        assert_structurally_exact(&scratch, &delta, &label);
        lockstep_one(
            &Arc::new(scratch),
            &Arc::new(delta),
            &oracle.stimulus,
            &label,
        );
    }
}

#[test]
fn binding_change_rebuilds_and_stays_exact() {
    // Widening a wire leaves dependent items' fingerprints untouched
    // (their text is unchanged) but changes their resolved binding —
    // the parent's units must not be served, and the delta build must
    // still equal scratch on all executors.
    const BASE: &str = "module top(input clk, input a, input b, output reg q, output w);\n\
         wire x;\n\
         assign x = a & b;\n\
         assign w = x | a;\n\
         always @(posedge clk) q <= x;\n\
         endmodule\n";
    let widened = BASE.replace("wire x", "wire [1:0] x");
    let base = mage::verilog::parse(BASE).expect("base parses");
    let edited = mage::verilog::parse(&widened).expect("edit parses");
    let parent = Arc::new(elaborate(&base, "top").expect("base elaborates"));
    let provider = DesignUnits::new(Arc::clone(&parent));
    let scratch = Arc::new(elaborate(&edited, "top").expect("edit elaborates"));
    let (delta, stats) = elaborate_with(&edited, "top", &provider).expect("delta elaborates");
    let delta = Arc::new(delta);
    assert!(
        stats.rebuilt >= 3,
        "every reader of the widened wire must rebuild, got {stats:?}"
    );
    assert_structurally_exact(&scratch, &delta, "binding change");
    let stim = Stimulus::clocked(
        "clk",
        (0..4u64)
            .map(|i| {
                vec![
                    ("a".to_string(), LogicVec::from_bool(i & 1 != 0)),
                    ("b".to_string(), LogicVec::from_bool(i & 2 != 0)),
                ]
            })
            .collect(),
    );
    lockstep_one(&scratch, &delta, &stim, "binding change");
}
