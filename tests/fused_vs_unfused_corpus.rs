//! Corpus-wide fused-execution differential test: every benchmark
//! problem's golden design — and single-edit mutants of each — is driven
//! through its own stimulus on two simulators over the *same* design,
//! one with fused-plan dispatch forced on ([`Simulator::set_fuse`], the
//! superinstruction/cascade path) and one with it forced off (the
//! unfused two-state interpreter, the `MAGE_SIM_FUSE=off` oracle), and
//! the two runs are asserted *store-exact* after every poke — on the
//! two-state path, and again with two-state disabled (where fusion must
//! be inert: zero fused evals).
//!
//! Plan-invalidation and eligibility-loss cases ride along: a delta
//! rebuild must drop every cascade plan whose closure contains the
//! rebuilt unit (and report it through `DeltaStats`/`EvalCounts`), and
//! a process whose inputs go to `X` mid-run must fall off the fused
//! path (bail to four-state, store-exact) and climb back on when the
//! unknown clears.

use mage::llm::mutate::{apply_mutation, sample_mutations};
use mage::logic::LogicVec;
use mage::problems::all_problems;
use mage::sim::{elaborate, elaborate_with, Design, DesignUnits, ExecMode, Simulator};
use mage::tb::Stimulus;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// The two differential legs: `(two_state, label)`. Fused-on is held
/// against fused-off under both dispatch regimes; with two-state off the
/// fused path must never fire at all.
const LEGS: [(bool, &str); 2] = [(true, "2s"), (false, "4s")];

/// Drive one design through `stim` on a fused and an unfused simulator
/// in lockstep, comparing the full store after every poke. Returns the
/// fused simulator's final counters. Stops (without failing) at the
/// first simulation fault, after asserting both runs report it
/// identically.
fn lockstep_fused(
    design: &Arc<Design>,
    stim: &Stimulus,
    two_state: bool,
    label: &str,
) -> mage::sim::EvalCounts {
    let mut fused = Simulator::with_mode(Arc::clone(design), ExecMode::Compiled);
    let mut plain = Simulator::with_mode(Arc::clone(design), ExecMode::Compiled);
    fused.set_two_state(two_state);
    plain.set_two_state(two_state);
    fused.set_fuse(true);
    plain.set_fuse(false);
    let ra = fused.settle();
    let rb = plain.settle();
    assert_eq!(ra, rb, "{label}: settle diverged");
    compare_stores(design, &mut fused, &mut plain, label, "boot");
    if ra.is_ok() {
        let mut ok = true;
        let poke_both =
            |name: &str, v: LogicVec, a: &mut Simulator, b: &mut Simulator, at: &str| {
                let ra = a.poke(name, v.clone());
                let rb = b.poke(name, v);
                assert_eq!(ra, rb, "{label}: poke {name} at {at} diverged");
                compare_stores(design, a, b, label, at);
                ra.is_ok()
            };
        if let Some(clk) = &stim.clock {
            ok = poke_both(
                clk,
                LogicVec::from_bool(false),
                &mut fused,
                &mut plain,
                "clk boot",
            );
        }
        for (i, step) in stim.steps.iter().enumerate() {
            if !ok {
                break;
            }
            for (name, v) in step {
                ok = poke_both(
                    name,
                    v.clone(),
                    &mut fused,
                    &mut plain,
                    &format!("step {i}"),
                );
                if !ok {
                    break;
                }
            }
            if let Some(clk) = &stim.clock {
                if ok {
                    ok = poke_both(
                        clk,
                        LogicVec::from_bool(true),
                        &mut fused,
                        &mut plain,
                        &format!("step {i} rise"),
                    );
                }
                if ok {
                    ok = poke_both(
                        clk,
                        LogicVec::from_bool(false),
                        &mut fused,
                        &mut plain,
                        &format!("step {i} fall"),
                    );
                }
            }
            if !ok {
                break;
            }
            let ra = fused.settle();
            let rb = plain.settle();
            assert_eq!(ra, rb, "{label}: settle at step {i} diverged");
            compare_stores(design, &mut fused, &mut plain, label, &format!("step {i}"));
            ok = ra.is_ok();
        }
    }
    let counts = fused.eval_counts();
    let plain_counts = plain.eval_counts();
    assert_eq!(
        plain_counts.fused_evals, 0,
        "{label}: the unfused oracle leg must never dispatch a plan"
    );
    if !two_state {
        assert_eq!(
            counts.fused_evals, 0,
            "{label}: fusion is a two-state path; four-state runs must not fuse"
        );
    }
    assert!(
        counts.plan_steps <= counts.plan_unfused_steps,
        "{label}: a fused op can never cover less than one instruction"
    );
    counts
}

fn compare_stores(design: &Design, a: &mut Simulator, b: &mut Simulator, label: &str, at: &str) {
    for decl in &design.signals {
        let id = design.signal(&decl.name).expect("name resolves");
        let (va, vb) = (a.peek(id).clone(), b.peek(id));
        assert!(
            va.case_eq(vb),
            "{label} at {at}: signal `{}` diverged\n  fused:   {}\n  unfused: {}",
            decl.name,
            va.to_binary_string(),
            vb.to_binary_string(),
        );
    }
}

#[test]
fn full_corpus_fused_is_store_exact_against_unfused() {
    let mut corpus_fused_evals = 0u64;
    for p in all_problems() {
        let oracle = p.oracle(0xF05E);
        for (two_state, leg) in LEGS {
            let label = format!("{} [{leg}]", p.id);
            let counts = lockstep_fused(&oracle.golden_design, &oracle.stimulus, two_state, &label);
            if two_state {
                corpus_fused_evals += counts.fused_evals;
            }
        }
    }
    // The corpus is dominated by hazard-free kernels: the fused path
    // must actually carry the two-state legs, not vacuously match.
    assert!(
        corpus_fused_evals > 0,
        "no fused dispatch anywhere in the corpus"
    );
}

#[test]
fn full_corpus_single_edit_mutants_fused_exact() {
    for (pi, p) in all_problems().iter().enumerate() {
        let oracle = p.oracle(0xF05E);
        let mut rng = StdRng::seed_from_u64(0xF15ED ^ ((pi as u64) << 8));
        let mut file = oracle.golden.clone();
        let top_ix = file
            .modules
            .iter()
            .position(|m| m.name == oracle.top)
            .expect("top module present");
        for m in sample_mutations(&file.modules[top_ix].clone(), 1, &mut rng) {
            apply_mutation(&mut file.modules[top_ix], &m);
        }
        // Mutations keep the source parseable; elaboration can still
        // fail (e.g. a select pushed out of range) — skip those, the
        // delta suite covers error parity.
        let Ok(scratch) = elaborate(&file, &oracle.top) else {
            continue;
        };
        let scratch = Arc::new(scratch);
        for (two_state, leg) in LEGS {
            let label = format!("{} (mutant) [{leg}]", p.id);
            lockstep_fused(&scratch, &oracle.stimulus, two_state, &label);
        }
        // The delta-built twin carries the parent's reused plans
        // verbatim plus freshly built ones — it must behave identically
        // to its scratch build under fused dispatch (the
        // plan-invalidation path: rebuilt units drop and rebuild every
        // cascade containing them).
        let parent = DesignUnits::new(Arc::clone(&oracle.golden_design));
        let Ok((delta, stats)) = elaborate_with(&file, &oracle.top, &parent) else {
            continue;
        };
        let delta = Arc::new(delta);
        assert_eq!(
            format!("{:?}", scratch.compiled()),
            format!("{:?}", delta.compiled()),
            "{}: delta-built plans/cascades diverged from scratch",
            p.id
        );
        if stats.rebuilt == 0 {
            assert_eq!(
                stats.plan_invalidations, 0,
                "{}: nothing rebuilt, nothing to invalidate",
                p.id
            );
        }
        let label = format!("{} (mutant, delta) [2s]", p.id);
        lockstep_fused(&delta, &oracle.stimulus, true, &label);
    }
}

#[test]
fn rebuilt_unit_drops_every_cascade_plan_containing_it() {
    // `x` feeds `w` (comb) and `q` (seq): the `assign x` root's cascade
    // contains the `assign w` process. Editing `w`'s process rebuilds
    // one unit and must drop every cascade whose closure contains it —
    // both roots' plans here — while the untouched `x` unit is reused.
    const BASE: &str = "module top(input clk, input a, input b, output reg q, output w);\n\
         wire x;\n\
         assign x = a & b;\n\
         assign w = x | a;\n\
         always @(posedge clk) q <= x;\n\
         endmodule\n";
    let edited_src = BASE.replace("x | a", "x ^ a");
    let base = mage::verilog::parse(BASE).expect("base parses");
    let edited = mage::verilog::parse(&edited_src).expect("edit parses");
    let parent = Arc::new(elaborate(&base, "top").expect("base elaborates"));
    assert!(
        !parent.compiled().cascades.is_empty(),
        "the x→w chain must form at least one cascade"
    );
    let provider = DesignUnits::new(Arc::clone(&parent));
    let (delta, stats) = elaborate_with(&edited, "top", &provider).expect("delta elaborates");
    let delta = Arc::new(delta);
    assert!(stats.reused >= 1, "the untouched `assign x` unit reuses");
    assert!(stats.rebuilt >= 1, "the edited `assign w` unit rebuilds");
    assert!(
        stats.plan_invalidations >= 2,
        "every cascade containing the rebuilt unit must drop its plan \
         (x-root and w-root both contain it), got {stats:?}"
    );
    assert_eq!(
        stats.plan_invalidations,
        delta.compiled().invalidated_plans as usize,
        "DeltaStats and the compiled artifact must agree"
    );
    // The counter surfaces through the simulator, and the rebuilt plans
    // are exactly a scratch build's.
    let sim = Simulator::with_mode(Arc::clone(&delta), ExecMode::Compiled);
    assert_eq!(
        sim.eval_counts().plan_invalidations,
        stats.plan_invalidations as u64
    );
    let scratch = Arc::new(elaborate(&edited, "top").expect("edit elaborates"));
    assert_eq!(
        format!("{:?}", scratch.compiled()),
        format!("{:?}", delta.compiled()),
        "rebuilt cascades must equal a from-scratch compile's"
    );
    let stim = Stimulus::clocked(
        "clk",
        (0..4u64)
            .map(|i| {
                vec![
                    ("a".to_string(), LogicVec::from_bool(i & 1 != 0)),
                    ("b".to_string(), LogicVec::from_bool(i & 2 != 0)),
                ]
            })
            .collect(),
    );
    for (two_state, leg) in LEGS {
        lockstep_fused(&delta, &stim, two_state, &format!("invalidation [{leg}]"));
    }
}

#[test]
fn mid_run_eligibility_loss_bails_and_recovers_exactly() {
    // An `X` poked into a cascade's read set must knock every affected
    // process off the fused path (the whole-cascade definedness gate
    // fails, the per-process dispatch gate fails, four-state values
    // propagate the unknown), with the store still exact against the
    // unfused oracle — and fused dispatch must resume once the unknown
    // clears.
    const SRC: &str = "module top(input a, input b, output w, output v);\n\
         wire x;\n\
         assign x = a & b;\n\
         assign w = x | a;\n\
         assign v = x ^ b;\n\
         endmodule\n";
    let file = mage::verilog::parse(SRC).expect("parses");
    let design = Arc::new(elaborate(&file, "top").expect("elaborates"));
    let mut fused = Simulator::with_mode(Arc::clone(&design), ExecMode::Compiled);
    let mut plain = Simulator::with_mode(Arc::clone(&design), ExecMode::Compiled);
    fused.set_fuse(true);
    plain.set_fuse(false);
    let design_ref = Arc::clone(&design);
    let poke_both =
        move |name: &str, v: LogicVec, a: &mut Simulator, b: &mut Simulator, at: &str| {
            a.poke(name, v.clone()).expect("poke");
            b.poke(name, v).expect("poke");
            compare_stores(&design_ref, a, b, "eligibility", at);
        };
    fused.settle().expect("settle");
    plain.settle().expect("settle");
    // Defined phase: the cascade runs fused.
    poke_both("a", LogicVec::from_bool(true), &mut fused, &mut plain, "a1");
    poke_both("b", LogicVec::from_bool(true), &mut fused, &mut plain, "b1");
    let defined = fused.eval_counts();
    assert!(
        defined.fused_evals > 0,
        "defined inputs must dispatch fused plans"
    );
    // X phase: with `a` unknown and `b` held at 1, the unknown reaches
    // every read set (`x = a&1 = X`, so `w` and `v` read `X` too) — the
    // cascade gate and every per-process dispatch gate fail, everything
    // runs four-state, and the store stays exact. (Recovery is
    // per-process: a member whose own reads clear re-fuses on its own,
    // which is why `b` must stay high here — `b=0` would force `x` to a
    // defined 0 and legitimately put `v` back on the fused path.)
    poke_both("a", LogicVec::all_x(1), &mut fused, &mut plain, "aX");
    let during_x = fused.eval_counts();
    assert_eq!(
        during_x.fused_evals, defined.fused_evals,
        "an undefined read set must not dispatch fused plans"
    );
    assert!(
        during_x.comb_evals > defined.comb_evals,
        "the X pokes must have evaluated something (four-state)"
    );
    // Recovery: defined inputs again, fused dispatch resumes.
    poke_both(
        "a",
        LogicVec::from_bool(false),
        &mut fused,
        &mut plain,
        "a0",
    );
    poke_both("b", LogicVec::from_bool(true), &mut fused, &mut plain, "b1");
    let recovered = fused.eval_counts();
    assert!(
        recovered.fused_evals > during_x.fused_evals,
        "fused dispatch must resume once the unknown clears"
    );
}
