//! Engine workflow invariants, checked across protocols and seeds.

use mage::core::{compile, Mage, MageConfig, SystemKind, Task};
use mage::llm::{RtlLanguageModel, SyntheticModel, SyntheticModelConfig};
use mage::problems::by_id;

fn trace_for(system: SystemKind, difficulty_id: &str, seed: u64) -> mage::core::SolveTrace {
    let p = by_id(difficulty_id).expect("corpus problem");
    let mut model = SyntheticModel::new(SyntheticModelConfig::default(), seed);
    model.register(p.id, p.oracle(seed));
    let mut engine = Mage::new(
        &mut model,
        MageConfig::high_temperature().with_system(system),
    );
    engine.solve(&Task {
        id: p.id,
        spec: p.spec,
    })
}

#[test]
fn final_never_worse_than_best_sample() {
    for seed in 0..6u64 {
        let t = trace_for(SystemKind::Mage, "prob029_alu4", seed);
        if let Some(best) = t.best_sampled_score {
            assert!(
                t.final_score >= best - 1e-9,
                "seed {seed}: final {:.3} < best sample {:.3}",
                t.final_score,
                best
            );
        }
    }
}

#[test]
fn round_means_monotone_under_rollback() {
    for seed in 0..6u64 {
        for system in [
            SystemKind::Mage,
            SystemKind::SingleAgent,
            SystemKind::TwoAgent,
        ] {
            let t = trace_for(system, "prob062_fsm_seq101", seed);
            for w in t.round_mean_scores.windows(2) {
                assert!(
                    w[1] >= w[0] - 1e-9,
                    "{system}: rollback violated, rounds {:?}",
                    t.round_mean_scores
                );
            }
        }
    }
}

#[test]
fn vanilla_spends_fewest_tokens() {
    // Protocol cost ordering: the one-pass baseline must be the cheapest,
    // the full multi-agent workflow the most expensive, on a problem that
    // is not solved pre-sampling.
    let mut costs = Vec::new();
    for system in [SystemKind::Vanilla, SystemKind::Mage] {
        let t = trace_for(system, "prob065_fsm_lock", 4);
        costs.push((system, t.usage.total()));
    }
    assert!(
        costs[0].1 < costs[1].1,
        "vanilla must be cheaper: {costs:?}"
    );
}

#[test]
fn unknown_problem_degrades_gracefully() {
    // The channel knows nothing about this id; the engine must finish
    // with an (unparseable) answer rather than panic, and grading fails.
    let mut model = SyntheticModel::new(SyntheticModelConfig::default(), 1);
    let mut engine = Mage::new(&mut model, MageConfig::high_temperature());
    let t = engine.solve(&Task {
        id: "prob999_not_registered",
        spec: "does not exist",
    });
    assert!(compile(&t.final_source).is_err());
    assert_eq!(t.final_score, 0.0);
}

#[test]
fn model_reports_name_and_interface() {
    let model = SyntheticModel::new(SyntheticModelConfig::default(), 0);
    assert!(model.name().contains("synthetic"));
}
