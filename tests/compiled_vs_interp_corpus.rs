//! Corpus-wide differential test: every benchmark problem — and mutated
//! candidates of each — runs through both the bytecode interpreter and
//! the legacy tree-walking oracle in lockstep, asserting bit-identical
//! stores (every signal, four-state exact) after every poke.
//!
//! This is the guarantee that lets the compiled executor replace the
//! tree-walker as the default grading path: on the full corpus the two
//! are observationally indistinguishable, including simulation faults.

use mage::llm::mutate::{apply_mutation, sample_mutations};
use mage::logic::LogicVec;
use mage::problems::all_problems;
use mage::sim::{elaborate, Design, ExecMode, Simulator};
use mage::tb::Stimulus;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// Drive both executors through `stim` in testbench order (drives, then
/// a full clock cycle for clocked designs), comparing the full store
/// after every poke. Stops (without failing) at the first simulation
/// fault, after asserting both executors report the same fault.
fn lockstep(design: &Arc<Design>, stim: &Stimulus, label: &str) {
    let mut fast = Simulator::with_mode(Arc::clone(design), ExecMode::Compiled);
    let mut slow = Simulator::with_mode(Arc::clone(design), ExecMode::Legacy);
    let rf = fast.settle();
    let rs = slow.settle();
    assert_eq!(rf, rs, "{label}: settle diverged");
    compare_stores(design, &mut fast, &mut slow, label, "boot");
    if rf.is_err() {
        return;
    }
    let poke_both =
        |name: &str, v: LogicVec, fast: &mut Simulator, slow: &mut Simulator, at: &str| -> bool {
            let rf = fast.poke(name, v.clone());
            let rs = slow.poke(name, v);
            assert_eq!(rf, rs, "{label}: poke {name} at {at} diverged");
            compare_stores(design, fast, slow, label, at);
            rf.is_ok()
        };
    if let Some(clk) = &stim.clock {
        if !poke_both(
            clk,
            LogicVec::from_bool(false),
            &mut fast,
            &mut slow,
            "clk boot",
        ) {
            return;
        }
    }
    for (i, step) in stim.steps.iter().enumerate() {
        for (name, v) in step {
            if !poke_both(name, v.clone(), &mut fast, &mut slow, &format!("step {i}")) {
                return;
            }
        }
        if let Some(clk) = &stim.clock {
            if !poke_both(
                clk,
                LogicVec::from_bool(true),
                &mut fast,
                &mut slow,
                &format!("step {i} rise"),
            ) {
                return;
            }
            if !poke_both(
                clk,
                LogicVec::from_bool(false),
                &mut fast,
                &mut slow,
                &format!("step {i} fall"),
            ) {
                return;
            }
        }
        // Interleaved settle: the wheel drains its (empty) pending-event
        // regions while the oracle re-evaluates every comb process — the
        // stores must agree either way, corpus-wide.
        let rf = fast.settle();
        let rs = slow.settle();
        assert_eq!(rf, rs, "{label}: settle at step {i} diverged");
        compare_stores(
            design,
            &mut fast,
            &mut slow,
            label,
            &format!("step {i} settle"),
        );
        if rf.is_err() {
            return;
        }
    }
}

fn compare_stores(
    design: &Design,
    fast: &mut Simulator,
    slow: &mut Simulator,
    label: &str,
    at: &str,
) {
    for decl in &design.signals {
        let id = design.signal(&decl.name).expect("name resolves");
        let (f, s) = (fast.peek(id).clone(), slow.peek(id));
        assert!(
            f.case_eq(s),
            "{label} at {at}: signal `{}` diverged\n  compiled: {}\n  legacy:   {}",
            decl.name,
            f.to_binary_string(),
            s.to_binary_string(),
        );
    }
}

#[test]
fn full_corpus_golden_designs_match() {
    for p in all_problems() {
        let oracle = p.oracle(0xD1FF);
        lockstep(&oracle.golden_design, &oracle.stimulus, p.id);
    }
}

#[test]
fn full_corpus_mutated_candidates_match() {
    for (pi, p) in all_problems().iter().enumerate() {
        let oracle = p.oracle(0xD1FF);
        for k in 1..=2usize {
            let mut rng = StdRng::seed_from_u64(0x0BAD_C0DE ^ (pi as u64) << 8 ^ k as u64);
            let mut file = oracle.golden.clone();
            let top_ix = file
                .modules
                .iter()
                .position(|m| m.name == oracle.top)
                .expect("top module present");
            for m in sample_mutations(&file.modules[top_ix].clone(), k, &mut rng) {
                apply_mutation(&mut file.modules[top_ix], &m);
            }
            // Mutations keep the source parseable; elaboration can still
            // fail (e.g. a select pushed out of a parameterized range) —
            // such candidates never reach the simulator in the pipeline.
            let Ok(design) = elaborate(&file, &oracle.top) else {
                continue;
            };
            lockstep(
                &Arc::new(design),
                &oracle.stimulus,
                &format!("{} (k={k})", p.id),
            );
        }
    }
}
