//! Inspect one benchmark problem: its spec, golden RTL, interface,
//! synthesized checkpoint testbench, and the WF-TextLog of the golden
//! design running against it — a tour of the substrate underneath MAGE.
//!
//! ```text
//! cargo run --release --example inspect_problem [problem_id]
//! ```

use mage::problems::by_id;
use mage::sim::Simulator;
use mage::tb::textlog::render_full_log;
use mage::tb::{run_testbench, synthesize_testbench, CheckDensity};
use std::sync::Arc;

fn main() {
    let id = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "prob056_lfsr4".to_string());
    let problem = by_id(&id).unwrap_or_else(|| {
        eprintln!("unknown problem `{id}`");
        std::process::exit(1);
    });

    println!(
        "=== {} (difficulty {:.1}, {:?}) ===",
        problem.id, problem.difficulty, problem.category
    );
    println!("\n--- specification ---\n{}", problem.spec);
    println!("\n--- golden RTL ---\n{}", problem.golden);

    let oracle = problem.oracle(1);
    let design = &oracle.golden_design;
    println!("--- elaborated interface ---");
    for (n, w) in design.input_ports() {
        println!("  input  [{:>2} bits] {n}", w);
    }
    for (n, w) in design.output_ports() {
        println!("  output [{:>2} bits] {n}", w);
    }
    println!(
        "  {} signals, {} processes after flattening",
        design.signals.len(),
        design.processes.len()
    );

    let tb = synthesize_testbench(
        problem.id,
        design,
        &oracle.stimulus,
        CheckDensity::EveryStep,
    );
    println!(
        "\n--- synthesized checkpoint testbench: {} steps, {} checkpoints ---",
        tb.steps.len(),
        tb.total_checks()
    );

    let report = run_testbench(&tb, design).expect("golden matches its own interface");
    let log = render_full_log(&report);
    // Print the head of the log only; full logs can run to hundreds of lines.
    for line in log.lines().take(24) {
        println!("{line}");
    }
    println!(
        "  … ({} checkpoints total, score {:.3})",
        report.total_checks(),
        report.score()
    );

    // A peek at raw simulation too.
    let mut sim = Simulator::new(Arc::clone(design));
    sim.settle().expect("golden settles");
    println!(
        "\nall signals start at X: {}",
        design.signals.iter().all(|s| {
            sim.peek_by_name(&s.name)
                .map(|v| v.has_unknown())
                .unwrap_or(false)
        })
    );
}
