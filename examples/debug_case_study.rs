//! The Fig. 3 case study: debugging the Prob093 mux with and without
//! state checkpoints. Prints both log formats verbatim and the measured
//! one-shot fix rates.
//!
//! ```text
//! cargo run --release --example debug_case_study
//! ```

use mage::core::casestudy::{fig3, render_fig3};

fn main() {
    let f = fig3(200, 0xF163);
    println!("{}", render_fig3(&f));
    println!("Paper narrative: without checkpoints the debug agent guesses and applies a");
    println!("wrong fix (SIMULATION FAILED); with checkpoints it pinpoints the missing");
    println!("(c & d) term of mux_in[0] and repairs it (SIMULATION PASSED).");
}
