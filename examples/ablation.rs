//! Table III: the agent task-distribution ablation — vanilla one-pass vs
//! a single shared-context agent vs the full multi-agent MAGE, all under
//! the identical synthetic channel at the Low-Temperature setting.
//!
//! ```text
//! cargo run --release --example ablation [runs]
//! ```

use mage::core::experiments::table3;
use mage::core::tables::render_table3;

fn main() {
    let runs: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(8);
    println!("Running Table III ablation with {runs} evaluation runs per config…\n");
    let t = table3(runs, 0xAB1A);
    println!("{}", render_table3(&t));
    println!("Paper:  Vanilla 72.4 | Single-Agent 83.9 (+11.5) | Multi-Agent 93.6 (+21.2)");
}
