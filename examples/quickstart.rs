//! Quickstart: run the full MAGE workflow on one benchmark problem and
//! print the engine's narrative — the optimized testbench, the sampled
//! candidate scores, the debug rounds, and the final Verilog.
//!
//! ```text
//! cargo run --release --example quickstart [problem_id]
//! ```

use mage::core::{compile, Mage, MageConfig, Task};
use mage::llm::{SyntheticModel, SyntheticModelConfig};
use mage::problems::by_id;
use mage::tb::textlog::render_full_log;
use mage::tb::{run_testbench, synthesize_testbench, CheckDensity};

fn main() {
    let id = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "prob093_ece241_2014_q3".to_string());
    let problem = by_id(&id).unwrap_or_else(|| {
        eprintln!("unknown problem `{id}`; available:");
        for p in mage::problems::all_problems() {
            eprintln!("  {}", p.id);
        }
        std::process::exit(1);
    });

    println!("=== MAGE quickstart: {} ===", problem.id);
    println!("Spec: {}\n", problem.spec);

    let seed = 0xC0FFEE;
    let mut model = SyntheticModel::new(SyntheticModelConfig::default(), seed);
    model.register(problem.id, problem.oracle(seed));

    let mut engine = Mage::new(&mut model, MageConfig::high_temperature());
    let trace = engine.solve(&Task {
        id: problem.id,
        spec: problem.spec,
    });

    println!("--- engine trace ---");
    println!("initial candidate score: {:?}", trace.initial_score);
    println!("solved before sampling:  {}", trace.solved_pre_sampling);
    println!("sampled scores:          {:?}", trace.sampled_scores);
    println!("debug round means:       {:?}", trace.round_mean_scores);
    println!("testbench regenerations: {}", trace.tb_regens);
    println!(
        "token usage:             {} prompt + {} completion",
        trace.usage.prompt, trace.usage.completion
    );
    println!(
        "\n--- final RTL (score {:.3}) ---\n{}",
        trace.final_score, trace.final_source
    );

    // Grade the answer against the benchmark's reference bench, like the
    // evaluation harness does.
    let oracle = problem.oracle(seed);
    let grading = synthesize_testbench(
        format!("{}-golden", problem.id),
        &oracle.golden_design,
        &problem.grading_stimulus(0x0D0C_5EED),
        CheckDensity::EveryStep,
    );
    match compile(&trace.final_source) {
        Ok(design) => {
            let report = run_testbench(&grading, &design).expect("interface matches");
            println!("--- grading vs benchmark testbench ---");
            println!(
                "{} ({} checks, score {:.3})",
                if report.passed() { "PASSED" } else { "FAILED" },
                report.total_checks(),
                report.score()
            );
            if !report.passed() {
                println!("\n{}", render_full_log(&report));
            }
        }
        Err(e) => println!("final source does not compile: {e}"),
    }
}
