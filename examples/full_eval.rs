//! Table II: the full systems comparison — every re-implementable
//! protocol baseline (vanilla, AIVRIL-style two-agent, merged
//! single-agent, full MAGE) under the identical synthetic channel, best
//! temperature configuration per system. Also prints Fig. 4's sampling
//! and debugging score-improvement data.
//!
//! ```text
//! cargo run --release --example full_eval [runs_high]
//! ```

use mage::core::experiments::{fig4, table2};
use mage::core::tables::{render_fig4, render_table2};

fn main() {
    let runs_high: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(8);
    println!("Full systems evaluation (runs_high = {runs_high}); this sweeps");
    println!("4 systems x 2 suites x 2 temperature configs and takes a few minutes…\n");

    let t = table2(runs_high, 0xFEED);
    println!("{}", render_table2(&t));

    let f = fig4(runs_high, 0xFEED);
    println!("{}", render_fig4(&f));
}
