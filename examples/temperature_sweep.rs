//! Table I and Fig. 2: the temperature study. Evaluates MAGE under the
//! paper's Low-T (T=0, n=1) and High-T (T=0.85, n=20) configurations on
//! both suites, and prints the Fig. 2 best-candidate mismatch
//! distributions.
//!
//! ```text
//! cargo run --release --example temperature_sweep [runs_high]
//! ```

use mage::core::experiments::{fig2, table1};
use mage::core::tables::{render_fig2, render_table1};

fn main() {
    let runs_high: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(20);
    println!("Temperature sweep with n = {runs_high} High-T evaluation runs…\n");

    let t = table1(runs_high, 0x7E3);
    println!("{}", render_table1(&t));
    println!("Paper:  High 94.8 / 95.7   Low 89.1 / 93.6\n");

    let f = fig2(runs_high, 0x7E3);
    println!("{}", render_fig2(&f));
}
