//! The model-facing API: requests, sampling parameters, conversations and
//! token accounting.
//!
//! The paper drives Claude 3.5 Sonnet through LlamaIndex's LLM-agnostic
//! interface; this crate's analogue is the [`RtlLanguageModel`] trait. A
//! production backend would render each request to a prompt (every request
//! type provides `render_prompt`) and parse the completion; the offline
//! reproduction uses [`crate::SyntheticModel`], a calibrated
//! bug-injection channel (see `DESIGN.md`).

use mage_tb::Testbench;

/// Sampling parameters, matching the paper's experiment configurations
/// (Low: `T = 0, top_p = 0.01`; High: `T = 0.85, top_p = 0.95`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SamplingParams {
    /// Softmax temperature in `[0, 1]`.
    pub temperature: f64,
    /// Nucleus sampling threshold (kept for interface fidelity; the
    /// synthetic channel folds it into the temperature diversity model).
    pub top_p: f64,
}

impl SamplingParams {
    /// The paper's Low-Temperature configuration (T=0, top_p=0.01).
    pub fn low() -> Self {
        SamplingParams {
            temperature: 0.0,
            top_p: 0.01,
        }
    }

    /// The paper's High-Temperature configuration (T=0.85, top_p=0.95).
    pub fn high() -> Self {
        SamplingParams {
            temperature: 0.85,
            top_p: 0.95,
        }
    }
}

impl Default for SamplingParams {
    fn default() -> Self {
        SamplingParams::low()
    }
}

/// The kind of sub-task a message belongs to. Context-switching across
/// kinds inside one conversation is what the multi-agent decomposition
/// removes (paper §II-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TaskKind {
    /// Synthesizable RTL generation.
    GenerateRtl,
    /// Non-synthesizable testbench generation.
    GenerateTestbench,
    /// Judging / scoring / deciding.
    Judge,
    /// Functional debugging from waveform feedback.
    DebugRtl,
    /// Syntax repair.
    FixSyntax,
}

/// Message author.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Role {
    /// System prompt.
    System,
    /// The orchestrating engine.
    User,
    /// The model.
    Assistant,
}

/// One message in an agent's conversation history.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChatMessage {
    /// Author.
    pub role: Role,
    /// Text content.
    pub content: String,
    /// Sub-task this message served.
    pub task: TaskKind,
}

/// Crude token estimate (≈ 4 characters per token), used for context
/// accounting and the cost columns of the experiment reports.
pub fn approx_tokens(text: &str) -> usize {
    text.len().div_ceil(4)
}

/// An agent's conversation history.
///
/// Each MAGE agent owns one `Conversation`; the single-agent ablation
/// shares one conversation across all task kinds, which is exactly what
/// the interference model in the synthetic channel penalizes.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Conversation {
    messages: Vec<ChatMessage>,
    /// Running total of `approx_tokens` over `messages` — kept in sync
    /// by `push`/`compact_to` so accounting never rescans the
    /// transcript.
    tokens: usize,
    /// Messages elided by compaction (the summary stub at index 0
    /// stands in for them when non-zero).
    elided: usize,
    /// Approximate tokens of the elided messages.
    elided_tokens: usize,
}

impl Conversation {
    /// An empty conversation.
    pub fn new() -> Self {
        Conversation::default()
    }

    /// Append a message.
    pub fn push(&mut self, role: Role, task: TaskKind, content: impl Into<String>) {
        let content = content.into();
        self.tokens += approx_tokens(&content);
        self.messages.push(ChatMessage {
            role,
            content,
            task,
        });
    }

    /// All messages in order.
    pub fn messages(&self) -> &[ChatMessage] {
        &self.messages
    }

    /// Number of messages.
    pub fn len(&self) -> usize {
        self.messages.len()
    }

    /// `true` when no messages have been exchanged.
    pub fn is_empty(&self) -> bool {
        self.messages.is_empty()
    }

    /// Number of distinct task kinds present in the history.
    pub fn distinct_tasks(&self) -> usize {
        let mut kinds: Vec<TaskKind> = Vec::new();
        for m in &self.messages {
            if !kinds.contains(&m.task) {
                kinds.push(m.task);
            }
        }
        kinds.len()
    }

    /// Total (approximate) tokens across the history. O(1): the count
    /// is maintained incrementally.
    pub fn total_tokens(&self) -> usize {
        debug_assert_eq!(
            self.tokens,
            self.messages
                .iter()
                .map(|m| approx_tokens(&m.content))
                .sum::<usize>(),
            "token counter out of sync with messages"
        );
        self.tokens
    }

    /// Messages elided by [`Conversation::compact_to`] over the
    /// conversation's lifetime.
    pub fn elided(&self) -> usize {
        self.elided
    }

    /// Bound the history to roughly `budget` tokens by eliding the
    /// oldest messages into a single summary stub, the way a production
    /// agent summarizes an overlong context instead of holding the full
    /// transcript. The two most recent messages (the last exchange) are
    /// always kept, so the effective floor is their size plus the stub.
    ///
    /// Returns the number of messages elided by this call. A no-op when
    /// the history is already within budget.
    pub fn compact_to(&mut self, budget: usize) -> usize {
        if self.total_tokens() <= budget {
            return 0;
        }
        // Peel off any existing stub; it is rebuilt with updated counts.
        let mut task = None;
        if self.elided > 0 && !self.messages.is_empty() {
            let stub = self.messages.remove(0);
            self.tokens -= approx_tokens(&stub.content);
            task = Some(stub.task);
        }
        let mut dropped = 0usize;
        while self.over_budget_without_stub(budget) && self.messages.len() > 2 {
            let m = self.messages.remove(0);
            let t = approx_tokens(&m.content);
            self.tokens -= t;
            task.get_or_insert(m.task);
            dropped += 1;
            self.elided += 1;
            self.elided_tokens += t;
        }
        if self.elided > 0 {
            let content = format!(
                "[context summary: {} earlier messages (~{} tokens) elided]",
                self.elided, self.elided_tokens
            );
            self.tokens += approx_tokens(&content);
            self.messages.insert(
                0,
                ChatMessage {
                    role: Role::System,
                    task: task.expect("at least one message was elided"),
                    content,
                },
            );
        }
        dropped
    }

    /// Would the history still exceed `budget` once the (re-inserted)
    /// summary stub is accounted for? The stub costs ~20 tokens.
    fn over_budget_without_stub(&self, budget: usize) -> bool {
        self.total_tokens() + 20 > budget
    }
}

/// Token usage of one model call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TokenUsage {
    /// Tokens in the rendered prompt (plus history).
    pub prompt: usize,
    /// Tokens in the completion.
    pub completion: usize,
}

impl TokenUsage {
    /// Prompt + completion.
    pub fn total(&self) -> usize {
        self.prompt + self.completion
    }
}

impl std::ops::Add for TokenUsage {
    type Output = TokenUsage;
    fn add(self, rhs: TokenUsage) -> TokenUsage {
        TokenUsage {
            prompt: self.prompt + rhs.prompt,
            completion: self.completion + rhs.completion,
        }
    }
}

impl std::ops::AddAssign for TokenUsage {
    fn add_assign(&mut self, rhs: TokenUsage) {
        *self = *self + rhs;
    }
}

/// A model result together with its token usage.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelOutput<T> {
    /// The produced value.
    pub value: T,
    /// Cost of producing it.
    pub usage: TokenUsage,
}

// ----------------------------------------------------------------------
// Request types
// ----------------------------------------------------------------------

/// Request: generate synthesizable RTL for a problem.
#[derive(Debug, Clone)]
pub struct RtlGenRequest<'a> {
    /// Benchmark problem id.
    pub problem_id: &'a str,
    /// Natural-language specification.
    pub spec_text: &'a str,
    /// A digest of the optimized testbench, when one exists in context
    /// (Step 2 grounding; absent for the vanilla baseline).
    pub testbench_digest: Option<&'a str>,
    /// Sampling parameters.
    pub params: SamplingParams,
    /// The requesting agent's conversation history.
    pub conversation: &'a Conversation,
}

impl RtlGenRequest<'_> {
    /// Render the prompt a textual backend would receive.
    pub fn render_prompt(&self) -> String {
        let mut p = format!(
            "You are an expert Verilog RTL designer.\nProblem: {}\nSpecification:\n{}\n",
            self.problem_id, self.spec_text
        );
        if let Some(tb) = self.testbench_digest {
            p.push_str("Optimized testbench (textual waveform output):\n");
            p.push_str(tb);
            p.push('\n');
        }
        p.push_str("Produce only synthesizable Verilog-2005 for the required module.\n");
        p
    }
}

/// Request: generate the optimized (state-checkpoint) testbench.
#[derive(Debug, Clone)]
pub struct TbGenRequest<'a> {
    /// Benchmark problem id.
    pub problem_id: &'a str,
    /// Natural-language specification.
    pub spec_text: &'a str,
    /// How many times this bench has been regenerated after the judge
    /// rejected it (retries use judge feedback and are more careful).
    pub retry: usize,
    /// Sampling parameters.
    pub params: SamplingParams,
    /// The requesting agent's conversation history.
    pub conversation: &'a Conversation,
}

impl TbGenRequest<'_> {
    /// Render the prompt a textual backend would receive.
    pub fn render_prompt(&self) -> String {
        format!(
            "You are a Verilog verification engineer.\nProblem: {}\nSpecification:\n{}\n\
             Write a testbench that checks all outputs at every clock edge and prints a \
             textual waveform log with state checkpoints.{}\n",
            self.problem_id,
            self.spec_text,
            if self.retry > 0 {
                "\nThe previous testbench was judged incorrect; regenerate it carefully."
            } else {
                ""
            }
        )
    }
}

/// Request: judge whether an optimized testbench itself is correct
/// (paper Step 3).
#[derive(Debug, Clone)]
pub struct JudgeTbRequest<'a> {
    /// Benchmark problem id.
    pub problem_id: &'a str,
    /// Natural-language specification.
    pub spec_text: &'a str,
    /// The testbench under judgment.
    pub testbench: &'a Testbench,
    /// Evidence gathered by the engine (e.g. "the initial RTL failed
    /// these checks …").
    pub evidence: &'a str,
    /// Sampling parameters.
    pub params: SamplingParams,
    /// The requesting agent's conversation history.
    pub conversation: &'a Conversation,
}

impl JudgeTbRequest<'_> {
    /// Render the prompt a textual backend would receive.
    pub fn render_prompt(&self) -> String {
        format!(
            "You are a verification judge.\nProblem: {}\nSpecification:\n{}\n\
             Testbench `{}` with {} checks over {} steps.\nEvidence:\n{}\n\
             Answer CORRECT or INCORRECT.\n",
            self.problem_id,
            self.spec_text,
            self.testbench.name,
            self.testbench.total_checks(),
            self.testbench.steps.len(),
            self.evidence
        )
    }
}

/// Request: fix a functionally wrong candidate given waveform feedback.
#[derive(Debug, Clone)]
pub struct DebugRequest<'a> {
    /// Benchmark problem id.
    pub problem_id: &'a str,
    /// The candidate's Verilog source.
    pub candidate_source: &'a str,
    /// The textual feedback: either a pass-rate summary or a
    /// state-checkpoint window (see `mage_tb::textlog`). The synthetic
    /// debugger extracts everything it knows from THIS TEXT, exactly like
    /// an LLM reading the log.
    pub feedback_text: &'a str,
    /// Sampling parameters.
    pub params: SamplingParams,
    /// The requesting agent's conversation history.
    pub conversation: &'a Conversation,
}

impl DebugRequest<'_> {
    /// Render the prompt a textual backend would receive.
    pub fn render_prompt(&self) -> String {
        format!(
            "You are a Verilog debugging specialist.\nProblem: {}\nCandidate RTL:\n{}\n\
             Simulation feedback:\n{}\nReturn the corrected full module.\n",
            self.problem_id, self.candidate_source, self.feedback_text
        )
    }
}

/// Request: repair a syntax error (the `s = 5` repair loop).
#[derive(Debug, Clone)]
pub struct SyntaxFixRequest<'a> {
    /// Benchmark problem id.
    pub problem_id: &'a str,
    /// The broken source.
    pub candidate_source: &'a str,
    /// The compiler diagnostic.
    pub error_text: &'a str,
    /// Sampling parameters.
    pub params: SamplingParams,
    /// The requesting agent's conversation history.
    pub conversation: &'a Conversation,
}

impl SyntaxFixRequest<'_> {
    /// Render the prompt a textual backend would receive.
    pub fn render_prompt(&self) -> String {
        format!(
            "Fix the syntax error.\nProblem: {}\nSource:\n{}\nDiagnostic: {}\n",
            self.problem_id, self.candidate_source, self.error_text
        )
    }
}

/// The LLM-agnostic backend interface of the MAGE engine.
///
/// Implementations: [`crate::SyntheticModel`] (offline, calibrated
/// channel). A networked backend for a real model would implement the
/// same trait by rendering each request's `render_prompt()` and parsing
/// the completion.
pub trait RtlLanguageModel {
    /// Backend name for reports (e.g. `synthetic-claude-3.5-sonnet`).
    fn name(&self) -> &str;

    /// Generate candidate RTL source (may contain syntax errors).
    fn generate_rtl(&mut self, req: &RtlGenRequest<'_>) -> ModelOutput<String>;

    /// Generate the optimized testbench for a problem.
    fn generate_testbench(&mut self, req: &TbGenRequest<'_>) -> ModelOutput<Testbench>;

    /// Judge whether a testbench is itself correct.
    fn judge_testbench(&mut self, req: &JudgeTbRequest<'_>) -> ModelOutput<bool>;

    /// Produce a debugged version of a candidate from textual feedback.
    fn debug_rtl(&mut self, req: &DebugRequest<'_>) -> ModelOutput<String>;

    /// Repair a syntax error.
    fn fix_syntax(&mut self, req: &SyntaxFixRequest<'_>) -> ModelOutput<String>;

    /// Resolve one owned request against the matching scalar method.
    ///
    /// This is the bridge between the owned envelopes a scheduler queues
    /// ([`crate::LlmRequest`]) and the borrowed request structs the
    /// scalar methods consume; backends normally keep the default.
    fn dispatch(&mut self, req: &crate::LlmRequest) -> crate::LlmResponse {
        use crate::{LlmRequest, LlmResponse};
        match req {
            LlmRequest::RtlGen(c) => LlmResponse::Rtl(self.generate_rtl(&c.view())),
            LlmRequest::TbGen(c) => LlmResponse::Tb(self.generate_testbench(&c.view())),
            LlmRequest::JudgeTb(c) => LlmResponse::Judge(self.judge_testbench(&c.view())),
            LlmRequest::DebugRtl(c) => LlmResponse::Debug(self.debug_rtl(&c.view())),
            LlmRequest::FixSyntax(c) => LlmResponse::Syntax(self.fix_syntax(&c.view())),
        }
    }

    /// Resolve a batch of requests; `out[i]` answers `batch[i]`.
    ///
    /// The default implementation is a scalar loop in batch order, so
    /// every backend gets the batched surface for free. Backends with a
    /// genuinely batched transport (one API call serving the whole
    /// batch, one padded forward pass) override this — the scheduler in
    /// `mage-serve` coalesces pending requests across concurrent jobs
    /// into exactly one `generate_batch` call per dispatch cycle.
    fn generate_batch(&mut self, batch: &[crate::LlmRequest]) -> Vec<crate::LlmResponse> {
        batch.iter().map(|req| self.dispatch(req)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversation_tracks_tasks_and_tokens() {
        let mut c = Conversation::new();
        assert!(c.is_empty());
        c.push(Role::User, TaskKind::GenerateRtl, "a".repeat(40));
        c.push(Role::Assistant, TaskKind::GenerateRtl, "b".repeat(40));
        c.push(Role::User, TaskKind::GenerateTestbench, "c".repeat(40));
        assert_eq!(c.len(), 3);
        assert_eq!(c.distinct_tasks(), 2);
        assert_eq!(c.total_tokens(), 30);
    }

    #[test]
    fn compaction_bounds_tokens_and_keeps_last_exchange() {
        let mut c = Conversation::new();
        for i in 0..40 {
            c.push(
                Role::User,
                TaskKind::DebugRtl,
                format!("prompt {i} {}", "p".repeat(400)),
            );
            c.push(
                Role::Assistant,
                TaskKind::DebugRtl,
                format!("reply {i} {}", "r".repeat(400)),
            );
        }
        let before = c.total_tokens();
        assert!(before > 4000);
        let dropped = c.compact_to(1000);
        assert!(dropped > 0);
        assert!(
            c.total_tokens() <= 1000,
            "over budget: {}",
            c.total_tokens()
        );
        assert_eq!(c.elided(), dropped);
        // The stub heads the history; the newest exchange survives.
        assert!(c.messages()[0].content.contains("context summary"));
        assert!(c.messages().last().unwrap().content.starts_with("reply 39"));
        // Compacting again after more growth keeps exactly one stub.
        for i in 40..60 {
            c.push(
                Role::User,
                TaskKind::DebugRtl,
                format!("prompt {i} {}", "p".repeat(400)),
            );
            c.push(
                Role::Assistant,
                TaskKind::DebugRtl,
                format!("reply {i} {}", "r".repeat(400)),
            );
        }
        c.compact_to(1000);
        assert!(c.total_tokens() <= 1000);
        let stubs = c
            .messages()
            .iter()
            .filter(|m| m.content.contains("context summary"))
            .count();
        assert_eq!(stubs, 1);
        assert!(c.elided() > dropped);
    }

    #[test]
    fn compaction_is_a_noop_within_budget() {
        let mut c = Conversation::new();
        c.push(Role::User, TaskKind::GenerateRtl, "small");
        let before = c.clone();
        assert_eq!(c.compact_to(10_000), 0);
        assert_eq!(c, before);
    }

    #[test]
    fn sampling_presets_match_paper() {
        let low = SamplingParams::low();
        assert_eq!(low.temperature, 0.0);
        assert_eq!(low.top_p, 0.01);
        let high = SamplingParams::high();
        assert_eq!(high.temperature, 0.85);
        assert_eq!(high.top_p, 0.95);
    }

    #[test]
    fn usage_adds() {
        let a = TokenUsage {
            prompt: 10,
            completion: 5,
        };
        let b = TokenUsage {
            prompt: 1,
            completion: 2,
        };
        assert_eq!((a + b).total(), 18);
    }

    #[test]
    fn prompts_render_context() {
        let conv = Conversation::new();
        let req = RtlGenRequest {
            problem_id: "prob001",
            spec_text: "Build an AND gate.",
            testbench_digest: Some("tb digest"),
            params: SamplingParams::high(),
            conversation: &conv,
        };
        let p = req.render_prompt();
        assert!(p.contains("prob001"));
        assert!(p.contains("AND gate"));
        assert!(p.contains("tb digest"));
    }
}
