//! Dispatch policy: bounded retries with jittered exponential backoff,
//! hedged duplicates past a latency threshold, rate-limit-aware batch
//! down-sizing, and per-backend health scoring driving failover
//! routing.
//!
//! [`Dispatcher`] drives a [`Transport`] attempt by attempt. All timing
//! is **virtual** (milliseconds accounted from the transport's reported
//! latencies plus computed backoff) — no wall clocks, so a dispatch's
//! outcome and its retry schedule are pure functions of the fault plan
//! and the policy, identical at any worker count and scheduler mode.
//!
//! # What may and may not influence an outcome
//!
//! Per-request outcomes (which attempt succeeds, with what latency) are
//! keyed by `(request key, attempt)` draws inside the transport.
//! Backend *routing* — which live backend serves, ranked by health —
//! deliberately cannot influence them: a synthetic transport's draws
//! ignore backend identity, and scripted-dead backends are routed
//! around via [`Transport::backend_alive`] without consuming an
//! attempt. Health scores and quarantine therefore shape only labels,
//! load placement and reports, never results — the determinism
//! acceptance bar of the serve layer rests on this split.

use crate::transport::{Attempt, Transport, TransportCall, TransportError};
use crate::LlmRequest;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Retry/hedge/deadline knobs of one dispatcher.
#[derive(Debug, Clone, PartialEq)]
pub struct DispatchPolicy {
    /// Attempts per dispatch before giving up (≥ 1).
    pub max_attempts: u32,
    /// First backoff step, virtual ms (doubles per retry).
    pub base_backoff_ms: u64,
    /// Backoff ceiling, virtual ms.
    pub max_backoff_ms: u64,
    /// Jitter fraction: each backoff adds a deterministic draw from
    /// `[0, jitter * backoff]` (decorrelates retry storms).
    pub jitter: f64,
    /// Hedge a duplicate once a successful reply's latency exceeds
    /// this threshold; the faster of the two clocks wins. `None`
    /// disables hedging.
    pub hedge_after_ms: Option<u64>,
    /// Per-request virtual deadline: once a request's accumulated
    /// latency + backoff passes this, further retries are cancelled
    /// with [`DispatchError::DeadlineExceeded`]. `None` disables.
    pub deadline_ms: Option<u64>,
    /// Floor of rate-limit batch down-sizing.
    pub min_batch: usize,
}

impl Default for DispatchPolicy {
    fn default() -> Self {
        DispatchPolicy {
            max_attempts: 4,
            base_backoff_ms: 50,
            max_backoff_ms: 2_000,
            jitter: 0.5,
            hedge_after_ms: Some(80),
            deadline_ms: None,
            min_batch: 1,
        }
    }
}

/// Per-backend health: exponential moving averages of error rate and
/// latency. Pure reporting/routing state — see the module docs for why
/// it cannot influence outcomes.
#[derive(Debug, Clone, PartialEq)]
pub struct BackendHealth {
    /// EMA of the failure indicator (1 = failing every call).
    pub err_ema: f64,
    /// EMA of observed latency, virtual ms.
    pub latency_ema_ms: f64,
    /// Attempts observed.
    pub calls: u64,
}

/// EMA smoothing factor (weight of the newest observation).
const EMA_ALPHA: f64 = 0.2;

impl Default for BackendHealth {
    fn default() -> Self {
        BackendHealth {
            err_ema: 0.0,
            latency_ema_ms: 0.0,
            calls: 0,
        }
    }
}

impl BackendHealth {
    /// Fold one attempt's result in.
    pub fn observe(&mut self, ok: bool, latency_ms: u64) {
        let err = if ok { 0.0 } else { 1.0 };
        if self.calls == 0 {
            self.err_ema = err;
            self.latency_ema_ms = latency_ms as f64;
        } else {
            self.err_ema = EMA_ALPHA * err + (1.0 - EMA_ALPHA) * self.err_ema;
            self.latency_ema_ms =
                EMA_ALPHA * latency_ms as f64 + (1.0 - EMA_ALPHA) * self.latency_ema_ms;
        }
        self.calls += 1;
    }

    /// Routing score: higher is healthier (success-weighted, latency-
    /// discounted). A fresh backend scores 1.0.
    pub fn score(&self) -> f64 {
        (1.0 - self.err_ema) / (1.0 + self.latency_ema_ms / 1_000.0)
    }

    /// A backend observed failing (nearly) every recent call is
    /// quarantined: ranked behind every non-quarantined peer.
    pub fn quarantined(&self) -> bool {
        self.calls >= 3 && self.err_ema > 0.9
    }

    /// Fold another health record for the *same backend* in, weighting
    /// each side's EMAs by its observation count. Either side with zero
    /// calls contributes nothing (a fresh record adopts the other
    /// verbatim), so checkpoint restore into a pristine dispatcher
    /// still round-trips exactly. Merging only ever reshapes routing
    /// scores — by the module contract that cannot change any outcome.
    pub fn merge(&mut self, other: &BackendHealth) {
        if other.calls == 0 {
            return;
        }
        if self.calls == 0 {
            *self = other.clone();
            return;
        }
        let w_self = self.calls as f64;
        let w_other = other.calls as f64;
        let total = w_self + w_other;
        self.err_ema = (self.err_ema * w_self + other.err_ema * w_other) / total;
        self.latency_ema_ms =
            (self.latency_ema_ms * w_self + other.latency_ema_ms * w_other) / total;
        self.calls += other.calls;
    }
}

/// Portable snapshot of a dispatcher's health table — checkpoint
/// freight, so a restored engine does not resume with pristine scores.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthSnapshot {
    /// Per-backend health, indexed by backend.
    pub backends: Vec<BackendHealth>,
}

impl HealthSnapshot {
    /// Merge another snapshot in, backend by backend (calls-weighted —
    /// see [`BackendHealth::merge`]). Backend counts must match.
    pub fn merge(&mut self, other: &HealthSnapshot) {
        assert_eq!(
            self.backends.len(),
            other.backends.len(),
            "health snapshot backend count mismatch"
        );
        for (h, o) in self.backends.iter_mut().zip(&other.backends) {
            h.merge(o);
        }
    }
}

/// Monotone resilience counters of one dispatcher (and, summed, of one
/// serve run).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResilienceCounters {
    /// Failed attempts that were retried (backoff path).
    pub retries: u64,
    /// Hedged duplicates issued for slow successes.
    pub hedges: u64,
    /// Rate-limit shed events honored with a deferred retry.
    pub rate_limit_defers: u64,
    /// Requests that routed around (or retried past) a down backend.
    pub failovers: u64,
}

impl ResilienceCounters {
    /// `true` when every counter is zero (the fault-free invariant).
    pub fn is_zero(&self) -> bool {
        *self == ResilienceCounters::default()
    }

    /// Add `other` in (for merging service counters into run stats).
    pub fn merge(&mut self, other: &ResilienceCounters) {
        self.retries += other.retries;
        self.hedges += other.hedges;
        self.rate_limit_defers += other.rate_limit_defers;
        self.failovers += other.failovers;
    }
}

/// Terminal failure of one dispatched request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DispatchError {
    /// The retry budget ran out; `last` is the final attempt's error.
    Exhausted {
        /// Attempts consumed by this dispatch.
        attempts: u32,
        /// The last transport error observed.
        last: TransportError,
    },
    /// The per-request virtual deadline passed mid-retry.
    DeadlineExceeded {
        /// Virtual ms accumulated when the deadline tripped.
        elapsed_ms: u64,
    },
    /// No live backend remains to even attempt the request.
    AllBackendsDown,
}

impl std::fmt::Display for DispatchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DispatchError::Exhausted { attempts, last } => {
                write!(
                    f,
                    "llm retry budget exhausted after {attempts} attempts ({last})"
                )
            }
            DispatchError::DeadlineExceeded { elapsed_ms } => {
                write!(f, "llm deadline exceeded at {elapsed_ms}ms")
            }
            DispatchError::AllBackendsDown => f.write_str("all llm backends down"),
        }
    }
}

/// One request for [`Dispatcher::dispatch_batch`].
#[derive(Debug)]
pub struct DispatchCall<'a> {
    /// Caller routing tag, forwarded to the transport verbatim.
    pub tag: usize,
    /// The request.
    pub req: &'a LlmRequest,
    /// Caller-supplied fault-key salt, XORed into the prompt hash so
    /// textually identical requests from different jobs (or different
    /// emission points of one job) draw independent fault streams.
    pub salt: u64,
    /// Attempts already consumed by earlier dispatches of this same
    /// request (a re-dispatching caller passes its count so retries
    /// resume the draw sequence instead of replaying attempt 0 — the
    /// guard against a deterministic plan failing the same request the
    /// same way forever).
    pub base_attempt: u32,
}

/// The result of dispatching one request.
#[derive(Debug)]
pub struct DispatchResult {
    /// The response, or the terminal failure.
    pub result: Result<crate::LlmResponse, DispatchError>,
    /// Attempts consumed by this dispatch.
    pub attempts: u32,
    /// Virtual ms accumulated (latencies + backoff + defers).
    pub latency_ms: u64,
    /// The backend that served the final attempt (0 when none did).
    pub backend: usize,
}

/// Drives a [`Transport`] under a [`DispatchPolicy`]: health-ranked
/// routing, bounded jittered-backoff retries, hedging, rate-limit
/// down-sizing, and fast all-down failure. See the module docs.
#[derive(Debug)]
pub struct Dispatcher<T> {
    transport: T,
    policy: DispatchPolicy,
    health: Vec<BackendHealth>,
    counters: ResilienceCounters,
    /// Rate-limit-adapted batch ceiling (`usize::MAX` = unlimited,
    /// halved on shed, recovered by doubling on clean dispatches).
    preferred_batch: usize,
}

impl<T: Transport> Dispatcher<T> {
    /// A dispatcher over `transport`.
    pub fn new(transport: T, policy: DispatchPolicy) -> Self {
        assert!(policy.max_attempts >= 1, "at least one attempt");
        assert!(policy.min_batch >= 1, "batch floor is one request");
        let n = transport.backends();
        Dispatcher {
            transport,
            policy,
            health: vec![BackendHealth::default(); n],
            counters: ResilienceCounters::default(),
            preferred_batch: usize::MAX,
        }
    }

    /// The wrapped transport.
    pub fn transport(&self) -> &T {
        &self.transport
    }

    /// The wrapped transport, mutably.
    pub fn transport_mut(&mut self) -> &mut T {
        &mut self.transport
    }

    /// The policy in force.
    pub fn policy(&self) -> &DispatchPolicy {
        &self.policy
    }

    /// Monotone resilience counters so far.
    pub fn counters(&self) -> ResilienceCounters {
        self.counters
    }

    /// Current per-backend health.
    pub fn health_snapshot(&self) -> HealthSnapshot {
        HealthSnapshot {
            backends: self.health.clone(),
        }
    }

    /// Fold a health snapshot in (checkpoint restore, job migration):
    /// scores survive, so a restored engine does not treat a sick
    /// backend as pristine. Importing **merges** calls-weighted rather
    /// than clobbering — a shard with live EMAs that receives a
    /// migrated job keeps its own observations and gains the source
    /// shard's, instead of forgetting everything it learned. A fresh
    /// dispatcher (zero calls everywhere) adopts the snapshot exactly.
    pub fn import_health(&mut self, snap: HealthSnapshot) {
        assert_eq!(
            snap.backends.len(),
            self.health.len(),
            "health snapshot backend count mismatch"
        );
        for (h, s) in self.health.iter_mut().zip(&snap.backends) {
            h.merge(s);
        }
    }

    /// The current rate-limit-adapted batch ceiling.
    pub fn preferred_batch(&self) -> usize {
        self.preferred_batch
    }

    /// The fault key of a request under `salt` (prompt hash XOR salt).
    pub fn fault_key(req: &LlmRequest, salt: u64) -> u64 {
        mage_logic::fnv1a(req.render_prompt().as_bytes()) ^ salt
    }

    /// Live backends in health-rank order (best score first, index as
    /// the tie-break; quarantined backends sink behind healthy peers).
    fn live_order(&self) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.health.len())
            .filter(|&b| self.transport.backend_alive(b))
            .collect();
        order.sort_by(|&a, &b| {
            let qa = self.health[a].quarantined();
            let qb = self.health[b].quarantined();
            qa.cmp(&qb)
                .then(
                    self.health[b]
                        .score()
                        .partial_cmp(&self.health[a].score())
                        .expect("scores are finite"),
                )
                .then(a.cmp(&b))
        });
        order
    }

    /// Deterministic jitter draw in `[0, jitter * backoff]`, keyed like
    /// every other per-`(key, attempt)` draw.
    fn jitter_ms(&self, key: u64, attempt: u32, backoff: u64) -> u64 {
        let span = (self.policy.jitter * backoff as f64) as u64;
        if span == 0 {
            return 0;
        }
        let mut rng = StdRng::seed_from_u64(key ^ (attempt as u64).rotate_left(32) ^ 0x117E_4A11);
        rng.gen_range(0..=span)
    }

    /// Dispatch a batch; `out[i]` answers `calls[i]`. Requests are
    /// chunked to the rate-limit-adapted ceiling; within a chunk every
    /// still-unresolved request rides one `send_batch` per retry round,
    /// so the clean path stays one pipelined call.
    pub fn dispatch_batch(&mut self, calls: &[DispatchCall<'_>]) -> Vec<DispatchResult> {
        let dead_pool = (0..self.transport.backends()).any(|b| !self.transport.backend_alive(b));
        // Mark scripted-dead backends' health once per dispatch so
        // reports show the outage without flooding the EMA.
        for b in 0..self.transport.backends() {
            if !self.transport.backend_alive(b) {
                self.health[b].observe(false, 1);
            }
        }

        let keys: Vec<u64> = calls
            .iter()
            .map(|c| Self::fault_key(c.req, c.salt))
            .collect();
        let mut results: Vec<Option<DispatchResult>> = (0..calls.len()).map(|_| None).collect();
        let chunk_cap = self.preferred_batch.max(self.policy.min_batch);
        let mut saw_rate_limit = false;

        let ixs: Vec<usize> = (0..calls.len()).collect();
        for chunk in ixs.chunks(chunk_cap.min(calls.len().max(1))) {
            self.dispatch_chunk(
                calls,
                &keys,
                chunk,
                dead_pool,
                &mut results,
                &mut saw_rate_limit,
            );
        }

        // Adapt the ceiling: shed events halve it (floored), a fully
        // clean dispatch doubles it back toward unlimited.
        if saw_rate_limit {
            let current = self.preferred_batch.min(calls.len().max(1));
            self.preferred_batch = (current / 2).max(self.policy.min_batch);
        } else if self.preferred_batch != usize::MAX {
            self.preferred_batch = self.preferred_batch.saturating_mul(2);
        }

        results
            .into_iter()
            .map(|r| r.expect("every call resolved"))
            .collect()
    }

    /// Run one chunk to resolution: every still-pending request of the
    /// chunk rides one `send_batch` per retry round.
    #[allow(clippy::too_many_arguments)]
    fn dispatch_chunk(
        &mut self,
        calls: &[DispatchCall<'_>],
        keys: &[u64],
        chunk: &[usize],
        dead_pool: bool,
        results: &mut [Option<DispatchResult>],
        saw_rate_limit: &mut bool,
    ) {
        // Per-request progress within this dispatch.
        struct Pending {
            ix: usize,
            attempt: u32,
            consumed: u32,
            elapsed_ms: u64,
        }
        let mut pending: Vec<Pending> = chunk
            .iter()
            .map(|&ix| Pending {
                ix,
                attempt: calls[ix].base_attempt,
                consumed: 0,
                elapsed_ms: 0,
            })
            .collect();

        while !pending.is_empty() {
            let order = self.live_order();
            let Some(&serving) = order.first() else {
                // No live backend at all: fail everything fast — the
                // graceful-drain path must not burn retry budget or
                // virtual time on a total outage.
                for p in pending.drain(..) {
                    results[p.ix] = Some(DispatchResult {
                        result: Err(DispatchError::AllBackendsDown),
                        attempts: p.consumed,
                        latency_ms: p.elapsed_ms,
                        backend: 0,
                    });
                }
                return;
            };
            let hedge_backend = order.get(1).copied().unwrap_or(serving);

            let batch: Vec<TransportCall<'_>> = pending
                .iter()
                .map(|p| TransportCall {
                    tag: calls[p.ix].tag,
                    key: keys[p.ix],
                    attempt: p.attempt,
                    req: calls[p.ix].req,
                })
                .collect();
            let attempts: Vec<Attempt> = self.transport.send_batch(serving, &batch);
            assert_eq!(attempts.len(), pending.len(), "short transport batch");

            let mut still: Vec<Pending> = Vec::new();
            for (mut p, att) in pending.into_iter().zip(attempts) {
                self.health[serving].observe(att.result.is_ok(), att.latency_ms);
                p.consumed += 1;
                let key = keys[p.ix];
                match att.result {
                    Ok(resp) => {
                        let mut lat = att.latency_ms;
                        if let Some(hedge_after) = self.policy.hedge_after_ms {
                            if lat > hedge_after {
                                // The reply is slow: a duplicate was
                                // hedged on the next-ranked backend and
                                // the faster clock wins. Same response
                                // either way — the duplicate races the
                                // channel, not the model.
                                self.counters.hedges += 1;
                                let dup = hedge_after
                                    + self.transport.hedge_latency_ms(
                                        hedge_backend,
                                        key,
                                        p.attempt,
                                    );
                                lat = lat.min(dup);
                            }
                        }
                        p.elapsed_ms += lat;
                        if dead_pool {
                            self.counters.failovers += 1;
                        }
                        results[p.ix] = Some(DispatchResult {
                            result: Ok(resp),
                            attempts: p.consumed,
                            latency_ms: p.elapsed_ms,
                            backend: serving,
                        });
                        continue;
                    }
                    Err(err) => {
                        p.elapsed_ms += att.latency_ms;
                        match &err {
                            TransportError::RateLimited { retry_after_ms } => {
                                *saw_rate_limit = true;
                                self.counters.rate_limit_defers += 1;
                                // Honor the advertised wait; the shed
                                // itself is the backoff.
                                p.elapsed_ms += retry_after_ms;
                            }
                            TransportError::BackendDown => {
                                self.counters.failovers += 1;
                                self.counters.retries += 1;
                            }
                            _ => {
                                self.counters.retries += 1;
                            }
                        }
                        if p.consumed >= self.policy.max_attempts {
                            results[p.ix] = Some(DispatchResult {
                                result: Err(DispatchError::Exhausted {
                                    attempts: p.consumed,
                                    last: err,
                                }),
                                attempts: p.consumed,
                                latency_ms: p.elapsed_ms,
                                backend: serving,
                            });
                            continue;
                        }
                        if !matches!(err, TransportError::RateLimited { .. }) {
                            let shift = (p.consumed - 1).min(20);
                            let backoff = self
                                .policy
                                .max_backoff_ms
                                .min(self.policy.base_backoff_ms.saturating_mul(1 << shift));
                            p.elapsed_ms += backoff + self.jitter_ms(key, p.attempt, backoff);
                        }
                        if let Some(deadline) = self.policy.deadline_ms {
                            if p.elapsed_ms > deadline {
                                results[p.ix] = Some(DispatchResult {
                                    result: Err(DispatchError::DeadlineExceeded {
                                        elapsed_ms: p.elapsed_ms,
                                    }),
                                    attempts: p.consumed,
                                    latency_ms: p.elapsed_ms,
                                    backend: serving,
                                });
                                continue;
                            }
                        }
                        p.attempt += 1;
                        still.push(p);
                    }
                }
            }
            pending = still;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{ModelOutput, SamplingParams, TokenUsage};
    use crate::batch::RtlGenCall;
    use crate::faults::{FaultPlan, FaultSpec};
    use crate::transport::FaultInjectedTransport;
    use crate::{Conversation, RtlLanguageModel};
    use std::sync::Arc;

    struct EchoModel;

    impl RtlLanguageModel for EchoModel {
        fn name(&self) -> &str {
            "echo"
        }
        fn generate_rtl(&mut self, req: &crate::RtlGenRequest<'_>) -> ModelOutput<String> {
            ModelOutput {
                value: format!("// rtl for {}", req.problem_id),
                usage: TokenUsage {
                    prompt: 1,
                    completion: 1,
                },
            }
        }
        fn generate_testbench(
            &mut self,
            _req: &crate::TbGenRequest<'_>,
        ) -> ModelOutput<mage_tb::Testbench> {
            unreachable!()
        }
        fn judge_testbench(&mut self, _req: &crate::JudgeTbRequest<'_>) -> ModelOutput<bool> {
            unreachable!()
        }
        fn debug_rtl(&mut self, _req: &crate::DebugRequest<'_>) -> ModelOutput<String> {
            unreachable!()
        }
        fn fix_syntax(&mut self, _req: &crate::SyntaxFixRequest<'_>) -> ModelOutput<String> {
            unreachable!()
        }
    }

    fn req(id: &str) -> LlmRequest {
        LlmRequest::RtlGen(RtlGenCall {
            problem_id: id.to_string(),
            spec_text: "spec".to_string(),
            testbench_digest: None,
            params: SamplingParams::low(),
            conversation: Arc::new(Conversation::new()),
        })
    }

    fn dispatcher(
        plan: FaultPlan,
        policy: DispatchPolicy,
        backends: usize,
    ) -> Dispatcher<FaultInjectedTransport<EchoModel>> {
        Dispatcher::new(
            FaultInjectedTransport::new(EchoModel, plan, backends),
            policy,
        )
    }

    fn run(
        d: &mut Dispatcher<FaultInjectedTransport<EchoModel>>,
        reqs: &[LlmRequest],
    ) -> Vec<DispatchResult> {
        let calls: Vec<DispatchCall<'_>> = reqs
            .iter()
            .enumerate()
            .map(|(ix, r)| DispatchCall {
                tag: ix,
                req: r,
                salt: ix as u64,
                base_attempt: 0,
            })
            .collect();
        d.dispatch_batch(&calls)
    }

    #[test]
    fn fault_free_dispatch_is_clean_and_counter_free() {
        let mut d = dispatcher(FaultPlan::none(), DispatchPolicy::default(), 2);
        let reqs: Vec<LlmRequest> = (0..6).map(|i| req(&format!("p{i}"))).collect();
        let out = run(&mut d, &reqs);
        assert!(out.iter().all(|r| r.result.is_ok()));
        assert!(out.iter().all(|r| r.attempts == 1));
        assert!(d.counters().is_zero(), "{:?}", d.counters());
    }

    #[test]
    fn transient_faults_retry_to_success_with_growing_latency() {
        let plan = FaultPlan::new(21, FaultSpec::single_transient());
        let mut d = dispatcher(plan, DispatchPolicy::default(), 1);
        let reqs: Vec<LlmRequest> = (0..48).map(|i| req(&format!("p{i}"))).collect();
        let out = run(&mut d, &reqs);
        assert!(
            out.iter().all(|r| r.result.is_ok()),
            "0.25^4 is rare at n=48"
        );
        let retried = out.iter().filter(|r| r.attempts > 1).count();
        assert!(retried > 0);
        assert!(d.counters().retries > 0);
        // Backoff is charged: a retried request's clock exceeds any
        // single success draw plus the base backoff.
        let max_single = 90 + 1;
        assert!(out
            .iter()
            .filter(|r| r.attempts > 1)
            .all(|r| r.latency_ms > max_single));
    }

    #[test]
    fn exhaustion_is_structured_and_deterministic() {
        let spec = FaultSpec {
            transient: 1.0,
            ..FaultSpec::none()
        };
        let mut d = dispatcher(
            FaultPlan::new(3, spec.clone()),
            DispatchPolicy::default(),
            1,
        );
        let reqs = vec![req("p")];
        let out = run(&mut d, &reqs);
        match &out[0].result {
            Err(DispatchError::Exhausted { attempts, last }) => {
                assert_eq!(*attempts, 4);
                assert_eq!(*last, TransportError::Transient);
            }
            other => panic!("expected exhaustion, got {other:?}"),
        }
        // Same plan, fresh dispatcher: bit-identical schedule.
        let mut d2 = dispatcher(FaultPlan::new(3, spec), DispatchPolicy::default(), 1);
        let out2 = run(&mut d2, &reqs);
        assert_eq!(out[0].latency_ms, out2[0].latency_ms);
        assert_eq!(out[0].attempts, out2[0].attempts);
    }

    #[test]
    fn base_attempt_resumes_the_draw_sequence() {
        // A plan that always faults at attempt 0..3 would repeat
        // forever if a re-dispatch replayed attempt 0; base_attempt
        // must advance the stream instead.
        let plan = FaultPlan::new(5, FaultSpec::single_transient());
        let mut d = dispatcher(plan.clone(), DispatchPolicy::default(), 1);
        let r = req("p");
        let first = d.dispatch_batch(&[DispatchCall {
            tag: 0,
            req: &r,
            salt: 9,
            base_attempt: 0,
        }]);
        let resumed = d.dispatch_batch(&[DispatchCall {
            tag: 0,
            req: &r,
            salt: 9,
            base_attempt: 4,
        }]);
        // Different attempt windows ⇒ independent draws; the key check
        // is determinism of each window.
        let mut d2 = dispatcher(plan, DispatchPolicy::default(), 1);
        let resumed2 = d2.dispatch_batch(&[DispatchCall {
            tag: 0,
            req: &r,
            salt: 9,
            base_attempt: 4,
        }]);
        assert_eq!(resumed[0].attempts, resumed2[0].attempts);
        assert_eq!(resumed[0].latency_ms, resumed2[0].latency_ms);
        let _ = first;
    }

    #[test]
    fn rate_limits_defer_and_downsize_batches() {
        let plan = FaultPlan::new(13, FaultSpec::burst_rate_limit());
        // At p=0.5 a 4-attempt budget exhausts ~6% of requests; give
        // the shed storm room so every request eventually lands.
        let policy = DispatchPolicy {
            max_attempts: 12,
            ..DispatchPolicy::default()
        };
        let mut d = dispatcher(plan, policy, 1);
        assert_eq!(d.preferred_batch(), usize::MAX);
        let reqs: Vec<LlmRequest> = (0..32).map(|i| req(&format!("p{i}"))).collect();
        let out = run(&mut d, &reqs);
        assert!(out.iter().all(|r| r.result.is_ok()), "shed, not failed");
        assert!(d.counters().rate_limit_defers > 0);
        assert!(
            d.preferred_batch() < 32,
            "shedding must shrink the ceiling: {}",
            d.preferred_batch()
        );
        // Deferred requests are charged the advertised retry-after.
        assert!(out
            .iter()
            .filter(|r| r.attempts > 1)
            .all(|r| r.latency_ms >= 200));
    }

    #[test]
    fn hedging_caps_slow_tail_latency() {
        // Latency range far above the hedge threshold: every success
        // hedges, and the winning clock is min(primary, threshold+dup).
        let spec = FaultSpec {
            latency_ms: (300, 400),
            ..FaultSpec::none()
        };
        let policy = DispatchPolicy {
            hedge_after_ms: Some(100),
            ..DispatchPolicy::default()
        };
        let mut d = dispatcher(FaultPlan::new(17, spec), policy, 2);
        let reqs: Vec<LlmRequest> = (0..8).map(|i| req(&format!("p{i}"))).collect();
        let out = run(&mut d, &reqs);
        assert_eq!(d.counters().hedges, 8);
        assert!(out.iter().all(|r| r.latency_ms <= 100 + 400));
    }

    #[test]
    fn dead_backend_fails_over_and_health_reflects_it() {
        let plan = FaultPlan::new(29, FaultSpec::one_backend_dead());
        let mut d = dispatcher(plan, DispatchPolicy::default(), 3);
        let reqs: Vec<LlmRequest> = (0..16).map(|i| req(&format!("p{i}"))).collect();
        let out = run(&mut d, &reqs);
        assert!(out.iter().all(|r| r.result.is_ok()));
        assert!(
            out.iter().all(|r| r.backend != 0),
            "dead backend serves nothing"
        );
        assert!(d.counters().failovers >= 16);
        let snap = d.health_snapshot();
        assert!(
            snap.backends[0].score() < snap.backends[1].score(),
            "the outage must show in health"
        );
    }

    #[test]
    fn total_outage_fails_fast_with_all_backends_down() {
        let mut d = dispatcher(
            FaultPlan::new(1, FaultSpec::all_dead(2)),
            DispatchPolicy::default(),
            2,
        );
        let reqs: Vec<LlmRequest> = (0..4).map(|i| req(&format!("p{i}"))).collect();
        let out = run(&mut d, &reqs);
        assert!(out
            .iter()
            .all(|r| r.result == Err(DispatchError::AllBackendsDown)));
        assert!(out.iter().all(|r| r.attempts == 0), "no budget burned");
    }

    #[test]
    fn request_deadline_cancels_stuck_work() {
        let plan = FaultPlan::new(7, FaultSpec::mid_wave_timeout());
        let policy = DispatchPolicy {
            deadline_ms: Some(1_000),
            ..DispatchPolicy::default()
        };
        let mut d = dispatcher(plan, policy, 1);
        let reqs: Vec<LlmRequest> = (0..24).map(|i| req(&format!("p{i}"))).collect();
        let out = run(&mut d, &reqs);
        let deadline_hits = out
            .iter()
            .filter(|r| matches!(r.result, Err(DispatchError::DeadlineExceeded { .. })))
            .count();
        assert!(deadline_hits > 0, "5s timeouts must trip a 1s deadline");
    }

    #[test]
    fn health_merge_is_calls_weighted() {
        let mut a = BackendHealth {
            err_ema: 0.8,
            latency_ema_ms: 400.0,
            calls: 30,
        };
        let b = BackendHealth {
            err_ema: 0.2,
            latency_ema_ms: 100.0,
            calls: 10,
        };
        a.merge(&b);
        assert_eq!(a.calls, 40);
        assert!((a.err_ema - 0.65).abs() < 1e-9, "{}", a.err_ema);
        assert!((a.latency_ema_ms - 325.0).abs() < 1e-9);
        // Zero-call sides are inert in both directions.
        let mut fresh = BackendHealth::default();
        fresh.merge(&b);
        assert_eq!(fresh, b);
        let mut seen = b.clone();
        seen.merge(&BackendHealth::default());
        assert_eq!(seen, b);
    }

    #[test]
    fn import_health_merges_into_live_emas_instead_of_clobbering() {
        // The migration regression: a shard that watched backend 0 fail
        // imports a snapshot from a shard that saw it healthy. The old
        // clobber semantics would forget the local outage entirely; the
        // merge must land strictly between the two observations.
        let spec = FaultSpec {
            transient: 1.0,
            ..FaultSpec::none()
        };
        let mut d = dispatcher(FaultPlan::new(3, spec), DispatchPolicy::default(), 2);
        let _ = run(&mut d, &[req("p")]);
        let local = d.health_snapshot();
        assert!(local.backends[0].err_ema > 0.5, "local EMAs are live");
        let local_calls = local.backends[0].calls;
        assert!(local_calls > 0);

        let healthy = HealthSnapshot {
            backends: vec![
                BackendHealth {
                    err_ema: 0.0,
                    latency_ema_ms: 40.0,
                    calls: 20,
                },
                BackendHealth::default(),
            ],
        };
        d.import_health(healthy.clone());
        let merged = d.health_snapshot();
        assert!(
            merged.backends[0].err_ema > 0.0
                && merged.backends[0].err_ema < local.backends[0].err_ema,
            "merge must keep both sides: {:?}",
            merged.backends[0]
        );
        assert_eq!(merged.backends[0].calls, local_calls + 20);

        // HealthSnapshot::merge mirrors the dispatcher-level semantics.
        let mut snap = local.clone();
        snap.merge(&healthy);
        assert_eq!(snap, merged);
    }

    #[test]
    fn health_snapshot_round_trips() {
        let plan = FaultPlan::new(21, FaultSpec::single_transient());
        let mut d = dispatcher(plan.clone(), DispatchPolicy::default(), 2);
        let reqs: Vec<LlmRequest> = (0..16).map(|i| req(&format!("p{i}"))).collect();
        let _ = run(&mut d, &reqs);
        let snap = d.health_snapshot();
        assert!(snap.backends.iter().any(|h| h.calls > 0));
        let mut d2 = dispatcher(plan, DispatchPolicy::default(), 2);
        d2.import_health(snap.clone());
        assert_eq!(d2.health_snapshot(), snap);
    }
}
