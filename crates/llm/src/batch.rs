//! Owned request/response envelopes and the batched dispatch surface.
//!
//! The borrowed request types in [`crate::api`] (e.g. [`RtlGenRequest`])
//! tie every model call to the lifetime of the engine's conversation
//! borrow — fine for a blocking loop, fatal for a scheduler that wants to
//! park a request in a queue, coalesce it with requests from other jobs,
//! and resolve it on a later tick. This module supplies the owned
//! mirrors: an [`LlmRequest`] owns its strings and a snapshot of the
//! requesting agent's [`Conversation`], so it can outlive the engine
//! state that produced it, cross thread boundaries, and sit in a batch.
//!
//! [`RtlLanguageModel::dispatch`] resolves one owned request against the
//! scalar trait methods; [`RtlLanguageModel::generate_batch`] resolves a
//! whole batch (default-implemented as a scalar loop, overridable by
//! backends with a genuinely batched transport — one HTTP call, one
//! forward pass).

use crate::api::{
    Conversation, DebugRequest, JudgeTbRequest, ModelOutput, RtlGenRequest, SamplingParams,
    SyntaxFixRequest, TaskKind, TbGenRequest, TokenUsage,
};
use mage_tb::Testbench;
use std::sync::Arc;

// Conversations are snapshotted behind `Arc`: building a request is an
// Arc bump, and the engine's contexts clone-on-write only when a held
// snapshot would otherwise observe a later mutation.

/// Owned mirror of [`RtlGenRequest`].
#[derive(Debug, Clone)]
pub struct RtlGenCall {
    /// Benchmark problem id.
    pub problem_id: String,
    /// Natural-language specification.
    pub spec_text: String,
    /// Optimized-testbench digest, when one grounds the generation.
    pub testbench_digest: Option<String>,
    /// Sampling parameters.
    pub params: SamplingParams,
    /// Snapshot of the requesting agent's conversation.
    pub conversation: Arc<Conversation>,
}

impl RtlGenCall {
    /// The borrowed view the scalar trait methods consume.
    pub fn view(&self) -> RtlGenRequest<'_> {
        RtlGenRequest {
            problem_id: &self.problem_id,
            spec_text: &self.spec_text,
            testbench_digest: self.testbench_digest.as_deref(),
            params: self.params,
            conversation: self.conversation.as_ref(),
        }
    }
}

/// Owned mirror of [`TbGenRequest`].
#[derive(Debug, Clone)]
pub struct TbGenCall {
    /// Benchmark problem id.
    pub problem_id: String,
    /// Natural-language specification.
    pub spec_text: String,
    /// Regeneration count (0 = first bench).
    pub retry: usize,
    /// Sampling parameters.
    pub params: SamplingParams,
    /// Snapshot of the requesting agent's conversation.
    pub conversation: Arc<Conversation>,
}

impl TbGenCall {
    /// The borrowed view the scalar trait methods consume.
    pub fn view(&self) -> TbGenRequest<'_> {
        TbGenRequest {
            problem_id: &self.problem_id,
            spec_text: &self.spec_text,
            retry: self.retry,
            params: self.params,
            conversation: self.conversation.as_ref(),
        }
    }
}

/// Owned mirror of [`JudgeTbRequest`]. The testbench is shared, not
/// copied — benches can be thousands of steps.
#[derive(Debug, Clone)]
pub struct JudgeTbCall {
    /// Benchmark problem id.
    pub problem_id: String,
    /// Natural-language specification.
    pub spec_text: String,
    /// The testbench under judgment.
    pub testbench: Arc<Testbench>,
    /// Evidence gathered by the engine.
    pub evidence: String,
    /// Sampling parameters.
    pub params: SamplingParams,
    /// Snapshot of the requesting agent's conversation.
    pub conversation: Arc<Conversation>,
}

impl JudgeTbCall {
    /// The borrowed view the scalar trait methods consume.
    pub fn view(&self) -> JudgeTbRequest<'_> {
        JudgeTbRequest {
            problem_id: &self.problem_id,
            spec_text: &self.spec_text,
            testbench: &self.testbench,
            evidence: &self.evidence,
            params: self.params,
            conversation: self.conversation.as_ref(),
        }
    }
}

/// Owned mirror of [`DebugRequest`].
#[derive(Debug, Clone)]
pub struct DebugCall {
    /// Benchmark problem id.
    pub problem_id: String,
    /// The candidate's Verilog source.
    pub candidate_source: String,
    /// Textual simulation feedback.
    pub feedback_text: String,
    /// Sampling parameters.
    pub params: SamplingParams,
    /// Snapshot of the requesting agent's conversation.
    pub conversation: Arc<Conversation>,
}

impl DebugCall {
    /// The borrowed view the scalar trait methods consume.
    pub fn view(&self) -> DebugRequest<'_> {
        DebugRequest {
            problem_id: &self.problem_id,
            candidate_source: &self.candidate_source,
            feedback_text: &self.feedback_text,
            params: self.params,
            conversation: self.conversation.as_ref(),
        }
    }
}

/// Owned mirror of [`SyntaxFixRequest`].
#[derive(Debug, Clone)]
pub struct SyntaxFixCall {
    /// Benchmark problem id.
    pub problem_id: String,
    /// The broken source.
    pub candidate_source: String,
    /// The compiler diagnostic.
    pub error_text: String,
    /// Sampling parameters.
    pub params: SamplingParams,
    /// Snapshot of the requesting agent's conversation.
    pub conversation: Arc<Conversation>,
}

impl SyntaxFixCall {
    /// The borrowed view the scalar trait methods consume.
    pub fn view(&self) -> SyntaxFixRequest<'_> {
        SyntaxFixRequest {
            problem_id: &self.problem_id,
            candidate_source: &self.candidate_source,
            error_text: &self.error_text,
            params: self.params,
            conversation: self.conversation.as_ref(),
        }
    }
}

/// One owned, self-contained model request — the unit a scheduler can
/// queue, batch across jobs and resolve asynchronously.
#[derive(Debug, Clone)]
pub enum LlmRequest {
    /// Generate candidate RTL.
    RtlGen(RtlGenCall),
    /// Generate the optimized testbench.
    TbGen(TbGenCall),
    /// Judge a testbench.
    JudgeTb(JudgeTbCall),
    /// Debug a candidate from textual feedback.
    DebugRtl(DebugCall),
    /// Repair a syntax error.
    FixSyntax(SyntaxFixCall),
}

impl LlmRequest {
    /// The problem this request concerns.
    pub fn problem_id(&self) -> &str {
        match self {
            LlmRequest::RtlGen(c) => &c.problem_id,
            LlmRequest::TbGen(c) => &c.problem_id,
            LlmRequest::JudgeTb(c) => &c.problem_id,
            LlmRequest::DebugRtl(c) => &c.problem_id,
            LlmRequest::FixSyntax(c) => &c.problem_id,
        }
    }

    /// The sub-task this request performs.
    pub fn task_kind(&self) -> TaskKind {
        match self {
            LlmRequest::RtlGen(_) => TaskKind::GenerateRtl,
            LlmRequest::TbGen(_) => TaskKind::GenerateTestbench,
            LlmRequest::JudgeTb(_) => TaskKind::Judge,
            LlmRequest::DebugRtl(_) => TaskKind::DebugRtl,
            LlmRequest::FixSyntax(_) => TaskKind::FixSyntax,
        }
    }

    /// Render the prompt a textual backend would receive (identical to
    /// the borrowed request's rendering).
    pub fn render_prompt(&self) -> String {
        match self {
            LlmRequest::RtlGen(c) => c.view().render_prompt(),
            LlmRequest::TbGen(c) => c.view().render_prompt(),
            LlmRequest::JudgeTb(c) => c.view().render_prompt(),
            LlmRequest::DebugRtl(c) => c.view().render_prompt(),
            LlmRequest::FixSyntax(c) => c.view().render_prompt(),
        }
    }
}

/// The typed result of resolving one [`LlmRequest`]. Variants pair with
/// the request variants one-to-one.
#[derive(Debug, Clone, PartialEq)]
pub enum LlmResponse {
    /// Candidate RTL source.
    Rtl(ModelOutput<String>),
    /// Generated testbench.
    Tb(ModelOutput<Testbench>),
    /// Judge verdict.
    Judge(ModelOutput<bool>),
    /// Debugged RTL source.
    Debug(ModelOutput<String>),
    /// Syntax-repaired source.
    Syntax(ModelOutput<String>),
}

impl LlmResponse {
    /// The sub-task this response answers — the mirror of
    /// [`LlmRequest::task_kind`]. An overlapped scheduler that routes
    /// responses back to jobs by tag (rather than by round position)
    /// uses this to assert each routed response actually answers the
    /// request the job parked: a mismatch means the service permuted or
    /// fabricated tags, and is caught at the router instead of as a
    /// confusing unwrap panic deep inside the job.
    pub fn task_kind(&self) -> TaskKind {
        match self {
            LlmResponse::Rtl(_) => TaskKind::GenerateRtl,
            LlmResponse::Tb(_) => TaskKind::GenerateTestbench,
            LlmResponse::Judge(_) => TaskKind::Judge,
            LlmResponse::Debug(_) => TaskKind::DebugRtl,
            LlmResponse::Syntax(_) => TaskKind::FixSyntax,
        }
    }

    /// Token usage of the call behind this response.
    pub fn usage(&self) -> TokenUsage {
        match self {
            LlmResponse::Rtl(o) | LlmResponse::Debug(o) | LlmResponse::Syntax(o) => o.usage,
            LlmResponse::Tb(o) => o.usage,
            LlmResponse::Judge(o) => o.usage,
        }
    }

    /// Unwrap an RTL-generation response.
    ///
    /// # Panics
    ///
    /// Panics on a variant mismatch — a protocol bug in the caller.
    pub fn into_rtl(self) -> ModelOutput<String> {
        match self {
            LlmResponse::Rtl(o) => o,
            other => panic!("expected Rtl response, got {}", other.variant_name()),
        }
    }

    /// Unwrap a testbench-generation response (panics on mismatch).
    pub fn into_tb(self) -> ModelOutput<Testbench> {
        match self {
            LlmResponse::Tb(o) => o,
            other => panic!("expected Tb response, got {}", other.variant_name()),
        }
    }

    /// Unwrap a judge response (panics on mismatch).
    pub fn into_judge(self) -> ModelOutput<bool> {
        match self {
            LlmResponse::Judge(o) => o,
            other => panic!("expected Judge response, got {}", other.variant_name()),
        }
    }

    /// Unwrap a debug response (panics on mismatch).
    pub fn into_debug(self) -> ModelOutput<String> {
        match self {
            LlmResponse::Debug(o) => o,
            other => panic!("expected Debug response, got {}", other.variant_name()),
        }
    }

    /// Unwrap a syntax-fix response (panics on mismatch).
    pub fn into_syntax(self) -> ModelOutput<String> {
        match self {
            LlmResponse::Syntax(o) => o,
            other => panic!("expected Syntax response, got {}", other.variant_name()),
        }
    }

    fn variant_name(&self) -> &'static str {
        match self {
            LlmResponse::Rtl(_) => "Rtl",
            LlmResponse::Tb(_) => "Tb",
            LlmResponse::Judge(_) => "Judge",
            LlmResponse::Debug(_) => "Debug",
            LlmResponse::Syntax(_) => "Syntax",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{RtlLanguageModel, SamplingParams};

    /// A deterministic toy backend that records how often each dispatch
    /// surface is hit, to prove the default implementations wire through.
    struct EchoModel {
        scalar_calls: usize,
    }

    impl RtlLanguageModel for EchoModel {
        fn name(&self) -> &str {
            "echo"
        }
        fn generate_rtl(&mut self, req: &RtlGenRequest<'_>) -> ModelOutput<String> {
            self.scalar_calls += 1;
            ModelOutput {
                value: format!("// rtl for {}", req.problem_id),
                usage: TokenUsage {
                    prompt: 1,
                    completion: 2,
                },
            }
        }
        fn generate_testbench(&mut self, req: &TbGenRequest<'_>) -> ModelOutput<Testbench> {
            self.scalar_calls += 1;
            ModelOutput {
                value: Testbench {
                    name: req.problem_id.to_string(),
                    clock: None,
                    steps: vec![],
                },
                usage: TokenUsage::default(),
            }
        }
        fn judge_testbench(&mut self, _req: &JudgeTbRequest<'_>) -> ModelOutput<bool> {
            self.scalar_calls += 1;
            ModelOutput {
                value: true,
                usage: TokenUsage::default(),
            }
        }
        fn debug_rtl(&mut self, req: &DebugRequest<'_>) -> ModelOutput<String> {
            self.scalar_calls += 1;
            ModelOutput {
                value: req.candidate_source.to_string(),
                usage: TokenUsage::default(),
            }
        }
        fn fix_syntax(&mut self, req: &SyntaxFixRequest<'_>) -> ModelOutput<String> {
            self.scalar_calls += 1;
            ModelOutput {
                value: req.candidate_source.to_string(),
                usage: TokenUsage::default(),
            }
        }
    }

    fn rtl_call(id: &str) -> LlmRequest {
        LlmRequest::RtlGen(RtlGenCall {
            problem_id: id.to_string(),
            spec_text: "spec".to_string(),
            testbench_digest: None,
            params: SamplingParams::low(),
            conversation: Arc::new(Conversation::new()),
        })
    }

    #[test]
    fn owned_request_renders_like_borrowed() {
        let call = RtlGenCall {
            problem_id: "p9".into(),
            spec_text: "Build a thing.".into(),
            testbench_digest: Some("digest".into()),
            params: SamplingParams::high(),
            conversation: Arc::new(Conversation::new()),
        };
        let owned = LlmRequest::RtlGen(call.clone()).render_prompt();
        assert_eq!(owned, call.view().render_prompt());
        assert!(owned.contains("p9"));
        assert!(owned.contains("digest"));
    }

    #[test]
    fn default_batch_is_scalar_loop_in_order() {
        let mut m = EchoModel { scalar_calls: 0 };
        let batch = vec![rtl_call("a"), rtl_call("b"), rtl_call("c")];
        let out = m.generate_batch(&batch);
        assert_eq!(m.scalar_calls, 3);
        assert_eq!(out.len(), 3);
        let texts: Vec<String> = out.into_iter().map(|r| r.into_rtl().value).collect();
        assert_eq!(texts, vec!["// rtl for a", "// rtl for b", "// rtl for c"]);
    }

    #[test]
    fn dispatch_pairs_variants() {
        let mut m = EchoModel { scalar_calls: 0 };
        let resp = m.dispatch(&rtl_call("z"));
        assert!(matches!(resp, LlmResponse::Rtl(_)));
        let tb = m.dispatch(&LlmRequest::TbGen(TbGenCall {
            problem_id: "z".into(),
            spec_text: "s".into(),
            retry: 0,
            params: SamplingParams::low(),
            conversation: Arc::new(Conversation::new()),
        }));
        assert!(matches!(tb, LlmResponse::Tb(_)));
    }

    #[test]
    fn response_task_kind_mirrors_request() {
        let mut m = EchoModel { scalar_calls: 0 };
        let req = rtl_call("z");
        let resp = m.dispatch(&req);
        assert_eq!(resp.task_kind(), req.task_kind());
    }

    #[test]
    #[should_panic(expected = "expected Judge response")]
    fn mismatched_unwrap_panics() {
        let mut m = EchoModel { scalar_calls: 0 };
        let resp = m.dispatch(&rtl_call("z"));
        let _ = resp.into_judge();
    }
}
