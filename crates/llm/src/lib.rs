//! Language-model abstraction and the synthetic bug-injection channel.
//!
//! The MAGE paper drives Claude 3.5 Sonnet through an LLM-agnostic
//! interface; this crate supplies the reproduction's equivalent:
//!
//! * [`RtlLanguageModel`] — the typed backend trait the engine calls
//!   (generate RTL, generate testbench, judge, debug, fix syntax), with
//!   prompt rendering and token accounting on every request type;
//! * [`Conversation`] — per-agent history, whose task-kind mixture feeds
//!   the context-interference model (the mechanism behind the paper's
//!   single-agent vs multi-agent ablation);
//! * [`SyntheticModel`] — the offline backend: a stochastic channel that
//!   takes each problem's golden design and injects semantic mutations
//!   ([`mutate`]) at a rate governed by difficulty, grounding,
//!   interference and temperature (see `DESIGN.md` for the calibration
//!   contract).
//!
//! # Example
//!
//! ```
//! use mage_llm::{ProblemOracle, RtlLanguageModel, SyntheticModel,
//!                SyntheticModelConfig, RtlGenRequest, SamplingParams, Conversation};
//! use mage_tb::Stimulus;
//!
//! let golden = mage_verilog::parse(
//!     "module top(input a, input b, output y); assign y = a & b; endmodule",
//! ).unwrap();
//! let stim = Stimulus::exhaustive(&[("a".into(), 1), ("b".into(), 1)]);
//! let mut model = SyntheticModel::new(SyntheticModelConfig::default(), 42);
//! model.register("and2", ProblemOracle::new(golden, "top", stim, 0.5));
//!
//! let conv = Conversation::new();
//! let out = model.generate_rtl(&RtlGenRequest {
//!     problem_id: "and2",
//!     spec_text: "Implement a 2-input AND gate.",
//!     testbench_digest: None,
//!     params: SamplingParams::high(),
//!     conversation: &conv,
//! });
//! assert!(out.value.contains("module top"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod api;
mod batch;
pub mod faults;
pub mod mutate;
pub mod policy;
mod synthetic;
pub mod transport;

pub use api::{
    approx_tokens, ChatMessage, Conversation, DebugRequest, JudgeTbRequest, ModelOutput, Role,
    RtlGenRequest, RtlLanguageModel, SamplingParams, SyntaxFixRequest, TaskKind, TbGenRequest,
    TokenUsage,
};
pub use batch::{
    DebugCall, JudgeTbCall, LlmRequest, LlmResponse, RtlGenCall, SyntaxFixCall, TbGenCall,
};
pub use faults::{FaultKind, FaultPlan, FaultSpec};
pub use policy::{
    BackendHealth, DispatchCall, DispatchError, DispatchPolicy, DispatchResult, Dispatcher,
    HealthSnapshot, ResilienceCounters,
};
pub use synthetic::{
    corrupt_testbench_for_test, parse_feedback, ParsedFeedback, ProblemOracle, SyntheticModel,
    SyntheticModelConfig,
};
pub use transport::{Attempt, FaultInjectedTransport, Transport, TransportCall, TransportError};
