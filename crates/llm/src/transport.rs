//! The transport seam between dispatch policy and model backends.
//!
//! [`Transport`] is the per-attempt surface a [`crate::Dispatcher`]
//! drives: one `send_batch` is one attempt per request on one backend,
//! returning either the model's response or a [`TransportError`] the
//! policy layer turns into retries, failovers, or structured failure.
//! A production implementation would put an HTTP client here; the
//! repository ships [`FaultInjectedTransport`], which wraps any
//! [`RtlLanguageModel`]'s `generate_batch` behind a deterministic
//! [`FaultPlan`] — every failure scenario replayable without a network.
//!
//! The fault-injected transport's invariant (the one solve-trace
//! determinism rests on): **a faulted attempt never reaches the model.**
//! Garbled replies are corrupted in transit and dropped *before* the
//! model's output is observed, timeouts and rate limits shed the call
//! at the channel — so the backend's completion stream advances exactly
//! once per request, at its final successful attempt, and a stateful
//! model produces the same completions with or without an absorbable
//! fault plan.

use crate::batch::{LlmRequest, LlmResponse};
use crate::faults::{FaultKind, FaultPlan};
use crate::RtlLanguageModel;

/// Why one attempt failed at the transport.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportError {
    /// A retryable channel error (connection reset, 5xx, ...).
    Transient,
    /// The attempt exceeded the channel timeout.
    Timeout {
        /// Virtual ms spent before giving up.
        after_ms: u64,
    },
    /// The backend shed load.
    RateLimited {
        /// Server-advertised wait before retrying, virtual ms.
        retry_after_ms: u64,
    },
    /// The reply was corrupted in transit (response dropped unread).
    Garbled,
    /// The backend refused the connection.
    BackendDown,
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::Transient => f.write_str("transient transport error"),
            TransportError::Timeout { after_ms } => write!(f, "timed out after {after_ms}ms"),
            TransportError::RateLimited { retry_after_ms } => {
                write!(f, "rate limited (retry after {retry_after_ms}ms)")
            }
            TransportError::Garbled => f.write_str("garbled response"),
            TransportError::BackendDown => f.write_str("backend down"),
        }
    }
}

/// One request attempt as the transport sees it.
#[derive(Debug)]
pub struct TransportCall<'a> {
    /// Caller routing tag, opaque to the transport (a serve-layer
    /// transport routes it to per-job backend state; others ignore it).
    pub tag: usize,
    /// The request's fault key (prompt hash salted by the caller) —
    /// with `attempt`, the coordinates of every plan draw.
    pub key: u64,
    /// Attempt number for this request (monotone across retries,
    /// continued across re-dispatches by the caller).
    pub attempt: u32,
    /// The request itself.
    pub req: &'a LlmRequest,
}

/// The outcome of one attempt.
#[derive(Debug)]
pub struct Attempt {
    /// The response, or why the attempt failed.
    pub result: Result<LlmResponse, TransportError>,
    /// Virtual ms the attempt took (success latency, timeout length,
    /// or the fast-fail cost of a refused connection).
    pub latency_ms: u64,
}

/// A multi-route channel to `backends()` model backends: one
/// `send_batch` call is one attempt per given request against one
/// backend. See the module docs for the seam's contract.
pub trait Transport {
    /// Human-readable channel name (for reports).
    fn name(&self) -> &str;

    /// Number of routable backends (≥ 1).
    fn backends(&self) -> usize;

    /// Is `backend` reachable at all? A scripted outage (or a real
    /// transport's tripped circuit breaker) reports `false`; the
    /// dispatcher routes around dead backends and, when none are left,
    /// fails fast with `AllBackendsDown` instead of burning retries.
    fn backend_alive(&self, backend: usize) -> bool;

    /// Attempt each call on `backend`; `out[i]` answers `batch[i]`.
    fn send_batch(&mut self, backend: usize, batch: &[TransportCall<'_>]) -> Vec<Attempt>;

    /// Virtual latency a *hedged duplicate* of `(key, attempt)` would
    /// observe on `backend` — consulted by the dispatcher's hedging
    /// without re-resolving the model (the duplicate races the same
    /// response; only the clock differs).
    fn hedge_latency_ms(&self, backend: usize, key: u64, attempt: u32) -> u64;
}

/// The synthetic transport: any [`RtlLanguageModel`] behind a
/// [`FaultPlan`]-scripted channel with `n_backends` routes. Clean
/// sub-batches resolve through **one** `generate_batch` call (the
/// pipelined-inference shape); faulted calls never reach the model.
#[derive(Debug)]
pub struct FaultInjectedTransport<M> {
    model: M,
    plan: FaultPlan,
    n_backends: usize,
}

impl<M: RtlLanguageModel> FaultInjectedTransport<M> {
    /// Wrap `model` behind `plan` with `n_backends` routes (≥ 1).
    pub fn new(model: M, plan: FaultPlan, n_backends: usize) -> Self {
        assert!(n_backends >= 1, "at least one backend route");
        FaultInjectedTransport {
            model,
            plan,
            n_backends,
        }
    }

    /// The wrapped model.
    pub fn model(&self) -> &M {
        &self.model
    }

    /// The wrapped model, mutably.
    pub fn model_mut(&mut self) -> &mut M {
        &mut self.model
    }

    /// The plan this channel consults.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }
}

impl<M: RtlLanguageModel> Transport for FaultInjectedTransport<M> {
    fn name(&self) -> &str {
        "fault-injected"
    }

    fn backends(&self) -> usize {
        self.n_backends
    }

    fn backend_alive(&self, backend: usize) -> bool {
        !self.plan.dead(backend)
    }

    fn send_batch(&mut self, backend: usize, batch: &[TransportCall<'_>]) -> Vec<Attempt> {
        // A scripted-dead backend refuses every call fast (the caller
        // should have routed around it; being asked anyway is not an
        // error — e.g. a health probe).
        if self.plan.dead(backend) {
            return batch
                .iter()
                .map(|_| Attempt {
                    result: Err(TransportError::BackendDown),
                    latency_ms: 1,
                })
                .collect();
        }
        // Partition by the plan; the clean subset rides one pipelined
        // generate_batch call, in batch order.
        let mut out: Vec<Option<Attempt>> = Vec::with_capacity(batch.len());
        let mut clean: Vec<usize> = Vec::new();
        for (ix, call) in batch.iter().enumerate() {
            match self.plan.decide(call.key, call.attempt) {
                None => {
                    clean.push(ix);
                    out.push(None);
                }
                Some(kind) => {
                    let (err, latency_ms) = match kind {
                        FaultKind::Transient => (
                            TransportError::Transient,
                            self.plan.latency_ms(call.key, call.attempt),
                        ),
                        FaultKind::Timeout => (
                            TransportError::Timeout {
                                after_ms: self.plan.spec.timeout_ms,
                            },
                            self.plan.spec.timeout_ms,
                        ),
                        FaultKind::RateLimited { retry_after_ms } => (
                            TransportError::RateLimited { retry_after_ms },
                            self.plan.latency_ms(call.key, call.attempt),
                        ),
                        FaultKind::Garbled => (
                            TransportError::Garbled,
                            self.plan.latency_ms(call.key, call.attempt),
                        ),
                        FaultKind::BackendDown => (TransportError::BackendDown, 1),
                    };
                    out.push(Some(Attempt {
                        result: Err(err),
                        latency_ms,
                    }));
                }
            }
        }
        if !clean.is_empty() {
            let reqs: Vec<LlmRequest> = clean.iter().map(|&ix| batch[ix].req.clone()).collect();
            let responses = self.model.generate_batch(&reqs);
            assert_eq!(
                responses.len(),
                clean.len(),
                "generate_batch returned a short batch"
            );
            for (&ix, resp) in clean.iter().zip(responses) {
                let call = &batch[ix];
                out[ix] = Some(Attempt {
                    result: Ok(resp),
                    latency_ms: self.plan.latency_ms(call.key, call.attempt),
                });
            }
        }
        out.into_iter()
            .map(|a| a.expect("every slot filled"))
            .collect()
    }

    fn hedge_latency_ms(&self, _backend: usize, key: u64, attempt: u32) -> u64 {
        // Deliberately backend-independent: hedge schedules must not
        // vary with health-driven routing (see faults.rs module docs).
        self.plan.hedge_latency_ms(key, attempt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{ModelOutput, RtlGenRequest, SamplingParams, TbGenRequest, TokenUsage};
    use crate::batch::RtlGenCall;
    use crate::faults::FaultSpec;
    use crate::Conversation;
    use std::sync::Arc;

    /// Counts how often the model is actually consulted.
    struct CountingModel {
        batch_calls: usize,
        items: usize,
    }

    impl RtlLanguageModel for CountingModel {
        fn name(&self) -> &str {
            "counting"
        }
        fn generate_rtl(&mut self, req: &RtlGenRequest<'_>) -> ModelOutput<String> {
            ModelOutput {
                value: format!("// rtl for {}", req.problem_id),
                usage: TokenUsage {
                    prompt: 1,
                    completion: 1,
                },
            }
        }
        fn generate_testbench(
            &mut self,
            _req: &TbGenRequest<'_>,
        ) -> ModelOutput<mage_tb::Testbench> {
            unreachable!("tests only send RtlGen")
        }
        fn judge_testbench(&mut self, _req: &crate::JudgeTbRequest<'_>) -> ModelOutput<bool> {
            unreachable!()
        }
        fn debug_rtl(&mut self, _req: &crate::DebugRequest<'_>) -> ModelOutput<String> {
            unreachable!()
        }
        fn fix_syntax(&mut self, _req: &crate::SyntaxFixRequest<'_>) -> ModelOutput<String> {
            unreachable!()
        }
        fn generate_batch(&mut self, batch: &[LlmRequest]) -> Vec<LlmResponse> {
            self.batch_calls += 1;
            self.items += batch.len();
            batch.iter().map(|r| self.dispatch_scalar(r)).collect()
        }
    }

    impl CountingModel {
        fn dispatch_scalar(&mut self, req: &LlmRequest) -> LlmResponse {
            match req {
                LlmRequest::RtlGen(c) => LlmResponse::Rtl(self.generate_rtl(&c.view())),
                _ => unreachable!("tests only send RtlGen"),
            }
        }
    }

    fn req(id: &str) -> LlmRequest {
        LlmRequest::RtlGen(RtlGenCall {
            problem_id: id.to_string(),
            spec_text: "spec".to_string(),
            testbench_digest: None,
            params: SamplingParams::low(),
            conversation: Arc::new(Conversation::new()),
        })
    }

    fn calls(reqs: &[LlmRequest]) -> Vec<TransportCall<'_>> {
        reqs.iter()
            .enumerate()
            .map(|(ix, r)| TransportCall {
                tag: ix,
                key: ix as u64 * 0x9E37_79B9,
                attempt: 0,
                req: r,
            })
            .collect()
    }

    #[test]
    fn empty_plan_is_one_clean_pipelined_call() {
        let model = CountingModel {
            batch_calls: 0,
            items: 0,
        };
        let mut t = FaultInjectedTransport::new(model, FaultPlan::none(), 2);
        let reqs: Vec<LlmRequest> = (0..5).map(|i| req(&format!("p{i}"))).collect();
        let out = t.send_batch(0, &calls(&reqs));
        assert_eq!(out.len(), 5);
        assert!(out.iter().all(|a| a.result.is_ok()));
        assert_eq!(t.model().batch_calls, 1, "one pipelined inner call");
        assert_eq!(t.model().items, 5);
    }

    #[test]
    fn faulted_attempts_never_reach_the_model() {
        // All-garbled plan: the model must see zero traffic.
        let spec = FaultSpec {
            garbled: 1.0,
            ..FaultSpec::none()
        };
        let model = CountingModel {
            batch_calls: 0,
            items: 0,
        };
        let mut t = FaultInjectedTransport::new(model, FaultPlan::new(3, spec), 1);
        let reqs: Vec<LlmRequest> = (0..4).map(|i| req(&format!("p{i}"))).collect();
        let out = t.send_batch(0, &calls(&reqs));
        assert!(out.iter().all(|a| a.result == Err(TransportError::Garbled)));
        assert_eq!(t.model().batch_calls, 0, "garbled replies drop pre-model");
        assert_eq!(t.model().items, 0);
    }

    #[test]
    fn partial_batch_failure_resolves_the_clean_subset_in_one_call() {
        let plan = FaultPlan::new(11, FaultSpec::single_transient());
        let model = CountingModel {
            batch_calls: 0,
            items: 0,
        };
        let mut t = FaultInjectedTransport::new(model, plan.clone(), 1);
        let reqs: Vec<LlmRequest> = (0..64).map(|i| req(&format!("p{i}"))).collect();
        let out = t.send_batch(0, &calls(&reqs));
        let failed = out.iter().filter(|a| a.result.is_err()).count();
        assert!(failed > 0, "0.25 transient over 64 calls should hit");
        assert!(failed < 64, "and miss");
        assert_eq!(t.model().batch_calls, 1);
        assert_eq!(t.model().items, 64 - failed);
        // Replay: bit-identical outcome pattern.
        let model2 = CountingModel {
            batch_calls: 0,
            items: 0,
        };
        let mut t2 = FaultInjectedTransport::new(model2, plan, 1);
        let out2 = t2.send_batch(0, &calls(&reqs));
        for (a, b) in out.iter().zip(&out2) {
            assert_eq!(a.result.is_ok(), b.result.is_ok());
            assert_eq!(a.latency_ms, b.latency_ms);
        }
    }

    #[test]
    fn dead_backend_refuses_everything_fast() {
        let plan = FaultPlan::new(1, FaultSpec::one_backend_dead());
        let model = CountingModel {
            batch_calls: 0,
            items: 0,
        };
        let mut t = FaultInjectedTransport::new(model, plan, 3);
        assert!(!t.backend_alive(0));
        assert!(t.backend_alive(1));
        let reqs = vec![req("p")];
        let out = t.send_batch(0, &calls(&reqs));
        assert_eq!(out[0].result, Err(TransportError::BackendDown));
        assert_eq!(t.model().batch_calls, 0);
    }
}
