//! The synthetic language model: a calibrated bug-injection channel.
//!
//! This is the substitution for Claude 3.5 Sonnet (see `DESIGN.md`). The
//! model *knows* the right answer to every benchmark problem (its
//! [`ProblemOracle`] holds the golden design) — the interesting part is
//! the noise: how often, and in what ways, its outputs deviate. Every
//! deviation mechanism corresponds to a claim the paper makes:
//!
//! * **Competence vs difficulty** — mutations per candidate follow a
//!   Poisson law whose rate scales with problem difficulty, calibrated so
//!   the *vanilla* baseline lands near the paper's 72.4% (Table III).
//! * **Grounding** — a testbench digest in the prompt lowers the rate
//!   (Step 1 before Step 2 in the workflow).
//! * **Context interference** — extra task kinds and tokens in the
//!   conversation raise the rate (the single-agent ablation).
//! * **Temperature** — T scales a log-normal diversity multiplier on the
//!   rate: low-T outputs are concentrated (and deterministic per prompt),
//!   high-T outputs are spread — which is exactly what best-of-`n`
//!   selection exploits (§III-B).
//! * **Debug skill** — the debugger only uses the *feedback text*: a
//!   checkpoint window names the failing signal, the differing bits and
//!   the triggering inputs, letting the synthetic debugger restrict
//!   repair to the signal's driver cone and verify the fix; a pass-rate
//!   summary leaves it guessing — and sometimes "fixing" the wrong
//!   statement (Fig. 3).

use crate::api::*;
use crate::mutate::{apply_mutation, enumerate_mutations, sample_mutations, Mutation};
use mage_logic::fnv1a;
use mage_sim::{elaborate, Design};
use mage_tb::{run_testbench, synthesize_testbench, Check, CheckDensity, Stimulus, Testbench};
use mage_verilog::ast::{Item, LValue, Module, SourceFile, Stmt};
use mage_verilog::visit::AssignRef;
use mage_verilog::{analysis, parse, print_file};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::sync::Arc;

/// Tunable behaviour of the synthetic channel. One knob per claimed
/// effect; see the module docs and `DESIGN.md`.
#[derive(Debug, Clone, PartialEq)]
pub struct SyntheticModelConfig {
    /// Expected mutations per candidate at difficulty 1.0, no grounding,
    /// clean context. Calibrates the vanilla baseline.
    pub base_bug_rate: f64,
    /// Multiplier (< 1) applied when the prompt carries a testbench
    /// digest.
    pub grounding_factor: f64,
    /// Rate increase per extra distinct task kind in the conversation.
    pub interference_per_task: f64,
    /// Rate increase per 1000 conversation tokens.
    pub interference_per_kilotoken: f64,
    /// Log-normal σ per unit temperature (diversity of candidate quality).
    pub temperature_diversity: f64,
    /// Probability the emitted source carries a syntax error.
    pub syntax_error_rate: f64,
    /// Probability a syntax-repair request succeeds.
    pub syntax_fix_success: f64,
    /// Probability a fresh testbench is corrupted (wrong expectations).
    pub tb_error_rate: f64,
    /// Same, after a judge rejection (retries are more careful).
    pub tb_error_rate_retry: f64,
    /// Probability a generated bench checks only sparsely (weak bench).
    pub tb_weak_rate: f64,
    /// Probability the judge classifies a testbench correctly.
    pub judge_accuracy: f64,
    /// Probability of localizing the bug site given a checkpoint window.
    pub locate_prob_checkpoint: f64,
    /// Probability of localizing given only a pass-rate summary.
    pub locate_prob_summary: f64,
    /// Probability a summary-guided "fix" mutates a wrong site (Fig. 3's
    /// wrong debug action).
    pub wrong_fix_prob_summary: f64,
    /// Same under checkpoint feedback (rare).
    pub wrong_fix_prob_checkpoint: f64,
    /// Probability a correctly-localized repair is actually right (an
    /// LLM can point at the right statement and still rewrite it wrong).
    pub repair_skill: f64,
    /// Per-unit-difficulty rate of *persistent miscomprehension*: for
    /// each (problem, run) one latent draw decides whether the model has
    /// genuinely understood the spec (`P = exp(-rate × difficulty ×
    /// interference)`). A model that has not understood keeps making the
    /// same conceptual error: its candidates carry double the mutation
    /// rate and its debug trials never land on the real fix. This is the
    /// mechanism behind the hard tail of the benchmark — retries cannot
    /// wash it out, unlike i.i.d. sampling noise.
    pub miscomprehension_rate: f64,
}

impl Default for SyntheticModelConfig {
    fn default() -> Self {
        SyntheticModelConfig {
            base_bug_rate: 0.22,
            grounding_factor: 0.72,
            interference_per_task: 2.2,
            interference_per_kilotoken: 0.01,
            temperature_diversity: 0.7,
            syntax_error_rate: 0.06,
            syntax_fix_success: 0.9,
            tb_error_rate: 0.10,
            tb_error_rate_retry: 0.04,
            tb_weak_rate: 0.02,
            judge_accuracy: 0.9,
            locate_prob_checkpoint: 0.85,
            locate_prob_summary: 0.3,
            wrong_fix_prob_summary: 0.35,
            wrong_fix_prob_checkpoint: 0.05,
            repair_skill: 0.65,
            miscomprehension_rate: 0.16,
        }
    }
}

/// Everything the synthetic model "knows" about one benchmark problem.
#[derive(Debug, Clone)]
pub struct ProblemOracle {
    /// The golden source (top module last, submodules before it).
    pub golden: SourceFile,
    /// Top module name.
    pub top: String,
    /// Elaborated golden design.
    pub golden_design: Arc<Design>,
    /// The problem's stimulus schedule.
    pub stimulus: Stimulus,
    /// Difficulty ≥ 0; scales the bug rate.
    pub difficulty: f64,
}

impl ProblemOracle {
    /// Build an oracle, elaborating the golden source.
    ///
    /// # Panics
    ///
    /// Panics if the golden source does not elaborate — oracle designs
    /// are library-internal and must be correct.
    pub fn new(golden: SourceFile, top: &str, stimulus: Stimulus, difficulty: f64) -> Self {
        let golden_design =
            Arc::new(elaborate(&golden, top).expect("golden design must elaborate"));
        ProblemOracle {
            golden,
            top: top.to_string(),
            golden_design,
            stimulus,
            difficulty,
        }
    }

    /// The golden top module.
    pub fn top_module(&self) -> &Module {
        self.golden.module(&self.top).expect("top module exists")
    }
}

/// The synthetic backend. See the module docs.
#[derive(Debug, Clone)]
pub struct SyntheticModel {
    name: String,
    config: SyntheticModelConfig,
    oracles: HashMap<String, ProblemOracle>,
    rng: StdRng,
    seed: u64,
    /// corrupted-source hash → clean source (syntax-repair memory).
    syntax_memory: HashMap<u64, String>,
}

impl SyntheticModel {
    /// Create a model with the given config and master seed.
    pub fn new(config: SyntheticModelConfig, seed: u64) -> Self {
        SyntheticModel {
            name: "synthetic-claude-3.5-sonnet-2024-10-22".to_string(),
            config,
            oracles: HashMap::new(),
            rng: StdRng::seed_from_u64(seed),
            seed,
            syntax_memory: HashMap::new(),
        }
    }

    /// Register a problem oracle.
    pub fn register(&mut self, problem_id: impl Into<String>, oracle: ProblemOracle) {
        self.oracles.insert(problem_id.into(), oracle);
    }

    /// Access the registered oracle for a problem.
    pub fn oracle(&self, problem_id: &str) -> Option<&ProblemOracle> {
        self.oracles.get(problem_id)
    }

    /// Current configuration.
    pub fn config(&self) -> &SyntheticModelConfig {
        &self.config
    }

    // ------------------------------------------------------------------
    // Error-rate model
    // ------------------------------------------------------------------

    /// The context-interference multiplier for a conversation (§II-A):
    /// `1 + α·(task kinds − 1) + β·(tokens/1000)`.
    pub fn interference(&self, conversation: &Conversation) -> f64 {
        let tasks = conversation.distinct_tasks().saturating_sub(1) as f64;
        let kilotokens = conversation.total_tokens() as f64 / 1000.0;
        1.0 + self.config.interference_per_task * tasks
            + self.config.interference_per_kilotoken * kilotokens
    }

    fn effective_rate(&self, difficulty: f64, grounded: bool, conversation: &Conversation) -> f64 {
        let mut rate = self.config.base_bug_rate * difficulty;
        if grounded {
            rate *= self.config.grounding_factor;
        }
        rate * self.interference(conversation)
    }

    /// RNG for one call: deterministic per (prompt, conversation) at
    /// (near-)zero temperature — greedy decoding repeats the same
    /// completion only when the *entire context* repeats; a growing
    /// history changes the effective prompt. Drawn from the master
    /// stream otherwise.
    fn call_rng(&mut self, prompt: &str, conversation: &Conversation, temperature: f64) -> StdRng {
        if temperature < 0.05 {
            let mut h = fnv1a(prompt.as_bytes());
            for m in conversation.messages() {
                h ^= fnv1a(m.content.as_bytes()).rotate_left(17);
            }
            StdRng::seed_from_u64(self.seed ^ h)
        } else {
            StdRng::seed_from_u64(self.rng.gen())
        }
    }

    fn poisson<R: Rng>(lambda: f64, rng: &mut R) -> usize {
        // Knuth's method; λ here is small (< ~8).
        let l = (-lambda).exp();
        let mut k = 0usize;
        let mut p = 1.0f64;
        loop {
            p *= rng.gen::<f64>();
            if p <= l || k > 64 {
                return k;
            }
            k += 1;
        }
    }

    /// Approximate standard normal (Irwin–Hall with 12 uniforms).
    fn std_normal<R: Rng>(rng: &mut R) -> f64 {
        (0..12).map(|_| rng.gen::<f64>()).sum::<f64>() - 6.0
    }

    /// The persistent comprehension draw for a problem: one latent
    /// uniform per (model seed, problem), compared against a threshold
    /// that interference lowers. The same draw gates generation and
    /// debugging, so a misunderstood spec fails *consistently* within a
    /// run.
    fn comprehends(&self, problem_id: &str, difficulty: f64, interference: f64) -> bool {
        let mut rng = StdRng::seed_from_u64(self.seed ^ fnv1a(problem_id.as_bytes()) ^ 0xC0C0_C0C0);
        let u: f64 = rng.gen();
        u < (-self.config.miscomprehension_rate * difficulty * interference).exp()
    }

    fn usage_for(prompt: &str, completion: &str) -> TokenUsage {
        TokenUsage {
            prompt: approx_tokens(prompt),
            completion: approx_tokens(completion),
        }
    }

    // ------------------------------------------------------------------
    // Text corruption (syntax errors)
    // ------------------------------------------------------------------

    fn corrupt_syntax<R: Rng>(&mut self, clean: &str, rng: &mut R) -> String {
        let forms: &[fn(&str, &mut R) -> String] = &[
            |s, r| {
                // Drop a random semicolon.
                let spots: Vec<usize> = s
                    .char_indices()
                    .filter(|(_, c)| *c == ';')
                    .map(|(i, _)| i)
                    .collect();
                if spots.is_empty() {
                    return s.to_string();
                }
                let at = spots[r.gen_range(0..spots.len())];
                format!("{}{}", &s[..at], &s[at + 1..])
            },
            |s, _| s.replacen("endmodule", "endmodul", 1),
            |s, _| s.replacen(" begin", "", 1),
        ];
        // Try random forms until one actually damages the text (some
        // forms are no-ops on small modules).
        let mut corrupted = clean.to_string();
        for _ in 0..8 {
            let f = forms[rng.gen_range(0..forms.len())];
            let c = f(clean, rng);
            if c != clean && mage_verilog::parse(&c).is_err() {
                corrupted = c;
                break;
            }
        }
        if corrupted == clean {
            // Guaranteed damage: truncate the trailing `endmodule`.
            corrupted = clean.trim_end().trim_end_matches("endmodule").to_string();
        }
        self.syntax_memory
            .insert(fnv1a(corrupted.as_bytes()), clean.to_string());
        corrupted
    }
}

// ----------------------------------------------------------------------
// Feedback-text parsing (the debugger reads ONLY the log text)
// ----------------------------------------------------------------------

/// What the debugger managed to extract from feedback text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedFeedback {
    /// The failing output named in the log, if any.
    pub signal: Option<String>,
    /// Bit positions that differ between got and expected at the first
    /// mismatch (only a checkpoint window exposes these).
    pub differing_bits: Vec<usize>,
    /// `true` when the text is a state-checkpoint window rather than a
    /// bare pass-rate summary.
    pub has_checkpoints: bool,
}

/// Parse a feedback log the way an LLM would read it: extract the failing
/// signal from either log form, and got/expected bit differences from a
/// checkpoint window.
pub fn parse_feedback(text: &str) -> ParsedFeedback {
    let has_checkpoints =
        text.contains("State checkpoints in window") || text.contains("First mismatch at time");
    // Signal from "Got <sig>=<bits>" (checkpoint) or "Output '<sig>' has"
    // (summary).
    let mut signal = None;
    let mut differing_bits = Vec::new();
    if let Some(pos) = text.find("Got ") {
        let rest = &text[pos + 4..];
        if let Some(eq) = rest.find('=') {
            signal = Some(rest[..eq].trim().to_string());
            // got bits up to whitespace; expected bits after "Expected <sig>=".
            let got_bits: String = rest[eq + 1..]
                .chars()
                .take_while(|c| matches!(c, '0' | '1' | 'x' | 'z'))
                .collect();
            if let Some(epos) = rest.find("Expected ") {
                let erest = &rest[epos + 9..];
                if let Some(eeq) = erest.find('=') {
                    let exp_bits: String = erest[eeq + 1..]
                        .chars()
                        .take_while(|c| matches!(c, '0' | '1' | 'x' | 'z'))
                        .collect();
                    if got_bits.len() == exp_bits.len() {
                        // Strings are MSB-first.
                        let w = got_bits.len();
                        for (i, (g, e)) in got_bits.chars().zip(exp_bits.chars()).enumerate() {
                            if g != e {
                                differing_bits.push(w - 1 - i);
                            }
                        }
                    }
                }
            }
        }
    } else if let Some(pos) = text.find("Output '") {
        let rest = &text[pos + 8..];
        if let Some(q) = rest.find('\'') {
            signal = Some(rest[..q].to_string());
        }
    }
    ParsedFeedback {
        signal,
        differing_bits,
        has_checkpoints,
    }
}

// ----------------------------------------------------------------------
// Trait implementation
// ----------------------------------------------------------------------

impl RtlLanguageModel for SyntheticModel {
    fn name(&self) -> &str {
        &self.name
    }

    fn generate_rtl(&mut self, req: &RtlGenRequest<'_>) -> ModelOutput<String> {
        let prompt = req.render_prompt();
        let Some(oracle) = self.oracles.get(req.problem_id).cloned() else {
            let text = format!("// unknown problem `{}`\n", req.problem_id);
            return ModelOutput {
                usage: Self::usage_for(&prompt, &text),
                value: text,
            };
        };
        let mut rng = self.call_rng(&prompt, req.conversation, req.params.temperature);
        let mut rate = self.effective_rate(
            oracle.difficulty,
            req.testbench_digest.is_some(),
            req.conversation,
        );
        if !self.comprehends(
            req.problem_id,
            oracle.difficulty,
            self.interference(req.conversation),
        ) {
            rate *= 2.0; // guessing, not designing
        }
        // Temperature spreads candidate quality log-normally.
        let sigma = req.params.temperature * self.config.temperature_diversity;
        let lambda = rate * (sigma * Self::std_normal(&mut rng) - sigma * sigma / 2.0).exp();
        let k = Self::poisson(lambda, &mut rng);

        let mut file = oracle.golden.clone();
        let top_ix = file
            .modules
            .iter()
            .position(|m| m.name == oracle.top)
            .expect("top module present");
        for mutation in sample_mutations(&file.modules[top_ix], k, &mut rng) {
            apply_mutation(&mut file.modules[top_ix], &mutation);
        }
        let mut text = print_file(&file);
        if rng.gen::<f64>() < self.config.syntax_error_rate * self.interference(req.conversation) {
            text = self.corrupt_syntax(&text, &mut rng);
        }
        ModelOutput {
            usage: Self::usage_for(&prompt, &text),
            value: text,
        }
    }

    fn generate_testbench(&mut self, req: &TbGenRequest<'_>) -> ModelOutput<Testbench> {
        let prompt = req.render_prompt();
        let Some(oracle) = self.oracles.get(req.problem_id).cloned() else {
            let tb = Testbench {
                name: format!("{}-unknown", req.problem_id),
                clock: None,
                steps: vec![],
            };
            return ModelOutput {
                usage: Self::usage_for(&prompt, "endtb"),
                value: tb,
            };
        };
        let mut rng = self.call_rng(&prompt, req.conversation, req.params.temperature);
        let density = if rng.gen::<f64>() < self.config.tb_weak_rate && req.retry == 0 {
            CheckDensity::EveryN(3)
        } else {
            CheckDensity::EveryStep
        };
        let mut tb = synthesize_testbench(
            format!("{}-tb", req.problem_id),
            &oracle.golden_design,
            &oracle.stimulus,
            density,
        );
        let err_rate = if req.retry == 0 {
            self.config.tb_error_rate
        } else {
            self.config.tb_error_rate_retry
        } * self.interference(req.conversation);
        if rng.gen::<f64>() < err_rate {
            corrupt_testbench(&mut tb, &mut rng);
        }
        let digest = format!("testbench `{}` ({} checks)", tb.name, tb.total_checks());
        ModelOutput {
            usage: Self::usage_for(&prompt, &digest),
            value: tb,
        }
    }

    fn judge_testbench(&mut self, req: &JudgeTbRequest<'_>) -> ModelOutput<bool> {
        let prompt = req.render_prompt();
        let Some(oracle) = self.oracles.get(req.problem_id).cloned() else {
            return ModelOutput {
                usage: Self::usage_for(&prompt, "INCORRECT"),
                value: false,
            };
        };
        // Ground truth: a correct bench is one the golden design passes.
        let truth = run_testbench(req.testbench, &oracle.golden_design)
            .map(|r| r.passed())
            .unwrap_or(false);
        let mut rng = self.call_rng(&prompt, req.conversation, req.params.temperature);
        let verdict = if rng.gen::<f64>() < self.config.judge_accuracy {
            truth
        } else {
            !truth
        };
        ModelOutput {
            usage: Self::usage_for(&prompt, if verdict { "CORRECT" } else { "INCORRECT" }),
            value: verdict,
        }
    }

    fn debug_rtl(&mut self, req: &DebugRequest<'_>) -> ModelOutput<String> {
        let prompt = req.render_prompt();
        let unchanged = |s: &str| ModelOutput {
            usage: Self::usage_for(&prompt, s),
            value: s.to_string(),
        };
        let Some(oracle) = self.oracles.get(req.problem_id).cloned() else {
            return unchanged(req.candidate_source);
        };
        let Ok(mut file) = parse(req.candidate_source) else {
            return unchanged(req.candidate_source);
        };
        let Some(top_ix) = file.modules.iter().position(|m| m.name == oracle.top) else {
            return unchanged(req.candidate_source);
        };

        let feedback = parse_feedback(req.feedback_text);
        let mut rng = self.call_rng(&prompt, req.conversation, req.params.temperature);
        // A polluted context degrades debugging skill the same way it
        // degrades generation (the single-agent ablation's mechanism).
        let interference = self.interference(req.conversation);
        let (locate_prob, wrong_fix_prob) = if feedback.has_checkpoints {
            (
                self.config.locate_prob_checkpoint / interference,
                (self.config.wrong_fix_prob_checkpoint * interference).min(0.9),
            )
        } else {
            (
                self.config.locate_prob_summary / interference,
                (self.config.wrong_fix_prob_summary * interference).min(0.9),
            )
        };

        // Candidate repair sites: all assignments, optionally narrowed to
        // the failing signal's driver cone (what the log names), and — if
        // the window exposed differing bits — to statements writing those
        // bits.
        let module = &file.modules[top_ix];
        let mut sites: Vec<AssignRef> = Vec::new();
        mage_verilog::visit::for_each_assignment(module, |site, _, _| sites.push(site));
        // Edge-flip bugs live on always items; include them as sites too.
        let always_items: Vec<usize> = module
            .items
            .iter()
            .enumerate()
            .filter(|(_, it)| matches!(it, Item::Always { .. }))
            .map(|(i, _)| i)
            .collect();

        let localized = rng.gen::<f64>() < locate_prob;
        if localized {
            if let Some(signal) = &feedback.signal {
                let cone = analysis::driving_statements(&file, module, signal);
                let filtered: Vec<AssignRef> =
                    sites.iter().filter(|s| cone.contains(s)).cloned().collect();
                if !filtered.is_empty() {
                    sites = filtered;
                }
                // Bit-level narrowing from the checkpoint window.
                if !feedback.differing_bits.is_empty() {
                    let bitwise: Vec<AssignRef> = sites
                        .iter()
                        .filter(|s| assign_writes_bits(module, s, &feedback.differing_bits))
                        .cloned()
                        .collect();
                    if !bitwise.is_empty() {
                        sites = bitwise;
                    }
                }
            }
        }
        if sites.is_empty() && always_items.is_empty() {
            return unchanged(req.candidate_source);
        }

        // The fix: align the chosen site with the golden module. When the
        // site was never mutated this is a no-op — which is exactly how
        // an unlucky (non-localized) debug trial fails to help.
        let golden_top = oracle.top_module().clone();
        let understood = self.comprehends(req.problem_id, oracle.difficulty, interference);
        let wrong_fix = !understood || rng.gen::<f64>() < wrong_fix_prob;
        let module = &mut file.modules[top_ix];
        if wrong_fix {
            // Misguided "fix": mutate a random site (Fig. 3's failure).
            let muts = enumerate_mutations(module);
            if !muts.is_empty() {
                let m: &Mutation = &muts[rng.gen_range(0..muts.len())];
                apply_mutation(module, m);
            }
        } else {
            // Pick a repair site. Checkpoint feedback lets the agent
            // *verify* a hypothesis against the failing vector, so a
            // clean (no-op) site is discarded and another tried — a
            // pass-rate summary permits exactly one blind attempt.
            let attempts = if feedback.has_checkpoints { 3 } else { 1 };
            let mut repaired = false;
            for _ in 0..attempts {
                if !sites.is_empty() {
                    let ix = rng.gen_range(0..sites.len());
                    let site = sites.remove(ix);
                    if revert_site_to_golden(module, &golden_top, &site) {
                        repaired = true;
                        break;
                    }
                } else if !always_items.is_empty() {
                    let ix = always_items[rng.gen_range(0..always_items.len())];
                    if revert_always_sensitivity(module, &golden_top, ix) {
                        repaired = true;
                        break;
                    }
                    break;
                } else {
                    break;
                }
            }
            // Even a correctly-localized fix can be rewritten wrong.
            if repaired && rng.gen::<f64>() > self.config.repair_skill {
                let muts = enumerate_mutations(module);
                if !muts.is_empty() {
                    let m: &Mutation = &muts[rng.gen_range(0..muts.len())];
                    apply_mutation(module, m);
                }
            }
        }
        let text = print_file(&file);
        ModelOutput {
            usage: Self::usage_for(&prompt, &text),
            value: text,
        }
    }

    fn fix_syntax(&mut self, req: &SyntaxFixRequest<'_>) -> ModelOutput<String> {
        let prompt = req.render_prompt();
        let key = fnv1a(req.candidate_source.as_bytes());
        let mut rng = self.call_rng(&prompt, req.conversation, req.params.temperature);
        let value = match self.syntax_memory.get(&key) {
            Some(clean) if rng.gen::<f64>() < self.config.syntax_fix_success => clean.clone(),
            _ => {
                // Last-ditch "fix": try appending endmodule, else return
                // the source unchanged (the repair loop will retry).
                let patched = format!("{}\nendmodule\n", req.candidate_source);
                if mage_verilog::parse(&patched).is_ok() {
                    patched
                } else {
                    req.candidate_source.to_string()
                }
            }
        };
        ModelOutput {
            usage: Self::usage_for(&prompt, &value),
            value,
        }
    }
}

/// Does the assignment at `site` write any of `bits` of its target (via a
/// constant bit-select lvalue)? Whole-signal writes match every bit.
fn assign_writes_bits(module: &Module, site: &AssignRef, bits: &[usize]) -> bool {
    let lv: Option<&LValue> = match site {
        AssignRef::Item(i) => match module.items.get(*i) {
            Some(Item::Assign { lhs, .. }) => Some(lhs),
            _ => None,
        },
        AssignRef::Stmt(path) => match mage_verilog::visit::stmt_at(module, path) {
            Some(Stmt::Blocking { lhs, .. }) | Some(Stmt::NonBlocking { lhs, .. }) => Some(lhs),
            _ => None,
        },
    };
    match lv {
        Some(LValue::Bit(_, mage_verilog::ast::Expr::Literal { value, .. })) => value
            .to_u64()
            .map(|v| bits.contains(&(v as usize)))
            .unwrap_or(true),
        _ => true,
    }
}

/// Replace the assignment at `site` in `module` with the structurally
/// aligned assignment of `golden`. Returns `true` when the replacement
/// changed anything.
fn revert_site_to_golden(module: &mut Module, golden: &Module, site: &AssignRef) -> bool {
    match site {
        AssignRef::Item(i) => {
            let (Some(Item::Assign { lhs, rhs }), Some(Item::Assign { lhs: gl, rhs: gr })) = (
                module.items.get(*i).cloned().map(Some).unwrap_or(None),
                golden.items.get(*i),
            ) else {
                return false;
            };
            let changed = &lhs != gl || &rhs != gr;
            module.items[*i] = Item::Assign {
                lhs: gl.clone(),
                rhs: gr.clone(),
            };
            changed
        }
        AssignRef::Stmt(path) => {
            let Some(gstmt) = mage_verilog::visit::stmt_at(golden, path).cloned() else {
                return false;
            };
            let Some(stmt) = mage_verilog::visit::stmt_at_mut(module, path) else {
                return false;
            };
            let changed = *stmt != gstmt;
            *stmt = gstmt;
            changed
        }
    }
}

/// Copy the golden sensitivity list onto the always item at `ix`.
fn revert_always_sensitivity(module: &mut Module, golden: &Module, ix: usize) -> bool {
    let (Some(Item::Always { sens, .. }), Some(Item::Always { sens: gsens, .. })) =
        (module.items.get_mut(ix), golden.items.get(ix))
    else {
        return false;
    };
    let changed = sens != gsens;
    *sens = gsens.clone();
    changed
}

/// Corrupt a testbench so the golden design no longer passes it: flip a
/// low bit of the expected value on one to three random checks.
fn corrupt_testbench<R: Rng>(tb: &mut Testbench, rng: &mut R) {
    let total = tb.total_checks();
    if total == 0 {
        return;
    }
    let n = rng.gen_range(1..=3usize.min(total));
    // Distinct targets: flipping the same check twice would silently
    // restore it and leave the bench uncorrupted.
    let mut targets: Vec<usize> = Vec::with_capacity(n);
    while targets.len() < n {
        let t = rng.gen_range(0..total);
        if !targets.contains(&t) {
            targets.push(t);
        }
    }
    for target in targets {
        let mut seen = 0usize;
        'outer: for step in &mut tb.steps {
            for check in &mut step.checks {
                if seen == target {
                    flip_check(check);
                    break 'outer;
                }
                seen += 1;
            }
        }
    }
}

fn flip_check(check: &mut Check) {
    let bit = check.expected.bit(0);
    check.expected.set_bit(0, bit.not());
}

/// Expose for tests: corrupt a bench deterministically.
#[doc(hidden)]
pub fn corrupt_testbench_for_test(tb: &mut Testbench, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    corrupt_testbench(tb, &mut rng);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_oracle(difficulty: f64) -> ProblemOracle {
        let golden = parse(
            "module top(input a, input b, output y);
               assign y = a ^ b;
             endmodule",
        )
        .unwrap();
        let stim = Stimulus::exhaustive(&[("a".into(), 1), ("b".into(), 1)]);
        ProblemOracle::new(golden, "top", stim, difficulty)
    }

    fn model_with(difficulty: f64, seed: u64) -> SyntheticModel {
        let mut m = SyntheticModel::new(SyntheticModelConfig::default(), seed);
        m.register("p1", xor_oracle(difficulty));
        m
    }

    #[test]
    fn zero_difficulty_is_always_golden() {
        let mut m = model_with(0.0, 1);
        // Disable syntax noise for this check.
        m.config.syntax_error_rate = 0.0;
        let conv = Conversation::new();
        for _ in 0..20 {
            let out = m.generate_rtl(&RtlGenRequest {
                problem_id: "p1",
                spec_text: "xor",
                testbench_digest: None,
                params: SamplingParams::high(),
                conversation: &conv,
            });
            let file = parse(&out.value).expect("clean syntax");
            assert_eq!(file, m.oracle("p1").unwrap().golden);
        }
    }

    #[test]
    fn low_temperature_is_prompt_deterministic() {
        let mut m = model_with(2.0, 9);
        let conv = Conversation::new();
        let req = RtlGenRequest {
            problem_id: "p1",
            spec_text: "xor",
            testbench_digest: None,
            params: SamplingParams::low(),
            conversation: &conv,
        };
        let a = m.generate_rtl(&req).value;
        let b = m.generate_rtl(&req).value;
        assert_eq!(a, b, "greedy decoding repeats per prompt");
    }

    #[test]
    fn high_temperature_diversifies() {
        let mut m = model_with(2.0, 9);
        m.config.syntax_error_rate = 0.0;
        let conv = Conversation::new();
        let req = RtlGenRequest {
            problem_id: "p1",
            spec_text: "xor",
            testbench_digest: None,
            params: SamplingParams::high(),
            conversation: &conv,
        };
        let outputs: std::collections::HashSet<String> =
            (0..30).map(|_| m.generate_rtl(&req).value).collect();
        assert!(
            outputs.len() > 3,
            "expected diverse outputs, got {}",
            outputs.len()
        );
    }

    #[test]
    fn interference_raises_rate() {
        let m = model_with(1.0, 1);
        let clean = Conversation::new();
        let mut mixed = Conversation::new();
        mixed.push(Role::User, TaskKind::GenerateRtl, "x".repeat(4000));
        mixed.push(Role::User, TaskKind::GenerateTestbench, "y".repeat(4000));
        mixed.push(Role::User, TaskKind::DebugRtl, "z".repeat(4000));
        assert!(m.interference(&mixed) > m.interference(&clean));
        assert_eq!(m.interference(&clean), 1.0);
    }

    #[test]
    fn grounding_lowers_rate() {
        let m = model_with(1.0, 1);
        let conv = Conversation::new();
        let ungrounded = m.effective_rate(1.0, false, &conv);
        let grounded = m.effective_rate(1.0, true, &conv);
        assert!(grounded < ungrounded);
    }

    #[test]
    fn testbench_generation_usually_correct() {
        let mut m = model_with(1.0, 6);
        let conv = Conversation::new();
        let mut correct = 0;
        for i in 0..40 {
            let out = m.generate_testbench(&TbGenRequest {
                problem_id: "p1",
                spec_text: "xor",
                retry: (i % 2) as usize,
                params: SamplingParams::high(),
                conversation: &conv,
            });
            let golden = &m.oracle("p1").unwrap().golden_design;
            if run_testbench(&out.value, golden)
                .map(|r| r.passed())
                .unwrap_or(false)
            {
                correct += 1;
            }
        }
        assert!(
            correct >= 30,
            "most benches should be correct, got {correct}/40"
        );
        assert!(correct < 40, "some benches should be corrupted");
    }

    #[test]
    fn judge_mostly_detects_corruption() {
        let mut m = model_with(1.0, 5);
        let conv = Conversation::new();
        let oracle = m.oracle("p1").unwrap().clone();
        let good = synthesize_testbench(
            "t",
            &oracle.golden_design,
            &oracle.stimulus,
            CheckDensity::EveryStep,
        );
        let mut bad = good.clone();
        corrupt_testbench_for_test(&mut bad, 11);
        let mut good_votes = 0;
        let mut bad_votes = 0;
        for _ in 0..30 {
            let g = m.judge_testbench(&JudgeTbRequest {
                problem_id: "p1",
                spec_text: "xor",
                testbench: &good,
                evidence: "",
                params: SamplingParams::high(),
                conversation: &conv,
            });
            let b = m.judge_testbench(&JudgeTbRequest {
                problem_id: "p1",
                spec_text: "xor",
                testbench: &bad,
                evidence: "",
                params: SamplingParams::high(),
                conversation: &conv,
            });
            good_votes += g.value as usize;
            bad_votes += b.value as usize;
        }
        assert!(
            good_votes >= 24,
            "good bench judged correct: {good_votes}/30"
        );
        assert!(bad_votes <= 6, "bad bench judged correct: {bad_votes}/30");
    }

    #[test]
    fn feedback_parsing_extracts_signal_and_bits() {
        let text = "First mismatch at time 50:\nInputs: c=1, d=1\n\
                    Got mux_in=1000 (8), Expected mux_in=1001 (9).\n\
                    State checkpoints in window (L_W = 5):\n";
        let f = parse_feedback(text);
        assert_eq!(f.signal.as_deref(), Some("mux_in"));
        assert_eq!(f.differing_bits, vec![0]);
        assert!(f.has_checkpoints);

        let summary = "Output 'mux_in' has 11 mismatches. First mismatch occurred at time 50.";
        let f2 = parse_feedback(summary);
        assert_eq!(f2.signal.as_deref(), Some("mux_in"));
        assert!(f2.differing_bits.is_empty());
        assert!(!f2.has_checkpoints);
    }

    #[test]
    fn syntax_corruption_and_repair_cycle() {
        let mut m = model_with(1.0, 2);
        m.config.syntax_error_rate = 1.0; // always corrupt
        let conv = Conversation::new();
        let out = m.generate_rtl(&RtlGenRequest {
            problem_id: "p1",
            spec_text: "xor",
            testbench_digest: None,
            params: SamplingParams::high(),
            conversation: &conv,
        });
        assert!(
            mage_verilog::parse(&out.value).is_err(),
            "must be corrupted"
        );
        // Repair loop (s = 5).
        let mut src = out.value;
        let mut fixed = false;
        for _ in 0..5 {
            let err = match mage_verilog::parse(&src) {
                Ok(_) => {
                    fixed = true;
                    break;
                }
                Err(e) => e.to_string(),
            };
            src = m
                .fix_syntax(&SyntaxFixRequest {
                    problem_id: "p1",
                    candidate_source: &src,
                    error_text: &err,
                    params: SamplingParams::high(),
                    conversation: &conv,
                })
                .value;
        }
        if !fixed {
            fixed = mage_verilog::parse(&src).is_ok();
        }
        assert!(fixed, "syntax repair loop should converge");
    }
}
