//! Deterministic, seeded fault plans for the synthetic transport.
//!
//! A [`FaultPlan`] scripts what the network between the engine and a
//! model backend does to each call: nothing, a transient error, a
//! timeout, a rate limit with a retry-after, a garbled (corrupted in
//! transit) reply, or a hard backend-down. Every failure scenario is
//! replayable in CI without a network, and — the load-bearing property —
//! **the plan is a pure function of `(seed, request key, attempt)`**:
//!
//! * It holds no mutable state, so consulting it from differently
//!   ordered batches (BSP rounds vs overlapped waves, 1 vs 8 workers)
//!   yields the same per-request outcome sequence.
//! * It is keyed by the request (a hash of the rendered prompt, salted
//!   by the job) and the attempt number — never by backend identity,
//!   health scores, or global call order, so retry schedules are
//!   bit-identical across scheduler modes.
//! * Backend-down comes in two flavours: a *drawn* [`FaultKind::BackendDown`]
//!   (a per-call blip, backend-independent like every other draw) and
//!   the *scripted* [`FaultSpec::dead_backends`] set (a static outage
//!   the dispatcher routes around, or drains against when total).
//!
//! A faulted call never reaches the model: the synthetic transport
//! resolves a request against its backend exactly once, at the final
//! successful attempt — so a stateful per-job model's completion stream
//! advances identically with or without an absorbable fault plan, and
//! solve traces stay bit-identical to the fault-free run.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One scripted call outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// A retryable transport error (connection reset, 5xx, ...).
    Transient,
    /// The call exceeded the channel's timeout.
    Timeout,
    /// The backend shed load; retry after the advertised delay.
    RateLimited {
        /// Server-advertised wait before retrying, virtual ms.
        retry_after_ms: u64,
    },
    /// The reply arrived corrupted in transit (dropped before the
    /// model's output is observed — the model is never consulted).
    Garbled,
    /// The backend refused the connection for this call.
    BackendDown,
}

/// Fault probabilities and channel timings — the shape of a plan,
/// independent of its seed.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSpec {
    /// Probability of [`FaultKind::Transient`] per attempt.
    pub transient: f64,
    /// Probability of [`FaultKind::Timeout`] per attempt.
    pub timeout: f64,
    /// Probability of [`FaultKind::RateLimited`] per attempt.
    pub rate_limit: f64,
    /// Probability of [`FaultKind::Garbled`] per attempt.
    pub garbled: f64,
    /// Probability of a drawn [`FaultKind::BackendDown`] per attempt.
    pub backend_down: f64,
    /// Retry-after advertised by rate limits, virtual ms.
    pub retry_after_ms: u64,
    /// Successful-call latency range `[lo, hi]`, virtual ms.
    pub latency_ms: (u64, u64),
    /// Latency charged by a timeout, virtual ms.
    pub timeout_ms: u64,
    /// Statically dead backends (scripted outage): the transport
    /// reports them unreachable for the whole run.
    pub dead_backends: Vec<usize>,
}

impl FaultSpec {
    /// No faults at all (the identity channel).
    pub fn none() -> Self {
        FaultSpec {
            transient: 0.0,
            timeout: 0.0,
            rate_limit: 0.0,
            garbled: 0.0,
            backend_down: 0.0,
            retry_after_ms: 0,
            latency_ms: (50, 50),
            timeout_ms: 0,
            dead_backends: Vec::new(),
        }
    }

    /// The canonical CI mix: every fault kind occurs, every one is
    /// absorbable by the default retry policy (no dead backends, low
    /// enough rates that bounded retries recover), so a canonical-plan
    /// run produces traces identical to the fault-free run while
    /// exercising every resilience path.
    pub fn canonical() -> Self {
        FaultSpec {
            transient: 0.10,
            timeout: 0.03,
            rate_limit: 0.06,
            garbled: 0.03,
            backend_down: 0.02,
            retry_after_ms: 120,
            latency_ms: (40, 90),
            timeout_ms: 400,
            dead_backends: Vec::new(),
        }
    }

    /// Only transient errors, at a rate retries trivially absorb.
    pub fn single_transient() -> Self {
        FaultSpec {
            transient: 0.25,
            ..FaultSpec::none()
        }
    }

    /// A rate-limit burst: half of all calls are shed.
    pub fn burst_rate_limit() -> Self {
        FaultSpec {
            rate_limit: 0.5,
            retry_after_ms: 200,
            ..FaultSpec::none()
        }
    }

    /// Backend 0 is hard-down; a light canonical mix rides along.
    pub fn one_backend_dead() -> Self {
        FaultSpec {
            transient: 0.05,
            dead_backends: vec![0],
            ..FaultSpec::none()
        }
    }

    /// Every backend of an `n`-backend pool is hard-down — the graceful
    /// drain scenario.
    pub fn all_dead(n: usize) -> Self {
        FaultSpec {
            dead_backends: (0..n).collect(),
            ..FaultSpec::none()
        }
    }

    /// Heavy timeouts with a punishing per-timeout latency — pair with
    /// a per-job deadline to exercise stuck-work cancellation.
    pub fn mid_wave_timeout() -> Self {
        FaultSpec {
            timeout: 0.45,
            timeout_ms: 5_000,
            ..FaultSpec::none()
        }
    }

    fn fault_mass(&self) -> f64 {
        self.transient + self.timeout + self.rate_limit + self.garbled + self.backend_down
    }
}

/// A seeded fault plan: [`FaultSpec`] probabilities realized through a
/// per-`(seed, key, attempt)` RNG. Stateless — see the module docs for
/// why that is the determinism keystone.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Plan seed (same seed + same spec ⇒ same outcome for every
    /// `(key, attempt)`).
    pub seed: u64,
    /// Fault probabilities and timings.
    pub spec: FaultSpec,
}

/// Draw-domain separators so the outcome, latency, hedge and jitter
/// streams of one `(key, attempt)` are independent.
const SALT_DECIDE: u64 = 0xD5C1_DE00;
const SALT_LATENCY: u64 = 0x1A7E_0C11;
const SALT_HEDGE: u64 = 0x4ED6_ED01;

/// SplitMix64-style finalizer over the combined draw coordinates.
fn mix(seed: u64, key: u64, attempt: u32, salt: u64) -> u64 {
    let mut z = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(key.rotate_left(17))
        .wrapping_add((attempt as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9))
        .wrapping_add(salt);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl FaultPlan {
    /// The empty plan: no faults, fixed latency. [`FaultPlan::is_empty`]
    /// holds, so wrappers take their zero-overhead passthrough path.
    pub fn none() -> Self {
        FaultPlan {
            seed: 0,
            spec: FaultSpec::none(),
        }
    }

    /// A seeded plan over a spec.
    pub fn new(seed: u64, spec: FaultSpec) -> Self {
        FaultPlan { seed, spec }
    }

    /// The canonical CI plan at its conventional seed.
    pub fn canonical() -> Self {
        FaultPlan::new(0xFA17, FaultSpec::canonical())
    }

    /// `true` when the plan can never produce a fault (wrappers then
    /// behave byte-identically to no wrapper at all).
    pub fn is_empty(&self) -> bool {
        self.spec.fault_mass() == 0.0 && self.spec.dead_backends.is_empty()
    }

    /// Is `backend` scripted dead for the whole run?
    pub fn dead(&self, backend: usize) -> bool {
        self.spec.dead_backends.contains(&backend)
    }

    /// The scripted fault of `(key, attempt)`, or `None` for a clean
    /// call. Pure: same plan, same arguments, same answer — regardless
    /// of which backend serves, in which batch, on which scheduler.
    pub fn decide(&self, key: u64, attempt: u32) -> Option<FaultKind> {
        if self.spec.fault_mass() == 0.0 {
            return None;
        }
        let mut rng = StdRng::seed_from_u64(mix(self.seed, key, attempt, SALT_DECIDE));
        let draw: f64 = rng.gen();
        let s = &self.spec;
        let mut edge = s.transient;
        if draw < edge {
            return Some(FaultKind::Transient);
        }
        edge += s.timeout;
        if draw < edge {
            return Some(FaultKind::Timeout);
        }
        edge += s.rate_limit;
        if draw < edge {
            return Some(FaultKind::RateLimited {
                retry_after_ms: s.retry_after_ms,
            });
        }
        edge += s.garbled;
        if draw < edge {
            return Some(FaultKind::Garbled);
        }
        edge += s.backend_down;
        if draw < edge {
            return Some(FaultKind::BackendDown);
        }
        None
    }

    /// Virtual latency of `(key, attempt)`, drawn uniformly from the
    /// spec's range. Backend-independent by construction.
    pub fn latency_ms(&self, key: u64, attempt: u32) -> u64 {
        let (lo, hi) = self.spec.latency_ms;
        if lo >= hi {
            return lo;
        }
        let mut rng = StdRng::seed_from_u64(mix(self.seed, key, attempt, SALT_LATENCY));
        rng.gen_range(lo..=hi)
    }

    /// Virtual latency of a *hedged duplicate* of `(key, attempt)` — an
    /// independent draw from the same range, and deliberately not a
    /// function of the hedging backend (so hedge schedules stay
    /// identical however health routing evolved).
    pub fn hedge_latency_ms(&self, key: u64, attempt: u32) -> u64 {
        let (lo, hi) = self.spec.latency_ms;
        if lo >= hi {
            return lo;
        }
        let mut rng = StdRng::seed_from_u64(mix(self.seed, key, attempt, SALT_HEDGE));
        rng.gen_range(lo..=hi)
    }

    /// Parse a `--fault-plan` flag / `MAGE_FAULT_PLAN` value.
    ///
    /// Accepted forms: a bare spec name (`canonical`, conventional
    /// seed) or `<seed>:<spec>` with the seed in decimal or `0x` hex.
    /// Spec names: `none`, `canonical`, `single-transient`,
    /// `burst-rate-limit`, `one-backend-dead`, `all-dead` (three dead
    /// backends), `mid-wave-timeout`.
    pub fn parse(s: &str) -> Result<FaultPlan, String> {
        let (seed, name) = match s.split_once(':') {
            Some((seed, name)) => {
                let seed = if let Some(hex) = seed.strip_prefix("0x") {
                    u64::from_str_radix(hex, 16)
                } else {
                    seed.parse()
                }
                .map_err(|_| format!("bad fault-plan seed `{seed}`"))?;
                (seed, name)
            }
            None => (0xFA17, s),
        };
        let spec = match name {
            "none" => FaultSpec::none(),
            "canonical" => FaultSpec::canonical(),
            "single-transient" => FaultSpec::single_transient(),
            "burst-rate-limit" => FaultSpec::burst_rate_limit(),
            "one-backend-dead" => FaultSpec::one_backend_dead(),
            "all-dead" => FaultSpec::all_dead(3),
            "mid-wave-timeout" => FaultSpec::mid_wave_timeout(),
            other => return Err(format!("unknown fault-plan spec `{other}`")),
        };
        Ok(FaultPlan::new(seed, spec))
    }

    /// The plan named by the `MAGE_FAULT_PLAN` environment variable, or
    /// the empty plan when unset/empty. Panics on an unparseable value
    /// (a misspelled CI hook should fail loudly, not silently run
    /// fault-free).
    pub fn from_env() -> FaultPlan {
        match std::env::var("MAGE_FAULT_PLAN") {
            Ok(v) if !v.is_empty() => {
                FaultPlan::parse(&v).unwrap_or_else(|e| panic!("MAGE_FAULT_PLAN: {e}"))
            }
            _ => FaultPlan::none(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decide_is_pure_and_seed_sensitive() {
        let plan = FaultPlan::canonical();
        for key in [1u64, 0xDEAD_BEEF, u64::MAX] {
            for attempt in 0..8 {
                assert_eq!(plan.decide(key, attempt), plan.decide(key, attempt));
                assert_eq!(plan.latency_ms(key, attempt), plan.latency_ms(key, attempt));
            }
        }
        let other = FaultPlan::new(0xFA18, FaultSpec::canonical());
        let differs = (0..256u64).any(|k| plan.decide(k, 0) != other.decide(k, 0));
        assert!(differs, "seed must steer the outcome stream");
    }

    #[test]
    fn empty_plan_never_faults() {
        let plan = FaultPlan::none();
        assert!(plan.is_empty());
        for key in 0..64u64 {
            assert_eq!(plan.decide(key, 0), None);
        }
        assert!(!FaultPlan::canonical().is_empty());
        assert!(!FaultPlan::new(1, FaultSpec::all_dead(2)).is_empty());
    }

    #[test]
    fn canonical_rates_are_roughly_calibrated() {
        let plan = FaultPlan::canonical();
        let n = 4000u64;
        let faults = (0..n).filter(|&k| plan.decide(k, 0).is_some()).count();
        let rate = faults as f64 / n as f64;
        // Spec mass is 0.24; allow generous sampling slack.
        assert!((0.18..0.30).contains(&rate), "fault rate {rate}");
    }

    #[test]
    fn latency_respects_range_and_hedge_is_independent() {
        let plan = FaultPlan::canonical();
        let (lo, hi) = plan.spec.latency_ms;
        let mut hedge_differs = false;
        for key in 0..512u64 {
            let l = plan.latency_ms(key, 0);
            let h = plan.hedge_latency_ms(key, 0);
            assert!((lo..=hi).contains(&l));
            assert!((lo..=hi).contains(&h));
            hedge_differs |= l != h;
        }
        assert!(hedge_differs, "hedge draws must be a separate stream");
    }

    #[test]
    fn dead_backends_are_scripted_statically() {
        let plan = FaultPlan::new(7, FaultSpec::one_backend_dead());
        assert!(plan.dead(0));
        assert!(!plan.dead(1));
        let drain = FaultPlan::new(7, FaultSpec::all_dead(3));
        assert!((0..3).all(|b| drain.dead(b)));
        assert!(!drain.dead(3));
    }

    #[test]
    fn parse_round_trips_names_and_seeds() {
        assert_eq!(
            FaultPlan::parse("canonical").unwrap(),
            FaultPlan::canonical()
        );
        let p = FaultPlan::parse("0xBEEF:single-transient").unwrap();
        assert_eq!(p.seed, 0xBEEF);
        assert_eq!(p.spec, FaultSpec::single_transient());
        let q = FaultPlan::parse("42:burst-rate-limit").unwrap();
        assert_eq!(q.seed, 42);
        assert!(FaultPlan::parse("nope").is_err());
        assert!(FaultPlan::parse("xyz:canonical").is_err());
    }
}
