//! The semantic mutation engine: the error vocabulary of the synthetic
//! channel.
//!
//! Each [`MutationKind`] models a bug class that LLM-generated RTL
//! exhibits in practice (and that VerilogEval failures show): swapped
//! operators, dropped OR-terms (the paper's Fig. 3 case), inverted
//! conditions, off-by-one selects, blocking/non-blocking confusion,
//! wrong clock edges, and perturbed constants. Mutations are *semantic*:
//! the result still parses, so a candidate's failure shows up in
//! simulation rather than in the compiler.

use mage_logic::LogicVec;
use mage_verilog::ast::*;
use mage_verilog::visit::{
    expr_at, expr_at_mut, for_each_stmt, for_each_subexpr, stmt_at, stmt_at_mut, stmt_top_exprs,
    stmt_top_exprs_mut, ExprPath, StmtPath,
};
use rand::seq::SliceRandom;
use rand::Rng;
use std::collections::BTreeMap;

/// The owner of a mutable expression slot.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum SiteOwner {
    /// An `assign` item (slot 0 is the RHS).
    Item(usize),
    /// A statement (slots per [`stmt_top_exprs`]).
    Stmt(StmtPath),
}

/// Where a mutation applies.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum MutationSite {
    /// A sub-expression: owner, top-expression slot, path within it.
    Expr {
        /// Item or statement owning the expression.
        owner: SiteOwner,
        /// Index into the owner's top expressions.
        slot: usize,
        /// Path to the node inside the slot expression.
        path: ExprPath,
    },
    /// A whole statement (blocking/non-blocking swap).
    Stmt(StmtPath),
    /// A module item (sensitivity edge flip on an `always`).
    Item(usize),
}

/// The bug classes the channel can inject.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MutationKind {
    /// Swap a binary operator for its classic confusion partner.
    OperatorSwap(BinaryOp),
    /// Wrap an expression in `~` (or unwrap an existing `~`).
    ToggleNot,
    /// Drop one side of an `|`/`&`/`^` chain (keeps the other side).
    DropTerm {
        /// `true` keeps the left operand, dropping the right.
        keep_lhs: bool,
    },
    /// Flip one bit of a literal.
    ConstFlip {
        /// Which bit to flip.
        bit: usize,
    },
    /// Replace an identifier with another same-width signal.
    SignalSwap(String),
    /// Shift a bit-select / part-select index by ±1 (kept in range).
    IndexShift {
        /// +1 or −1.
        delta: i64,
    },
    /// Swap the arms of a ternary.
    TernarySwap,
    /// Swap blocking ↔ non-blocking assignment.
    BlockingSwap,
    /// Flip a `posedge` ↔ `negedge` in the sensitivity list.
    EdgeFlip {
        /// Which event in the list.
        event: usize,
    },
}

/// A fully-specified, applicable mutation.
#[derive(Debug, Clone, PartialEq)]
pub struct Mutation {
    /// Where.
    pub site: MutationSite,
    /// What.
    pub kind: MutationKind,
}

impl Mutation {
    /// Human-readable description for logs.
    pub fn describe(&self) -> String {
        format!("{:?} at {:?}", self.kind, self.site)
    }
}

/// Widths of declared signals (needs constant-foldable ranges, which the
/// benchmark golden modules guarantee).
fn signal_widths(m: &Module) -> BTreeMap<String, usize> {
    let mut consts: std::collections::HashMap<String, LogicVec> = std::collections::HashMap::new();
    for p in &m.params {
        if let Some(v) = mage_sim::fold_const_expr(&p.default, &consts) {
            consts.insert(p.name.clone(), v);
        }
    }
    let range_width = |r: &Option<Range>| -> Option<usize> {
        match r {
            None => Some(1),
            Some(r) => {
                let msb = mage_sim::fold_const_expr(&r.msb, &consts)?.to_u64()?;
                let lsb = mage_sim::fold_const_expr(&r.lsb, &consts)?.to_u64()?;
                (msb >= lsb).then(|| (msb - lsb + 1) as usize)
            }
        }
    };
    let mut out = BTreeMap::new();
    for p in &m.ports {
        if let Some(w) = range_width(&p.range) {
            out.insert(p.name.clone(), w);
        }
    }
    for item in &m.items {
        if let Item::Net { range, names, .. } = item {
            if let Some(w) = range_width(range) {
                for n in names {
                    out.insert(n.clone(), w);
                }
            }
        }
    }
    out
}

/// Enumerate every applicable mutation of `module`.
///
/// The list is deterministic for a given module, so sampling from it with
/// a seeded RNG is reproducible.
pub fn enumerate_mutations(module: &Module) -> Vec<Mutation> {
    let widths = signal_widths(module);
    let inputs: Vec<&str> = module
        .ports
        .iter()
        .filter(|p| p.dir == Direction::Input)
        .map(|p| p.name.as_str())
        .collect();
    let mut out = Vec::new();

    // Expression sites in assign items.
    for (i, item) in module.items.iter().enumerate() {
        if let Item::Assign { rhs, .. } = item {
            collect_expr_mutations(rhs, &SiteOwner::Item(i), 0, &widths, &inputs, &mut out);
        }
        if let Item::Always {
            sens: Sensitivity::Edges(events),
            ..
        } = item
        {
            for (e, _) in events.iter().enumerate() {
                out.push(Mutation {
                    site: MutationSite::Item(i),
                    kind: MutationKind::EdgeFlip { event: e },
                });
            }
        }
    }

    // Statement sites.
    for_each_stmt(module, |path, stmt| {
        match stmt {
            Stmt::Blocking { .. } | Stmt::NonBlocking { .. } => {
                out.push(Mutation {
                    site: MutationSite::Stmt(path.clone()),
                    kind: MutationKind::BlockingSwap,
                });
            }
            _ => {}
        }
        for (slot, top) in stmt_top_exprs(stmt).into_iter().enumerate() {
            collect_expr_mutations(
                top,
                &SiteOwner::Stmt(path.clone()),
                slot,
                &widths,
                &inputs,
                &mut out,
            );
        }
    });
    out
}

fn collect_expr_mutations(
    root: &Expr,
    owner: &SiteOwner,
    slot: usize,
    widths: &BTreeMap<String, usize>,
    inputs: &[&str],
    out: &mut Vec<Mutation>,
) {
    for_each_subexpr(root, |path, e| {
        let site = || MutationSite::Expr {
            owner: owner.clone(),
            slot,
            path: path.clone(),
        };
        match e {
            Expr::Binary { op, .. } => {
                if let Some(partner) = swap_partner(*op) {
                    out.push(Mutation {
                        site: site(),
                        kind: MutationKind::OperatorSwap(partner),
                    });
                }
                if matches!(op, BinaryOp::Or | BinaryOp::And | BinaryOp::Xor) {
                    out.push(Mutation {
                        site: site(),
                        kind: MutationKind::DropTerm { keep_lhs: true },
                    });
                    out.push(Mutation {
                        site: site(),
                        kind: MutationKind::DropTerm { keep_lhs: false },
                    });
                }
            }
            Expr::Unary {
                op: UnaryOp::Not, ..
            } => out.push(Mutation {
                site: site(),
                kind: MutationKind::ToggleNot,
            }),
            Expr::Ident(name) => {
                out.push(Mutation {
                    site: site(),
                    kind: MutationKind::ToggleNot,
                });
                // Same-width partner swap (prefer inputs: the classic
                // "read the wrong signal" bug).
                if let Some(w) = widths.get(name) {
                    for (other, ow) in widths {
                        if other != name && ow == w && inputs.contains(&other.as_str()) {
                            out.push(Mutation {
                                site: site(),
                                kind: MutationKind::SignalSwap(other.clone()),
                            });
                        }
                    }
                }
            }
            Expr::Literal { value, .. } if value.width() <= 8 => {
                for bit in 0..value.width() {
                    out.push(Mutation {
                        site: site(),
                        kind: MutationKind::ConstFlip { bit },
                    });
                }
            }
            Expr::Literal { .. } => {}
            Expr::Ternary { .. } => out.push(Mutation {
                site: site(),
                kind: MutationKind::TernarySwap,
            }),
            Expr::Bit { base, index } => {
                // Only shift constant indices, and keep them in range.
                if let Expr::Literal { value, .. } = &**index {
                    if let (Some(idx), Some(w)) = (value.to_u64(), widths.get(base)) {
                        if idx + 1 < *w as u64 {
                            out.push(Mutation {
                                site: site(),
                                kind: MutationKind::IndexShift { delta: 1 },
                            });
                        }
                        if idx > 0 {
                            out.push(Mutation {
                                site: site(),
                                kind: MutationKind::IndexShift { delta: -1 },
                            });
                        }
                    }
                }
            }
            _ => {}
        }
    });
}

/// The classic confusion partner for a binary operator.
fn swap_partner(op: BinaryOp) -> Option<BinaryOp> {
    use BinaryOp::*;
    Some(match op {
        And => Or,
        Or => And,
        Xor => Xnor,
        Xnor => Xor,
        Add => Sub,
        Sub => Add,
        Eq => Neq,
        Neq => Eq,
        Lt => Le,
        Le => Lt,
        Gt => Ge,
        Ge => Gt,
        Shl => Shr,
        Shr => Shl,
        LogicAnd => LogicOr,
        LogicOr => LogicAnd,
        Mul | Div | Mod | CaseEq | CaseNeq => return None,
    })
}

/// Apply `m` to `module`. Returns `false` (leaving the module untouched)
/// when the site no longer exists — callers sample fresh mutations
/// against the current structure, so this indicates a stale mutation.
pub fn apply_mutation(module: &mut Module, m: &Mutation) -> bool {
    match (&m.site, &m.kind) {
        (MutationSite::Item(i), MutationKind::EdgeFlip { event }) => {
            let Some(Item::Always {
                sens: Sensitivity::Edges(events),
                ..
            }) = module.items.get_mut(*i)
            else {
                return false;
            };
            let Some(ev) = events.get_mut(*event) else {
                return false;
            };
            ev.edge = match ev.edge {
                Edge::Pos => Edge::Neg,
                Edge::Neg => Edge::Pos,
            };
            true
        }
        (MutationSite::Stmt(path), MutationKind::BlockingSwap) => {
            let Some(stmt) = stmt_at_mut(module, path) else {
                return false;
            };
            let swapped = match std::mem::replace(stmt, Stmt::Empty) {
                Stmt::Blocking { lhs, rhs } => Stmt::NonBlocking { lhs, rhs },
                Stmt::NonBlocking { lhs, rhs } => Stmt::Blocking { lhs, rhs },
                other => {
                    *stmt = other;
                    return false;
                }
            };
            *stmt = swapped;
            true
        }
        (MutationSite::Expr { owner, slot, path }, kind) => {
            let Some(target) = expr_slot_mut(module, owner, *slot) else {
                return false;
            };
            let Some(node) = expr_at_mut(target, path) else {
                return false;
            };
            mutate_expr_node(node, kind)
        }
        _ => false,
    }
}

fn expr_slot_mut<'a>(
    module: &'a mut Module,
    owner: &SiteOwner,
    slot: usize,
) -> Option<&'a mut Expr> {
    match owner {
        SiteOwner::Item(i) => match module.items.get_mut(*i) {
            Some(Item::Assign { rhs, .. }) if slot == 0 => Some(rhs),
            _ => None,
        },
        SiteOwner::Stmt(path) => {
            let stmt = stmt_at_mut(module, path)?;
            stmt_top_exprs_mut(stmt).into_iter().nth(slot)
        }
    }
}

/// Read-only access to an expression slot (used by the debugger's
/// site-inspection logic).
pub fn expr_slot<'a>(module: &'a Module, owner: &SiteOwner, slot: usize) -> Option<&'a Expr> {
    match owner {
        SiteOwner::Item(i) => match module.items.get(*i) {
            Some(Item::Assign { rhs, .. }) if slot == 0 => Some(rhs),
            _ => None,
        },
        SiteOwner::Stmt(path) => {
            let stmt = stmt_at(module, path)?;
            stmt_top_exprs(stmt).into_iter().nth(slot)
        }
    }
}

fn mutate_expr_node(node: &mut Expr, kind: &MutationKind) -> bool {
    match kind {
        MutationKind::OperatorSwap(new_op) => {
            if let Expr::Binary { op, .. } = node {
                *op = *new_op;
                true
            } else {
                false
            }
        }
        MutationKind::ToggleNot => {
            let current = std::mem::replace(node, Expr::number(0));
            *node = match current {
                Expr::Unary {
                    op: UnaryOp::Not,
                    operand,
                } => *operand,
                other => Expr::Unary {
                    op: UnaryOp::Not,
                    operand: Box::new(other),
                },
            };
            true
        }
        MutationKind::DropTerm { keep_lhs } => {
            let current = std::mem::replace(node, Expr::number(0));
            match current {
                Expr::Binary { lhs, rhs, .. } => {
                    *node = if *keep_lhs { *lhs } else { *rhs };
                    true
                }
                other => {
                    *node = other;
                    false
                }
            }
        }
        MutationKind::ConstFlip { bit } => {
            if let Expr::Literal { value, .. } = node {
                if *bit < value.width() {
                    let b = value.bit(*bit);
                    value.set_bit(*bit, b.not());
                    return true;
                }
            }
            false
        }
        MutationKind::SignalSwap(other) => {
            if let Expr::Ident(name) = node {
                *name = other.clone();
                true
            } else {
                false
            }
        }
        MutationKind::IndexShift { delta } => {
            if let Expr::Bit { index, .. } = node {
                if let Expr::Literal { value, .. } = &mut **index {
                    if let Some(v) = value.to_u64() {
                        let nv = (v as i64 + delta).max(0) as u64;
                        *value = LogicVec::from_u64(value.width(), nv);
                        return true;
                    }
                }
            }
            false
        }
        MutationKind::TernarySwap => {
            if let Expr::Ternary {
                then_expr,
                else_expr,
                ..
            } = node
            {
                std::mem::swap(then_expr, else_expr);
                true
            } else {
                false
            }
        }
        _ => false,
    }
}

/// Signals written by the statement/item a mutation site lives in, used
/// to relate a bug site to the output cone it can disturb.
pub fn site_written_signals(module: &Module, site: &MutationSite) -> Vec<String> {
    let owner: Option<SiteOwner> = match site {
        MutationSite::Expr { owner, .. } => Some(owner.clone()),
        MutationSite::Stmt(p) => Some(SiteOwner::Stmt(p.clone())),
        MutationSite::Item(i) => Some(SiteOwner::Item(*i)),
    };
    match owner {
        Some(SiteOwner::Item(i)) => match module.items.get(i) {
            Some(Item::Assign { lhs, .. }) => {
                lhs.target_names().iter().map(|s| s.to_string()).collect()
            }
            Some(Item::Always { body, .. }) => {
                // Edge flips affect everything the always block writes.
                let mut out = Vec::new();
                collect_stmt_writes(body, &mut out);
                out
            }
            _ => Vec::new(),
        },
        Some(SiteOwner::Stmt(path)) => match stmt_at(module, &path) {
            Some(Stmt::Blocking { lhs, .. }) | Some(Stmt::NonBlocking { lhs, .. }) => {
                lhs.target_names().iter().map(|s| s.to_string()).collect()
            }
            // Condition/selector sites: every write under the statement.
            Some(other) => {
                let mut out = Vec::new();
                collect_stmt_writes(other, &mut out);
                out
            }
            None => Vec::new(),
        },
        None => Vec::new(),
    }
}

fn collect_stmt_writes(s: &Stmt, out: &mut Vec<String>) {
    match s {
        Stmt::Block(ss) => ss.iter().for_each(|c| collect_stmt_writes(c, out)),
        Stmt::If {
            then_branch,
            else_branch,
            ..
        } => {
            collect_stmt_writes(then_branch, out);
            if let Some(e) = else_branch {
                collect_stmt_writes(e, out);
            }
        }
        Stmt::Case { arms, default, .. } => {
            for a in arms {
                collect_stmt_writes(&a.body, out);
            }
            if let Some(d) = default {
                collect_stmt_writes(d, out);
            }
        }
        Stmt::For { body, .. } => collect_stmt_writes(body, out),
        Stmt::Blocking { lhs, .. } | Stmt::NonBlocking { lhs, .. } => {
            for t in lhs.target_names() {
                if !out.iter().any(|x| x == t) {
                    out.push(t.to_string());
                }
            }
        }
        Stmt::Empty => {}
    }
}

/// Sample `count` distinct mutations from the module's mutation space.
///
/// Returns fewer when the space is smaller than `count`.
pub fn sample_mutations<R: Rng>(module: &Module, count: usize, rng: &mut R) -> Vec<Mutation> {
    let mut all = enumerate_mutations(module);
    all.shuffle(rng);
    all.truncate(count);
    all
}

/// `true` when the mutation site still denotes the same expression shape
/// in `module` (used to validate staleness).
pub fn site_exists(module: &Module, m: &Mutation) -> bool {
    match &m.site {
        MutationSite::Item(i) => matches!(
            module.items.get(*i),
            Some(Item::Always {
                sens: Sensitivity::Edges(_),
                ..
            })
        ),
        MutationSite::Stmt(p) => stmt_at(module, p).is_some(),
        MutationSite::Expr { owner, slot, path } => expr_slot(module, owner, *slot)
            .and_then(|e| expr_at(e, path))
            .is_some(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mage_verilog::parse_module;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn mux_module() -> Module {
        parse_module(
            "module mux(input c, input d, output reg [3:0] mux_in);
               always @(*) begin
                 mux_in[0] = (~c & d) | (c & ~d) | (c & d);
                 mux_in[1] = 1'b0;
                 mux_in[2] = (~c & ~d) | (c & ~d);
                 mux_in[3] = c & d;
               end
             endmodule",
        )
        .unwrap()
    }

    #[test]
    fn enumeration_is_deterministic_and_rich() {
        let m = mux_module();
        let a = enumerate_mutations(&m);
        let b = enumerate_mutations(&m);
        assert_eq!(a, b);
        assert!(
            a.len() > 30,
            "expected a rich mutation space, got {}",
            a.len()
        );
        assert!(a
            .iter()
            .any(|mu| matches!(mu.kind, MutationKind::DropTerm { .. })));
        assert!(a
            .iter()
            .any(|mu| matches!(mu.kind, MutationKind::OperatorSwap(_))));
    }

    #[test]
    fn apply_changes_structure() {
        let m = mux_module();
        let all = enumerate_mutations(&m);
        let mut changed = 0usize;
        for mu in &all {
            let mut c = m.clone();
            if apply_mutation(&mut c, mu) && c != m {
                changed += 1;
            }
        }
        // Every enumerated mutation must apply and visibly change the AST.
        assert_eq!(changed, all.len());
    }

    #[test]
    fn drop_term_reproduces_fig3_bug() {
        let mut m = mux_module();
        // Find the DropTerm on the top-level Or of mux_in[0]'s rhs.
        let target = enumerate_mutations(&m)
            .into_iter()
            .find(|mu| {
                matches!(&mu.kind, MutationKind::DropTerm { keep_lhs: true })
                    && matches!(
                        &mu.site,
                        MutationSite::Expr { path, .. } if path.0.is_empty()
                    )
            })
            .expect("top-level drop exists");
        assert!(apply_mutation(&mut m, &target));
        let printed = mage_verilog::print_module(&m);
        // The (c & d) term is gone from mux_in[0].
        assert!(printed.contains("mux_in[0] = ~c & d | c & ~d;"));
    }

    #[test]
    fn blocking_swap_roundtrips() {
        let mut m = parse_module(
            "module d(input clk, input x, output reg q);
               always @(posedge clk) q <= x;
             endmodule",
        )
        .unwrap();
        let mu = enumerate_mutations(&m)
            .into_iter()
            .find(|mu| matches!(mu.kind, MutationKind::BlockingSwap))
            .unwrap();
        let orig = m.clone();
        assert!(apply_mutation(&mut m, &mu));
        assert_ne!(m, orig);
        assert!(apply_mutation(&mut m, &mu));
        assert_eq!(m, orig, "double swap restores");
    }

    #[test]
    fn edge_flip_changes_sensitivity() {
        let mut m = parse_module(
            "module d(input clk, input x, output reg q);
               always @(posedge clk) q <= x;
             endmodule",
        )
        .unwrap();
        let mu = enumerate_mutations(&m)
            .into_iter()
            .find(|mu| matches!(mu.kind, MutationKind::EdgeFlip { .. }))
            .unwrap();
        assert!(apply_mutation(&mut m, &mu));
        let Item::Always {
            sens: Sensitivity::Edges(e),
            ..
        } = &m.items[0]
        else {
            panic!()
        };
        assert_eq!(e[0].edge, Edge::Neg);
    }

    #[test]
    fn index_shift_stays_in_range() {
        let m = parse_module(
            "module s(input [3:0] a, output y);
               assign y = a[0] ^ a[3];
             endmodule",
        )
        .unwrap();
        for mu in enumerate_mutations(&m) {
            if let MutationKind::IndexShift { delta } = mu.kind {
                let mut c = m.clone();
                assert!(apply_mutation(&mut c, &mu));
                // All indices remain within [0, 3].
                let printed = mage_verilog::print_module(&c);
                assert!(!printed.contains("a[4]"), "delta {delta}: {printed}");
            }
        }
    }

    #[test]
    fn site_written_signals_identifies_targets() {
        let m = mux_module();
        let all = enumerate_mutations(&m);
        let drop = all
            .iter()
            .find(|mu| matches!(mu.kind, MutationKind::DropTerm { .. }))
            .unwrap();
        let written = site_written_signals(&m, &drop.site);
        assert_eq!(written, vec!["mux_in".to_string()]);
    }

    #[test]
    fn sampling_is_seed_deterministic() {
        let m = mux_module();
        let mut r1 = StdRng::seed_from_u64(7);
        let mut r2 = StdRng::seed_from_u64(7);
        assert_eq!(
            sample_mutations(&m, 3, &mut r1),
            sample_mutations(&m, 3, &mut r2)
        );
    }

    #[test]
    fn mutated_module_still_parses() {
        let m = mux_module();
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..50 {
            let mut c = m.clone();
            for mu in sample_mutations(&c, 2, &mut rng) {
                apply_mutation(&mut c, &mu);
            }
            let printed = mage_verilog::print_module(&c);
            assert!(
                mage_verilog::parse_module(&printed).is_ok(),
                "mutation broke syntax:\n{printed}"
            );
        }
    }
}
