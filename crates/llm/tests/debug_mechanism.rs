//! Integration test for the paper's central debugging claim: the same
//! debugger, given a state-checkpoint window, fixes bugs far more often
//! than when given a pass-rate summary (Fig. 3) — and the advantage
//! emerges from the information content of the feedback text, not from
//! hard-coded outcomes.

use mage_llm::{
    Conversation, DebugRequest, ProblemOracle, RtlLanguageModel, SamplingParams, SyntheticModel,
    SyntheticModelConfig,
};
use mage_sim::elaborate;
use mage_tb::textlog::{render_checkpoint_window, render_summary};
use mage_tb::{run_testbench, synthesize_testbench, CheckDensity, Stimulus};
use mage_verilog::parse;

/// The Fig. 3 case study module (Prob093-ece241-2014-q3 style): a 4-to-1
/// mux input decoder where `mux_in[0]` needs three OR terms.
const GOLDEN: &str = "module top(input c, input d, output reg [3:0] mux_in);
  always @(*) begin
    mux_in[0] = (~c & d) | (c & ~d) | (c & d);
    mux_in[1] = 1'b0;
    mux_in[2] = (~c & ~d) | (c & ~d);
    mux_in[3] = c & d;
  end
endmodule";

/// The buggy candidate: the `(c & d)` term of `mux_in[0]` is missing —
/// exactly the bug in the paper's case study.
const BUGGY: &str = "module top(input c, input d, output reg [3:0] mux_in);
  always @(*) begin
    mux_in[0] = (~c & d) | (c & ~d);
    mux_in[1] = 1'b0;
    mux_in[2] = (~c & ~d) | (c & ~d);
    mux_in[3] = c & d;
  end
endmodule";

fn fixture() -> (ProblemOracle, String, String) {
    let golden = parse(GOLDEN).unwrap();
    let stim = Stimulus::exhaustive(&[("c".into(), 1), ("d".into(), 1)]);
    let oracle = ProblemOracle::new(golden, "top", stim.clone(), 1.0);
    let tb = synthesize_testbench("mux", &oracle.golden_design, &stim, CheckDensity::EveryStep);
    let buggy_design = std::sync::Arc::new(elaborate(&parse(BUGGY).unwrap(), "top").unwrap());
    let report = run_testbench(&tb, &buggy_design).unwrap();
    assert!(!report.passed(), "the buggy candidate must fail");
    let checkpoint = render_checkpoint_window(&report, 5);
    let summary = render_summary(&report);
    (oracle, checkpoint, summary)
}

fn debug_once(oracle: &ProblemOracle, feedback: &str, seed: u64) -> bool {
    let mut model = SyntheticModel::new(SyntheticModelConfig::default(), seed);
    model.register("mux", oracle.clone());
    let conv = Conversation::new();
    let out = model.debug_rtl(&DebugRequest {
        problem_id: "mux",
        candidate_source: BUGGY,
        feedback_text: feedback,
        params: SamplingParams::high(),
        conversation: &conv,
    });
    // Did the trial produce a functionally correct module?
    let Ok(file) = parse(&out.value) else {
        return false;
    };
    let Ok(design) = elaborate(&file, "top") else {
        return false;
    };
    let tb = synthesize_testbench(
        "mux",
        &oracle.golden_design,
        &oracle.stimulus,
        CheckDensity::EveryStep,
    );
    run_testbench(&tb, &std::sync::Arc::new(design))
        .map(|r| r.passed())
        .unwrap_or(false)
}

#[test]
fn checkpoint_feedback_names_the_missing_term() {
    let (_, checkpoint, summary) = fixture();
    // The checkpoint window pinpoints the failing bit pattern…
    assert!(checkpoint.contains("Got mux_in=1000"), "{checkpoint}");
    assert!(checkpoint.contains("Expected mux_in=1001"), "{checkpoint}");
    assert!(checkpoint.contains("c=1, d=1"), "{checkpoint}");
    // …while the summary only counts mismatches.
    assert!(summary.contains("mismatches"));
    assert!(!summary.contains("Expected mux_in"));
}

#[test]
fn checkpoint_debugging_beats_summary_debugging() {
    let (oracle, checkpoint, summary) = fixture();
    let trials = 80u64;
    let ckpt_ok = (0..trials)
        .filter(|&s| debug_once(&oracle, &checkpoint, 1000 + s))
        .count();
    let summ_ok = (0..trials)
        .filter(|&s| debug_once(&oracle, &summary, 2000 + s))
        .count();
    // Checkpoint-guided repair should be reliable; summary-guided repair
    // substantially worse. Calibration defaults put these near 0.8 vs
    // 0.3; the margins below allow for sampling noise at n = 80.
    assert!(
        ckpt_ok as f64 >= 0.35 * trials as f64,
        "checkpoint repair too weak: {ckpt_ok}/{trials}"
    );
    assert!(
        (summ_ok as f64) <= 0.45 * trials as f64,
        "summary repair suspiciously strong: {summ_ok}/{trials}"
    );
    assert!(
        ckpt_ok > summ_ok + (trials / 10) as usize,
        "checkpoint ({ckpt_ok}) must clearly beat summary ({summ_ok})"
    );
}

#[test]
fn iterated_checkpoint_debugging_converges() {
    // The comprehension model makes a small fraction of (problem, seed)
    // pairs persistently unfixable; convergence must hold for the clear
    // majority of seeds.
    let converged = (70..78u64).filter(|&s| iterate_once(s)).count();
    assert!(
        converged >= 5,
        "iterated debugging converged only {converged}/8 seeds"
    );
}

fn iterate_once(seed: u64) -> bool {
    let (oracle, _, _) = fixture();
    let mut model = SyntheticModel::new(SyntheticModelConfig::default(), seed);
    model.register("mux", oracle.clone());
    let conv = Conversation::new();
    let tb = synthesize_testbench(
        "mux",
        &oracle.golden_design,
        &oracle.stimulus,
        CheckDensity::EveryStep,
    );
    let mut source = BUGGY.to_string();
    let mut fixed = false;
    for _round in 0..8 {
        let design = match parse(&source).and_then(|f| {
            elaborate(&f, "top").map_err(|e| mage_verilog::ParseError {
                pos: Default::default(),
                message: e.to_string(),
            })
        }) {
            Ok(d) => std::sync::Arc::new(d),
            Err(_) => break,
        };
        let report = run_testbench(&tb, &design).unwrap();
        if report.passed() {
            fixed = true;
            break;
        }
        let feedback = render_checkpoint_window(&report, 5);
        let out = model.debug_rtl(&DebugRequest {
            problem_id: "mux",
            candidate_source: &source,
            feedback_text: &feedback,
            params: SamplingParams::high(),
            conversation: &conv,
        });
        // Keep the trial only if it does not score worse (the paper's
        // accept-or-rollback rule, Eq. 4).
        let better = parse(&out.value)
            .ok()
            .and_then(|f| elaborate(&f, "top").ok())
            .map(|d| {
                run_testbench(&tb, &std::sync::Arc::new(d))
                    .map(|r| r.score() >= report.score())
                    .unwrap_or(false)
            })
            .unwrap_or(false);
        if better {
            source = out.value;
        }
    }
    fixed
}
