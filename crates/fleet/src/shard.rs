//! One fleet shard: a [`ServeEngine`] owned by a dedicated OS thread,
//! driven by the controller over a command channel.
//!
//! The shard thread is a plain message loop — it never makes a
//! scheduling decision of its own. Every command is answered with
//! exactly one reply, and the controller's barrier (send `Steps` to
//! every shard, then collect every pulse) is what lets shards crunch
//! their engine steps in parallel while keeping all *decisions* on the
//! controller's deterministic timeline.

use mage_core::SolveTrace;
use mage_llm::HealthSnapshot;
use mage_serve::{
    DesignCache, JobCheckpoint, JobSpec, LlmService, ScoreCache, ServeEngine, ServeReport,
    UnitCache,
};
use std::collections::HashMap;
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// The shared job roster a roster-based service factory reads: local
/// job id → `(problem_id, seed)`. The shard thread appends an entry
/// immediately before every push or restore, so by the time any
/// service factory runs for local job `i`, `get(i)` is populated —
/// this is what lets one shard serve jobs it never saw specs for
/// (migrated checkpoints included) without a pre-sized spec table.
#[derive(Debug, Clone, Default)]
pub struct JobRoster(Arc<Mutex<Vec<(String, u64)>>>);

impl JobRoster {
    /// An empty roster.
    pub fn new() -> Self {
        Self::default()
    }

    /// The `(problem_id, seed)` of local job `ix`, when registered.
    pub fn get(&self, ix: usize) -> Option<(String, u64)> {
        self.0.lock().expect("roster poisoned").get(ix).cloned()
    }

    /// Entries registered so far.
    pub fn len(&self) -> usize {
        self.0.lock().expect("roster poisoned").len()
    }

    /// `true` when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub(crate) fn push(&self, problem_id: String, seed: u64) {
        self.0
            .lock()
            .expect("roster poisoned")
            .push((problem_id, seed));
    }
}

/// A controller → shard command.
pub(crate) enum ShardCmd {
    /// Queue a job (the shard admits it at its next step boundary).
    Push { fleet_job: usize, spec: JobSpec },
    /// Run one engine step; reply with a [`ShardPulse`].
    Step,
    /// Lift `fleet_job` out (reply `None` if it is not running).
    Checkpoint { fleet_job: usize },
    /// Lift every running job out (the drain path).
    Drain,
    /// Insert a migrated checkpoint, merging `health` first.
    Restore {
        fleet_job: usize,
        ck: Box<JobCheckpoint>,
        health: Option<HealthSnapshot>,
    },
    /// Final collection; the thread replies and exits.
    Finish,
}

/// One running job as the controller sees it at a barrier.
#[derive(Debug, Clone, Copy)]
pub(crate) struct RunningJob {
    pub fleet_job: usize,
    /// The job's own advance count — its position on its private
    /// timeline, used for deterministic migration-victim selection.
    pub advances: u64,
}

/// A shard's deterministic state snapshot after one `Step`.
#[derive(Debug, Clone)]
pub(crate) struct ShardPulse {
    /// Whether a further step could make progress.
    pub progress: bool,
    /// Jobs still queued or running (the router's load signal).
    pub live: usize,
    /// Jobs currently in flight, in local job order.
    pub running: Vec<RunningJob>,
}

/// A lifted job: the checkpoint plus the source service's health.
pub(crate) struct LiftedJob {
    pub fleet_job: usize,
    pub ck: Box<JobCheckpoint>,
    pub health: Option<HealthSnapshot>,
}

/// Everything a finishing shard hands back.
pub(crate) struct ShardFinal {
    pub report: ServeReport,
    /// Completed traces keyed by *fleet* job id.
    pub traces: Vec<(usize, SolveTrace)>,
    pub health: Option<HealthSnapshot>,
}

/// A shard → controller reply.
pub(crate) enum ShardReply {
    Pulse(ShardPulse),
    Pushed,
    Checkpointed(Option<Box<LiftedJob>>),
    Drained {
        jobs: Vec<LiftedJob>,
        live_after: usize,
    },
    Restored,
    Finished(Box<ShardFinal>),
}

/// The controller-side handle of one shard thread.
pub(crate) struct ShardHandle {
    pub cmd: Sender<ShardCmd>,
    pub reply: Receiver<ShardReply>,
    pub thread: Option<JoinHandle<()>>,
    /// The shard's local cache tiers (controller-readable counters).
    pub design: Arc<DesignCache>,
    pub scores: Arc<ScoreCache>,
    pub units: Arc<UnitCache>,
}

impl ShardHandle {
    /// Send one command and wait for its reply. Panics if the shard
    /// thread died — a shard cannot fail independently in-process.
    pub fn call(&self, cmd: ShardCmd) -> ShardReply {
        self.cmd.send(cmd).expect("shard thread gone");
        self.reply.recv().expect("shard thread gone")
    }

    /// Send without waiting (the barrier path: sends fan out first,
    /// replies are collected afterwards so shards step in parallel).
    pub fn send(&self, cmd: ShardCmd) {
        self.cmd.send(cmd).expect("shard thread gone");
    }

    /// Collect the next reply (the barrier's second half).
    pub fn recv(&self) -> ShardReply {
        self.reply.recv().expect("shard thread gone")
    }

    /// Join the thread (after a `Finish` reply, or at teardown).
    pub fn join(&mut self) {
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

/// The shard thread's message loop. Owns the engine and the local →
/// fleet id maps; exits when `Finish` arrives or the controller hangs
/// up (dropping the command sender).
pub(crate) fn shard_main<S: LlmService>(
    mut engine: ServeEngine<S>,
    roster: JobRoster,
    rx: Receiver<ShardCmd>,
    tx: Sender<ShardReply>,
) {
    // Local job id → fleet job id (push/restore order), and the live
    // reverse map (entries leave on checkpoint).
    let mut fleet_of: Vec<usize> = Vec::new();
    let mut local_of: HashMap<usize, usize> = HashMap::new();

    let lift = |engine: &mut ServeEngine<S>, fleet_job: usize, local: usize| -> Box<LiftedJob> {
        let ck = engine
            .checkpoint(local)
            .expect("lift called on a non-running job");
        Box::new(LiftedJob {
            fleet_job,
            ck: Box::new(ck),
            health: engine.service().health(),
        })
    };

    while let Ok(cmd) = rx.recv() {
        let reply = match cmd {
            ShardCmd::Push { fleet_job, spec } => {
                roster.push(spec.problem_id.clone(), spec.seed);
                let local = engine.push_job(spec);
                debug_assert_eq!(local + 1, roster.len(), "roster misaligned");
                assert_eq!(local, fleet_of.len(), "local ids must be dense");
                fleet_of.push(fleet_job);
                local_of.insert(fleet_job, local);
                ShardReply::Pushed
            }
            ShardCmd::Step => {
                let progress = engine.step();
                let running = engine
                    .running_jobs()
                    .into_iter()
                    .map(|(local, advances, _)| RunningJob {
                        fleet_job: fleet_of[local],
                        advances,
                    })
                    .collect();
                ShardReply::Pulse(ShardPulse {
                    progress,
                    live: engine.live_jobs(),
                    running,
                })
            }
            ShardCmd::Checkpoint { fleet_job } => {
                let lifted = local_of.get(&fleet_job).copied().and_then(|local| {
                    if engine.running_jobs().iter().any(|&(l, _, _)| l == local) {
                        local_of.remove(&fleet_job);
                        Some(lift(&mut engine, fleet_job, local))
                    } else {
                        None
                    }
                });
                ShardReply::Checkpointed(lifted)
            }
            ShardCmd::Drain => {
                // Lift every running job, in local-id order (the order
                // is part of the deterministic record).
                let mut jobs = Vec::new();
                for (local, _, _) in engine.running_jobs() {
                    let fleet_job = fleet_of[local];
                    local_of.remove(&fleet_job);
                    jobs.push(*lift(&mut engine, fleet_job, local));
                }
                ShardReply::Drained {
                    jobs,
                    live_after: engine.live_jobs(),
                }
            }
            ShardCmd::Restore {
                fleet_job,
                ck,
                health,
            } => {
                if let Some(h) = health {
                    // Weighted merge: the target keeps its own EMAs and
                    // gains the source shard's (see Dispatcher docs).
                    engine.service_mut().import_health(h);
                }
                roster.push(ck.spec.problem_id.clone(), ck.spec.seed);
                let local = engine.restore(*ck);
                debug_assert_eq!(local + 1, roster.len(), "roster misaligned");
                assert_eq!(local, fleet_of.len(), "local ids must be dense");
                fleet_of.push(fleet_job);
                local_of.insert(fleet_job, local);
                ShardReply::Restored
            }
            ShardCmd::Finish => {
                let traces = engine
                    .traces()
                    .into_iter()
                    .map(|(local, trace)| (fleet_of[local], trace.clone()))
                    .collect();
                let final_ = ShardFinal {
                    report: engine.report(),
                    traces,
                    health: engine.service().health(),
                };
                let _ = tx.send(ShardReply::Finished(Box::new(final_)));
                return;
            }
        };
        if tx.send(reply).is_err() {
            return;
        }
    }
}
