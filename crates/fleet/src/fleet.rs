//! The fleet controller: N serve-engine shards behind a deterministic
//! router, with checkpoint-based job migration and a tiered cache
//! fabric.
//!
//! # Placement protocol
//!
//! A fleet run is a sequence of **rounds**. One [`FleetEngine::run_round`]
//! is, in order:
//!
//! 1. **Pinned migrations** recorded for the current round are applied
//!    (replay mode only; a no-op when recording).
//! 2. **Placement**: every job pushed since the last round is routed to
//!    a shard and handed over. Routing is affinity-first — a job's
//!    problem id hashes (FNV-1a) to its home shard, so repeats of the
//!    same problem land where that problem's designs and scores are
//!    already cached — with a load-aware spill: when the home shard's
//!    load exceeds the lightest shard's by more than
//!    [`FleetOptions::spread`], the job spills to the lightest shard
//!    (ties break on the lowest index).
//! 3. **Barrier**: every shard runs exactly one engine step, in
//!    parallel, and reports a pulse (progress flag, live count, running
//!    set). The pulses refresh the router's load signal.
//! 4. **Rebalance** (recording mode, every
//!    [`FleetOptions::migrate_after_steps`] rounds): if the hottest
//!    shard leads the coldest by ≥ 2 live jobs, up to
//!    [`FleetOptions::migrate_batch`] running jobs migrate hot → cold.
//!    Victims are the jobs with the fewest advances (ties on the lowest
//!    fleet id) — the cheapest state to move.
//!
//! Every decision — placement and migration alike — lands in a
//! [`PlacementTrace`]. All inputs to every decision (hashes, pulse
//! counts, victim sort keys) are deterministic values, so the trace is
//! a pure function of the job stream and the options.
//!
//! # Migration protocol
//!
//! A migration is park → checkpoint → restore: the source shard
//! checkpoints the job at a step boundary ([`mage_serve::ServeEngine::checkpoint`]
//! lifts the job with its resolved input or parked pending work, model
//! state, retry ledger and accrued usage), the checkpoint crosses to
//! the target thread together with the source service's
//! [`HealthSnapshot`], and the target merges the health (calls-weighted
//! — never clobbering its own observations) before restoring the job.
//! A job that is still queued on the source (pushed, not yet admitted)
//! is brought up by stepping the source shard alone until admission,
//! then checkpointed — so drains and replays never strand a job.
//!
//! # Determinism contract
//!
//! Two layers, separable:
//!
//! - **Job traces are placement-invariant.** Each job's model is seeded
//!   from its own spec (`(problem_id, seed)` via the shard roster), and
//!   fault outcomes key on the job's private dispatch sequence — so a
//!   job's [`SolveTrace`] is bit-identical no matter which shard (or
//!   how many shards, or which scheduler mode, or how many workers)
//!   runs it, including under any absorbable fault plan.
//! - **The schedule is replayable.** A run under a pinned trace applies
//!   the recorded placements and migrations at the recorded round
//!   boundaries and records what it did; the re-recorded trace equals
//!   the pinned one bit-for-bit.
//!
//! Together: a fleet run's sorted trace set equals a single engine's
//! over the same job stream, and a pinned replay reproduces the fleet
//! run exactly. Operator actions ([`FleetEngine::drain_shard`],
//! [`FleetEngine::restart_shard`], explicit [`FleetEngine::migrate`])
//! record into the trace like any other decision; under a pinned trace
//! drive the fleet with [`FleetEngine::run`] / [`FleetEngine::run_round`]
//! only and the recorded operator moves replay themselves.
//!
//! # Cache fabric
//!
//! Each shard compiles through a private LRU tier backed by one shared
//! global tier ([`mage_serve::DesignCache::tiered`] /
//! [`mage_serve::ScoreCache::tiered`] /
//! [`mage_serve::UnitCache::tiered`]): local misses consult the global
//! tier and promote hits into the local tier; fresh results publish
//! back. Affinity routing keeps a problem's designs in one local tier;
//! the global tier catches cross-shard and post-migration reuse. The
//! unit tier works below whole designs — per-process compilation units
//! keyed by `(fingerprint, binding)`, so a debug iteration that edits
//! one process recompiles only that process even when the whole-design
//! caches miss, and cross-shard edits of the same problem share
//! unchanged units through the global tier. The per-tier
//! hit/miss/promotion counters aggregate into [`FleetReport::fabric`].

use crate::service::{synthetic_shard_service, synthetic_shard_service_with};
use crate::shard::{
    shard_main, JobRoster, LiftedJob, RunningJob, ShardCmd, ShardFinal, ShardHandle, ShardPulse,
    ShardReply,
};
use crate::trace::{Migration, Placement, PlacementTrace};
use mage_core::SolveTrace;
use mage_llm::{DispatchPolicy, FaultPlan, HealthSnapshot};
use mage_serve::{
    DesignCache, FaultyService, JobSpec, LlmService, ScoreCache, ServeEngine, ServeOptions,
    ServeReport, ServeStats, SyntheticPerJob, UnitCache,
};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Fleet-level configuration.
#[derive(Debug, Clone)]
pub struct FleetOptions {
    /// Number of shards (≥ 1), each a [`ServeEngine`] on its own thread.
    pub shards: usize,
    /// Per-shard engine options (workers, scheduler mode, admission).
    pub serve: ServeOptions,
    /// Rebalance cadence: consider a hot → cold migration every this
    /// many fleet rounds (each round = one engine step per shard).
    /// `0` disables policy migration.
    pub migrate_after_steps: u64,
    /// Most jobs moved per rebalance.
    pub migrate_batch: usize,
    /// Affinity slack: a job spills off its home shard only when the
    /// home's load exceeds the minimum load by more than this.
    pub spread: usize,
    /// Capacity of each shard's local design-cache tier.
    pub local_design_capacity: usize,
    /// Capacity of each shard's local score-cache tier.
    pub local_score_capacity: usize,
    /// Capacity of each shard's local process-unit tier (delta
    /// compilation; see [`mage_serve::UnitCache`]).
    pub local_unit_capacity: usize,
    /// Replay mode: apply this trace's decisions instead of routing.
    pub pinned: Option<PlacementTrace>,
}

impl Default for FleetOptions {
    fn default() -> Self {
        FleetOptions {
            shards: 2,
            serve: ServeOptions::default(),
            migrate_after_steps: 0,
            migrate_batch: 2,
            spread: 2,
            local_design_capacity: 1024,
            local_score_capacity: 512,
            local_unit_capacity: 4096,
            pinned: None,
        }
    }
}

/// Per-tier cache counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheTierStats {
    /// Lookups answered by this tier.
    pub hits: usize,
    /// Lookups this tier could not answer itself.
    pub misses: usize,
    /// Parent-tier hits copied into this tier (local tiers only).
    pub promotions: usize,
    /// Key collisions detected.
    pub collisions: usize,
}

impl CacheTierStats {
    fn absorb_design(&mut self, c: &DesignCache) {
        self.hits += c.hits();
        self.misses += c.misses();
        self.promotions += c.promotions();
        self.collisions += c.collisions();
    }

    fn absorb_score(&mut self, c: &ScoreCache) {
        self.hits += c.hits();
        self.misses += c.misses();
        self.promotions += c.promotions();
        self.collisions += c.collisions();
    }

    fn absorb_unit(&mut self, c: &UnitCache) {
        self.hits += c.hits();
        self.misses += c.misses();
        self.promotions += c.promotions();
        self.collisions += c.collisions();
    }
}

/// The cache fabric's aggregate counters: local tiers summed over all
/// shards (including restarted generations), plus the global tiers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FabricStats {
    /// All local design tiers, summed.
    pub design_local: CacheTierStats,
    /// All local score tiers, summed.
    pub score_local: CacheTierStats,
    /// All local process-unit tiers, summed.
    pub unit_local: CacheTierStats,
    /// The shared global design tier.
    pub design_global: CacheTierStats,
    /// The shared global score tier.
    pub score_global: CacheTierStats,
    /// The shared global process-unit tier.
    pub unit_global: CacheTierStats,
}

/// Aggregate outcome of a fleet run.
pub struct FleetReport {
    /// Per-shard engine reports, in shard order (final generations).
    pub shards: Vec<ServeReport>,
    /// Engine reports of shard generations retired by
    /// [`FleetEngine::restart_shard`], in retirement order.
    pub retired: Vec<ServeReport>,
    /// Jobs pushed to the fleet.
    pub jobs: usize,
    /// Jobs retired (summed over shards — each job retires exactly
    /// once, on whichever shard last held it).
    pub done: usize,
    /// Jobs retired with a failure outcome.
    pub failed: usize,
    /// Dispatch counters summed over every shard generation.
    pub stats: ServeStats,
    /// Placement decisions recorded.
    pub placements: usize,
    /// Migrations applied (policy, operator and drain moves alike).
    pub migrations: usize,
    /// Shard restarts performed.
    pub restarts: usize,
    /// Fleet rounds run.
    pub rounds: u64,
    /// Cache-fabric counters.
    pub fabric: FabricStats,
    /// Backend health merged (calls-weighted) over every shard.
    pub health: Option<HealthSnapshot>,
    /// The run's placement trace (pin it to replay the run).
    pub trace: PlacementTrace,
    /// Completed solve traces, sorted by fleet job id.
    pub traces: Vec<(usize, SolveTrace)>,
    /// Wall-clock seconds spent inside the controller.
    pub wall_s: f64,
}

struct FleetJob {
    problem_id: String,
    /// Present until the job is handed to a shard.
    spec: Option<JobSpec>,
    /// The shard currently holding the job.
    shard: Option<usize>,
}

/// The sharded serve cluster (see the module docs for the protocol).
pub struct FleetEngine<S: LlmService + Send + 'static> {
    opts: FleetOptions,
    factory: Box<dyn Fn(usize, JobRoster) -> S>,
    shards: Vec<ShardHandle>,
    global_design: Arc<DesignCache>,
    global_scores: Arc<ScoreCache>,
    global_units: Arc<UnitCache>,
    jobs: Vec<FleetJob>,
    /// Fleet ids pushed but not yet placed.
    pending: Vec<usize>,
    round: u64,
    trace: PlacementTrace,
    /// Router load signal: live jobs per shard as of the last pulse,
    /// adjusted for hand-overs since.
    load: Vec<usize>,
    /// Running sets from the last barrier (rebalance victim pool).
    last_running: Vec<Vec<RunningJob>>,
    /// Reports and traces of restarted shard generations.
    retired: Vec<ShardFinal>,
    retired_fabric: FabricStats,
    restarts: usize,
    wall: Duration,
}

fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl FleetEngine<FaultyService<SyntheticPerJob>> {
    /// A fleet whose shards run the standard synthetic service (plan
    /// from `MAGE_FAULT_PLAN`), seeded identically to
    /// [`mage_serve::synthetic_service`].
    pub fn synthetic(opts: FleetOptions) -> Self {
        Self::new(opts, |_, roster| synthetic_shard_service(&roster))
    }

    /// [`FleetEngine::synthetic`] with an explicit fault plan and
    /// dispatch policy (the chaos suite's entry point).
    pub fn synthetic_with(opts: FleetOptions, plan: FaultPlan, policy: DispatchPolicy) -> Self {
        Self::new(opts, move |_, roster| {
            synthetic_shard_service_with(&roster, plan.clone(), policy.clone())
        })
    }
}

impl<S: LlmService + Send + 'static> FleetEngine<S> {
    /// A fleet of `opts.shards` engines. `factory(shard_ix, roster)`
    /// builds each shard's service; it must resolve job models through
    /// the roster (not a frozen spec table) so migrated jobs find
    /// their entries.
    pub fn new(opts: FleetOptions, factory: impl Fn(usize, JobRoster) -> S + 'static) -> Self {
        assert!(opts.shards >= 1, "a fleet needs at least one shard");
        let global_design = Arc::new(DesignCache::new());
        let global_scores = Arc::new(ScoreCache::new());
        let global_units = Arc::new(UnitCache::new());
        let mut fleet = FleetEngine {
            shards: Vec::with_capacity(opts.shards),
            load: vec![0; opts.shards],
            last_running: vec![Vec::new(); opts.shards],
            factory: Box::new(factory),
            global_design,
            global_scores,
            global_units,
            jobs: Vec::new(),
            pending: Vec::new(),
            round: 0,
            trace: PlacementTrace::default(),
            retired: Vec::new(),
            retired_fabric: FabricStats::default(),
            restarts: 0,
            wall: Duration::ZERO,
            opts,
        };
        for ix in 0..fleet.opts.shards {
            let shard = fleet.spawn_shard(ix);
            fleet.shards.push(shard);
        }
        fleet
    }

    fn spawn_shard(&self, ix: usize) -> ShardHandle {
        let roster = JobRoster::new();
        let design = Arc::new(DesignCache::tiered(
            self.opts.local_design_capacity,
            Arc::clone(&self.global_design),
        ));
        let scores = Arc::new(ScoreCache::tiered(
            self.opts.local_score_capacity,
            Arc::clone(&self.global_scores),
        ));
        let units = Arc::new(UnitCache::tiered(
            self.opts.local_unit_capacity,
            Arc::clone(&self.global_units),
        ));
        let engine = ServeEngine::with_fabric(
            self.opts.serve.clone(),
            (self.factory)(ix, roster.clone()),
            Arc::clone(&design),
            Arc::clone(&scores),
            Arc::clone(&units),
        );
        let (cmd_tx, cmd_rx) = mpsc::channel();
        let (reply_tx, reply_rx) = mpsc::channel();
        let thread_roster = roster.clone();
        let thread = std::thread::Builder::new()
            .name(format!("mage-fleet-shard-{ix}"))
            .spawn(move || shard_main(engine, thread_roster, cmd_rx, reply_tx))
            .expect("spawn shard thread");
        ShardHandle {
            cmd: cmd_tx,
            reply: reply_rx,
            thread: Some(thread),
            design,
            scores,
            units,
        }
    }

    /// Queue a job; it is placed at the next round. Returns the fleet
    /// job id (push order).
    pub fn push_job(&mut self, spec: JobSpec) -> usize {
        let id = self.jobs.len();
        self.jobs.push(FleetJob {
            problem_id: spec.problem_id.clone(),
            spec: Some(spec),
            shard: None,
        });
        self.pending.push(id);
        id
    }

    /// The deterministic router (see the module docs). `exclude` bars
    /// one shard (the drain path).
    fn route(&self, problem_id: &str, exclude: Option<usize>) -> usize {
        let candidates: Vec<usize> = (0..self.shards.len())
            .filter(|&i| Some(i) != exclude)
            .collect();
        assert!(!candidates.is_empty(), "no shard to route to");
        let affinity = candidates[(fnv1a(problem_id) % candidates.len() as u64) as usize];
        let min_load = candidates.iter().map(|&i| self.load[i]).min().unwrap();
        if self.load[affinity] > min_load + self.opts.spread {
            *candidates
                .iter()
                .find(|&&i| self.load[i] == min_load)
                .unwrap()
        } else {
            affinity
        }
    }

    /// Hand every pending job to its shard; returns how many.
    fn place_pending(&mut self) -> usize {
        let pending = std::mem::take(&mut self.pending);
        let placed = pending.len();
        for id in pending {
            let shard = match &self.opts.pinned {
                Some(p) => p
                    .shard_of(id)
                    .unwrap_or_else(|| panic!("pinned trace has no placement for fleet job {id}")),
                None => self.route(&self.jobs[id].problem_id, None),
            };
            assert!(shard < self.shards.len(), "placement to unknown shard");
            let spec = self.jobs[id].spec.take().expect("pending job has a spec");
            match self.shards[shard].call(ShardCmd::Push {
                fleet_job: id,
                spec,
            }) {
                ShardReply::Pushed => {}
                _ => unreachable!("push reply"),
            }
            self.jobs[id].shard = Some(shard);
            self.load[shard] += 1;
            self.trace.placements.push(Placement { job: id, shard });
        }
        placed
    }

    /// Checkpoint `job` off its shard and restore it on `to`,
    /// recording the move at the current round. A job still queued on
    /// the source is stepped up to admission first. Returns `false`
    /// (and moves nothing) if the job is unplaced, already on `to`,
    /// or already done.
    fn migrate_internal(&mut self, job: usize, to: usize) -> bool {
        let Some(from) = self.jobs.get(job).and_then(|j| j.shard) else {
            return false;
        };
        if from == to || to >= self.shards.len() {
            return false;
        }
        let mut solo_steps = 0usize;
        let lifted: Box<LiftedJob> = loop {
            match self.shards[from].call(ShardCmd::Checkpoint { fleet_job: job }) {
                ShardReply::Checkpointed(Some(l)) => break l,
                ShardReply::Checkpointed(None) => {
                    // Not running: either still queued (step the shard
                    // alone until admission brings it up) or done.
                    solo_steps += 1;
                    assert!(
                        solo_steps <= 100_000,
                        "migration of fleet job {job} never reached admission"
                    );
                    match self.shards[from].call(ShardCmd::Step) {
                        ShardReply::Pulse(p) => {
                            if !p.running.iter().any(|r| r.fleet_job == job) && !p.progress {
                                return false;
                            }
                        }
                        _ => unreachable!("step reply"),
                    }
                }
                _ => unreachable!("checkpoint reply"),
            }
        };
        match self.shards[to].call(ShardCmd::Restore {
            fleet_job: job,
            ck: lifted.ck,
            health: lifted.health,
        }) {
            ShardReply::Restored => {}
            _ => unreachable!("restore reply"),
        }
        self.jobs[job].shard = Some(to);
        self.load[from] = self.load[from].saturating_sub(1);
        self.load[to] += 1;
        self.trace.migrations.push(Migration {
            round: self.round,
            job,
            from,
            to,
        });
        true
    }

    /// Operator-initiated migration (recorded like any other decision).
    /// Returns `false` if the job is unplaced, done, or already there.
    pub fn migrate(&mut self, job: usize, to: usize) -> bool {
        self.migrate_internal(job, to)
    }

    /// The hot → cold rebalance pass (see the module docs).
    fn rebalance(&mut self) -> usize {
        let n = self.shards.len();
        if n < 2 {
            return 0;
        }
        let hot = (0..n)
            .max_by_key(|&i| (self.load[i], std::cmp::Reverse(i)))
            .unwrap();
        let cold = (0..n).min_by_key(|&i| (self.load[i], i)).unwrap();
        let (hot_load, cold_load) = (self.load[hot], self.load[cold]);
        if hot_load < cold_load + 2 {
            return 0;
        }
        let mut victims = self.last_running[hot].clone();
        victims.sort_by_key(|r| (r.advances, r.fleet_job));
        let quota = self
            .opts
            .migrate_batch
            .min((hot_load - cold_load) / 2)
            .min(victims.len());
        let mut moved = 0;
        for v in victims.into_iter().take(quota) {
            if self.migrate_internal(v.fleet_job, cold) {
                moved += 1;
            }
        }
        moved
    }

    /// One fleet round (see the module docs for the exact sequence).
    /// Returns `true` while another round could make progress.
    pub fn run_round(&mut self) -> bool {
        let t0 = Instant::now();
        let mut migrated = 0;
        let pinned_moves: Vec<Migration> = match &self.opts.pinned {
            Some(p) => p.migrations_at(self.round),
            None => Vec::new(),
        };
        {
            for m in pinned_moves {
                assert_eq!(
                    self.jobs.get(m.job).and_then(|j| j.shard),
                    Some(m.from),
                    "pinned migration source diverged (round {}, job {})",
                    m.round,
                    m.job
                );
                if self.migrate_internal(m.job, m.to) {
                    migrated += 1;
                }
            }
        }
        let placed = self.place_pending();
        for shard in &self.shards {
            shard.send(ShardCmd::Step);
        }
        let mut progress = false;
        for ix in 0..self.shards.len() {
            match self.shards[ix].recv() {
                ShardReply::Pulse(ShardPulse {
                    progress: p,
                    live,
                    running,
                }) => {
                    progress |= p;
                    self.load[ix] = live;
                    self.last_running[ix] = running;
                }
                _ => unreachable!("pulse reply"),
            }
        }
        self.round += 1;
        if self.opts.pinned.is_none()
            && self.opts.migrate_after_steps > 0
            && self.round.is_multiple_of(self.opts.migrate_after_steps)
        {
            migrated += self.rebalance();
        }
        self.wall += t0.elapsed();
        placed > 0 || migrated > 0 || progress
    }

    /// Gracefully empty shard `ix`: checkpoint every job off it and
    /// re-route each to another shard (recorded as migrations). Jobs
    /// still queued are admitted by stepping the shard alone. Returns
    /// how many jobs moved. The shard stays up (and empty) afterwards.
    pub fn drain_shard(&mut self, ix: usize) -> usize {
        assert!(
            self.shards.len() > 1,
            "cannot drain the only shard in the fleet"
        );
        let mut moved = 0;
        loop {
            let (jobs, live_after) = match self.shards[ix].call(ShardCmd::Drain) {
                ShardReply::Drained { jobs, live_after } => (jobs, live_after),
                _ => unreachable!("drain reply"),
            };
            for lifted in jobs {
                let job = lifted.fleet_job;
                let to = self.route(&self.jobs[job].problem_id, Some(ix));
                match self.shards[to].call(ShardCmd::Restore {
                    fleet_job: job,
                    ck: lifted.ck,
                    health: lifted.health,
                }) {
                    ShardReply::Restored => {}
                    _ => unreachable!("restore reply"),
                }
                self.jobs[job].shard = Some(to);
                self.load[to] += 1;
                self.trace.migrations.push(Migration {
                    round: self.round,
                    job,
                    from: ix,
                    to,
                });
                moved += 1;
            }
            if live_after == 0 {
                break;
            }
            // Queued jobs remain: one solo step admits the next batch.
            match self.shards[ix].call(ShardCmd::Step) {
                ShardReply::Pulse(p) => {
                    assert!(
                        p.progress || !p.running.is_empty() || p.live < live_after,
                        "drain of shard {ix} stalled with {live_after} jobs queued"
                    );
                }
                _ => unreachable!("step reply"),
            }
        }
        self.load[ix] = 0;
        self.last_running[ix].clear();
        moved
    }

    /// Drain shard `ix`, retire its engine (folding its report, traces
    /// and cache counters into the final aggregate), and bring up a
    /// fresh replacement in its slot. Returns how many jobs moved off.
    pub fn restart_shard(&mut self, ix: usize) -> usize {
        let moved = self.drain_shard(ix);
        self.shards[ix].send(ShardCmd::Finish);
        match self.shards[ix].recv() {
            ShardReply::Finished(final_) => self.retired.push(*final_),
            _ => unreachable!("finish reply"),
        }
        self.retired_fabric
            .design_local
            .absorb_design(&self.shards[ix].design);
        self.retired_fabric
            .score_local
            .absorb_score(&self.shards[ix].scores);
        self.retired_fabric
            .unit_local
            .absorb_unit(&self.shards[ix].units);
        self.shards[ix].join();
        let fresh = self.spawn_shard(ix);
        self.shards[ix] = fresh;
        self.restarts += 1;
        moved
    }

    /// Live jobs per shard as of the last pulse (the router's view).
    pub fn loads(&self) -> &[usize] {
        &self.load
    }

    /// The trace recorded so far.
    pub fn trace(&self) -> &PlacementTrace {
        &self.trace
    }

    /// Rounds completed so far.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Run every round until quiescent, then collect and aggregate all
    /// shards into a [`FleetReport`].
    pub fn run(mut self) -> FleetReport {
        while self.run_round() {}
        let t0 = Instant::now();
        for shard in &self.shards {
            shard.send(ShardCmd::Finish);
        }
        let mut finals = Vec::with_capacity(self.shards.len());
        let mut fabric = self.retired_fabric;
        for shard in &mut self.shards {
            match shard.recv() {
                ShardReply::Finished(f) => finals.push(*f),
                _ => unreachable!("finish reply"),
            }
            fabric.design_local.absorb_design(&shard.design);
            fabric.score_local.absorb_score(&shard.scores);
            fabric.unit_local.absorb_unit(&shard.units);
            shard.join();
        }
        fabric.design_global.absorb_design(&self.global_design);
        fabric.score_global.absorb_score(&self.global_scores);
        fabric.unit_global.absorb_unit(&self.global_units);
        self.wall += t0.elapsed();

        let mut stats = ServeStats::default();
        let mut done = 0;
        let mut failed = 0;
        let mut health: Option<HealthSnapshot> = None;
        let mut traces: Vec<(usize, SolveTrace)> = Vec::new();
        for f in finals.iter().chain(self.retired.iter()) {
            stats.absorb(&f.report.stats);
            done += f.report.done;
            failed += f.report.failed;
            traces.extend(f.traces.iter().cloned());
            match (&mut health, &f.health) {
                (Some(h), Some(o)) => h.merge(o),
                (h @ None, Some(o)) => *h = Some(o.clone()),
                (_, None) => {}
            }
        }
        traces.sort_by_key(|(id, _)| *id);

        FleetReport {
            shards: finals.into_iter().map(|f| f.report).collect(),
            retired: self.retired.iter().map(|f| f.report.clone()).collect(),
            jobs: self.jobs.len(),
            done,
            failed,
            stats,
            placements: self.trace.placements.len(),
            migrations: self.trace.migrations.len(),
            restarts: self.restarts,
            rounds: self.round,
            fabric,
            health,
            trace: std::mem::take(&mut self.trace),
            traces,
            wall_s: self.wall.as_secs_f64(),
        }
    }
}
