//! `mage-serve`: drive the full problem registry as a concurrent job
//! stream — on one engine or a sharded fleet — and report throughput,
//! latency, token and batching stats.
//!
//! ```text
//! Usage: mage-serve [options]
//!   --suite v1|v2|all     problem suite to stream        [all]
//!   --runs N              jobs per problem               [1]
//!   --workers N           sim worker threads             [available]
//!   --max-in-flight N     admission cap (0 = unlimited)  [32]
//!   --seed S              master seed                    [0xCAFE]
//!   --budget T            per-agent context token budget [4000]
//!   --sched bsp|wave      scheduler mode                 [wave]
//!   --shards N            fleet shards (1 = single engine) [1]
//!   --migrate-after-steps K  rebalance cadence in fleet rounds (0 = off) [0]
//!   --placement-trace F   pin placement from F if it exists, else
//!                         record this run's placement into F
//!   --fault-plan P        fault plan: name or seed:name  [$MAGE_FAULT_PLAN]
//!                         (none|canonical|single-transient|burst-rate-limit|
//!                          one-backend-dead|all-dead|mid-wave-timeout)
//!   --retries N           engine re-dispatches per request [2]
//!   --hedge-after-ms MS   hedge threshold (0 = off)      [80]
//!   --deadline-ms MS      per-job virtual deadline (0 = off) [off]
//!   --low                 low-temperature config (default high)
//!   --scalar              disable LLM batching (one call per request)
//!   --no-grade            skip grading final answers
//! ```
//!
//! With `--shards 1` the stream runs on a plain [`ServeEngine`] exactly
//! as before; `--shards N` (N ≥ 2) routes it through a
//! [`FleetEngine`] and adds per-shard, migration and cache-fabric
//! report lines. `--placement-trace` closes the determinism loop from
//! the shell: run once to record, run again to replay pinned.

use mage_core::experiments::unit_seed;
use mage_core::{MageConfig, SolveTrace, SystemKind};
use mage_fleet::{FleetEngine, FleetOptions, PlacementTrace};
use mage_llm::{DispatchPolicy, FaultPlan};
use mage_problems::SuiteId;
use mage_serve::{synthetic_service_with, JobSpec, SchedMode, ServeEngine, ServeOptions};

struct Args {
    suite: String,
    runs: usize,
    workers: usize,
    max_in_flight: usize,
    seed: u64,
    budget: usize,
    sched: SchedMode,
    shards: usize,
    migrate_after_steps: u64,
    placement_trace: Option<String>,
    fault_plan: FaultPlan,
    retries: u32,
    hedge_after_ms: u64,
    deadline_ms: u64,
    low: bool,
    scalar: bool,
    grade: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        suite: "all".to_string(),
        runs: 1,
        workers: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        max_in_flight: 32,
        seed: 0xCAFE,
        budget: 4000,
        sched: SchedMode::default(),
        shards: 1,
        migrate_after_steps: 0,
        placement_trace: None,
        fault_plan: FaultPlan::from_env(),
        retries: 2,
        hedge_after_ms: 80,
        deadline_ms: 0,
        low: false,
        scalar: false,
        grade: true,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("missing value for {name}"))
        };
        match flag.as_str() {
            "--suite" => args.suite = value("--suite"),
            "--runs" => args.runs = value("--runs").parse().expect("--runs N"),
            "--workers" => args.workers = value("--workers").parse().expect("--workers N"),
            "--max-in-flight" => {
                args.max_in_flight = value("--max-in-flight").parse().expect("--max-in-flight N")
            }
            "--seed" => args.seed = value("--seed").parse().expect("--seed S"),
            "--budget" => args.budget = value("--budget").parse().expect("--budget T"),
            "--sched" => {
                let v = value("--sched");
                args.sched = SchedMode::parse(&v)
                    .unwrap_or_else(|| panic!("unknown scheduler `{v}` (bsp|wave)"));
            }
            "--shards" => args.shards = value("--shards").parse().expect("--shards N"),
            "--migrate-after-steps" => {
                args.migrate_after_steps = value("--migrate-after-steps")
                    .parse()
                    .expect("--migrate-after-steps K")
            }
            "--placement-trace" => args.placement_trace = Some(value("--placement-trace")),
            "--fault-plan" => {
                let v = value("--fault-plan");
                args.fault_plan =
                    FaultPlan::parse(&v).unwrap_or_else(|e| panic!("--fault-plan: {e}"));
            }
            "--retries" => args.retries = value("--retries").parse().expect("--retries N"),
            "--hedge-after-ms" => {
                args.hedge_after_ms = value("--hedge-after-ms")
                    .parse()
                    .expect("--hedge-after-ms MS")
            }
            "--deadline-ms" => {
                args.deadline_ms = value("--deadline-ms").parse().expect("--deadline-ms MS")
            }
            "--low" => args.low = true,
            "--scalar" => args.scalar = true,
            "--no-grade" => args.grade = false,
            "--help" | "-h" => {
                println!("see module docs: cargo doc -p mage-fleet --bin mage-serve");
                std::process::exit(0);
            }
            other => panic!("unknown flag `{other}` (try --help)"),
        }
    }
    assert!(args.shards >= 1, "--shards must be at least 1");
    args
}

fn grade_traces<'a>(traces: impl Iterator<Item = &'a SolveTrace>) -> (usize, usize, f64) {
    let mut passed = 0usize;
    let mut graded = 0usize;
    let mut score_sum = 0.0f64;
    for trace in traces {
        // A failed job's trace may carry no final candidate at all;
        // it is counted, never graded as a pass.
        if trace.outcome.is_failed() || trace.final_source.is_empty() {
            graded += 1;
            continue;
        }
        let p = mage_problems::by_id(&trace.problem_id).expect("registry problem");
        graded += 1;
        score_sum += trace.final_score;
        if mage_core::experiments::grade(p, &trace.final_source) {
            passed += 1;
        }
    }
    (passed, graded, score_sum)
}

fn main() {
    let args = parse_args();
    let problems: Vec<&'static mage_problems::Problem> = match args.suite.as_str() {
        "v1" => mage_problems::suite(SuiteId::V1Human),
        "v2" => mage_problems::suite(SuiteId::V2),
        "all" => mage_problems::all_problems(),
        other => panic!("unknown suite `{other}` (v1|v2|all)"),
    };

    let mut config = if args.low {
        MageConfig::low_temperature()
    } else {
        MageConfig::high_temperature()
    }
    .with_system(SystemKind::Mage);
    if args.budget > 0 {
        config = config.with_context_budget(args.budget);
    }

    // The job stream: runs × problems, in (run, problem) order.
    let mut specs: Vec<JobSpec> = Vec::new();
    for run in 0..args.runs {
        for p in &problems {
            specs.push(JobSpec {
                problem_id: p.id.to_string(),
                spec: p.spec.to_string(),
                config: config.clone(),
                seed: unit_seed(args.seed, run, p.id),
            });
        }
    }

    let policy = DispatchPolicy {
        hedge_after_ms: if args.hedge_after_ms == 0 {
            None
        } else {
            Some(args.hedge_after_ms)
        },
        ..DispatchPolicy::default()
    };

    let opts = ServeOptions {
        workers: args.workers,
        batch_llm: !args.scalar,
        max_in_flight: args.max_in_flight,
        sched: args.sched,
        llm_retry_budget: args.retries,
        deadline_ms: if args.deadline_ms == 0 {
            None
        } else {
            Some(args.deadline_ms)
        },
    };
    println!(
        "mage-serve: {} jobs ({} problems x {} runs), {} sched, {} workers, batching {}, cap {}{}",
        specs.len(),
        problems.len(),
        args.runs,
        opts.sched,
        opts.workers,
        if opts.batch_llm { "on" } else { "off" },
        if opts.max_in_flight == 0 {
            "unlimited".to_string()
        } else {
            opts.max_in_flight.to_string()
        },
        if args.shards > 1 {
            format!(", {} shards", args.shards)
        } else {
            String::new()
        },
    );
    if !args.fault_plan.is_empty() {
        println!(
            "faults: seed {:#x}, retry budget {}, hedge {}, deadline {}",
            args.fault_plan.seed,
            args.retries,
            if args.hedge_after_ms == 0 {
                "off".to_string()
            } else {
                format!("{}ms", args.hedge_after_ms)
            },
            if args.deadline_ms == 0 {
                "off".to_string()
            } else {
                format!("{}ms", args.deadline_ms)
            },
        );
    }

    if args.shards > 1 {
        run_fleet(&args, specs, opts, policy);
    } else {
        run_single(&args, specs, opts, policy);
    }
}

/// The classic single-engine path (`--shards 1`), byte-identical in
/// behavior to the pre-fleet binary.
fn run_single(args: &Args, specs: Vec<JobSpec>, opts: ServeOptions, policy: DispatchPolicy) {
    let service = synthetic_service_with(&specs, args.fault_plan.clone(), policy);
    let mut engine = ServeEngine::new(opts, service);
    for spec in specs {
        engine.push_job(spec);
    }
    engine.run();
    let report = engine.report();

    println!();
    println!(
        "jobs        {:>8} done / {} pushed in {} steps ({} sim waves, {} overlapped)",
        report.done,
        report.jobs,
        report.stats.rounds,
        report.stats.sim_waves,
        report.stats.overlap_steps
    );
    if report.failed > 0 || report.stats.retries > 0 || report.stats.rate_limit_defers > 0 {
        println!(
            "resilience  {:>8} retries, {} hedges, {} rate-limit defers, {} failovers, {} jobs failed",
            report.stats.retries,
            report.stats.hedges,
            report.stats.rate_limit_defers,
            report.stats.failovers,
            report.failed
        );
    }
    println!(
        "throughput  {:>8.2} jobs/s   wall {:.2}s   latency mean {:.2}s max {:.2}s",
        report.jobs_per_sec, report.wall_s, report.mean_latency_s, report.max_latency_s
    );
    println!(
        "llm         {:>8} requests in {} dispatch calls ({:.1} avg/batch)",
        report.stats.llm_requests,
        report.stats.llm_batch_calls,
        report.stats.llm_requests as f64 / report.stats.llm_batch_calls.max(1) as f64
    );
    println!(
        "sim         {:>8} requests   design cache {} hits / {} misses ({:.1}% hit)",
        report.stats.sim_requests,
        report.cache_hits,
        report.cache_misses,
        100.0 * report.cache_hits as f64 / (report.cache_hits + report.cache_misses).max(1) as f64
    );
    println!(
        "scores      {:>8} shared hits / {} misses / {} collisions / {} delta short-circuits",
        report.score_hits, report.score_misses, report.score_collisions, report.score_shortcircuits
    );
    println!(
        "units       {:>8} delta hits / {} misses / {} collisions",
        report.unit_hits, report.unit_misses, report.unit_collisions
    );
    println!(
        "tokens      {:>8} prompt + {} completion",
        report.stats.total_usage.prompt, report.stats.total_usage.completion
    );
    if args.grade {
        let (passed, graded, score_sum) = grade_traces(engine.traces().into_iter().map(|(_, t)| t));
        if graded > 0 {
            println!(
                "grading     {:>8.3} pass rate ({passed}/{graded})   mean engine score {:.3}",
                passed as f64 / graded as f64,
                score_sum / graded as f64
            );
        }
    }
}

/// The sharded path (`--shards N`, N ≥ 2).
fn run_fleet(args: &Args, specs: Vec<JobSpec>, opts: ServeOptions, policy: DispatchPolicy) {
    let pinned = args.placement_trace.as_ref().and_then(|path| {
        match std::fs::read_to_string(path) {
            Ok(text) => {
                let trace = PlacementTrace::parse(&text)
                    .unwrap_or_else(|e| panic!("--placement-trace {path}: {e}"));
                println!(
                    "placement: pinned from {path} ({} placements, {} migrations)",
                    trace.placements.len(),
                    trace.migrations.len()
                );
                Some(trace)
            }
            Err(_) => None, // absent: record this run into it below
        }
    });
    let recording = pinned.is_none();

    let fleet_opts = FleetOptions {
        shards: args.shards,
        serve: opts,
        migrate_after_steps: args.migrate_after_steps,
        pinned,
        ..FleetOptions::default()
    };
    let mut fleet = FleetEngine::synthetic_with(fleet_opts, args.fault_plan.clone(), policy);
    for spec in specs {
        fleet.push_job(spec);
    }
    let report = fleet.run();

    if recording {
        if let Some(path) = &args.placement_trace {
            std::fs::write(path, report.trace.render())
                .unwrap_or_else(|e| panic!("--placement-trace {path}: write failed: {e}"));
            println!(
                "placement: recorded {} placements, {} migrations into {path}",
                report.trace.placements.len(),
                report.trace.migrations.len()
            );
        }
    }

    println!();
    println!(
        "fleet       {:>8} done / {} pushed on {} shards in {} rounds",
        report.done,
        report.jobs,
        report.shards.len(),
        report.rounds
    );
    println!(
        "placement   {:>8} placements, {} migrations, {} restarts",
        report.placements, report.migrations, report.restarts
    );
    for (ix, shard) in report.shards.iter().enumerate() {
        println!(
            "  shard {ix}   {:>6} done / {} pushed   {} llm calls   {} sim requests   {} steps",
            shard.done,
            shard.jobs,
            shard.stats.llm_batch_calls,
            shard.stats.sim_requests,
            shard.stats.rounds
        );
    }
    if report.failed > 0 || report.stats.retries > 0 || report.stats.rate_limit_defers > 0 {
        println!(
            "resilience  {:>8} retries, {} hedges, {} rate-limit defers, {} failovers, {} jobs failed",
            report.stats.retries,
            report.stats.hedges,
            report.stats.rate_limit_defers,
            report.stats.failovers,
            report.failed
        );
    }
    println!(
        "throughput  {:>8.2} jobs/s   wall {:.2}s",
        report.done as f64 / report.wall_s.max(1e-9),
        report.wall_s
    );
    println!(
        "llm         {:>8} requests in {} dispatch calls ({:.1} avg/batch)",
        report.stats.llm_requests,
        report.stats.llm_batch_calls,
        report.stats.llm_requests as f64 / report.stats.llm_batch_calls.max(1) as f64
    );
    let f = &report.fabric;
    println!(
        "fabric      design local {} hits / {} misses / {} promoted; global {} hits / {} misses",
        f.design_local.hits,
        f.design_local.misses,
        f.design_local.promotions,
        f.design_global.hits,
        f.design_global.misses
    );
    println!(
        "            scores local {} hits / {} misses / {} promoted; global {} hits / {} misses",
        f.score_local.hits,
        f.score_local.misses,
        f.score_local.promotions,
        f.score_global.hits,
        f.score_global.misses
    );
    println!(
        "            units  local {} hits / {} misses / {} promoted; global {} hits / {} misses",
        f.unit_local.hits,
        f.unit_local.misses,
        f.unit_local.promotions,
        f.unit_global.hits,
        f.unit_global.misses
    );
    println!(
        "tokens      {:>8} prompt + {} completion",
        report.stats.total_usage.prompt, report.stats.total_usage.completion
    );
    if args.grade {
        let (passed, graded, score_sum) = grade_traces(report.traces.iter().map(|(_, t)| t));
        if graded > 0 {
            println!(
                "grading     {:>8.3} pass rate ({passed}/{graded})   mean engine score {:.3}",
                passed as f64 / graded as f64,
                score_sum / graded as f64
            );
        }
    }
}
