//! Roster-based synthetic services for fleet shards.
//!
//! A plain [`synthetic_service`](mage_serve::synthetic_service) seeds
//! job `i`'s model from a spec table frozen at construction — which
//! cannot work on a shard, because a shard may later *receive* a
//! migrated job it never saw a spec for. The fleet variant reads a live
//! [`JobRoster`] instead: the shard thread registers `(problem_id,
//! seed)` under the local job id immediately before every push or
//! restore, so the factory always finds its entry.
//!
//! Seeding is identical to the single-engine service — a fresh
//! [`SyntheticModel`] per job, seeded with the job's own spec seed —
//! which is the root of the fleet determinism contract: a job's model
//! (and hence its trace) does not depend on which shard runs it.

use crate::shard::JobRoster;
use mage_llm::{DispatchPolicy, FaultPlan, SyntheticModel, SyntheticModelConfig};
use mage_serve::{FaultyService, JobId, PerJobModels, SyntheticPerJob, SYNTHETIC_BACKENDS};

/// A shard's synthetic service: plan from `MAGE_FAULT_PLAN`, default
/// dispatch policy. Mirrors [`mage_serve::synthetic_service`] exactly
/// except that specs are read from the live roster.
pub fn synthetic_shard_service(roster: &JobRoster) -> FaultyService<SyntheticPerJob> {
    synthetic_shard_service_with(roster, FaultPlan::from_env(), DispatchPolicy::default())
}

/// [`synthetic_shard_service`] with an explicit fault plan and policy.
pub fn synthetic_shard_service_with(
    roster: &JobRoster,
    plan: FaultPlan,
    policy: DispatchPolicy,
) -> FaultyService<SyntheticPerJob> {
    let roster = roster.clone();
    let inner: SyntheticPerJob = PerJobModels::new(Box::new(move |id: JobId| {
        let (problem_id, seed) = roster.get(id).unwrap_or_else(|| {
            panic!("job {id} is not on this shard's roster (restore without registration?)")
        });
        let p = mage_problems::by_id(&problem_id).expect("problem registered in the registry");
        let mut model = SyntheticModel::new(SyntheticModelConfig::default(), seed);
        model.register(p.id, p.oracle(seed));
        model
    }));
    FaultyService::new(inner, plan, SYNTHETIC_BACKENDS, policy)
}
