//! `mage-fleet` — a sharded serve cluster for MAGE job streams.
//!
//! A [`FleetEngine`] runs N [`mage_serve::ServeEngine`] shards, each on
//! its own OS thread, behind a deterministic controller that owns every
//! scheduling decision:
//!
//! - **Affinity routing** — jobs hash to a home shard by problem id
//!   (keeping that problem's compiled designs and score entries in the
//!   shard's local cache tier), spilling to the lightest shard when the
//!   home is overloaded.
//! - **Job migration** — hot shards shed work at step boundaries by
//!   checkpointing a job ([`mage_serve::JobCheckpoint`], carrying model
//!   state, retry ledger and a backend-health snapshot) and restoring
//!   it on a cold shard; the same mechanism powers graceful
//!   [`FleetEngine::drain_shard`] / [`FleetEngine::restart_shard`].
//! - **Tiered cache fabric** — per-shard local LRU tiers backed by one
//!   shared global content-keyed tier, with per-tier hit/miss/promotion
//!   counters aggregated in [`FleetReport::fabric`].
//! - **Replayable placement** — every decision lands in a
//!   [`PlacementTrace`]; pin it via [`FleetOptions::pinned`] and the
//!   run replays bit-for-bit.
//!
//! The determinism contract (job traces are placement-invariant; the
//! schedule replays under a pinned trace) is spelled out in the
//! [`fleet`](self) controller module docs — see [`FleetEngine`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod fleet;
mod service;
mod shard;
mod trace;

pub use fleet::{CacheTierStats, FabricStats, FleetEngine, FleetOptions, FleetReport};
pub use service::{synthetic_shard_service, synthetic_shard_service_with};
pub use shard::JobRoster;
pub use trace::{Migration, Placement, PlacementTrace};
