//! The replayable placement record: every routing decision a
//! [`FleetEngine`](crate::FleetEngine) makes, as a plain value.
//!
//! A recorded trace pins a later run: replayed placements and
//! migrations are applied verbatim at the same round boundaries, so
//! the replay's schedule — which shard runs which job, when each job
//! moves — is bit-identical to the recording. The text form is
//! line-oriented and diff-friendly:
//!
//! ```text
//! # mage-fleet placement trace v1
//! place 0 1
//! place 1 0
//! migrate 4 0 1 2
//! ```
//!
//! `place <job> <shard>` records an admission; `migrate <round> <job>
//! <from> <to>` records a checkpoint-based move applied in the
//! inter-barrier window after fleet round `<round>`.

/// Magic first line of the text serialization.
const HEADER: &str = "# mage-fleet placement trace v1";

/// One admission decision: fleet job → shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Placement {
    /// Fleet-wide job id (push order).
    pub job: usize,
    /// The shard the job was admitted to.
    pub shard: usize,
}

/// One checkpoint-based job move.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Migration {
    /// The fleet round after whose barrier the move was applied.
    pub round: u64,
    /// Fleet-wide job id.
    pub job: usize,
    /// Source shard.
    pub from: usize,
    /// Target shard.
    pub to: usize,
}

/// Every placement decision of one fleet run, in decision order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PlacementTrace {
    /// Admissions, in fleet-job order.
    pub placements: Vec<Placement>,
    /// Migrations, in application order.
    pub migrations: Vec<Migration>,
}

impl PlacementTrace {
    /// The recorded admission shard of `job`, when present.
    pub fn shard_of(&self, job: usize) -> Option<usize> {
        self.placements
            .iter()
            .find(|p| p.job == job)
            .map(|p| p.shard)
    }

    /// Migrations recorded in the inter-barrier window after `round`,
    /// in application order.
    pub fn migrations_at(&self, round: u64) -> Vec<Migration> {
        self.migrations
            .iter()
            .filter(|m| m.round == round)
            .copied()
            .collect()
    }

    /// `true` when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.placements.is_empty() && self.migrations.is_empty()
    }

    /// The line-oriented text form (see the module docs).
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(32 + 16 * (self.placements.len() + 1));
        out.push_str(HEADER);
        out.push('\n');
        for p in &self.placements {
            out.push_str(&format!("place {} {}\n", p.job, p.shard));
        }
        for m in &self.migrations {
            out.push_str(&format!(
                "migrate {} {} {} {}\n",
                m.round, m.job, m.from, m.to
            ));
        }
        out
    }

    /// Parse the text form back. Unknown directives, short lines and
    /// non-numeric fields are structured errors, not panics — a pinned
    /// trace usually comes from a file.
    pub fn parse(text: &str) -> Result<PlacementTrace, String> {
        let mut lines = text.lines().enumerate();
        match lines.next() {
            Some((_, first)) if first.trim() == HEADER => {}
            Some((_, first)) => {
                return Err(format!("bad header `{first}` (expected `{HEADER}`)"));
            }
            None => return Err("empty placement trace".to_string()),
        }
        let mut trace = PlacementTrace::default();
        for (ln, line) in lines {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let fields: Vec<&str> = line.split_whitespace().collect();
            let num = |s: &str, what: &str| -> Result<u64, String> {
                s.parse::<u64>()
                    .map_err(|_| format!("line {}: bad {what} `{s}`", ln + 1))
            };
            match fields.as_slice() {
                ["place", job, shard] => trace.placements.push(Placement {
                    job: num(job, "job")? as usize,
                    shard: num(shard, "shard")? as usize,
                }),
                ["migrate", round, job, from, to] => trace.migrations.push(Migration {
                    round: num(round, "round")?,
                    job: num(job, "job")? as usize,
                    from: num(from, "shard")? as usize,
                    to: num(to, "shard")? as usize,
                }),
                _ => return Err(format!("line {}: unparseable `{line}`", ln + 1)),
            }
        }
        Ok(trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_parse_round_trips() {
        let trace = PlacementTrace {
            placements: vec![
                Placement { job: 0, shard: 1 },
                Placement { job: 1, shard: 0 },
                Placement { job: 2, shard: 1 },
            ],
            migrations: vec![Migration {
                round: 4,
                job: 2,
                from: 1,
                to: 0,
            }],
        };
        let text = trace.render();
        assert_eq!(PlacementTrace::parse(&text).unwrap(), trace);
        assert_eq!(trace.shard_of(1), Some(0));
        assert_eq!(trace.shard_of(9), None);
        assert_eq!(trace.migrations_at(4).len(), 1);
        assert!(trace.migrations_at(3).is_empty());
    }

    #[test]
    fn parse_rejects_garbage_with_structured_errors() {
        assert!(PlacementTrace::parse("").is_err());
        assert!(PlacementTrace::parse("not a trace\n").is_err());
        let bad_directive = format!("{HEADER}\nteleport 1 2\n");
        assert!(PlacementTrace::parse(&bad_directive).is_err());
        let bad_number = format!("{HEADER}\nplace one 2\n");
        assert!(PlacementTrace::parse(&bad_number).is_err());
        // Comments and blank lines are tolerated.
        let ok = format!("{HEADER}\n\n# note\nplace 0 0\n");
        assert_eq!(PlacementTrace::parse(&ok).unwrap().placements.len(), 1);
    }
}
