//! Fleet determinism: a sharded run must retire every job with a
//! `SolveTrace` bit-identical to a single `ServeEngine` over the same
//! stream — whatever the shard count, scheduler mode, worker count, or
//! fault plan — and a run replayed under its own recorded
//! `PlacementTrace` must re-record that trace exactly.
//!
//! Like the serve suites, the service plan comes from `MAGE_FAULT_PLAN`
//! (via `FleetEngine::synthetic`), so CI re-runs this whole file under
//! the canonical chaos plan; the explicit-plan tests pin canonical
//! regardless of the environment.

use mage_core::{MageConfig, SolveTrace};
use mage_fleet::{FleetEngine, FleetOptions};
use mage_llm::{DispatchPolicy, FaultPlan};
use mage_serve::{synthetic_service, JobSpec, SchedMode, ServeEngine, ServeOptions};

const PROBLEMS: [&str; 4] = [
    "prob012_mux4_case",
    "prob029_alu4",
    "prob044_pipeline2",
    "prob010_mux2",
];

fn specs(runs: usize) -> Vec<JobSpec> {
    let mut out = Vec::new();
    for run in 0..runs {
        for (pix, id) in PROBLEMS.iter().enumerate() {
            let p = mage_problems::by_id(id).expect("corpus problem");
            out.push(JobSpec {
                problem_id: p.id.to_string(),
                spec: p.spec.to_string(),
                config: MageConfig::high_temperature(),
                seed: 1000 + (run * PROBLEMS.len() + pix) as u64,
            });
        }
    }
    out
}

/// A stream of one problem only: affinity routes every job to the same
/// home shard, so (with a wide spread) rebalancing must kick in.
fn skewed_specs(n: usize) -> Vec<JobSpec> {
    let p = mage_problems::by_id("prob029_alu4").expect("corpus problem");
    (0..n)
        .map(|ix| JobSpec {
            problem_id: p.id.to_string(),
            spec: p.spec.to_string(),
            config: MageConfig::high_temperature(),
            seed: 7000 + ix as u64,
        })
        .collect()
}

fn serve_opts(sched: SchedMode, workers: usize) -> ServeOptions {
    ServeOptions {
        workers,
        batch_llm: true,
        max_in_flight: 0,
        sched,
        ..ServeOptions::default()
    }
}

/// The single-engine reference: traces in job (= push) order.
fn single_engine(stream: &[JobSpec], opts: ServeOptions) -> Vec<SolveTrace> {
    let service = synthetic_service(stream);
    let mut engine = ServeEngine::new(opts, service);
    for spec in stream {
        engine.push_job(spec.clone());
    }
    engine.run();
    let traces: Vec<SolveTrace> = engine
        .traces()
        .into_iter()
        .map(|(_, t)| t.clone())
        .collect();
    assert_eq!(traces.len(), stream.len(), "all jobs retire");
    traces
}

/// Push a stream through a fleet and return its traces in fleet-job
/// order, asserting every job retired exactly once.
fn fleet_traces(report: &mage_fleet::FleetReport, n: usize) -> Vec<SolveTrace> {
    assert_eq!(report.done, n, "all jobs retire");
    assert_eq!(report.traces.len(), n, "one trace per job");
    for (ix, (id, _)) in report.traces.iter().enumerate() {
        assert_eq!(*id, ix, "trace ids are dense fleet ids");
    }
    report.traces.iter().map(|(_, t)| t.clone()).collect()
}

fn run_fleet(stream: &[JobSpec], opts: FleetOptions) -> mage_fleet::FleetReport {
    let mut fleet = FleetEngine::synthetic(opts);
    for spec in stream {
        fleet.push_job(spec.clone());
    }
    fleet.run()
}

#[test]
fn fleet_matches_single_engine_across_shard_counts_and_modes() {
    let stream = specs(3);
    let reference = single_engine(&stream, serve_opts(SchedMode::Bsp, 1));
    for sched in [SchedMode::Bsp, SchedMode::Wave] {
        for shards in [1usize, 2, 4] {
            let report = run_fleet(
                &stream,
                FleetOptions {
                    shards,
                    serve: serve_opts(sched, 2),
                    migrate_after_steps: 4,
                    ..FleetOptions::default()
                },
            );
            let got = fleet_traces(&report, stream.len());
            assert_eq!(got, reference, "diverged at {shards} shards / {sched}");
            assert_eq!(report.placements, stream.len());
        }
    }
}

#[test]
fn fleet_determinism_holds_under_the_canonical_fault_plan() {
    let stream = specs(2);
    let plan = FaultPlan::parse("canonical").expect("canonical preset");
    let policy = DispatchPolicy::default();

    let service = mage_serve::synthetic_service_with(&stream, plan.clone(), policy.clone());
    let mut engine = ServeEngine::new(serve_opts(SchedMode::Bsp, 1), service);
    for spec in &stream {
        engine.push_job(spec.clone());
    }
    engine.run();
    let reference: Vec<SolveTrace> = engine
        .traces()
        .into_iter()
        .map(|(_, t)| t.clone())
        .collect();
    assert_eq!(reference.len(), stream.len());

    for sched in [SchedMode::Bsp, SchedMode::Wave] {
        for shards in [2usize, 4] {
            let mut fleet = FleetEngine::synthetic_with(
                FleetOptions {
                    shards,
                    serve: serve_opts(sched, 2),
                    migrate_after_steps: 3,
                    ..FleetOptions::default()
                },
                plan.clone(),
                policy.clone(),
            );
            for spec in &stream {
                fleet.push_job(spec.clone());
            }
            let report = fleet.run();
            let got = fleet_traces(&report, stream.len());
            assert_eq!(
                got, reference,
                "canonical plan diverged at {shards} shards / {sched}"
            );
            // The fault plan actually fired, and the shards' health
            // observations survived aggregation (merge, not clobber).
            assert!(report.stats.retries > 0, "canonical plan injected nothing");
            let health = report.health.as_ref().expect("faulty service health");
            assert!(
                health.backends.iter().map(|b| b.calls).sum::<u64>() > 0,
                "merged health lost every observation"
            );
        }
    }
}

#[test]
fn skewed_stream_rebalances_and_replays_bit_identically() {
    let stream = skewed_specs(10);
    let record_opts = FleetOptions {
        shards: 3,
        serve: serve_opts(SchedMode::Wave, 2),
        migrate_after_steps: 2,
        // A wide spread defeats placement-time spilling, so the whole
        // skewed stream lands on its affinity shard and only the
        // rebalancer can spread it.
        spread: 64,
        ..FleetOptions::default()
    };
    let recorded = run_fleet(&stream, record_opts.clone());
    assert!(
        recorded.migrations > 0,
        "skewed stream produced no migrations to replay"
    );
    let home = recorded.trace.shard_of(0).unwrap();
    for job in 0..stream.len() {
        assert_eq!(
            recorded.trace.shard_of(job),
            Some(home),
            "wide spread must keep the skewed stream on its home shard"
        );
    }

    let replayed = run_fleet(
        &stream,
        FleetOptions {
            pinned: Some(recorded.trace.clone()),
            ..record_opts
        },
    );
    assert_eq!(
        replayed.trace, recorded.trace,
        "replay re-recorded a different placement trace"
    );
    assert_eq!(
        fleet_traces(&replayed, stream.len()),
        fleet_traces(&recorded, stream.len()),
        "replay changed a solve trace"
    );

    // And the whole migrating run still matches one engine.
    let reference = single_engine(&stream, serve_opts(SchedMode::Bsp, 1));
    assert_eq!(fleet_traces(&recorded, stream.len()), reference);
}

#[test]
fn mid_stream_migration_is_invisible_in_every_mode_and_worker_count() {
    let stream = specs(2);
    let reference = single_engine(&stream, serve_opts(SchedMode::Bsp, 1));
    for sched in [SchedMode::Bsp, SchedMode::Wave] {
        for workers in [1usize, 2, 8] {
            let mut fleet = FleetEngine::synthetic(FleetOptions {
                shards: 2,
                serve: serve_opts(sched, workers),
                ..FleetOptions::default()
            });
            for spec in &stream {
                fleet.push_job(spec.clone());
            }
            // A couple of waves in, lift job 0 off its shard and
            // restore it on the other one, mid-flight.
            for _ in 0..3 {
                fleet.run_round();
            }
            let from = fleet.trace().shard_of(0).expect("job 0 placed");
            assert!(
                fleet.migrate(0, 1 - from),
                "job 0 should still be running after three rounds"
            );
            let report = fleet.run();
            assert!(report.migrations >= 1);
            let got = fleet_traces(&report, stream.len());
            assert_eq!(
                got, reference,
                "migration changed a trace at {sched}/{workers} workers"
            );
        }
    }
}

#[test]
fn drain_and_restart_preserve_every_trace() {
    let stream = specs(3);
    let reference = single_engine(&stream, serve_opts(SchedMode::Bsp, 1));
    let mut fleet = FleetEngine::synthetic(FleetOptions {
        shards: 3,
        serve: serve_opts(SchedMode::Wave, 2),
        ..FleetOptions::default()
    });
    for spec in &stream {
        fleet.push_job(spec.clone());
    }
    for _ in 0..2 {
        fleet.run_round();
    }
    let moved = fleet.restart_shard(0);
    assert!(moved > 0, "shard 0 should have held work to move");
    for _ in 0..2 {
        fleet.run_round();
    }
    fleet.restart_shard(1);
    let report = fleet.run();
    assert_eq!(report.restarts, 2);
    assert!(report.migrations >= moved);
    let got = fleet_traces(&report, stream.len());
    assert_eq!(got, reference, "drain/restart changed a trace");
}

#[test]
fn affinity_keeps_a_problem_on_one_shard_and_spill_balances_load() {
    // Pure affinity (wide spread): every run of a problem lands on the
    // same shard.
    let stream = specs(4);
    let report = run_fleet(
        &stream,
        FleetOptions {
            shards: 4,
            serve: serve_opts(SchedMode::Wave, 2),
            spread: 64,
            ..FleetOptions::default()
        },
    );
    for id in PROBLEMS {
        let shards: Vec<usize> = stream
            .iter()
            .enumerate()
            .filter(|(_, s)| s.problem_id == id)
            .map(|(job, _)| report.trace.shard_of(job).expect("placed"))
            .collect();
        assert!(
            shards.windows(2).all(|w| w[0] == w[1]),
            "{id}: affinity split a problem across shards: {shards:?}"
        );
    }

    // Zero spread: a single-problem burst must spill off its home
    // shard instead of queueing there.
    let skew = skewed_specs(6);
    let spilled = run_fleet(
        &skew,
        FleetOptions {
            shards: 2,
            serve: serve_opts(SchedMode::Wave, 1),
            spread: 0,
            ..FleetOptions::default()
        },
    );
    for shard in 0..2usize {
        let landed = (0..skew.len())
            .filter(|&j| spilled.trace.shard_of(j) == Some(shard))
            .count();
        assert!(
            landed >= 2,
            "zero spread should balance the burst, shard {shard} got {landed}/6"
        );
    }
    assert_eq!(fleet_traces(&spilled, skew.len()).len(), skew.len());
}

#[test]
fn cache_fabric_shares_work_across_shards() {
    // Four copies of the same problem forced onto four different
    // shards: their identical candidate designs can only be shared
    // through the global tier.
    let stream = skewed_specs(8);
    let report = run_fleet(
        &stream,
        FleetOptions {
            shards: 4,
            serve: serve_opts(SchedMode::Wave, 1),
            spread: 0,
            ..FleetOptions::default()
        },
    );
    assert_eq!(report.done, stream.len());
    let f = &report.fabric;
    assert!(
        f.design_local.hits + f.design_local.misses > 0,
        "no design-cache traffic at all"
    );
    assert!(
        f.design_global.hits + f.design_global.misses > 0,
        "local tiers never consulted the global tier"
    );
    assert!(
        f.design_local.promotions <= f.design_local.misses,
        "promotions can only happen on local misses"
    );
    assert!(
        f.score_local.promotions <= f.score_local.misses,
        "score promotions can only happen on local misses"
    );
    // Every whole-design miss delta-compiles through the unit tier, so
    // cold caches must generate per-process unit traffic too — unless
    // the from-scratch oracle leg (MAGE_SIM_DELTA=off) is active, in
    // which case the unit tiers must stay completely untouched.
    let delta_off = std::env::var("MAGE_SIM_DELTA")
        .map(|v| matches!(v.to_ascii_lowercase().as_str(), "off" | "0" | "false"))
        .unwrap_or(false);
    if delta_off {
        assert_eq!(
            (
                f.unit_local.hits + f.unit_local.misses,
                f.unit_global.hits + f.unit_global.misses
            ),
            (0, 0),
            "MAGE_SIM_DELTA=off must never touch the unit tiers"
        );
    } else {
        assert!(
            f.unit_local.hits + f.unit_local.misses > 0,
            "no unit-tier traffic at all"
        );
        assert!(
            f.unit_global.hits + f.unit_global.misses > 0,
            "local unit tiers never consulted the global tier"
        );
        assert!(
            f.unit_local.promotions <= f.unit_local.misses,
            "unit promotions can only happen on local misses"
        );
    }
}
