//! Elaboration and four-state simulation for the MAGE Verilog subset.
//!
//! This crate replaces the Icarus Verilog compile-and-simulate loop the
//! MAGE paper uses: [`elaborate`] flattens a parsed design into signals
//! and compiled processes, and [`Simulator`] executes it with
//! combinational-fixpoint and non-blocking-assignment clock semantics,
//! with full `X`/`Z` propagation.
//!
//! Elaboration is *unit-based*: every process is produced as a
//! content-addressed compilation unit keyed by `(item fingerprint,
//! binding hash, ordinal)` — see the [`unit`] module. [`elaborate_with`]
//! probes a [`UnitSource`] (typically the candidate's parent design via
//! [`DesignUnits`], optionally chained over a serve-layer cache) and
//! reuses every verified hit verbatim, interpreter form and bytecode
//! both, so a one-process edit rebuilds one unit instead of the whole
//! design. [`elaborate`] is the same pipeline without a provider and
//! stays live as the differential oracle (`MAGE_SIM_DELTA=off` makes
//! every caller take it); delta-built designs are store-exact against
//! it by construction (full text + environment verification on every
//! unit hit).
//!
//! The intended cycle-level usage mirrors a Verilog testbench: drive
//! inputs with [`Simulator::poke`] (or a whole step's drives at once
//! with [`Simulator::poke_many`]), toggle the clock input, and read
//! outputs with [`Simulator::peek`]. The `mage-tb` crate builds the
//! paper's checkpointed testbench protocol on top of this interface.
//!
//! Process bodies execute on a compile-once bytecode core: every body
//! is lowered ([`compile`]) to a flat width-annotated instruction
//! stream — once per [`Design`], shared by every simulator over it —
//! that the interpreter ([`interp`]) runs over pre-sized register
//! files, with a narrow fast path on raw plane words when every value
//! fits in 64 bits and a **two-state fast path** on top of it: when an
//! eligible process's inputs are fully defined, its bytecode executes
//! over the aval plane only (Verilator-style), falling back to
//! four-state on demand — an `X`/`Z` appearing on any read, or an
//! X-producing hazard mid-run, rewinds and re-runs the four-state
//! path. Scheduling is event-driven: a two-region event wheel (active
//! combinational events + an NBA commit region) fans each signal
//! change out to exactly the processes whose bytecode reads it, and
//! dispatches clock edges through per-edge trigger lists computed at
//! elaboration — see the [`sim`](Simulator) module docs for the full
//! three-executor stack. The original tree-walking evaluator
//! ([`eval`]/[`exec`]) with its scan-based worklist scheduler remains
//! available as the differential-testing oracle via
//! [`ExecMode::Legacy`] (or the `MAGE_SIM_EXEC=legacy` environment
//! hook); `MAGE_SIM_TWO_STATE=off` pins the compiled executor to pure
//! four-state.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use mage_logic::LogicVec;
//! use mage_sim::{elaborate, Simulator};
//!
//! let file = mage_verilog::parse(
//!     "module counter(input clk, input rst, output reg [3:0] q);
//!        always @(posedge clk) if (rst) q <= 4'd0; else q <= q + 4'd1;
//!      endmodule",
//! ).unwrap();
//! let design = Arc::new(elaborate(&file, "counter")?);
//! let mut sim = Simulator::new(design);
//! sim.settle().unwrap();
//! sim.poke("rst", LogicVec::from_bool(true)).unwrap();
//! sim.poke("clk", LogicVec::from_bool(false)).unwrap();
//! sim.poke("clk", LogicVec::from_bool(true)).unwrap(); // reset edge
//! sim.poke("rst", LogicVec::from_bool(false)).unwrap();
//! for _ in 0..3 {
//!     sim.poke("clk", LogicVec::from_bool(false)).unwrap();
//!     sim.poke("clk", LogicVec::from_bool(true)).unwrap();
//! }
//! assert_eq!(sim.peek_by_name("q").unwrap().to_u64(), Some(3));
//! # Ok::<(), mage_sim::ElabError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compile;
pub mod coverage;
mod design;
mod elab;
mod error;
mod eval;
pub mod interp;
pub mod plan;
mod sim;
pub mod unit;
mod vcd;

pub use compile::{
    assemble_design, compile_design, compile_process, CompiledDesign, CompiledProcess,
};
pub use coverage::FuzzCoverage;
pub use design::{CExpr, CLValue, CStmt, Design, Process, SignalDecl, SignalId};
pub use elab::{elaborate, elaborate_delta, elaborate_with, fold_const_expr};
pub use error::{ElabError, SimError};
pub use eval::{eval, exec, PendingWrite, Store};
pub use plan::{fuse_enabled, CascadePlan, EvalPlan, PlanOp};
pub use sim::{EvalCounts, ExecMode, Simulator};
pub use unit::{
    delta_enabled, unit_hash, ChainedUnits, DeltaStats, DesignUnits, ProcessUnit, UnitKey,
    UnitSource, UnitTag,
};
pub use vcd::VcdRecorder;
