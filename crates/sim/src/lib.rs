//! Elaboration and four-state simulation for the MAGE Verilog subset.
//!
//! This crate replaces the Icarus Verilog compile-and-simulate loop the
//! MAGE paper uses: [`elaborate`] flattens a parsed design into signals
//! and compiled processes, and [`Simulator`] executes it with
//! combinational-fixpoint and non-blocking-assignment clock semantics,
//! with full `X`/`Z` propagation.
//!
//! The intended cycle-level usage mirrors a Verilog testbench: drive
//! inputs with [`Simulator::poke`], toggle the clock input, and read
//! outputs with [`Simulator::peek`]. The `mage-tb` crate builds the
//! paper's checkpointed testbench protocol on top of this interface.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use mage_logic::LogicVec;
//! use mage_sim::{elaborate, Simulator};
//!
//! let file = mage_verilog::parse(
//!     "module counter(input clk, input rst, output reg [3:0] q);
//!        always @(posedge clk) if (rst) q <= 4'd0; else q <= q + 4'd1;
//!      endmodule",
//! ).unwrap();
//! let design = Arc::new(elaborate(&file, "counter")?);
//! let mut sim = Simulator::new(design);
//! sim.settle().unwrap();
//! sim.poke("rst", LogicVec::from_bool(true)).unwrap();
//! sim.poke("clk", LogicVec::from_bool(false)).unwrap();
//! sim.poke("clk", LogicVec::from_bool(true)).unwrap(); // reset edge
//! sim.poke("rst", LogicVec::from_bool(false)).unwrap();
//! for _ in 0..3 {
//!     sim.poke("clk", LogicVec::from_bool(false)).unwrap();
//!     sim.poke("clk", LogicVec::from_bool(true)).unwrap();
//! }
//! assert_eq!(sim.peek_by_name("q").unwrap().to_u64(), Some(3));
//! # Ok::<(), mage_sim::ElabError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod design;
mod elab;
mod error;
mod eval;
mod sim;
mod vcd;

pub use design::{CExpr, CLValue, CStmt, Design, Process, SignalDecl, SignalId};
pub use elab::{elaborate, fold_const_expr};
pub use error::{ElabError, SimError};
pub use eval::{eval, exec, PendingWrite, Store};
pub use sim::Simulator;
pub use vcd::VcdRecorder;
