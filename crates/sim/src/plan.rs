//! Whole-design evaluation plans: superinstruction fusion and
//! straight-line comb-cascade execution for hazard-free streams.
//!
//! The two-state pure interpreter ([`crate::interp`]) still pays one
//! dispatch per bytecode instruction. This module closes that gap for
//! [`CompiledProcess::hazard_free`] streams in three layers:
//!
//! 1. **Superinstruction fusion** — [`build_plan`] peephole-fuses the
//!    common instruction sequences of the corpus (load-op-store,
//!    compare-branch, mask-shift-merge, wire moves) into single
//!    [`PlanOp`] opcodes executed without intermediate dispatch, and
//!    pre-resolves every constant-pool and width indirection into the
//!    opcode itself.
//! 2. **Process coalescing** — the resulting [`EvalPlan`] is one
//!    straight-line program over registers pre-bound to bare `u64`
//!    aval slots: no per-instruction width checks, no four-state plane
//!    bookkeeping, no SSA file indirection beyond the slot array the
//!    simulator already owns for hazard-free processes.
//! 3. **Cascade fusion** — [`build_cascades`] uses the per-process
//!    read/write sets to compute a static topological order over each
//!    hazard-free combinational closure, so one signal change runs one
//!    [`CascadePlan`] straight through instead of N event-wheel
//!    enqueues with per-process write-set snapshots.
//!
//! Plans are built unconditionally at compile time (they are cheap and
//! deterministic, so delta-built designs stay structurally exact
//! against scratch builds); only *dispatch* is gated, by
//! [`fuse_enabled`] — `MAGE_SIM_FUSE=off` keeps the unfused pure
//! interpreter live as the differential oracle, read per call with the
//! same discipline as `MAGE_SIM_DELTA`. A fused run is store-exact
//! against the unfused path by construction: every opcode reproduces
//! the corresponding [`Instr`](crate::compile::Instr) semantics of
//! [`crate::interp`]'s hazard-free loop verbatim, which
//! `tests/fused_vs_unfused_corpus.rs` verifies over the whole corpus.
//!
//! Under delta rebuilds, plans invalidate structurally: per-process
//! plans travel inside their content-addressed unit, and cascade plans
//! are rebuilt wholesale by [`crate::assemble_design`] — a rebuilt
//! unit therefore drops every cascade plan whose closure contains it,
//! counted in [`CompiledDesign::invalidated_plans`](crate::CompiledDesign)
//! and surfaced through `DeltaStats`/`EvalCounts` as
//! `plan_invalidations`.

use crate::compile::{BinOp, CmpOp, CompiledProcess, Instr, ReduceOp, Slot};
use crate::design::{Design, Process, SignalId};
use crate::eval::{apply_write, PendingWrite, Store};
use mage_logic::LogicVec;

/// Whether fused-plan dispatch is enabled.
///
/// `MAGE_SIM_FUSE=off` (or `0`/`false`, case-insensitive) disables it,
/// keeping the unfused per-instruction two-state interpreter live as
/// the differential oracle; anything else — including unset — enables
/// it. Snapshotted once per `Simulator` at construction (`env::var`
/// takes a process lock — too hot for the per-drain path); suites that
/// need both sides on live simulators use `Simulator::set_fuse`
/// instead of flipping the environment.
pub fn fuse_enabled() -> bool {
    match std::env::var("MAGE_SIM_FUSE") {
        Ok(v) => {
            let v = v.to_ascii_lowercase();
            !(v == "off" || v == "0" || v == "false")
        }
        Err(_) => true,
    }
}

/// One fused-plan opcode.
///
/// Semantically each variant is one or more
/// [`Instr`](crate::compile::Instr)s of a hazard-free stream with
/// every indirection resolved at build time: constants are inline
/// words, widths are inline masks, and the fused variants
/// (`LoadBinStore`, `CmpBranch`, `MaskMove` chains, …) retire a whole
/// source sequence in a single dispatch. All value slots are bare
/// `u64` aval words — hazard-free streams never touch the bval plane.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanOp {
    /// `dst = val` (constant pre-resolved from the pool).
    Const {
        /// Destination slot.
        dst: Slot,
        /// Pre-masked constant value.
        val: u64,
    },
    /// `dst = (store[sig].aval >> shift) & mask` — whole-signal loads
    /// (`shift == 0`) and statically in-bounds part selects share one
    /// opcode.
    Load {
        /// Destination slot.
        dst: Slot,
        /// Source signal.
        sig: SignalId,
        /// LSB offset into the signal.
        shift: u32,
        /// Destination width mask.
        mask: u64,
    },
    /// `dst = (src >> shift) & mask` — the mask-shift-merge opcode:
    /// `Copy` (`shift == 0`), `Slice`, and fused `Copy`/`Slice` chains
    /// all collapse here.
    MaskMove {
        /// Destination slot.
        dst: Slot,
        /// Source slot.
        src: Slot,
        /// Composed shift amount.
        shift: u32,
        /// Composed width mask.
        mask: u64,
    },
    /// `dst = !a & mask`.
    Not {
        /// Destination slot.
        dst: Slot,
        /// Operand slot.
        a: Slot,
        /// Destination width mask.
        mask: u64,
    },
    /// `dst = a <op> b` (two-state; no div/mod in hazard-free code).
    Bin {
        /// Operator.
        op: BinOp,
        /// Destination slot.
        dst: Slot,
        /// Left operand slot.
        a: Slot,
        /// Right operand slot.
        b: Slot,
        /// Shared operand/result width mask.
        mask: u64,
    },
    /// Fused `Load; Load; Bin`: `dst = store[a] <op> store[b]`.
    LoadBin {
        /// Operator.
        op: BinOp,
        /// Destination slot.
        dst: Slot,
        /// Left source signal.
        a: SignalId,
        /// Right source signal.
        b: SignalId,
        /// Shared width mask.
        mask: u64,
    },
    /// Fused `Load; Load; Bin; Store`: one dispatch for a whole
    /// `assign y = a <op> b` process body.
    LoadBinStore {
        /// Operator.
        op: BinOp,
        /// Left source signal.
        a: SignalId,
        /// Right source signal.
        b: SignalId,
        /// Target signal.
        sig: SignalId,
        /// Store width.
        width: u32,
        /// Shared width mask.
        mask: u64,
    },
    /// Fused `Bin; Store`: `store[sig] = a <op> b`.
    BinStore {
        /// Operator.
        op: BinOp,
        /// Left operand slot.
        a: Slot,
        /// Right operand slot.
        b: Slot,
        /// Target signal.
        sig: SignalId,
        /// Store width.
        width: u32,
        /// Shared width mask.
        mask: u64,
    },
    /// Fused `Load; Store`: a wire alias, one dispatch.
    LoadStore {
        /// Source signal.
        a: SignalId,
        /// Target signal.
        sig: SignalId,
        /// Store width.
        width: u32,
        /// Width mask.
        mask: u64,
    },
    /// Fused `Const; Store`: a constant driver, one dispatch.
    ConstStore {
        /// Pre-masked constant value.
        val: u64,
        /// Target signal.
        sig: SignalId,
        /// Store width.
        width: u32,
    },
    /// `dst = a << amt` / `a >> amt` with the out-of-range amount
    /// producing zero.
    Shift {
        /// `true` = left shift.
        left: bool,
        /// Destination slot.
        dst: Slot,
        /// Value slot.
        a: Slot,
        /// Amount slot.
        amt: Slot,
        /// Destination width.
        w: u32,
        /// Destination width mask.
        mask: u64,
    },
    /// `dst = a && b` / `a || b` on word truth values.
    LogicBin {
        /// `true` = AND.
        and: bool,
        /// Destination slot.
        dst: Slot,
        /// Left operand slot.
        a: Slot,
        /// Right operand slot.
        b: Slot,
    },
    /// Reduction (or logical not) of `a` into `dst`.
    Reduce {
        /// Reduction flavor.
        op: ReduceOp,
        /// Destination slot.
        dst: Slot,
        /// Operand slot.
        a: Slot,
        /// Operand width mask.
        amask: u64,
    },
    /// Comparison of `a` and `b` into `dst` (two-state: case equality
    /// is word equality).
    Cmp {
        /// Comparison flavor.
        op: CmpOp,
        /// Destination slot.
        dst: Slot,
        /// Left operand slot.
        a: Slot,
        /// Right operand slot.
        b: Slot,
    },
    /// Fused `Cmp; JumpIfNotTrue`: branch to `target` when the
    /// comparison is **false**.
    CmpBranch {
        /// Comparison flavor.
        op: CmpOp,
        /// Left operand slot.
        a: Slot,
        /// Right operand slot.
        b: Slot,
        /// Branch target (plan op index).
        target: u32,
    },
    /// `dst = c ? t : f` (condition is a defined word).
    Select {
        /// Destination slot.
        dst: Slot,
        /// Condition slot.
        c: Slot,
        /// Then-branch slot.
        t: Slot,
        /// Else-branch slot.
        f: Slot,
        /// Destination width mask.
        mask: u64,
    },
    /// Concatenation of `(slot, lsb offset)` parts into `dst`.
    Concat {
        /// Destination slot.
        dst: Slot,
        /// `(part slot, LSB offset)` pairs.
        parts: Vec<(Slot, u32)>,
    },
    /// Replication: `n` copies of `src` at stride `w`.
    Repl {
        /// Destination slot.
        dst: Slot,
        /// Source slot.
        src: Slot,
        /// Copy count.
        n: u32,
        /// Source width (stride).
        w: u32,
    },
    /// Unconditional jump.
    Jump {
        /// Target plan op index.
        target: u32,
    },
    /// Branch to `target` when `cond` is zero (two-state
    /// `JumpIfNotTrue`).
    BranchIfZero {
        /// Condition slot.
        cond: Slot,
        /// Target plan op index.
        target: u32,
    },
    /// Branch to `target` when `a == b` (two-state case dispatch: with
    /// no undefined constants both case flavors reduce to word
    /// equality).
    BranchIfEq {
        /// Selector slot.
        a: Slot,
        /// Label slot.
        b: Slot,
        /// Target plan op index.
        target: u32,
    },
    /// General store (partial slices and non-blocking writes).
    Store {
        /// Target signal.
        sig: SignalId,
        /// Value slot.
        src: Slot,
        /// Physical LSB offset.
        lsb: i64,
        /// Slice width.
        width: u32,
        /// `<=` vs `=`.
        nonblocking: bool,
    },
    /// Whole-signal blocking store with the plane-compare fast path.
    StoreWhole {
        /// Target signal.
        sig: SignalId,
        /// Value slot.
        src: Slot,
        /// Signal width.
        width: u32,
    },
    /// Dynamic single-bit store; out-of-range indices write nothing.
    StoreBitDyn {
        /// Target signal.
        sig: SignalId,
        /// Index slot.
        idx: Slot,
        /// Declared LSB rebase.
        lsb_index: i64,
        /// 1-bit value slot.
        src: Slot,
        /// `<=` vs `=`.
        nonblocking: bool,
    },
}

/// One hazard-free process coalesced into a straight-line fused
/// program. Built once per [`CompiledProcess`] by [`build_plan`];
/// executed by [`execute_plan`] over the simulator's bare `u64` slot
/// file.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalPlan {
    /// The fused opcode stream.
    pub ops: Vec<PlanOp>,
    /// Per-op count of source instructions it covers (`> 1` for fused
    /// opcodes) — what the unfused interpreter would have dispatched
    /// on the same control path.
    pub src_counts: Vec<u32>,
    /// Length of the source instruction stream.
    pub source_len: usize,
    /// `true` when any store is non-blocking (such processes are
    /// excluded from comb cascades, whose members commit nothing).
    pub has_nba: bool,
}

impl EvalPlan {
    /// Number of ops that retired more than one source instruction.
    pub fn fused_ops(&self) -> usize {
        self.src_counts.iter().filter(|&&c| c > 1).count()
    }
}

/// A fused combinational cascade: the transitive hazard-free closure
/// of one root process, in static topological order. When the root's
/// input changes and [`reads`](CascadePlan::reads) are fully defined,
/// the scheduler runs every member's [`EvalPlan`] straight through —
/// one plan run instead of N wheel enqueues, with no per-process
/// write-set snapshots (the closure covers all combinational fanout by
/// construction, and comb writes never edge-trigger in this model).
#[derive(Debug, Clone, PartialEq)]
pub struct CascadePlan {
    /// Member process indices in dependency (topological) order.
    pub procs: Vec<u32>,
    /// Deduped union of every member's read set — the whole-cascade
    /// two-state dispatch gate: all defined at entry implies all
    /// defined throughout (members store only defined values, and
    /// partially-written signals appear here too).
    pub reads: Vec<SignalId>,
}

/// Upper bound on cascade membership (keeps plan construction linear
/// on pathological fan-out designs).
const CASCADE_MEMBER_LIMIT: usize = 64;

/// Build the straight-line [`EvalPlan`] of a hazard-free process, or
/// `None` when the stream is empty or not hazard-free. Fusion windows
/// never span a jump target, so control flow is preserved exactly.
pub fn build_plan(design: &Design, proc: &CompiledProcess) -> Option<EvalPlan> {
    if !proc.hazard_free || proc.code.is_empty() {
        return None;
    }
    let code = &proc.code;
    let n = code.len();
    let masks = &proc.slot_masks;
    // Slot use counts (slots are SSA: one writer each; fusion consumes
    // an intermediate only when this is its sole use) and jump-target
    // map (fused windows must not contain an interior target).
    let mut uses = vec![0u32; proc.slot_widths.len()];
    let mut is_target = vec![false; n + 1];
    for i in code {
        let mut u = |s: &Slot| uses[*s as usize] += 1;
        match i {
            Instr::Const { .. } | Instr::Load { .. } | Instr::ReadSlice { .. } => {}
            Instr::Copy { src, .. } | Instr::Slice { src, .. } | Instr::Repl { src, .. } => u(src),
            Instr::Not { a, .. } | Instr::Reduce { a, .. } => u(a),
            Instr::Bin { a, b, .. } | Instr::LogicBin { a, b, .. } | Instr::Cmp { a, b, .. } => {
                u(a);
                u(b);
            }
            Instr::Shift { a, amt, .. } => {
                u(a);
                u(amt);
            }
            Instr::Select { c, t, f, .. } => {
                u(c);
                u(t);
                u(f);
            }
            Instr::Concat { parts, .. } => parts.iter().for_each(|(s, _)| uses[*s as usize] += 1),
            Instr::BitSelSig { idx, .. } => u(idx),
            Instr::Jump { target } => is_target[*target] = true,
            Instr::JumpIfNotTrue { cond, target } => {
                u(cond);
                is_target[*target] = true;
            }
            Instr::JumpIfMatch {
                sel, label, target, ..
            } => {
                u(sel);
                u(label);
                is_target[*target] = true;
            }
            Instr::Store { src, .. } => u(src),
            Instr::StoreBitDyn { idx, src, .. } => {
                u(idx);
                u(src);
            }
        }
    }
    // A whole-signal blocking store of `src` (the fusable store shape).
    let whole_store = |i: &Instr, src_slot: Slot| -> Option<(SignalId, u32)> {
        match i {
            Instr::Store {
                sig,
                src,
                lsb: 0,
                width,
                nonblocking: false,
            } if *src == src_slot && *width == design.width(*sig) => Some((*sig, *width as u32)),
            _ => None,
        }
    };
    // Interior-of-window jump-target check: ops i+1..i+len must not be
    // branch targets, or the fused op would swallow a landing pad.
    let clear = |from: usize, len: usize| (from + 1..from + len).all(|k| !is_target[k]);

    // Pass 1: choose fusion groups, longest pattern first.
    let mut group = vec![1usize; n];
    let mut i = 0usize;
    while i < n {
        let g = &mut group[i];
        match &code[i..] {
            // load-op-store: Load; Load; Bin; Store ---------------------
            [Instr::Load { dst: ra, .. }, Instr::Load { dst: rb, .. }, Instr::Bin { op, dst: rd, a, b }, st, ..]
                if clear(i, 4)
                    && !matches!(op, BinOp::Div | BinOp::Mod)
                    && a == ra
                    && b == rb
                    && uses[*ra as usize] == 1
                    && uses[*rb as usize] == 1
                    && uses[*rd as usize] == 1
                    && masks[*ra as usize] == masks[*rd as usize]
                    && masks[*rb as usize] == masks[*rd as usize]
                    && whole_store(st, *rd).is_some() =>
            {
                *g = 4;
            }
            // load-op: Load; Load; Bin ----------------------------------
            [Instr::Load { dst: ra, .. }, Instr::Load { dst: rb, .. }, Instr::Bin { op, dst: rd, a, b }, ..]
                if clear(i, 3)
                    && !matches!(op, BinOp::Div | BinOp::Mod)
                    && a == ra
                    && b == rb
                    && uses[*ra as usize] == 1
                    && uses[*rb as usize] == 1
                    && masks[*ra as usize] == masks[*rd as usize]
                    && masks[*rb as usize] == masks[*rd as usize] =>
            {
                *g = 3;
            }
            // op-store: Bin; Store --------------------------------------
            [Instr::Bin { op, dst: rd, .. }, st, ..]
                if clear(i, 2)
                    && !matches!(op, BinOp::Div | BinOp::Mod)
                    && uses[*rd as usize] == 1
                    && whole_store(st, *rd).is_some() =>
            {
                *g = 2;
            }
            // compare-branch: Cmp; JumpIfNotTrue ------------------------
            [Instr::Cmp { dst: rd, .. }, Instr::JumpIfNotTrue { cond, .. }, ..]
                if clear(i, 2) && cond == rd && uses[*rd as usize] == 1 =>
            {
                *g = 2;
            }
            // mask-shift-merge: (Copy|Slice); (Copy|Slice) --------------
            [first, second, ..]
                if clear(i, 2)
                    && matches!(first, Instr::Copy { .. } | Instr::Slice { .. })
                    && matches!(second, Instr::Copy { .. } | Instr::Slice { .. })
                    && {
                        let d1 = match first {
                            Instr::Copy { dst, .. } | Instr::Slice { dst, .. } => *dst,
                            _ => unreachable!(),
                        };
                        let s2 = match second {
                            Instr::Copy { src, .. } | Instr::Slice { src, .. } => *src,
                            _ => unreachable!(),
                        };
                        d1 == s2 && uses[d1 as usize] == 1
                    } =>
            {
                *g = 2;
            }
            // wire move: Load; Store ------------------------------------
            [Instr::Load { dst: ra, .. }, st, ..]
                if clear(i, 2) && uses[*ra as usize] == 1 && whole_store(st, *ra).is_some() =>
            {
                *g = 2;
            }
            // constant driver: Const; Store -----------------------------
            [Instr::Const { dst: ra, .. }, st, ..]
                if clear(i, 2) && uses[*ra as usize] == 1 && whole_store(st, *ra).is_some() =>
            {
                *g = 2;
            }
            _ => {}
        }
        i += group[i];
    }

    // Pass 2: emit, recording the old→new index map for branch targets.
    let mut new_index = vec![0u32; n + 1];
    let mut ops: Vec<PlanOp> = Vec::new();
    let mut src_counts: Vec<u32> = Vec::new();
    let mut has_nba = false;
    let mut i = 0usize;
    while i < n {
        let g = group[i];
        for (k, ni) in new_index.iter_mut().enumerate().skip(i).take(g) {
            debug_assert!(k == i || !is_target[k]);
            *ni = ops.len() as u32;
        }
        let op = match (g, &code[i..]) {
            (
                4,
                [Instr::Load { sig: sa, .. }, Instr::Load { sig: sb, .. }, Instr::Bin { op, dst: rd, .. }, st, ..],
            ) => {
                let (sig, width) = whole_store(st, *rd).expect("pattern checked");
                PlanOp::LoadBinStore {
                    op: *op,
                    a: *sa,
                    b: *sb,
                    sig,
                    width,
                    mask: masks[*rd as usize],
                }
            }
            (
                3,
                [Instr::Load { sig: sa, .. }, Instr::Load { sig: sb, .. }, Instr::Bin { op, dst: rd, .. }, ..],
            ) => PlanOp::LoadBin {
                op: *op,
                dst: *rd,
                a: *sa,
                b: *sb,
                mask: masks[*rd as usize],
            },
            (2, [Instr::Bin { op, dst: rd, a, b }, st, ..]) => {
                let (sig, width) = whole_store(st, *rd).expect("pattern checked");
                PlanOp::BinStore {
                    op: *op,
                    a: *a,
                    b: *b,
                    sig,
                    width,
                    mask: masks[*rd as usize],
                }
            }
            (2, [Instr::Cmp { op, a, b, .. }, Instr::JumpIfNotTrue { target, .. }, ..]) => {
                PlanOp::CmpBranch {
                    op: *op,
                    a: *a,
                    b: *b,
                    target: *target as u32, // remapped below
                }
            }
            (2, [first, second, ..])
                if matches!(first, Instr::Copy { .. } | Instr::Slice { .. })
                    && matches!(second, Instr::Copy { .. } | Instr::Slice { .. }) =>
            {
                let (s1, l1, d1) = move_parts(first);
                let (_, l2, d2) = move_parts(second);
                PlanOp::MaskMove {
                    dst: d2,
                    src: s1,
                    shift: (l1 + l2) as u32,
                    mask: (masks[d1 as usize] >> l2) & masks[d2 as usize],
                }
            }
            (2, [Instr::Load { dst: ra, sig }, st, ..]) => {
                let (out, width) = whole_store(st, *ra).expect("pattern checked");
                PlanOp::LoadStore {
                    a: *sig,
                    sig: out,
                    width,
                    mask: masks[*ra as usize],
                }
            }
            (2, [Instr::Const { dst: ra, k }, st, ..]) => {
                let (sig, width) = whole_store(st, *ra).expect("pattern checked");
                PlanOp::ConstStore {
                    val: proc.narrow_consts[*k as usize].0,
                    sig,
                    width,
                }
            }
            (1, [instr, ..]) => match instr {
                Instr::Const { dst, k } => PlanOp::Const {
                    dst: *dst,
                    val: proc.narrow_consts[*k as usize].0,
                },
                Instr::Load { dst, sig } => PlanOp::Load {
                    dst: *dst,
                    sig: *sig,
                    shift: 0,
                    mask: masks[*dst as usize],
                },
                Instr::ReadSlice { dst, sig, lsb } => PlanOp::Load {
                    dst: *dst,
                    sig: *sig,
                    // Statically in bounds by the hazard analysis.
                    shift: *lsb as u32,
                    mask: masks[*dst as usize],
                },
                Instr::Copy { dst, src } => PlanOp::MaskMove {
                    dst: *dst,
                    src: *src,
                    shift: 0,
                    mask: masks[*dst as usize],
                },
                Instr::Slice { dst, src, lsb } => PlanOp::MaskMove {
                    dst: *dst,
                    src: *src,
                    shift: *lsb as u32,
                    mask: masks[*dst as usize],
                },
                Instr::Not { dst, a } => PlanOp::Not {
                    dst: *dst,
                    a: *a,
                    mask: masks[*dst as usize],
                },
                Instr::Bin { op, dst, a, b } => {
                    if matches!(op, BinOp::Div | BinOp::Mod) {
                        return None; // defensive: not hazard-free
                    }
                    PlanOp::Bin {
                        op: *op,
                        dst: *dst,
                        a: *a,
                        b: *b,
                        mask: masks[*dst as usize],
                    }
                }
                Instr::Shift { left, dst, a, amt } => PlanOp::Shift {
                    left: *left,
                    dst: *dst,
                    a: *a,
                    amt: *amt,
                    w: proc.slot_widths[*dst as usize] as u32,
                    mask: masks[*dst as usize],
                },
                Instr::LogicBin { and, dst, a, b } => PlanOp::LogicBin {
                    and: *and,
                    dst: *dst,
                    a: *a,
                    b: *b,
                },
                Instr::Reduce { op, dst, a } => PlanOp::Reduce {
                    op: *op,
                    dst: *dst,
                    a: *a,
                    amask: masks[*a as usize],
                },
                Instr::Cmp { op, dst, a, b } => PlanOp::Cmp {
                    op: *op,
                    dst: *dst,
                    a: *a,
                    b: *b,
                },
                Instr::Select { dst, c, t, f } => PlanOp::Select {
                    dst: *dst,
                    c: *c,
                    t: *t,
                    f: *f,
                    mask: masks[*dst as usize],
                },
                Instr::Concat { dst, parts } => PlanOp::Concat {
                    dst: *dst,
                    parts: parts.iter().map(|(s, o)| (*s, *o as u32)).collect(),
                },
                Instr::Repl { dst, src, n } => PlanOp::Repl {
                    dst: *dst,
                    src: *src,
                    n: *n as u32,
                    w: proc.slot_widths[*src as usize] as u32,
                },
                Instr::BitSelSig { .. } => return None, // not hazard-free
                Instr::Jump { target } => PlanOp::Jump {
                    target: *target as u32,
                },
                Instr::JumpIfNotTrue { cond, target } => PlanOp::BranchIfZero {
                    cond: *cond,
                    target: *target as u32,
                },
                Instr::JumpIfMatch {
                    sel, label, target, ..
                } => PlanOp::BranchIfEq {
                    a: *sel,
                    b: *label,
                    target: *target as u32,
                },
                Instr::Store {
                    sig,
                    src,
                    lsb,
                    width,
                    nonblocking,
                } => {
                    has_nba |= *nonblocking;
                    if *lsb == 0 && !*nonblocking && *width == design.width(*sig) {
                        PlanOp::StoreWhole {
                            sig: *sig,
                            src: *src,
                            width: *width as u32,
                        }
                    } else {
                        PlanOp::Store {
                            sig: *sig,
                            src: *src,
                            lsb: *lsb,
                            width: *width as u32,
                            nonblocking: *nonblocking,
                        }
                    }
                }
                Instr::StoreBitDyn {
                    sig,
                    idx,
                    lsb_index,
                    src,
                    nonblocking,
                } => {
                    has_nba |= *nonblocking;
                    PlanOp::StoreBitDyn {
                        sig: *sig,
                        idx: *idx,
                        lsb_index: *lsb_index,
                        src: *src,
                        nonblocking: *nonblocking,
                    }
                }
            },
            _ => unreachable!("group lengths cover all shapes"),
        };
        ops.push(op);
        src_counts.push(g as u32);
        i += g;
    }
    new_index[n] = ops.len() as u32;
    // Pass 3: remap branch targets from source indices to op indices.
    for op in &mut ops {
        match op {
            PlanOp::Jump { target }
            | PlanOp::BranchIfZero { target, .. }
            | PlanOp::BranchIfEq { target, .. }
            | PlanOp::CmpBranch { target, .. } => *target = new_index[*target as usize],
            _ => {}
        }
    }
    Some(EvalPlan {
        ops,
        src_counts,
        source_len: n,
        has_nba,
    })
}

/// Source/shift/destination of a `Copy`/`Slice` move instruction.
fn move_parts(i: &Instr) -> (Slot, usize, Slot) {
    match i {
        Instr::Copy { dst, src } => (*src, 0, *dst),
        Instr::Slice { dst, src, lsb } => (*src, *lsb, *dst),
        _ => unreachable!("move_parts on non-move"),
    }
}

/// Build the per-root cascade plans of a design: for every eligible
/// combinational process, the transitive closure of comb readers of
/// its writes, when that closure is entirely hazard-free, NBA-free,
/// acyclic, and within [`CASCADE_MEMBER_LIMIT`]. Returns the plans and
/// the per-process root index (`cascade_of[p]` names the plan the
/// scheduler runs when `p` pops off the active region).
pub fn build_cascades(
    design: &Design,
    procs: &[CompiledProcess],
    comb_readers: &[Vec<u32>],
) -> (Vec<CascadePlan>, Vec<Option<u32>>) {
    let n = procs.len();
    let mut cascade_of: Vec<Option<u32>> = vec![None; n];
    let mut cascades: Vec<CascadePlan> = Vec::new();
    let eligible: Vec<bool> = (0..n)
        .map(|i| {
            matches!(design.processes[i], Process::Comb { .. })
                && procs[i].hazard_free
                && procs[i].plan.as_ref().is_some_and(|p| !p.has_nba)
        })
        .collect();
    let mut in_members = vec![false; n];
    let mut read_stamp = vec![false; design.signals.len()];
    for root in 0..n {
        if !eligible[root] {
            continue;
        }
        // BFS closure over comb readers of member-written signals.
        let mut members: Vec<u32> = vec![root as u32];
        in_members[root] = true;
        let mut head = 0usize;
        let mut ok = true;
        while head < members.len() {
            let q = members[head] as usize;
            head += 1;
            for &w in &procs[q].writes {
                for &r in &comb_readers[w.index()] {
                    let r = r as usize;
                    if in_members[r] {
                        continue;
                    }
                    if !eligible[r] || members.len() >= CASCADE_MEMBER_LIMIT {
                        ok = false;
                        break;
                    }
                    in_members[r] = true;
                    members.push(r as u32);
                }
                if !ok {
                    break;
                }
            }
            if !ok {
                break;
            }
        }
        let order = if ok {
            topo_order(procs, &members)
        } else {
            None
        };
        if let Some(order) = order {
            // Union read set in topo order (first-use, deduped).
            let mut reads: Vec<SignalId> = Vec::new();
            for &m in &order {
                for &s in &procs[m as usize].reads {
                    if !read_stamp[s.index()] {
                        read_stamp[s.index()] = true;
                        reads.push(s);
                    }
                }
            }
            for s in &reads {
                read_stamp[s.index()] = false;
            }
            cascade_of[root] = Some(cascades.len() as u32);
            cascades.push(CascadePlan {
                procs: order,
                reads,
            });
        }
        for &m in &members {
            in_members[m as usize] = false;
        }
    }
    (cascades, cascade_of)
}

/// Topological order of `members` under the dataflow relation
/// `q → r` iff `r` reads a signal `q` writes, or `None` when the
/// subgraph is cyclic (including self-reading accumulators, which the
/// event wheel's net-change fixpoint must keep handling). Kahn's
/// algorithm with min-index selection keeps the order deterministic.
fn topo_order(procs: &[CompiledProcess], members: &[u32]) -> Option<Vec<u32>> {
    let m = members.len();
    // Dense member-local adjacency (m is capped and small).
    let mut indeg = vec![0u32; m];
    let mut edges: Vec<(usize, usize)> = Vec::new();
    for (qi, &q) in members.iter().enumerate() {
        for (ri, &r) in members.iter().enumerate() {
            let depends = procs[r as usize]
                .reads
                .iter()
                .any(|s| procs[q as usize].writes.contains(s));
            if depends {
                if qi == ri {
                    return None; // self-reading: cyclic
                }
                edges.push((qi, ri));
                indeg[ri] += 1;
            }
        }
    }
    let mut order: Vec<u32> = Vec::with_capacity(m);
    let mut done = vec![false; m];
    for _ in 0..m {
        let next = (0..m).find(|&i| !done[i] && indeg[i] == 0)?;
        done[next] = true;
        order.push(members[next]);
        for &(q, r) in &edges {
            if q == next {
                indeg[r] -= 1;
            }
        }
    }
    Some(order)
}

/// Execute one [`EvalPlan`] over bare `u64` aval slots. Semantically
/// identical to the hazard-free two-state interpreter
/// ([`crate::interp`]) on the same stream — the caller must have
/// verified the read set is fully defined. Returns the retired
/// `(plan ops, source instructions covered)` pair feeding
/// `EvalCounts::plan_steps` / `plan_unfused_steps`.
pub fn execute_plan(
    plan: &EvalPlan,
    regs: &mut [u64],
    store: &mut Store,
    nba: &mut Vec<PendingWrite>,
    changed: &mut Vec<SignalId>,
) -> (u32, u32) {
    let mut pc = 0usize;
    let (mut retired, mut src_retired) = (0u32, 0u32);
    while pc < plan.ops.len() {
        retired += 1;
        src_retired += plan.src_counts[pc];
        match &plan.ops[pc] {
            PlanOp::Const { dst, val } => regs[*dst as usize] = *val,
            PlanOp::Load {
                dst,
                sig,
                shift,
                mask,
            } => {
                let (a, _) = store[sig.index()].planes_u64();
                regs[*dst as usize] = (a >> shift) & mask;
            }
            PlanOp::MaskMove {
                dst,
                src,
                shift,
                mask,
            } => {
                regs[*dst as usize] = (regs[*src as usize] >> shift) & mask;
            }
            PlanOp::Not { dst, a, mask } => {
                regs[*dst as usize] = !regs[*a as usize] & mask;
            }
            PlanOp::Bin {
                op,
                dst,
                a,
                b,
                mask,
            } => {
                regs[*dst as usize] = bin_val(*op, regs[*a as usize], regs[*b as usize], *mask);
            }
            PlanOp::LoadBin {
                op,
                dst,
                a,
                b,
                mask,
            } => {
                let x = store[a.index()].planes_u64().0 & mask;
                let y = store[b.index()].planes_u64().0 & mask;
                regs[*dst as usize] = bin_val(*op, x, y, *mask);
            }
            PlanOp::LoadBinStore {
                op,
                a,
                b,
                sig,
                width,
                mask,
            } => {
                let x = store[a.index()].planes_u64().0 & mask;
                let y = store[b.index()].planes_u64().0 & mask;
                let r = bin_val(*op, x, y, *mask);
                store_whole(store, changed, *sig, r, *width as usize);
            }
            PlanOp::BinStore {
                op,
                a,
                b,
                sig,
                width,
                mask,
            } => {
                let r = bin_val(*op, regs[*a as usize], regs[*b as usize], *mask);
                store_whole(store, changed, *sig, r, *width as usize);
            }
            PlanOp::LoadStore {
                a,
                sig,
                width,
                mask,
            } => {
                let v = store[a.index()].planes_u64().0 & mask;
                store_whole(store, changed, *sig, v, *width as usize);
            }
            PlanOp::ConstStore { val, sig, width } => {
                store_whole(store, changed, *sig, *val, *width as usize);
            }
            PlanOp::Shift {
                left,
                dst,
                a,
                amt,
                w,
                mask,
            } => {
                let v = regs[*a as usize];
                let n = regs[*amt as usize];
                regs[*dst as usize] = if n >= *w as u64 {
                    0
                } else if *left {
                    (v << n) & mask
                } else {
                    v >> n
                };
            }
            PlanOp::LogicBin { and, dst, a, b } => {
                let ta = regs[*a as usize] != 0;
                let tb = regs[*b as usize] != 0;
                regs[*dst as usize] = (if *and { ta && tb } else { ta || tb }) as u64;
            }
            PlanOp::Reduce { op, dst, a, amask } => {
                let v = regs[*a as usize];
                regs[*dst as usize] = match op {
                    ReduceOp::And => (v == *amask) as u64,
                    ReduceOp::Nand => (v != *amask) as u64,
                    ReduceOp::Or => (v != 0) as u64,
                    ReduceOp::Nor => (v == 0) as u64,
                    ReduceOp::Xor => (v.count_ones() & 1) as u64,
                    ReduceOp::Xnor => (1 - (v.count_ones() & 1)) as u64,
                    ReduceOp::LogicNot => (v == 0) as u64,
                };
            }
            PlanOp::Cmp { op, dst, a, b } => {
                regs[*dst as usize] = cmp_val(*op, regs[*a as usize], regs[*b as usize]) as u64;
            }
            PlanOp::CmpBranch { op, a, b, target } => {
                if !cmp_val(*op, regs[*a as usize], regs[*b as usize]) {
                    pc = *target as usize;
                    continue;
                }
            }
            PlanOp::Select { dst, c, t, f, mask } => {
                let r = if regs[*c as usize] != 0 {
                    regs[*t as usize]
                } else {
                    regs[*f as usize]
                };
                regs[*dst as usize] = r & mask;
            }
            PlanOp::Concat { dst, parts } => {
                let mut acc = 0u64;
                for (slot, offset) in parts {
                    acc |= regs[*slot as usize] << offset;
                }
                regs[*dst as usize] = acc;
            }
            PlanOp::Repl { dst, src, n, w } => {
                let v = regs[*src as usize];
                let mut acc = 0u64;
                for k in 0..*n {
                    acc |= v << (k * w);
                }
                regs[*dst as usize] = acc;
            }
            PlanOp::Jump { target } => {
                pc = *target as usize;
                continue;
            }
            PlanOp::BranchIfZero { cond, target } => {
                if regs[*cond as usize] == 0 {
                    pc = *target as usize;
                    continue;
                }
            }
            PlanOp::BranchIfEq { a, b, target } => {
                if regs[*a as usize] == regs[*b as usize] {
                    pc = *target as usize;
                    continue;
                }
            }
            PlanOp::StoreWhole { sig, src, width } => {
                store_whole(store, changed, *sig, regs[*src as usize], *width as usize);
            }
            PlanOp::Store {
                sig,
                src,
                lsb,
                width,
                nonblocking,
            } => {
                let va = regs[*src as usize];
                let width = *width as usize;
                if *nonblocking {
                    nba.push(PendingWrite {
                        signal: *sig,
                        lsb: *lsb,
                        width,
                        value: LogicVec::from_planes_u64(width, va, 0),
                    });
                } else {
                    let cur = &mut store[sig.index()];
                    if *lsb == 0 && width == cur.width() {
                        if cur.planes_u64() != (va, 0) {
                            *cur = LogicVec::from_planes_u64(width, va, 0);
                            changed.push(*sig);
                        }
                    } else {
                        let value = LogicVec::from_planes_u64(width, va, 0);
                        apply_write(store, *sig, *lsb, width, &value, changed);
                    }
                }
            }
            PlanOp::StoreBitDyn {
                sig,
                idx,
                lsb_index,
                src,
                nonblocking,
            } => {
                let ia = regs[*idx as usize];
                let width = store[sig.index()].width();
                let phys = ia as i64 - lsb_index;
                if phys >= 0 && (phys as usize) < width {
                    let value = LogicVec::from_planes_u64(1, regs[*src as usize], 0);
                    if *nonblocking {
                        nba.push(PendingWrite {
                            signal: *sig,
                            lsb: phys,
                            width: 1,
                            value,
                        });
                    } else {
                        apply_write(store, *sig, phys, 1, &value, changed);
                    }
                }
            }
        }
        pc += 1;
    }
    (retired, src_retired)
}

/// Two-state binary operator on defined words (no div/mod in plans).
#[inline]
fn bin_val(op: BinOp, x: u64, y: u64, mask: u64) -> u64 {
    match op {
        BinOp::And => x & y,
        BinOp::Or => x | y,
        BinOp::Xor => x ^ y,
        BinOp::Xnor => !(x ^ y) & mask,
        BinOp::Add => x.wrapping_add(y) & mask,
        BinOp::Sub => x.wrapping_sub(y) & mask,
        BinOp::Mul => x.wrapping_mul(y) & mask,
        BinOp::Div | BinOp::Mod => unreachable!("plans carry no div/mod"),
    }
}

/// Two-state comparison on defined words (case equality is equality).
#[inline]
fn cmp_val(op: CmpOp, x: u64, y: u64) -> bool {
    match op {
        CmpOp::Eq | CmpOp::CaseEq => x == y,
        CmpOp::Neq | CmpOp::CaseNeq => x != y,
        CmpOp::Lt => x < y,
        CmpOp::Le => x <= y,
        CmpOp::Gt => x > y,
        CmpOp::Ge => x >= y,
    }
}

/// Whole-signal blocking store with the plane-compare fast path (the
/// shape every fused store uses; `width` is the full signal width by
/// construction).
#[inline]
fn store_whole(
    store: &mut Store,
    changed: &mut Vec<SignalId>,
    sig: SignalId,
    val: u64,
    width: usize,
) {
    let cur = &mut store[sig.index()];
    debug_assert_eq!(width, cur.width());
    if cur.planes_u64() != (val, 0) {
        *cur = LogicVec::from_planes_u64(width, val, 0);
        changed.push(sig);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elab::elaborate;
    use std::sync::Arc;

    fn design_of(src: &str) -> Arc<Design> {
        let file = mage_verilog::parse(src).unwrap();
        let top = file.modules.last().unwrap().name.clone();
        Arc::new(elaborate(&file, &top).unwrap())
    }

    #[test]
    fn assign_fuses_to_one_op() {
        let d = design_of("module top(input a, input b, output y); assign y = a & b; endmodule");
        let cd = d.compiled();
        let p = cd
            .procs
            .iter()
            .find(|p| p.hazard_free)
            .expect("hazard-free assign");
        let plan = p.plan.as_ref().expect("plan built");
        // Load; Load; Bin; Store → one LoadBinStore.
        assert_eq!(plan.source_len, 4);
        assert_eq!(plan.ops.len(), 1);
        assert!(matches!(plan.ops[0], PlanOp::LoadBinStore { .. }));
        assert_eq!(plan.src_counts, vec![4]);
    }

    #[test]
    fn comb_chain_builds_a_topo_cascade() {
        let d = design_of(
            "module top(input a, input b, output w, output v);
               wire x;
               assign x = a & b;
               assign w = x | a;
               assign v = w ^ b;
             endmodule",
        );
        let cd = d.compiled();
        // The root driving `x` cascades through all three assigns.
        let root = cd
            .cascade_of
            .iter()
            .flatten()
            .map(|&c| &cd.cascades[c as usize])
            .find(|c| c.procs.len() == 3)
            .expect("three-member cascade");
        // Topological: x before w before v.
        let pos = |pi: u32| root.procs.iter().position(|&p| p == pi).unwrap();
        let writes_of = |pi: u32| &cd.procs[pi as usize].writes;
        let x = d.signal("x").unwrap();
        let w = d.signal("w").unwrap();
        let xi = root
            .procs
            .iter()
            .copied()
            .find(|&p| writes_of(p).contains(&x))
            .unwrap();
        let wi = root
            .procs
            .iter()
            .copied()
            .find(|&p| writes_of(p).contains(&w))
            .unwrap();
        assert!(pos(xi) < pos(wi), "x must evaluate before w");
    }

    #[test]
    fn self_reading_process_gets_no_cascade() {
        // `y = y | a` is a self-reading comb loop the wheel's net-change
        // fixpoint handles; a straight-line plan cannot.
        let d = design_of("module top(input a, output y); assign y = y | a; endmodule");
        let cd = d.compiled();
        assert!(cd.cascades.is_empty());
        assert!(cd.cascade_of.iter().all(Option::is_none));
    }

    #[test]
    fn fuse_gate_reads_environment_per_call() {
        let key = "MAGE_SIM_FUSE";
        let prev = std::env::var(key).ok();
        std::env::set_var(key, "off");
        assert!(!fuse_enabled());
        std::env::set_var(key, "0");
        assert!(!fuse_enabled());
        std::env::set_var(key, "false");
        assert!(!fuse_enabled());
        std::env::set_var(key, "on");
        assert!(fuse_enabled());
        match prev {
            Some(v) => std::env::set_var(key, v),
            None => std::env::remove_var(key),
        }
    }

    #[test]
    fn branch_targets_survive_fusion() {
        // An if/else over defined constants: compare-branch fusion must
        // remap the jump targets onto the fused op stream.
        let d = design_of(
            "module top(input [3:0] a, input [3:0] b, output reg [3:0] y);
               always @(*) if (a == b) y = a + 4'd1; else y = b - 4'd2;
             endmodule",
        );
        let cd = d.compiled();
        let p = cd.procs.iter().find(|p| p.hazard_free).expect("eligible");
        let plan = p.plan.as_ref().expect("plan built");
        assert!(plan.ops.len() < plan.source_len, "fusion fired");
        // Every branch target must land inside (or exactly at the end
        // of) the op stream.
        for op in &plan.ops {
            if let PlanOp::Jump { target }
            | PlanOp::BranchIfZero { target, .. }
            | PlanOp::BranchIfEq { target, .. }
            | PlanOp::CmpBranch { target, .. } = op
            {
                assert!(*target as usize <= plan.ops.len());
            }
        }
    }
}
