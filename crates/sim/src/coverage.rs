//! Fuzz-coverage feature map: a cheap, deterministic fingerprint of
//! *which executor behaviors a design exercised*.
//!
//! The `mage-fuzz` harness guides generation with this map: every
//! generated design contributes a set of 64-bit feature ids — static
//! features read off the compiled artifact ([`design_features`]:
//! bytecode opcode pairs, superinstruction kinds, cascade lengths,
//! process shapes) and dynamic features recorded by the [`crate::Simulator`]
//! while the lockstep oracles run (execution outcomes including
//! two-state bail reasons, cascade dispatches). An input that hits a
//! feature no earlier input hit is *novel* and becomes a corpus entry.
//!
//! The map is deliberately tiny and allocation-light: a sorted set of
//! hashed ids, recorded only when a simulator has coverage enabled
//! ([`crate::Simulator::enable_coverage`] — the default is off, so the
//! grading hot paths never pay for it). Everything is deterministic:
//! ids are pure FNV-1a hashes of domain-tagged payloads and the set
//! iterates in sorted order, so the same case stream always produces
//! the same [`FuzzCoverage::map_hash`].

use crate::compile::{CompiledDesign, Instr};
use crate::interp::{BailReason, ExecOutcome};
use crate::plan::PlanOp;
use std::collections::BTreeSet;

/// Feature domains (the high tag byte of every feature id).
const D_OPCODE_PAIR: u64 = 1;
const D_PLAN_OP: u64 = 2;
const D_CASCADE_LEN: u64 = 3;
const D_OUTCOME: u64 = 4;
const D_SHAPE: u64 = 5;
const D_CASCADE_FIRE: u64 = 6;

/// Mix a domain tag and payload into a feature id (FNV-1a over the
/// 16 bytes, so ids are stable across platforms and runs).
fn feat(domain: u64, payload: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in domain
        .to_le_bytes()
        .into_iter()
        .chain(payload.to_le_bytes())
    {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// A set of observed coverage features.
///
/// Backed by a `BTreeSet` so iteration — and therefore
/// [`FuzzCoverage::map_hash`] — is deterministic for a given feature
/// set, independent of insertion order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FuzzCoverage {
    seen: BTreeSet<u64>,
}

impl FuzzCoverage {
    /// An empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one feature id. Returns `true` when it was new.
    pub fn record(&mut self, id: u64) -> bool {
        self.seen.insert(id)
    }

    /// Whether `id` has been recorded.
    pub fn contains(&self, id: u64) -> bool {
        self.seen.contains(&id)
    }

    /// Merge every feature of `other` into `self`, returning how many
    /// were new.
    pub fn merge(&mut self, other: &FuzzCoverage) -> usize {
        let before = self.seen.len();
        self.seen.extend(other.seen.iter().copied());
        self.seen.len() - before
    }

    /// How many of `other`'s features are *not* in `self` (novelty
    /// probe without mutation).
    pub fn novelty(&self, other: &FuzzCoverage) -> usize {
        other
            .seen
            .iter()
            .filter(|id| !self.seen.contains(id))
            .count()
    }

    /// Features in `other` missing from `self`, in sorted order.
    pub fn novel_ids(&self, other: &FuzzCoverage) -> Vec<u64> {
        other
            .seen
            .iter()
            .copied()
            .filter(|id| !self.seen.contains(id))
            .collect()
    }

    /// Number of distinct features recorded.
    pub fn len(&self) -> usize {
        self.seen.len()
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.seen.is_empty()
    }

    /// The recorded feature ids in sorted order.
    pub fn ids(&self) -> impl Iterator<Item = u64> + '_ {
        self.seen.iter().copied()
    }

    /// Order-independent digest of the whole map (FNV-1a over the
    /// sorted id stream) — the determinism handle: two runs with the
    /// same case stream must report the same hash.
    pub fn map_hash(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for id in &self.seen {
            for b in id.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
        }
        h
    }
}

/// Small integer tag of one bytecode instruction: the variant, sub-tagged
/// by operator flavor where the variant carries one. Two instructions
/// with the same tag dispatch through the same interpreter arm.
pub fn instr_tag(i: &Instr) -> u64 {
    match i {
        Instr::Const { .. } => 0x000,
        Instr::Load { .. } => 0x001,
        Instr::Copy { .. } => 0x002,
        Instr::Slice { .. } => 0x003,
        Instr::Not { .. } => 0x004,
        Instr::Bin { op, .. } => 0x010 + *op as u64,
        Instr::Shift { left, .. } => 0x020 + *left as u64,
        Instr::LogicBin { and, .. } => 0x022 + *and as u64,
        Instr::Reduce { op, .. } => 0x030 + *op as u64,
        Instr::Cmp { op, .. } => 0x040 + *op as u64,
        Instr::Select { .. } => 0x050,
        Instr::Concat { .. } => 0x051,
        Instr::Repl { .. } => 0x052,
        Instr::BitSelSig { .. } => 0x053,
        Instr::ReadSlice { .. } => 0x054,
        Instr::Jump { .. } => 0x055,
        Instr::JumpIfNotTrue { .. } => 0x056,
        Instr::JumpIfMatch { .. } => 0x057,
        Instr::Store { .. } => 0x058,
        Instr::StoreBitDyn { .. } => 0x059,
    }
}

/// Small integer tag of one fused-plan opcode (variant + operator
/// flavor, mirroring [`instr_tag`]).
pub fn plan_op_tag(op: &PlanOp) -> u64 {
    match op {
        PlanOp::Const { .. } => 0x100,
        PlanOp::Load { .. } => 0x101,
        PlanOp::MaskMove { .. } => 0x102,
        PlanOp::Not { .. } => 0x103,
        PlanOp::Bin { op, .. } => 0x110 + *op as u64,
        PlanOp::LoadBin { op, .. } => 0x120 + *op as u64,
        PlanOp::LoadBinStore { op, .. } => 0x130 + *op as u64,
        PlanOp::BinStore { op, .. } => 0x140 + *op as u64,
        PlanOp::LoadStore { .. } => 0x150,
        PlanOp::ConstStore { .. } => 0x151,
        PlanOp::Shift { .. } => 0x152,
        PlanOp::LogicBin { .. } => 0x153,
        PlanOp::Reduce { op, .. } => 0x160 + *op as u64,
        PlanOp::Cmp { op, .. } => 0x170 + *op as u64,
        PlanOp::CmpBranch { op, .. } => 0x180 + *op as u64,
        PlanOp::Select { .. } => 0x190,
        PlanOp::Concat { .. } => 0x191,
        PlanOp::Repl { .. } => 0x192,
        PlanOp::Jump { .. } => 0x193,
        PlanOp::BranchIfZero { .. } => 0x194,
        PlanOp::BranchIfEq { .. } => 0x195,
        PlanOp::Store { .. } => 0x196,
        PlanOp::StoreWhole { .. } => 0x197,
        PlanOp::StoreBitDyn { .. } => 0x198,
    }
}

/// Feature id of an adjacent bytecode opcode pair.
pub fn opcode_pair_feature(a: u64, b: u64) -> u64 {
    feat(D_OPCODE_PAIR, (a << 16) | b)
}

/// Feature id of one superinstruction kind appearing in a plan.
pub fn plan_op_feature(tag: u64) -> u64 {
    feat(D_PLAN_OP, tag)
}

/// Feature id of a fused-cascade length (exact up to 8 members, then
/// bucketed by power of two so arbitrarily long cascades cannot grow
/// the map without bound).
pub fn cascade_len_feature(len: usize) -> u64 {
    let bucket = if len <= 8 {
        len as u64
    } else {
        8 + (usize::BITS - len.leading_zeros()) as u64
    };
    feat(D_CASCADE_LEN, bucket)
}

/// Feature id of a fused-cascade *dispatch* of the given length (the
/// runtime counterpart of [`cascade_len_feature`]: a cascade that
/// exists but never fires contributes the static feature only).
pub fn cascade_fire_feature(len: usize) -> u64 {
    let bucket = if len <= 8 {
        len as u64
    } else {
        8 + (usize::BITS - len.leading_zeros()) as u64
    };
    feat(D_CASCADE_FIRE, bucket)
}

/// Feature id of one process-body execution outcome. `comb` is the
/// scheduling region; the outcome distinguishes two-state completion,
/// fused dispatch, four-state by construction, and the two bail
/// flavors ([`BailReason`]) — the two-state path's failure modes are
/// exactly what differential fuzzing wants to keep exercising.
pub fn outcome_feature(outcome: ExecOutcome, comb: bool) -> u64 {
    let code: u64 = match outcome {
        ExecOutcome::TwoState => 0,
        ExecOutcome::Fused { .. } => 1,
        ExecOutcome::FourState => 2,
        ExecOutcome::Fallback {
            reason: BailReason::DispatchUndef,
        } => 3,
        ExecOutcome::Fallback {
            reason: BailReason::MidRun,
        } => 4,
    };
    feat(D_OUTCOME, (code << 1) | comb as u64)
}

/// Feature id of one compiled process's shape (narrow/hazard-free/
/// two-state-eligible/has-plan flags).
pub fn shape_feature(narrow: bool, hazard_free: bool, two_state: bool, has_plan: bool) -> u64 {
    feat(
        D_SHAPE,
        narrow as u64
            | (hazard_free as u64) << 1
            | (two_state as u64) << 2
            | (has_plan as u64) << 3,
    )
}

/// Record every *static* feature of a compiled design: adjacent opcode
/// pairs of each instruction stream (plus a start-of-stream pair), the
/// superinstruction kinds of every fused plan, cascade lengths, and
/// per-process shape flags. Pure and cheap — one pass over the
/// artifact, no simulation.
pub fn design_features(compiled: &CompiledDesign, cov: &mut FuzzCoverage) {
    for proc in &compiled.procs {
        cov.record(shape_feature(
            proc.narrow,
            proc.hazard_free,
            proc.two_state,
            proc.plan.is_some(),
        ));
        let mut prev = u64::MAX >> 16; // start-of-stream sentinel
        for i in &proc.code {
            let tag = instr_tag(i);
            cov.record(opcode_pair_feature(prev, tag));
            prev = tag;
        }
        if let Some(plan) = &proc.plan {
            for op in &plan.ops {
                cov.record(plan_op_feature(plan_op_tag(op)));
            }
        }
    }
    for cascade in &compiled.cascades {
        cov.record(cascade_len_feature(cascade.procs.len()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_merge_novelty() {
        let mut a = FuzzCoverage::new();
        assert!(a.record(1));
        assert!(!a.record(1));
        assert!(a.record(2));
        let mut b = FuzzCoverage::new();
        b.record(2);
        b.record(3);
        assert_eq!(a.novelty(&b), 1);
        assert_eq!(a.novel_ids(&b), vec![3]);
        assert_eq!(a.merge(&b), 1);
        assert_eq!(a.len(), 3);
        assert_eq!(a.novelty(&b), 0);
    }

    #[test]
    fn map_hash_is_insertion_order_independent() {
        let mut a = FuzzCoverage::new();
        let mut b = FuzzCoverage::new();
        for id in [5u64, 9, 1, 3] {
            a.record(id);
        }
        for id in [3u64, 1, 9, 5] {
            b.record(id);
        }
        assert_eq!(a.map_hash(), b.map_hash());
        assert_ne!(a.map_hash(), FuzzCoverage::new().map_hash());
    }

    #[test]
    fn feature_domains_do_not_collide_on_small_payloads() {
        let ids = [
            opcode_pair_feature(1, 2),
            plan_op_feature(0x110),
            cascade_len_feature(3),
            cascade_fire_feature(3),
            shape_feature(true, false, true, false),
        ];
        let set: BTreeSet<u64> = ids.iter().copied().collect();
        assert_eq!(set.len(), ids.len());
    }

    #[test]
    fn cascade_buckets_saturate() {
        assert_ne!(cascade_len_feature(2), cascade_len_feature(3));
        assert_eq!(cascade_len_feature(20), cascade_len_feature(25));
        assert_ne!(cascade_len_feature(9), cascade_len_feature(300));
    }
}
