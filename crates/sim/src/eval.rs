//! Expression evaluation and statement execution over a value store.
//!
//! Width semantics follow the simplified context-determined rules laid
//! out in `DESIGN.md`: the assignment target's width is pushed down
//! through arithmetic/bitwise/ternary operators (so `{c, s} = a + b`
//! keeps its carry), while comparisons, shifts amounts, concatenations
//! and selects are self-determined.

use crate::design::{CExpr, CLValue, CStmt, Design, SignalId};
use mage_logic::{LogicVec, Truth};
use mage_verilog::ast::{BinaryOp, CaseKind, UnaryOp};

/// The simulation value store: one [`LogicVec`] per signal.
pub type Store = Vec<LogicVec>;

/// A pending non-blocking write: `width` bits of `value` into `signal`
/// starting at physical bit `lsb`.
#[derive(Debug, Clone)]
pub struct PendingWrite {
    /// Target signal.
    pub signal: SignalId,
    /// Physical LSB offset of the slice.
    pub lsb: i64,
    /// Slice width.
    pub width: usize,
    /// Value (already sized to `width`).
    pub value: LogicVec,
}

/// Evaluate `e` against `store` with context width `ctx` (callers pass
/// `e.width(design)` for self-determined positions).
pub fn eval(design: &Design, store: &Store, e: &CExpr, ctx: usize) -> LogicVec {
    match e {
        CExpr::Const(v) => v.resized(ctx.max(1)),
        CExpr::Sig(id) => store[id.index()].resized(ctx.max(1)),
        CExpr::Unary(op, a) => {
            let self_w = a.width(design);
            match op {
                UnaryOp::Not => eval(design, store, a, ctx.max(self_w))
                    .bit_not()
                    .resized(ctx),
                UnaryOp::Neg => eval(design, store, a, ctx.max(self_w)).neg().resized(ctx),
                UnaryOp::Plus => eval(design, store, a, ctx.max(self_w)).resized(ctx),
                UnaryOp::LogicNot => {
                    let v = eval(design, store, a, self_w);
                    LogicVec::from_bit(v.truth().not().to_bit()).resized(ctx)
                }
                UnaryOp::ReduceAnd => bit_result(eval(design, store, a, self_w).reduce_and(), ctx),
                UnaryOp::ReduceOr => bit_result(eval(design, store, a, self_w).reduce_or(), ctx),
                UnaryOp::ReduceXor => bit_result(eval(design, store, a, self_w).reduce_xor(), ctx),
                UnaryOp::ReduceNand => {
                    bit_result(eval(design, store, a, self_w).reduce_nand(), ctx)
                }
                UnaryOp::ReduceNor => bit_result(eval(design, store, a, self_w).reduce_nor(), ctx),
                UnaryOp::ReduceXnor => {
                    bit_result(eval(design, store, a, self_w).reduce_xnor(), ctx)
                }
            }
        }
        CExpr::Binary(op, l, r) => match op {
            BinaryOp::Add
            | BinaryOp::Sub
            | BinaryOp::Mul
            | BinaryOp::Div
            | BinaryOp::Mod
            | BinaryOp::And
            | BinaryOp::Or
            | BinaryOp::Xor
            | BinaryOp::Xnor => {
                let w = ctx.max(l.width(design)).max(r.width(design));
                let a = eval(design, store, l, w);
                let b = eval(design, store, r, w);
                let v = match op {
                    BinaryOp::Add => a.add(&b),
                    BinaryOp::Sub => a.sub(&b),
                    BinaryOp::Mul => a.mul(&b),
                    BinaryOp::Div => a.div(&b),
                    BinaryOp::Mod => a.rem(&b),
                    BinaryOp::And => a.bit_and(&b),
                    BinaryOp::Or => a.bit_or(&b),
                    BinaryOp::Xor => a.bit_xor(&b),
                    BinaryOp::Xnor => a.bit_xnor(&b),
                    _ => unreachable!(),
                };
                v.resized(ctx.max(1))
            }
            BinaryOp::Shl | BinaryOp::Shr => {
                let w = ctx.max(l.width(design));
                let a = eval(design, store, l, w);
                let amt = eval(design, store, r, r.width(design));
                let v = match op {
                    BinaryOp::Shl => a.shl(&amt),
                    BinaryOp::Shr => a.shr(&amt),
                    _ => unreachable!(),
                };
                v.resized(ctx.max(1))
            }
            BinaryOp::LogicAnd | BinaryOp::LogicOr => {
                let a = eval(design, store, l, l.width(design)).truth();
                let b = eval(design, store, r, r.width(design)).truth();
                let t = match op {
                    BinaryOp::LogicAnd => a.and(b),
                    BinaryOp::LogicOr => a.or(b),
                    _ => unreachable!(),
                };
                bit_result(t.to_bit(), ctx)
            }
            BinaryOp::Eq
            | BinaryOp::Neq
            | BinaryOp::CaseEq
            | BinaryOp::CaseNeq
            | BinaryOp::Lt
            | BinaryOp::Le
            | BinaryOp::Gt
            | BinaryOp::Ge => {
                let w = l.width(design).max(r.width(design));
                let a = eval(design, store, l, w);
                let b = eval(design, store, r, w);
                let bit = match op {
                    BinaryOp::Eq => a.logic_eq(&b),
                    BinaryOp::Neq => a.logic_neq(&b),
                    BinaryOp::CaseEq => mage_logic::LogicBit::from(a.case_eq(&b)),
                    BinaryOp::CaseNeq => mage_logic::LogicBit::from(!a.case_eq(&b)),
                    BinaryOp::Lt => a.lt(&b),
                    BinaryOp::Le => a.le(&b),
                    BinaryOp::Gt => a.gt(&b),
                    BinaryOp::Ge => a.ge(&b),
                    _ => unreachable!(),
                };
                bit_result(bit, ctx)
            }
        },
        CExpr::Ternary(c, t, f) => {
            let cond = eval(design, store, c, c.width(design)).truth();
            let w = ctx.max(t.width(design)).max(f.width(design));
            match cond {
                Truth::True => eval(design, store, t, w).resized(ctx.max(1)),
                Truth::False => eval(design, store, f, w).resized(ctx.max(1)),
                Truth::Unknown => {
                    let a = eval(design, store, t, w);
                    let b = eval(design, store, f, w);
                    LogicVec::mux(Truth::Unknown, &a, &b).resized(ctx.max(1))
                }
            }
        }
        CExpr::Concat(parts) => {
            let vals: Vec<LogicVec> = parts
                .iter()
                .map(|p| eval(design, store, p, p.width(design)))
                .collect();
            let refs: Vec<&LogicVec> = vals.iter().collect();
            LogicVec::concat_msb_first(&refs).resized(ctx.max(1))
        }
        CExpr::Repl(n, v) => {
            let val = eval(design, store, v, v.width(design));
            val.replicate(*n).resized(ctx.max(1))
        }
        CExpr::BitSel(id, idx) => {
            let idx_v = eval(design, store, idx, idx.width(design));
            let decl = design.decl(*id);
            let bit = match idx_v.to_u64() {
                Some(i) => {
                    let phys = i as i64 - decl.lsb_index;
                    if phys >= 0 {
                        store[id.index()]
                            .get(phys as usize)
                            .unwrap_or(mage_logic::LogicBit::X)
                    } else {
                        mage_logic::LogicBit::X
                    }
                }
                None => mage_logic::LogicBit::X,
            };
            bit_result(bit, ctx)
        }
        CExpr::PartSel(id, lsb, width) => store[id.index()]
            .slice(*lsb as isize, *width)
            .resized(ctx.max(*width)),
    }
}

fn bit_result(bit: mage_logic::LogicBit, ctx: usize) -> LogicVec {
    LogicVec::from_bit(bit).resized(ctx.max(1))
}

/// Resolve an lvalue into concrete slice writes, MSB-first, evaluating
/// dynamic indices against the current store. Unknown or out-of-range
/// dynamic indices yield no write for that slice (matching event-driven
/// simulator behaviour).
fn resolve_lvalue(
    design: &Design,
    store: &Store,
    lv: &CLValue,
) -> Vec<(SignalId, i64, usize, bool)> {
    // (signal, phys_lsb, width, valid)
    match lv {
        CLValue::Whole(id) => vec![(*id, 0, design.width(*id), true)],
        CLValue::BitSel(id, idx) => {
            let idx_v = eval(design, store, idx, idx.width(design));
            let decl = design.decl(*id);
            match idx_v.to_u64() {
                Some(i) => {
                    let phys = i as i64 - decl.lsb_index;
                    let valid = phys >= 0 && (phys as usize) < decl.width;
                    vec![(*id, phys, 1, valid)]
                }
                None => vec![(*id, 0, 1, false)],
            }
        }
        CLValue::PartSel(id, lsb, width) => vec![(*id, *lsb, *width, true)],
        CLValue::Concat(parts) => parts
            .iter()
            .flat_map(|p| resolve_lvalue(design, store, p))
            .collect(),
    }
}

/// Execute one statement.
///
/// Blocking assignments write through to `store` immediately and append
/// the written signal to `changed`; non-blocking assignments are resolved
/// now but queued on `nba` for a later commit.
pub fn exec(
    design: &Design,
    store: &mut Store,
    stmt: &CStmt,
    nba: &mut Vec<PendingWrite>,
    changed: &mut Vec<SignalId>,
) {
    match stmt {
        CStmt::Block(stmts) => {
            for s in stmts {
                exec(design, store, s, nba, changed);
            }
        }
        CStmt::If(cond, then_s, else_s) => {
            let c = eval(design, store, cond, cond.width(design)).truth();
            if c.is_true() {
                exec(design, store, then_s, nba, changed);
            } else if let Some(e) = else_s {
                exec(design, store, e, nba, changed);
            }
        }
        CStmt::Case {
            kind,
            sel,
            arms,
            default,
        } => {
            let mut w = sel.width(design);
            for (labels, _) in arms {
                for l in labels {
                    w = w.max(l.width(design));
                }
            }
            let sv = eval(design, store, sel, w);
            for (labels, body) in arms {
                let hit = labels.iter().any(|l| {
                    let lv = eval(design, store, l, w);
                    match kind {
                        CaseKind::Case => sv.case_eq(&lv),
                        CaseKind::Casez => sv.matches_casez(&lv),
                    }
                });
                if hit {
                    exec(design, store, body, nba, changed);
                    return;
                }
            }
            if let Some(d) = default {
                exec(design, store, d, nba, changed);
            }
        }
        CStmt::Assign {
            lv,
            rhs,
            nonblocking,
        } => {
            let total = lv.width(design);
            let value = eval(design, store, rhs, total.max(rhs.width(design))).resized(total);
            let slices = resolve_lvalue(design, store, lv);
            // Distribute MSB-first: the first slice takes the top bits.
            let mut hi = total as i64;
            for (sig, lsb, width, valid) in slices {
                let lo = hi - width as i64;
                let slice_v = value.slice(lo as isize, width);
                hi = lo;
                if !valid {
                    continue;
                }
                if *nonblocking {
                    nba.push(PendingWrite {
                        signal: sig,
                        lsb,
                        width,
                        value: slice_v,
                    });
                } else {
                    apply_write(store, sig, lsb, width, &slice_v, changed);
                }
            }
        }
        CStmt::Nop => {}
    }
}

/// Apply one slice write to the store, recording a change when the stored
/// value actually differs.
///
/// Writes in place and compares only the affected slice — a 1-bit write
/// to a wide signal touches one bit, instead of cloning the whole vector
/// and case-comparing every word (the pre-bytecode behaviour).
pub fn apply_write(
    store: &mut Store,
    sig: SignalId,
    lsb: i64,
    width: usize,
    value: &LogicVec,
    changed: &mut Vec<SignalId>,
) {
    let cur = &mut store[sig.index()];
    let wrote = if value.width() == width {
        cur.write_slice_changed(lsb as isize, value)
    } else {
        cur.write_slice_changed(lsb as isize, &value.resized(width))
    };
    if wrote {
        changed.push(sig);
    }
}
