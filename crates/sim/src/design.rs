//! The elaborated design: flat signals and compiled processes.

use crate::compile::{compile_design, CompiledDesign};
use mage_logic::LogicVec;
use mage_verilog::ast::{BinaryOp, CaseKind, Edge, NetKind, UnaryOp};
use std::sync::{Arc, OnceLock};

/// Index of a signal in the elaborated design.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SignalId(pub(crate) u32);

impl SignalId {
    /// The raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A flattened signal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SignalDecl {
    /// Hierarchical name (`u0.carry`), top-level signals unprefixed.
    pub name: String,
    /// Width in bits.
    pub width: usize,
    /// Declared LSB index (`[7:4]` has `lsb_index = 4`); selects are
    /// rebased against it.
    pub lsb_index: i64,
    /// `wire` or `reg` flavor of the declaration.
    pub kind: NetKind,
}

/// Compiled expression. Identifiers are resolved to [`SignalId`]s and
/// parameters are folded to constants at elaboration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CExpr {
    /// Constant value.
    Const(LogicVec),
    /// Whole-signal read.
    Sig(SignalId),
    /// Unary operation.
    Unary(UnaryOp, Box<CExpr>),
    /// Binary operation.
    Binary(BinaryOp, Box<CExpr>, Box<CExpr>),
    /// Conditional.
    Ternary(Box<CExpr>, Box<CExpr>, Box<CExpr>),
    /// Concatenation, MSB-first.
    Concat(Vec<CExpr>),
    /// Replication with an elaboration-time count.
    Repl(usize, Box<CExpr>),
    /// Dynamic bit select: `sig[index]`, where `index` is rebased so that
    /// `0` addresses the physical LSB.
    BitSel(SignalId, Box<CExpr>),
    /// Constant part select at a physical bit offset.
    PartSel(SignalId, i64, usize),
}

impl CExpr {
    /// Self-determined width in bits (simplified IEEE rules; see crate
    /// docs for deviations).
    pub fn width(&self, design: &Design) -> usize {
        match self {
            CExpr::Const(v) => v.width(),
            CExpr::Sig(id) => design.signals[id.index()].width,
            CExpr::Unary(op, e) => match op {
                UnaryOp::Not | UnaryOp::Neg | UnaryOp::Plus => e.width(design),
                _ => 1, // reductions and !
            },
            CExpr::Binary(op, l, r) => match op {
                BinaryOp::Add
                | BinaryOp::Sub
                | BinaryOp::Mul
                | BinaryOp::Div
                | BinaryOp::Mod
                | BinaryOp::And
                | BinaryOp::Or
                | BinaryOp::Xor
                | BinaryOp::Xnor => l.width(design).max(r.width(design)),
                BinaryOp::Shl | BinaryOp::Shr => l.width(design),
                _ => 1, // comparisons, logical
            },
            CExpr::Ternary(_, t, e) => t.width(design).max(e.width(design)),
            CExpr::Concat(parts) => parts.iter().map(|p| p.width(design)).sum(),
            CExpr::Repl(n, e) => n * e.width(design),
            CExpr::BitSel(..) => 1,
            CExpr::PartSel(_, _, w) => *w,
        }
    }
}

/// Compiled assignment target.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CLValue {
    /// Whole signal.
    Whole(SignalId),
    /// Dynamic single bit (index rebased to physical).
    BitSel(SignalId, CExpr),
    /// Constant part select at a physical offset.
    PartSel(SignalId, i64, usize),
    /// Concatenation of targets, MSB-first.
    Concat(Vec<CLValue>),
}

impl CLValue {
    /// Total width written by this target.
    pub fn width(&self, design: &Design) -> usize {
        match self {
            CLValue::Whole(id) => design.signals[id.index()].width,
            CLValue::BitSel(..) => 1,
            CLValue::PartSel(_, _, w) => *w,
            CLValue::Concat(parts) => parts.iter().map(|p| p.width(design)).sum(),
        }
    }
}

/// Compiled statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CStmt {
    /// Sequence.
    Block(Vec<CStmt>),
    /// Two-way branch.
    If(CExpr, Box<CStmt>, Option<Box<CStmt>>),
    /// Multi-way branch. Labels are compiled expressions (usually
    /// constants, but identifier labels are allowed).
    Case {
        /// `case` or `casez`.
        kind: CaseKind,
        /// Selector.
        sel: CExpr,
        /// `(labels, body)` arms in source order.
        arms: Vec<(Vec<CExpr>, CStmt)>,
        /// `default` body.
        default: Option<Box<CStmt>>,
    },
    /// Assignment; `nonblocking` selects NBA commit semantics.
    Assign {
        /// Target.
        lv: CLValue,
        /// Source.
        rhs: CExpr,
        /// `<=` vs `=`.
        nonblocking: bool,
    },
    /// No-op.
    Nop,
}

/// A compiled process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Process {
    /// Combinational: re-evaluated whenever any read signal changes.
    Comb {
        /// Signals whose change triggers re-evaluation.
        reads: Vec<SignalId>,
        /// Signals the body can write (static over-approximation). The
        /// scheduler compares these before/after a run so that a process
        /// that reads what it writes (`count = count + in[i]` chains)
        /// settles when its *net* effect is stable.
        writes: Vec<SignalId>,
        /// Body.
        body: CStmt,
    },
    /// Edge-triggered.
    Seq {
        /// Triggering edges.
        edges: Vec<(Edge, SignalId)>,
        /// Body.
        body: CStmt,
    },
}

/// An elaborated, flattened design ready for simulation.
#[derive(Debug, Clone)]
pub struct Design {
    /// Name of the top module.
    pub top: String,
    /// All signals (top ports first, then internals, then sub-instances).
    pub signals: Vec<SignalDecl>,
    /// Top-level input ports in declaration order.
    pub inputs: Vec<SignalId>,
    /// Top-level output ports in declaration order.
    pub outputs: Vec<SignalId>,
    /// Compiled processes in elaboration order.
    pub processes: Vec<Process>,
    /// Name → id index backing [`Design::signal`] (testbenches poke and
    /// peek by name on every step; a linear scan here was a measurable
    /// slice of simulation wall-clock). FNV-hashed: keys are short
    /// identifiers, for which SipHash overhead is pure loss.
    name_index: std::collections::HashMap<String, u32, FnvBuild>,
    /// Per-edge trigger lists: `pos_triggers[s]` holds the sequential
    /// process indices sensitive to a *posedge* of signal `s`
    /// (`neg_triggers` likewise). Built once here so the event wheel
    /// dispatches an edge by indexing the matching list instead of
    /// scanning every sensitized process's full edge set per change.
    pos_triggers: Vec<Vec<u32>>,
    /// See [`Design::pos_triggers`].
    neg_triggers: Vec<Vec<u32>>,
    /// Lazily compiled bytecode, shared by every [`crate::Simulator`]
    /// instantiated over this design — grading re-runs the same design
    /// through hundreds of testbench executions, and recompiling the
    /// process bodies per run was pure loss.
    compiled: OnceLock<Arc<CompiledDesign>>,
    /// Per-process content-address tags, aligned with `processes`.
    /// Populated by elaboration; empty on hand-assembled designs (which
    /// then simply never serve as delta parents).
    units: Vec<crate::unit::UnitTag>,
}

/// Minimal FNV-1a `BuildHasher` for the short-string name index.
#[derive(Debug, Clone, Default)]
struct FnvBuild;

struct FnvHasher(u64);

impl std::hash::BuildHasher for FnvBuild {
    type Hasher = FnvHasher;
    fn build_hasher(&self) -> FnvHasher {
        FnvHasher(0xcbf2_9ce4_8422_2325)
    }
}

impl std::hash::Hasher for FnvHasher {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, bytes: &[u8]) {
        // Continues the running FNV-1a state; `mage_logic::fnv1a` is the
        // one-shot form of the same hash.
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x1000_0000_01b3);
        }
    }
}

impl Design {
    /// Assemble a design, building the name lookup index and the
    /// per-edge trigger lists.
    pub fn new(
        top: String,
        signals: Vec<SignalDecl>,
        inputs: Vec<SignalId>,
        outputs: Vec<SignalId>,
        processes: Vec<Process>,
    ) -> Self {
        let name_index = signals
            .iter()
            .enumerate()
            .map(|(i, s)| (s.name.clone(), i as u32))
            .collect();
        // Edge-sensitivity metadata: one trigger list per (edge, signal),
        // deduped per process with a stamp so `@(posedge clk or posedge
        // clk)` enqueues once.
        let nsig = signals.len();
        let mut pos_triggers: Vec<Vec<u32>> = vec![Vec::new(); nsig];
        let mut neg_triggers: Vec<Vec<u32>> = vec![Vec::new(); nsig];
        let mut stamp: Vec<(usize, usize)> = vec![(usize::MAX, usize::MAX); nsig];
        for (i, p) in processes.iter().enumerate() {
            if let Process::Seq { edges, .. } = p {
                for &(e, s) in edges {
                    let (list, slot) = match e {
                        Edge::Pos => (&mut pos_triggers, &mut stamp[s.index()].0),
                        Edge::Neg => (&mut neg_triggers, &mut stamp[s.index()].1),
                    };
                    if *slot != i {
                        *slot = i;
                        list[s.index()].push(i as u32);
                    }
                }
            }
        }
        Design {
            top,
            signals,
            inputs,
            outputs,
            processes,
            name_index,
            pos_triggers,
            neg_triggers,
            compiled: OnceLock::new(),
            units: Vec::new(),
        }
    }

    /// Per-process [`crate::unit::UnitTag`]s, aligned with
    /// [`Design::processes`]; empty if the design was assembled without
    /// content addressing (hand-built designs).
    pub fn units(&self) -> &[crate::unit::UnitTag] {
        &self.units
    }

    /// Attach the content-address tags (elaboration only).
    pub(crate) fn set_units(&mut self, units: Vec<crate::unit::UnitTag>) {
        debug_assert!(units.is_empty() || units.len() == self.processes.len());
        self.units = units;
    }

    /// Pre-seed the compiled bytecode (delta elaboration assembles it
    /// eagerly from reused + rebuilt units). A lost race against a
    /// concurrent [`Design::compiled`] is harmless — both sides compile
    /// the same design — so the result is ignored.
    pub(crate) fn preseed_compiled(&self, compiled: Arc<CompiledDesign>) {
        let _ = self.compiled.set(compiled);
    }

    /// Sequential process indices triggered when `sig` makes an `edge`
    /// transition (IEEE-1364 classification of the LSB change).
    #[inline]
    pub fn triggers(&self, edge: Edge, sig: SignalId) -> &[u32] {
        match edge {
            Edge::Pos => &self.pos_triggers[sig.index()],
            Edge::Neg => &self.neg_triggers[sig.index()],
        }
    }

    /// The design's process bodies lowered to bytecode, compiled on
    /// first use and shared by every simulator over this design (and,
    /// through the serve-layer design cache, across jobs).
    pub fn compiled(&self) -> &Arc<CompiledDesign> {
        self.compiled.get_or_init(|| Arc::new(compile_design(self)))
    }

    /// Look up a signal id by (hierarchical) name.
    pub fn signal(&self, name: &str) -> Option<SignalId> {
        self.name_index.get(name).map(|&i| SignalId(i))
    }

    /// The declaration for `id`.
    pub fn decl(&self, id: SignalId) -> &SignalDecl {
        &self.signals[id.index()]
    }

    /// Width of signal `id`.
    pub fn width(&self, id: SignalId) -> usize {
        self.signals[id.index()].width
    }

    /// `(name, width)` pairs for the top-level inputs.
    pub fn input_ports(&self) -> Vec<(String, usize)> {
        self.inputs
            .iter()
            .map(|&id| (self.decl(id).name.clone(), self.width(id)))
            .collect()
    }

    /// `(name, width)` pairs for the top-level outputs.
    pub fn output_ports(&self) -> Vec<(String, usize)> {
        self.outputs
            .iter()
            .map(|&id| (self.decl(id).name.clone(), self.width(id)))
            .collect()
    }
}
