//! Elaboration: parsed AST → flattened [`Design`], unit by unit.
//!
//! Elaboration resolves parameters to constants, unrolls `for` loops,
//! flattens the instance hierarchy with dot-separated name prefixes, and
//! compiles statements into the interpreter form in [`crate::design`].
//!
//! Every process is produced as a content-addressed *compilation unit*
//! ([`crate::unit`]): signal declaration always runs in full (global
//! [`SignalId`] numbering is dense over the whole design), but per-item
//! process compilation first probes an optional [`UnitSource`] keyed by
//! `(item fingerprint, binding hash, ordinal)` and reuses verified hits
//! verbatim — [`elaborate_delta`] rebuilds only what an edit touched.
//! [`elaborate`] is the same pipeline without a provider (everything
//! rebuilt from scratch), retained as the delta oracle.

use crate::compile::{assemble_design, CompiledProcess};
use crate::design::{CExpr, CLValue, CStmt, Design, Process, SignalDecl, SignalId};
use crate::error::ElabError;
use crate::unit::{unit_hash, DeltaStats, ProcessUnit, UnitKey, UnitSource, UnitTag};
use mage_logic::LogicVec;
use mage_verilog::ast::*;
use std::collections::HashMap;
use std::sync::Arc;

/// Maximum static iterations of a single `for` loop.
const LOOP_LIMIT: usize = 4096;
/// Maximum instance nesting depth.
const DEPTH_LIMIT: usize = 64;

/// Elaborate `top` (and everything it instantiates) from `file`.
///
/// # Errors
///
/// Returns [`ElabError`] for undeclared signals, non-constant contexts,
/// bad ranges/selects, bad connections, or unroll/recursion limits. These
/// errors form part of the MAGE feedback loop: a candidate that parses
/// but fails elaboration is reported back to the generating agent.
///
/// # Example
///
/// ```
/// let file = mage_verilog::parse(
///     "module top(input a, input b, output y); assign y = a ^ b; endmodule",
/// ).unwrap();
/// let design = mage_sim::elaborate(&file, "top")?;
/// assert_eq!(design.inputs.len(), 2);
/// assert_eq!(design.outputs.len(), 1);
/// # Ok::<(), mage_sim::ElabError>(())
/// ```
pub fn elaborate(file: &SourceFile, top: &str) -> Result<Design, ElabError> {
    elaborate_delta(file, top, None, unit_hash).map(|(design, _)| design)
}

/// Delta elaboration: like [`elaborate`], but probe `provider` for every
/// process unit and reuse verified hits verbatim (interpreter form and
/// bytecode), rebuilding only missed units plus the fanout/trigger index
/// rows that reference them. The compiled bytecode is assembled eagerly
/// and pre-seeded, and freshly built units are published back to the
/// provider. Returns the design together with reuse counters.
///
/// The result is *store-exact* against [`elaborate`]: a provider hit is
/// only served after the unit's canonical item text and full binding
/// environment verify equal, so a delta-built design is structurally
/// identical to a from-scratch build of the same source.
///
/// # Errors
///
/// Exactly the [`ElabError`] cases of [`elaborate`].
pub fn elaborate_with(
    file: &SourceFile,
    top: &str,
    provider: &dyn UnitSource,
) -> Result<(Design, DeltaStats), ElabError> {
    elaborate_delta(file, top, Some(provider), unit_hash)
}

/// [`elaborate_with`] with an injectable unit hasher — the hook the
/// collision suite uses to force fingerprint collisions and prove the
/// full-verify discipline rebuilds instead of serving the wrong unit.
/// `hasher` replaces FNV-1a for both item fingerprints and binding
/// hashes. With `provider = None` this is plain [`elaborate`] (every
/// unit rebuilt), still tagging the design so it can serve as a parent.
///
/// # Errors
///
/// Exactly the [`ElabError`] cases of [`elaborate`].
pub fn elaborate_delta(
    file: &SourceFile,
    top: &str,
    provider: Option<&dyn UnitSource>,
    hasher: fn(&str) -> u64,
) -> Result<(Design, DeltaStats), ElabError> {
    let module = file
        .module(top)
        .ok_or_else(|| ElabError::UnknownModule(top.to_string()))?;
    let mut e = Elaborator {
        file,
        signals: Vec::new(),
        by_name: HashMap::new(),
        processes: Vec::new(),
        provider,
        hasher,
        tags: Vec::new(),
        prebuilt: Vec::new(),
        ordinals: HashMap::new(),
        stats: DeltaStats::default(),
    };
    let (scope, _env) = e.instantiate(module, "", &HashMap::new(), &HashMap::new(), 0)?;
    let mut inputs = Vec::new();
    let mut outputs = Vec::new();
    for p in &module.ports {
        let id = scope[&p.name];
        match p.dir {
            Direction::Input => inputs.push(id),
            Direction::Output => outputs.push(id),
        }
    }
    let mut stats = e.stats;
    let prebuilt = e.prebuilt;
    let tags = e.tags;
    let mut design = Design::new(top.to_string(), e.signals, inputs, outputs, e.processes);
    design.set_units(tags);
    if let Some(provider) = provider {
        // Which processes were rebuilt (provider misses)?
        let fresh: Vec<bool> = prebuilt.iter().map(Option::is_none).collect();
        let compiled = Arc::new(assemble_design(&design, prebuilt));
        stats.plan_invalidations = compiled.invalidated_plans as usize;
        // Index-rebuild accounting: fanout rows and per-edge trigger
        // rows that reference a rebuilt process (the rows a surgical
        // index patch would have had to touch).
        stats.fanout_rows = compiled
            .comb_readers
            .iter()
            .filter(|row| row.iter().any(|&i| fresh[i as usize]))
            .count();
        for s in 0..design.signals.len() {
            let sig = SignalId(s as u32);
            for edge in [Edge::Pos, Edge::Neg] {
                if design
                    .triggers(edge, sig)
                    .iter()
                    .any(|&i| fresh[i as usize])
                {
                    stats.trigger_rows += 1;
                }
            }
        }
        for (i, tag) in design.units().iter().enumerate() {
            if fresh[i] {
                provider.publish(
                    tag,
                    ProcessUnit {
                        process: design.processes[i].clone(),
                        compiled: compiled.procs[i].clone(),
                    },
                );
            }
        }
        design.preseed_compiled(compiled);
    }
    Ok((design, stats))
}

type Scope = HashMap<String, SignalId>;
type Consts = HashMap<String, LogicVec>;

struct Elaborator<'a> {
    file: &'a SourceFile,
    signals: Vec<SignalDecl>,
    by_name: HashMap<String, SignalId>,
    processes: Vec<Process>,
    /// Unit provider to probe before compiling each item; `None` forces
    /// a full rebuild (the oracle path).
    provider: Option<&'a dyn UnitSource>,
    /// Hasher for item fingerprints and binding hashes (injectable for
    /// collision tests; [`unit_hash`] in production).
    hasher: fn(&str) -> u64,
    /// Per-process unit tags, aligned with `processes`.
    tags: Vec<UnitTag>,
    /// Per-process reused bytecode, aligned with `processes` (`None` =
    /// compile from scratch during assembly).
    prebuilt: Vec<Option<CompiledProcess>>,
    /// Occurrence counters per `(fingerprint, binding)`.
    ordinals: HashMap<(u64, u64), u32>,
    stats: DeltaStats,
}

/// Per-module compile context.
struct ModuleCtx<'a> {
    module: &'a Module,
    scope: Scope,
    consts: Consts,
}

impl<'a> Elaborator<'a> {
    /// Instantiate `module` under `prefix` with parameter overrides
    /// already folded into `overrides`. Returns the local scope and the
    /// canonical binding-environment string (see [`crate::unit`]).
    fn instantiate(
        &mut self,
        module: &'a Module,
        prefix: &str,
        overrides: &Consts,
        aliases: &HashMap<String, SignalId>,
        depth: usize,
    ) -> Result<(Scope, Arc<str>), ElabError> {
        if depth > DEPTH_LIMIT {
            return Err(ElabError::RecursionLimit(module.name.clone()));
        }
        // 1. Parameter environment: defaults in order (earlier params may
        //    appear in later defaults), overridden where requested.
        let mut consts: Consts = HashMap::new();
        for p in &module.params {
            let v = match overrides.get(&p.name) {
                Some(v) if !p.local => v.clone(),
                _ => fold_const(&p.default, &consts).map_err(|_| {
                    ElabError::NotConstant(format!(
                        "default of parameter `{}` in `{}`",
                        p.name, module.name
                    ))
                })?,
            };
            consts.insert(p.name.clone(), v);
        }

        // 2. Declare signals: ports, then body nets. Ports whose parent
        //    connection is a plain same-width identifier are *aliased* to
        //    the parent signal, so clock/reset edges propagate into
        //    instances without indirection.
        let mut scope: Scope = HashMap::new();
        for port in &module.ports {
            let width = self.range_width(port.range.as_ref(), &consts)?;
            let lsb = self.range_lsb(port.range.as_ref(), &consts)?;
            if let Some(&parent) = aliases.get(&port.name) {
                let decl = &mut self.signals[parent.index()];
                if decl.width == width && decl.lsb_index == lsb {
                    if port.kind == NetKind::Reg {
                        decl.kind = NetKind::Reg;
                    }
                    scope.insert(port.name.clone(), parent);
                    continue;
                }
            }
            self.declare(prefix, &port.name, width, lsb, port.kind, &mut scope)?;
        }
        for item in &module.items {
            if let Item::Net { kind, range, names } = item {
                let width = self.range_width(range.as_ref(), &consts)?;
                let lsb = self.range_lsb(range.as_ref(), &consts)?;
                for n in names {
                    if let Some(&existing) = scope.get(n) {
                        // Non-ANSI style `output y; reg y;` re-declaration:
                        // accept if widths agree, upgrading the kind.
                        let decl = &mut self.signals[existing.index()];
                        if decl.width == width {
                            if *kind == NetKind::Reg {
                                decl.kind = NetKind::Reg;
                            }
                            continue;
                        }
                        return Err(ElabError::DuplicateSignal(format!("{prefix}{n}")));
                    }
                    self.declare(prefix, n, width, lsb, *kind, &mut scope)?;
                }
            }
        }

        let ctx = ModuleCtx {
            module,
            scope,
            consts,
        };

        // Canonical binding environment: everything item compilation can
        // consult — the instantiation prefix, the module name, every
        // in-scope signal with its *global* id and declaration, and
        // every folded parameter. Two items with equal canonical text
        // and equal environments compile to identical processes, which
        // is exactly the reuse contract of `crate::unit`. (Captured here,
        // before phase 3: child instances may still upgrade a signal's
        // wire/reg kind, but that happens at the same pipeline point in
        // every elaboration and process compilation never reads kinds.)
        let env: Arc<str> = {
            let mut sigs: Vec<String> = ctx
                .scope
                .iter()
                .map(|(n, id)| {
                    let d = &self.signals[id.index()];
                    format!("{n}={}w{}l{}k{:?}", id.0, d.width, d.lsb_index, d.kind)
                })
                .collect();
            sigs.sort_unstable();
            let mut folded: Vec<String> = ctx
                .consts
                .iter()
                .map(|(n, v)| format!("{n}={v:?}"))
                .collect();
            folded.sort_unstable();
            format!(
                "m={};p={prefix};s=[{}];c=[{}]",
                ctx.module.name,
                sigs.join(" "),
                folded.join(" ")
            )
            .into()
        };
        let binding = (self.hasher)(&env);

        // 3. Compile items, one content-addressed unit per process.
        for item in &module.items {
            match item {
                Item::Net { .. } | Item::Param(_) => {}
                Item::Assign { lhs, rhs } => {
                    let tag = self.tag_for(item, &env, binding);
                    if self.try_reuse(&tag) {
                        continue;
                    }
                    let lv = self.compile_lvalue(&ctx, lhs)?;
                    let rhs = self.compile_expr(&ctx, rhs)?;
                    let body = CStmt::Assign {
                        lv,
                        rhs,
                        nonblocking: false,
                    };
                    let mut reads = Vec::new();
                    collect_reads(&body, &mut reads);
                    let mut writes = Vec::new();
                    collect_writes(&body, &mut writes);
                    self.push_fresh(
                        tag,
                        Process::Comb {
                            reads,
                            writes,
                            body,
                        },
                    );
                }
                Item::Always { sens, body } => {
                    let tag = self.tag_for(item, &env, binding);
                    if self.try_reuse(&tag) {
                        continue;
                    }
                    let cbody = self.compile_stmt(&ctx, body)?;
                    let process = match sens {
                        Sensitivity::Comb => {
                            let mut reads = Vec::new();
                            collect_reads(&cbody, &mut reads);
                            let mut writes = Vec::new();
                            collect_writes(&cbody, &mut writes);
                            Process::Comb {
                                reads,
                                writes,
                                body: cbody,
                            }
                        }
                        Sensitivity::Edges(events) => {
                            // Dedup repeated events (`@(posedge clk or
                            // posedge clk)`) here so the per-edge trigger
                            // lists built by `Design::new` — and every
                            // scheduler scanning these edges — see each
                            // sensitivity once.
                            let mut edges: Vec<(Edge, SignalId)> = Vec::new();
                            for ev in events {
                                let id = self.resolve_signal(&ctx, &ev.signal)?;
                                if !edges.contains(&(ev.edge, id)) {
                                    edges.push((ev.edge, id));
                                }
                            }
                            Process::Seq { edges, body: cbody }
                        }
                    };
                    self.push_fresh(tag, process);
                }
                Item::Instance {
                    module: def_name,
                    name,
                    params,
                    conns,
                } => {
                    let text: Arc<str> = mage_verilog::print_item(item).into();
                    let fp = (self.hasher)(&text);
                    self.compile_instance(
                        &ctx, prefix, def_name, name, params, conns, depth, &text, fp, &env,
                    )?;
                }
            }
        }
        Ok((ctx.scope, env))
    }

    /// Content-address one item under the current binding environment.
    fn tag_for(&mut self, item: &Item, env: &Arc<str>, binding: u64) -> UnitTag {
        let text: Arc<str> = mage_verilog::print_item(item).into();
        let fingerprint = (self.hasher)(&text);
        let key = self.next_key(fingerprint, binding);
        UnitTag {
            key,
            text,
            env: env.clone(),
        }
    }

    fn next_key(&mut self, fingerprint: u64, binding: u64) -> UnitKey {
        let c = self.ordinals.entry((fingerprint, binding)).or_insert(0);
        let ordinal = *c;
        *c += 1;
        UnitKey {
            fingerprint,
            binding,
            ordinal,
        }
    }

    /// Probe the provider for `tag`; on a verified hit, install the unit
    /// verbatim and report `true`.
    fn try_reuse(&mut self, tag: &UnitTag) -> bool {
        let Some(provider) = self.provider else {
            return false;
        };
        let Some(unit) = provider.lookup(tag) else {
            return false;
        };
        self.processes.push(unit.process);
        self.tags.push(tag.clone());
        self.prebuilt.push(Some(unit.compiled));
        self.stats.reused += 1;
        true
    }

    /// Record a freshly compiled process unit.
    fn push_fresh(&mut self, tag: UnitTag, process: Process) {
        self.processes.push(process);
        self.tags.push(tag);
        self.prebuilt.push(None);
        self.stats.rebuilt += 1;
    }

    fn declare(
        &mut self,
        prefix: &str,
        name: &str,
        width: usize,
        lsb_index: i64,
        kind: NetKind,
        scope: &mut Scope,
    ) -> Result<SignalId, ElabError> {
        let full = format!("{prefix}{name}");
        if scope.contains_key(name) {
            return Err(ElabError::DuplicateSignal(full));
        }
        let id = SignalId(self.signals.len() as u32);
        self.signals.push(SignalDecl {
            name: full.clone(),
            width,
            lsb_index,
            kind,
        });
        self.by_name.insert(full, id);
        scope.insert(name.to_string(), id);
        Ok(id)
    }

    fn range_width(&self, range: Option<&Range>, consts: &Consts) -> Result<usize, ElabError> {
        let Some(r) = range else { return Ok(1) };
        let msb = self.const_i64(&r.msb, consts)?;
        let lsb = self.const_i64(&r.lsb, consts)?;
        if msb < lsb {
            return Err(ElabError::BadRange(format!("[{msb}:{lsb}]")));
        }
        let w = (msb - lsb + 1) as usize;
        if w == 0 || w > 4096 {
            return Err(ElabError::BadRange(format!("[{msb}:{lsb}]")));
        }
        Ok(w)
    }

    fn range_lsb(&self, range: Option<&Range>, consts: &Consts) -> Result<i64, ElabError> {
        match range {
            Some(r) => self.const_i64(&r.lsb, consts),
            None => Ok(0),
        }
    }

    fn const_i64(&self, e: &Expr, consts: &Consts) -> Result<i64, ElabError> {
        let v = fold_const(e, consts)
            .map_err(|_| ElabError::NotConstant(mage_verilog::print_expr(e)))?;
        v.to_u64()
            .map(|u| u as i64)
            .ok_or_else(|| ElabError::NotConstant(mage_verilog::print_expr(e)))
    }

    fn resolve_signal(&self, ctx: &ModuleCtx<'_>, name: &str) -> Result<SignalId, ElabError> {
        ctx.scope
            .get(name)
            .copied()
            .ok_or_else(|| ElabError::UndeclaredSignal {
                module: ctx.module.name.clone(),
                name: name.to_string(),
            })
    }

    // ------------------------------------------------------------------
    // Expressions
    // ------------------------------------------------------------------

    fn compile_expr(&self, ctx: &ModuleCtx<'_>, e: &Expr) -> Result<CExpr, ElabError> {
        Ok(match e {
            Expr::Literal { value, .. } => CExpr::Const(value.clone()),
            Expr::Ident(n) => match ctx.consts.get(n) {
                Some(v) => CExpr::Const(v.clone()),
                None => CExpr::Sig(self.resolve_signal(ctx, n)?),
            },
            Expr::Unary { op, operand } => {
                CExpr::Unary(*op, Box::new(self.compile_expr(ctx, operand)?))
            }
            Expr::Binary { op, lhs, rhs } => CExpr::Binary(
                *op,
                Box::new(self.compile_expr(ctx, lhs)?),
                Box::new(self.compile_expr(ctx, rhs)?),
            ),
            Expr::Ternary {
                cond,
                then_expr,
                else_expr,
            } => CExpr::Ternary(
                Box::new(self.compile_expr(ctx, cond)?),
                Box::new(self.compile_expr(ctx, then_expr)?),
                Box::new(self.compile_expr(ctx, else_expr)?),
            ),
            Expr::Concat(parts) => CExpr::Concat(
                parts
                    .iter()
                    .map(|p| self.compile_expr(ctx, p))
                    .collect::<Result<_, _>>()?,
            ),
            Expr::Repl { count, value } => {
                let n = self.const_i64(count, &ctx.consts)?;
                if n <= 0 || n > 4096 {
                    return Err(ElabError::BadRange(format!("replication count {n}")));
                }
                CExpr::Repl(n as usize, Box::new(self.compile_expr(ctx, value)?))
            }
            Expr::Bit { base, index } => {
                // Selecting a bit of a parameter constant.
                if let Some(v) = ctx.consts.get(base) {
                    let idx = self.const_i64(index, &ctx.consts)?;
                    let bit = if idx >= 0 {
                        v.get(idx as usize).unwrap_or(mage_logic::LogicBit::X)
                    } else {
                        mage_logic::LogicBit::X
                    };
                    return Ok(CExpr::Const(LogicVec::from_bit(bit)));
                }
                let id = self.resolve_signal(ctx, base)?;
                CExpr::BitSel(id, Box::new(self.compile_expr(ctx, index)?))
            }
            Expr::Part { base, msb, lsb } => {
                let id = self.resolve_signal(ctx, base)?;
                let decl = &self.signals[id.index()];
                let msb_v = self.const_i64(msb, &ctx.consts)?;
                let lsb_v = self.const_i64(lsb, &ctx.consts)?;
                if msb_v < lsb_v {
                    return Err(ElabError::BadRange(format!("{base}[{msb_v}:{lsb_v}]")));
                }
                let phys = lsb_v - decl.lsb_index;
                let width = (msb_v - lsb_v + 1) as usize;
                if phys < 0 || (phys as usize) + width > decl.width {
                    return Err(ElabError::BadSelect(format!("{base}[{msb_v}:{lsb_v}]")));
                }
                CExpr::PartSel(id, phys, width)
            }
        })
    }

    fn compile_lvalue(&self, ctx: &ModuleCtx<'_>, l: &LValue) -> Result<CLValue, ElabError> {
        Ok(match l {
            LValue::Ident(n) => CLValue::Whole(self.resolve_signal(ctx, n)?),
            LValue::Bit(n, idx) => {
                let id = self.resolve_signal(ctx, n)?;
                CLValue::BitSel(id, self.compile_expr(ctx, idx)?)
            }
            LValue::Part(n, msb, lsb) => {
                let id = self.resolve_signal(ctx, n)?;
                let decl = &self.signals[id.index()];
                let msb_v = self.const_i64(msb, &ctx.consts)?;
                let lsb_v = self.const_i64(lsb, &ctx.consts)?;
                if msb_v < lsb_v {
                    return Err(ElabError::BadRange(format!("{n}[{msb_v}:{lsb_v}]")));
                }
                let phys = lsb_v - decl.lsb_index;
                let width = (msb_v - lsb_v + 1) as usize;
                if phys < 0 || (phys as usize) + width > decl.width {
                    return Err(ElabError::BadSelect(format!("{n}[{msb_v}:{lsb_v}]")));
                }
                CLValue::PartSel(id, phys, width)
            }
            LValue::Concat(parts) => CLValue::Concat(
                parts
                    .iter()
                    .map(|p| self.compile_lvalue(ctx, p))
                    .collect::<Result<_, _>>()?,
            ),
        })
    }

    // ------------------------------------------------------------------
    // Statements
    // ------------------------------------------------------------------

    fn compile_stmt(&self, ctx: &ModuleCtx<'_>, s: &Stmt) -> Result<CStmt, ElabError> {
        Ok(match s {
            Stmt::Block(stmts) => CStmt::Block(
                stmts
                    .iter()
                    .map(|st| self.compile_stmt(ctx, st))
                    .collect::<Result<_, _>>()?,
            ),
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => CStmt::If(
                self.compile_expr(ctx, cond)?,
                Box::new(self.compile_stmt(ctx, then_branch)?),
                match else_branch {
                    Some(e) => Some(Box::new(self.compile_stmt(ctx, e)?)),
                    None => None,
                },
            ),
            Stmt::Case {
                kind,
                expr,
                arms,
                default,
            } => {
                let sel = self.compile_expr(ctx, expr)?;
                let mut carms = Vec::with_capacity(arms.len());
                for arm in arms {
                    let labels = arm
                        .labels
                        .iter()
                        .map(|l| self.compile_expr(ctx, l))
                        .collect::<Result<_, _>>()?;
                    carms.push((labels, self.compile_stmt(ctx, &arm.body)?));
                }
                CStmt::Case {
                    kind: *kind,
                    sel,
                    arms: carms,
                    default: match default {
                        Some(d) => Some(Box::new(self.compile_stmt(ctx, d)?)),
                        None => None,
                    },
                }
            }
            Stmt::Blocking { lhs, rhs } => CStmt::Assign {
                lv: self.compile_lvalue(ctx, lhs)?,
                rhs: self.compile_expr(ctx, rhs)?,
                nonblocking: false,
            },
            Stmt::NonBlocking { lhs, rhs } => CStmt::Assign {
                lv: self.compile_lvalue(ctx, lhs)?,
                rhs: self.compile_expr(ctx, rhs)?,
                nonblocking: true,
            },
            Stmt::For {
                var,
                init,
                cond,
                step,
                body,
            } => {
                // Static unroll with `var` folded as a constant.
                let mut unrolled = Vec::new();
                let mut consts = ctx.consts.clone();
                let mut v = fold_const(init, &consts).map_err(|_| {
                    ElabError::NotConstant(format!("for-init {}", mage_verilog::print_expr(init)))
                })?;
                let mut iters = 0usize;
                loop {
                    consts.insert(var.clone(), v.clone());
                    let c = fold_const(cond, &consts).map_err(|_| {
                        ElabError::NotConstant(format!(
                            "for-cond {}",
                            mage_verilog::print_expr(cond)
                        ))
                    })?;
                    if !c.truth().is_true() {
                        break;
                    }
                    let iter_ctx = ModuleCtx {
                        module: ctx.module,
                        scope: ctx.scope.clone(),
                        consts: consts.clone(),
                    };
                    unrolled.push(self.compile_stmt(&iter_ctx, body)?);
                    v = fold_const(step, &consts).map_err(|_| {
                        ElabError::NotConstant(format!(
                            "for-step {}",
                            mage_verilog::print_expr(step)
                        ))
                    })?;
                    iters += 1;
                    if iters > LOOP_LIMIT {
                        return Err(ElabError::LoopLimit(format!("for ({var} = …)")));
                    }
                }
                CStmt::Block(unrolled)
            }
            Stmt::Empty => CStmt::Nop,
        })
    }

    // ------------------------------------------------------------------
    // Instances
    // ------------------------------------------------------------------

    #[allow(clippy::too_many_arguments)]
    fn compile_instance(
        &mut self,
        ctx: &ModuleCtx<'_>,
        prefix: &str,
        def_name: &str,
        inst_name: &str,
        params: &[(String, Expr)],
        conns: &Connections,
        depth: usize,
        item_text: &Arc<str>,
        item_fp: u64,
        env: &Arc<str>,
    ) -> Result<(), ElabError> {
        let def = self
            .file
            .module(def_name)
            .ok_or_else(|| ElabError::UnknownModule(def_name.to_string()))?;
        let mut overrides: Consts = HashMap::new();
        for (pname, pexpr) in params {
            if !def.params.iter().any(|p| p.name == *pname && !p.local) {
                return Err(ElabError::BadConnection(format!(
                    "module `{def_name}` has no parameter `{pname}`"
                )));
            }
            let v = fold_const(pexpr, &ctx.consts)
                .map_err(|_| ElabError::NotConstant(format!("override of parameter `{pname}`")))?;
            overrides.insert(pname.clone(), v);
        }
        // Propose aliases for ports connected to plain identifiers.
        let mut aliases: HashMap<String, SignalId> = HashMap::new();
        let conn_pairs: Vec<(&Port, Option<&Expr>)> = match conns {
            Connections::Named(named) => {
                let mut v = Vec::new();
                for (pname, expr) in named {
                    let port = def.port(pname).ok_or_else(|| {
                        ElabError::BadConnection(format!(
                            "module `{def_name}` has no port `{pname}`"
                        ))
                    })?;
                    v.push((port, expr.as_ref()));
                }
                v
            }
            Connections::Ordered(exprs) => {
                if exprs.len() > def.ports.len() {
                    return Err(ElabError::BadConnection(format!(
                        "too many connections for `{def_name}`"
                    )));
                }
                def.ports.iter().zip(exprs.iter().map(Some)).collect()
            }
        };
        for (port, conn) in &conn_pairs {
            if let Some(Expr::Ident(n)) = conn {
                if !ctx.consts.contains_key(n) {
                    if let Some(&parent) = ctx.scope.get(n) {
                        aliases.insert(port.name.clone(), parent);
                    }
                }
            }
        }
        let child_prefix = format!("{prefix}{inst_name}.");
        let (child_scope, child_env) =
            self.instantiate(def, &child_prefix, &overrides, &aliases, depth + 1)?;

        // Bind connections. Binding processes are keyed by the instance
        // item's fingerprint under the *joint* environment: a port
        // binding reads parent signals and writes child ports (or vice
        // versa), so both sides must match for reuse to be sound.
        let bind_env: Arc<str> = format!("{env}\u{1}{child_env}").into();
        let bind_hash = (self.hasher)(&bind_env);
        for (port, conn) in conn_pairs {
            let Some(conn) = conn else { continue };
            let port_id = child_scope[&port.name];
            // Aliased ports are wired by construction.
            if let Some(&proposed) = aliases.get(&port.name) {
                if proposed == port_id {
                    continue;
                }
            }
            let key = self.next_key(item_fp, bind_hash);
            let tag = UnitTag {
                key,
                text: item_text.clone(),
                env: bind_env.clone(),
            };
            if self.try_reuse(&tag) {
                continue;
            }
            match port.dir {
                Direction::Input => {
                    let rhs = self.compile_expr(ctx, conn)?;
                    let body = CStmt::Assign {
                        lv: CLValue::Whole(port_id),
                        rhs,
                        nonblocking: false,
                    };
                    let mut reads = Vec::new();
                    collect_reads(&body, &mut reads);
                    let mut writes = Vec::new();
                    collect_writes(&body, &mut writes);
                    self.push_fresh(
                        tag,
                        Process::Comb {
                            reads,
                            writes,
                            body,
                        },
                    );
                }
                Direction::Output => {
                    let lval = expr_as_lvalue(conn).ok_or_else(|| {
                        ElabError::BadConnection(format!(
                            "output port `{}` connected to a non-lvalue",
                            port.name
                        ))
                    })?;
                    let lv = self.compile_lvalue(ctx, &lval)?;
                    let body = CStmt::Assign {
                        lv,
                        rhs: CExpr::Sig(port_id),
                        nonblocking: false,
                    };
                    let mut reads = vec![port_id];
                    collect_reads(&body, &mut reads);
                    let mut writes = Vec::new();
                    collect_writes(&body, &mut writes);
                    self.push_fresh(
                        tag,
                        Process::Comb {
                            reads,
                            writes,
                            body,
                        },
                    );
                }
            }
        }
        Ok(())
    }
}

/// Convert a connection expression to an lvalue when possible.
fn expr_as_lvalue(e: &Expr) -> Option<LValue> {
    match e {
        Expr::Ident(n) => Some(LValue::Ident(n.clone())),
        Expr::Bit { base, index } => Some(LValue::Bit(base.clone(), (**index).clone())),
        Expr::Part { base, msb, lsb } => {
            Some(LValue::Part(base.clone(), (**msb).clone(), (**lsb).clone()))
        }
        Expr::Concat(parts) => {
            let mut out = Vec::with_capacity(parts.len());
            for p in parts {
                out.push(expr_as_lvalue(p)?);
            }
            Some(LValue::Concat(out))
        }
        _ => None,
    }
}

/// Collect the signals a compiled statement reads (for combinational
/// sensitivity). Written signals are *not* excluded: a comb process that
/// reads what it writes is a combinational loop and will be caught at
/// simulation time.
pub(crate) fn collect_reads(s: &CStmt, out: &mut Vec<SignalId>) {
    fn expr(e: &CExpr, out: &mut Vec<SignalId>) {
        match e {
            CExpr::Const(_) => {}
            CExpr::Sig(id) => out.push(*id),
            CExpr::Unary(_, a) => expr(a, out),
            CExpr::Binary(_, a, b) => {
                expr(a, out);
                expr(b, out);
            }
            CExpr::Ternary(c, t, f) => {
                expr(c, out);
                expr(t, out);
                expr(f, out);
            }
            CExpr::Concat(parts) => parts.iter().for_each(|p| expr(p, out)),
            CExpr::Repl(_, v) => expr(v, out),
            CExpr::BitSel(id, idx) => {
                out.push(*id);
                expr(idx, out);
            }
            CExpr::PartSel(id, _, _) => out.push(*id),
        }
    }
    fn lval_indices(l: &CLValue, out: &mut Vec<SignalId>) {
        match l {
            CLValue::Whole(_) | CLValue::PartSel(..) => {}
            CLValue::BitSel(_, idx) => expr(idx, out),
            CLValue::Concat(parts) => parts.iter().for_each(|p| lval_indices(p, out)),
        }
    }
    match s {
        CStmt::Block(stmts) => stmts.iter().for_each(|c| collect_reads(c, out)),
        CStmt::If(c, t, e) => {
            expr(c, out);
            collect_reads(t, out);
            if let Some(e) = e {
                collect_reads(e, out);
            }
        }
        CStmt::Case {
            sel, arms, default, ..
        } => {
            expr(sel, out);
            for (labels, body) in arms {
                labels.iter().for_each(|l| expr(l, out));
                collect_reads(body, out);
            }
            if let Some(d) = default {
                collect_reads(d, out);
            }
        }
        CStmt::Assign { lv, rhs, .. } => {
            expr(rhs, out);
            lval_indices(lv, out);
        }
        CStmt::Nop => {}
    }
}

/// Collect the signals a compiled statement can write.
pub(crate) fn collect_writes(s: &CStmt, out: &mut Vec<SignalId>) {
    fn lval(l: &CLValue, out: &mut Vec<SignalId>) {
        match l {
            CLValue::Whole(id) | CLValue::BitSel(id, _) | CLValue::PartSel(id, _, _) => {
                if !out.contains(id) {
                    out.push(*id);
                }
            }
            CLValue::Concat(parts) => parts.iter().for_each(|p| lval(p, out)),
        }
    }
    match s {
        CStmt::Block(stmts) => stmts.iter().for_each(|c| collect_writes(c, out)),
        CStmt::If(_, t, e) => {
            collect_writes(t, out);
            if let Some(e) = e {
                collect_writes(e, out);
            }
        }
        CStmt::Case { arms, default, .. } => {
            for (_, body) in arms {
                collect_writes(body, out);
            }
            if let Some(d) = default {
                collect_writes(d, out);
            }
        }
        CStmt::Assign { lv, .. } => lval(lv, out),
        CStmt::Nop => {}
    }
}

/// Fold a constant expression over a parameter environment.
///
/// Every identifier must resolve in `consts`; `None` otherwise. Exposed
/// for tools (like the mutation engine) that need widths of declared
/// signals without a full elaboration.
pub fn fold_const_expr(e: &Expr, consts: &HashMap<String, LogicVec>) -> Option<LogicVec> {
    fold_const(e, consts).ok()
}

/// Internal fallible fold used by elaboration error paths.
pub(crate) fn fold_const(e: &Expr, consts: &Consts) -> Result<LogicVec, ()> {
    use mage_logic::{LogicBit, Truth};
    Ok(match e {
        Expr::Literal { value, .. } => value.clone(),
        Expr::Ident(n) => consts.get(n).cloned().ok_or(())?,
        Expr::Unary { op, operand } => {
            let v = fold_const(operand, consts)?;
            match op {
                UnaryOp::Not => v.bit_not(),
                UnaryOp::Neg => v.neg(),
                UnaryOp::Plus => v,
                UnaryOp::LogicNot => LogicVec::from_bit(v.truth().not().to_bit()),
                UnaryOp::ReduceAnd => LogicVec::from_bit(v.reduce_and()),
                UnaryOp::ReduceOr => LogicVec::from_bit(v.reduce_or()),
                UnaryOp::ReduceXor => LogicVec::from_bit(v.reduce_xor()),
                UnaryOp::ReduceNand => LogicVec::from_bit(v.reduce_nand()),
                UnaryOp::ReduceNor => LogicVec::from_bit(v.reduce_nor()),
                UnaryOp::ReduceXnor => LogicVec::from_bit(v.reduce_xnor()),
            }
        }
        Expr::Binary { op, lhs, rhs } => {
            let a = fold_const(lhs, consts)?;
            let b = fold_const(rhs, consts)?;
            match op {
                BinaryOp::Add => a.add(&b),
                BinaryOp::Sub => a.sub(&b),
                BinaryOp::Mul => a.mul(&b),
                BinaryOp::Div => a.div(&b),
                BinaryOp::Mod => a.rem(&b),
                BinaryOp::And => a.bit_and(&b),
                BinaryOp::Or => a.bit_or(&b),
                BinaryOp::Xor => a.bit_xor(&b),
                BinaryOp::Xnor => a.bit_xnor(&b),
                BinaryOp::LogicAnd => LogicVec::from_bit(a.truth().and(b.truth()).to_bit()),
                BinaryOp::LogicOr => LogicVec::from_bit(a.truth().or(b.truth()).to_bit()),
                BinaryOp::Eq => LogicVec::from_bit(a.logic_eq(&b)),
                BinaryOp::Neq => LogicVec::from_bit(a.logic_neq(&b)),
                BinaryOp::CaseEq => LogicVec::from_bit(LogicBit::from(a.case_eq(&b))),
                BinaryOp::CaseNeq => LogicVec::from_bit(LogicBit::from(!a.case_eq(&b))),
                BinaryOp::Lt => LogicVec::from_bit(a.lt(&b)),
                BinaryOp::Le => LogicVec::from_bit(a.le(&b)),
                BinaryOp::Gt => LogicVec::from_bit(a.gt(&b)),
                BinaryOp::Ge => LogicVec::from_bit(a.ge(&b)),
                BinaryOp::Shl => a.shl(&b),
                BinaryOp::Shr => a.shr(&b),
            }
        }
        Expr::Ternary {
            cond,
            then_expr,
            else_expr,
        } => {
            let c = fold_const(cond, consts)?.truth();
            match c {
                Truth::True => fold_const(then_expr, consts)?,
                Truth::False => fold_const(else_expr, consts)?,
                Truth::Unknown => LogicVec::mux(
                    Truth::Unknown,
                    &fold_const(then_expr, consts)?,
                    &fold_const(else_expr, consts)?,
                ),
            }
        }
        Expr::Concat(parts) => {
            let vals: Vec<LogicVec> = parts
                .iter()
                .map(|p| fold_const(p, consts))
                .collect::<Result<_, _>>()?;
            let refs: Vec<&LogicVec> = vals.iter().collect();
            LogicVec::concat_msb_first(&refs)
        }
        Expr::Repl { count, value } => {
            let n = fold_const(count, consts)?.to_u64().ok_or(())? as usize;
            if n == 0 || n > 4096 {
                return Err(());
            }
            fold_const(value, consts)?.replicate(n)
        }
        Expr::Bit { base, index } => {
            let v = consts.get(base).ok_or(())?;
            let i = fold_const(index, consts)?.to_u64().ok_or(())? as usize;
            LogicVec::from_bit(v.get(i).unwrap_or(LogicBit::X))
        }
        Expr::Part { base, msb, lsb } => {
            let v = consts.get(base).ok_or(())?;
            let m = fold_const(msb, consts)?.to_u64().ok_or(())? as i64;
            let l = fold_const(lsb, consts)?.to_u64().ok_or(())? as i64;
            if m < l {
                return Err(());
            }
            v.slice(l as isize, (m - l + 1) as usize)
        }
    })
}
