//! Elaboration and simulation errors.

use std::error::Error;
use std::fmt;

/// Error raised while elaborating a parsed design into a [`crate::Design`].
///
/// Elaboration errors are part of the feedback loop: a candidate that
/// parses but references undeclared signals (a common LLM failure mode)
/// is reported back to the RTL agent through this type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ElabError {
    /// The requested top module does not exist in the source file.
    UnknownModule(String),
    /// An identifier was used but never declared.
    UndeclaredSignal {
        /// Module where the reference occurred.
        module: String,
        /// The undeclared name.
        name: String,
    },
    /// A signal was declared more than once.
    DuplicateSignal(String),
    /// An expression that must be constant could not be folded.
    NotConstant(String),
    /// A `[msb:lsb]` range with msb < lsb or negative width.
    BadRange(String),
    /// Select indices outside the declared range of a signal.
    BadSelect(String),
    /// Instance connection problems (unknown port, non-lvalue output, …).
    BadConnection(String),
    /// `for` loop exceeded the static unroll limit.
    LoopLimit(String),
    /// Instantiation recursion exceeded the depth limit.
    RecursionLimit(String),
    /// Anything else with a message.
    Unsupported(String),
}

impl fmt::Display for ElabError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ElabError::UnknownModule(m) => write!(f, "unknown module `{m}`"),
            ElabError::UndeclaredSignal { module, name } => {
                write!(f, "undeclared signal `{name}` in module `{module}`")
            }
            ElabError::DuplicateSignal(s) => write!(f, "duplicate declaration of `{s}`"),
            ElabError::NotConstant(e) => write!(f, "expression is not constant: {e}"),
            ElabError::BadRange(e) => write!(f, "invalid range: {e}"),
            ElabError::BadSelect(e) => write!(f, "select out of declared range: {e}"),
            ElabError::BadConnection(e) => write!(f, "invalid instance connection: {e}"),
            ElabError::LoopLimit(e) => write!(f, "for-loop unroll limit exceeded: {e}"),
            ElabError::RecursionLimit(e) => write!(f, "instantiation recursion too deep: {e}"),
            ElabError::Unsupported(e) => write!(f, "unsupported construct: {e}"),
        }
    }
}

impl Error for ElabError {}

/// Error raised during simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// Combinational evaluation failed to reach a fixpoint (a
    /// combinational loop, possibly introduced by a mutation).
    CombinationalLoop {
        /// Iterations attempted before giving up.
        iterations: usize,
    },
    /// Edge-cascade limit exceeded (pathological clock feedback).
    EdgeCascade {
        /// Cascade rounds attempted.
        rounds: usize,
    },
    /// A named input does not exist or is not a top-level input.
    UnknownInput(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::CombinationalLoop { iterations } => {
                write!(
                    f,
                    "combinational loop: no fixpoint after {iterations} iterations"
                )
            }
            SimError::EdgeCascade { rounds } => {
                write!(f, "edge cascade did not converge after {rounds} rounds")
            }
            SimError::UnknownInput(n) => write!(f, "`{n}` is not a top-level input"),
        }
    }
}

impl Error for SimError {}
