//! Content-addressed per-process compilation units.
//!
//! The debug loop edits designs, it does not rewrite them: a candidate
//! usually differs from its parent by one process body. This module gives
//! every elaborated process a *content address* so an elaboration armed
//! with a [`UnitSource`] (the parent design, a serve-layer cache, or a
//! chain of both) can reuse each unchanged process — interpreter form
//! *and* lowered bytecode — verbatim, and rebuild only what the edit
//! touched.
//!
//! A unit's identity is its [`UnitKey`]:
//!
//! * `fingerprint` — hash of the module item's canonical printed form
//!   ([`mage_verilog::fingerprint`]), insensitive to whitespace/comments;
//! * `binding` — hash of the *resolved signal binding*: the instantiating
//!   module's full environment (prefix, every in-scope signal with its
//!   global [`SignalId`](crate::SignalId), width, LSB index and kind, and
//!   every folded parameter). Two textually identical items bound to
//!   different signals — sibling instances, shifted id spaces — get
//!   different keys;
//! * `ordinal` — occurrence counter disambiguating textually identical
//!   items under the same binding.
//!
//! Hashes are advisory. Every [`UnitTag`] carries the canonical item text
//! and the canonical environment string, and every [`UnitSource`] MUST
//! verify both on a key hit before serving a unit — a 64-bit fingerprint
//! collision must cause a rebuild, never a wrong design. The injectable
//! hasher on [`crate::elaborate_delta`] exists so tests can force such
//! collisions.

use crate::compile::CompiledProcess;
use crate::design::{Design, Process};
use std::collections::HashMap;
use std::sync::Arc;

/// Content address of one compilation unit. See the module docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct UnitKey {
    /// Fingerprint of the item's canonical printed form.
    pub fingerprint: u64,
    /// Hash of the resolved signal binding (instantiation environment).
    pub binding: u64,
    /// Occurrence index among same-`(fingerprint, binding)` units.
    pub ordinal: u32,
}

/// A unit's full identity: key plus the verification witnesses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnitTag {
    /// The content address.
    pub key: UnitKey,
    /// Canonical printed item text (`mage_verilog::print_item`).
    pub text: Arc<str>,
    /// Canonical environment string the `binding` hash was taken over.
    pub env: Arc<str>,
}

/// One process, elaborated and lowered, ready for verbatim reuse.
#[derive(Debug, Clone)]
pub struct ProcessUnit {
    /// The interpreter form ([`Design::processes`] entry).
    pub process: Process,
    /// The lowered bytecode ([`crate::CompiledDesign::procs`] entry).
    pub compiled: CompiledProcess,
}

/// Counters for one delta elaboration.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeltaStats {
    /// Units served verbatim from the provider.
    pub reused: usize,
    /// Units elaborated and lowered from scratch.
    pub rebuilt: usize,
    /// `comb_readers` fanout rows that reference a rebuilt process.
    pub fanout_rows: usize,
    /// Per-edge trigger rows that reference a rebuilt process.
    pub trigger_rows: usize,
    /// Fused cascade plans dropped because their closure contains a
    /// rebuilt unit ([`crate::CompiledDesign::invalidated_plans`]): a
    /// rebuilt unit invalidates every evaluation plan whose cascade
    /// contains it, and this delta rebuild rebuilt those plans from the
    /// fresh unit set.
    pub plan_invalidations: usize,
}

impl DeltaStats {
    /// Total units the elaboration produced.
    pub fn total(&self) -> usize {
        self.reused + self.rebuilt
    }
}

/// A supplier of previously compiled units.
///
/// Implementations MUST verify `tag.text` and `tag.env` against the
/// stored unit before serving it; the key alone is advisory (see module
/// docs). `publish` is called once per freshly built unit after a delta
/// elaboration succeeds, and defaults to a no-op for read-only sources.
pub trait UnitSource {
    /// A verified unit for `tag`, or `None` (miss or collision).
    fn lookup(&self, tag: &UnitTag) -> Option<ProcessUnit>;
    /// Offer a freshly built unit for future lookups.
    fn publish(&self, _tag: &UnitTag, _unit: ProcessUnit) {}
}

/// The parent-design provider: serves units straight out of an already
/// elaborated [`Design`] — the common case in the debug loop, where the
/// candidate names its parent and everything but the edited process hits.
pub struct DesignUnits {
    parent: Arc<Design>,
    index: HashMap<UnitKey, u32>,
}

impl DesignUnits {
    /// Index `parent`'s unit tags. Designs assembled without tags (e.g.
    /// hand-built in tests) yield an empty index — every lookup misses.
    pub fn new(parent: Arc<Design>) -> Self {
        let index = parent
            .units()
            .iter()
            .enumerate()
            .map(|(i, t)| (t.key, i as u32))
            .collect();
        DesignUnits { parent, index }
    }
}

impl UnitSource for DesignUnits {
    fn lookup(&self, tag: &UnitTag) -> Option<ProcessUnit> {
        let &i = self.index.get(&tag.key)?;
        let i = i as usize;
        let stored = &self.parent.units()[i];
        // Full verification: identical canonical text AND identical
        // resolved binding, or the hit is a collision and must rebuild.
        if *stored.text != *tag.text || *stored.env != *tag.env {
            return None;
        }
        Some(ProcessUnit {
            process: self.parent.processes[i].clone(),
            compiled: self.parent.compiled().procs[i].clone(),
        })
    }
}

/// Probe several sources in order; publish to all of them.
///
/// The serve layer chains the parent design (fastest, exact) in front of
/// the shared unit cache; [`DesignUnits::publish`] is a no-op, so fresh
/// units land only in the writable tiers.
pub struct ChainedUnits<'a> {
    sources: Vec<&'a dyn UnitSource>,
}

impl<'a> ChainedUnits<'a> {
    /// Chain `sources`, probed first-to-last.
    pub fn new(sources: Vec<&'a dyn UnitSource>) -> Self {
        ChainedUnits { sources }
    }
}

impl UnitSource for ChainedUnits<'_> {
    fn lookup(&self, tag: &UnitTag) -> Option<ProcessUnit> {
        self.sources.iter().find_map(|s| s.lookup(tag))
    }
    fn publish(&self, tag: &UnitTag, unit: ProcessUnit) {
        for s in &self.sources {
            s.publish(tag, unit.clone());
        }
    }
}

/// The default unit hasher: FNV-1a over the canonical string.
pub fn unit_hash(s: &str) -> u64 {
    mage_logic::fnv1a(s.as_bytes())
}

/// Whether delta (unit-reusing) compilation is enabled.
///
/// `MAGE_SIM_DELTA=off` (or `0`/`false`, case-insensitive) disables it,
/// keeping the from-scratch pipeline live as the differential oracle;
/// anything else — including unset — enables it. Read per call so tests
/// and benches can flip it at runtime.
pub fn delta_enabled() -> bool {
    match std::env::var("MAGE_SIM_DELTA") {
        Ok(v) => {
            let v = v.to_ascii_lowercase();
            !(v == "off" || v == "0" || v == "false")
        }
        Err(_) => true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{elaborate, elaborate_delta, elaborate_with};

    const BASE: &str = "module top(input clk, input a, input b, output reg q, output w);\n\
         wire x;\n\
         assign x = a & b;\n\
         assign w = x | a;\n\
         always @(posedge clk) q <= x;\n\
         endmodule\n";

    fn design_of(src: &str) -> Arc<Design> {
        let file = mage_verilog::parse(src).unwrap();
        Arc::new(crate::elaborate(&file, "top").unwrap())
    }

    #[test]
    fn identical_source_reuses_every_unit() {
        let parent = design_of(BASE);
        let total = parent.processes.len();
        let provider = DesignUnits::new(parent.clone());
        let file = mage_verilog::parse(BASE).unwrap();
        let (delta, stats) = elaborate_with(&file, "top", &provider).unwrap();
        assert_eq!(stats.reused, total);
        assert_eq!(stats.rebuilt, 0);
        assert_eq!(stats.fanout_rows, 0);
        assert_eq!(stats.trigger_rows, 0);
        assert_eq!(delta.processes, parent.processes);
        assert_eq!(
            format!("{:?}", delta.compiled().procs),
            format!("{:?}", parent.compiled().procs),
        );
    }

    #[test]
    fn single_edit_rebuilds_only_the_edited_unit() {
        let parent = design_of(BASE);
        let total = parent.processes.len();
        let provider = DesignUnits::new(parent.clone());
        let edited = BASE.replace("x | a", "x ^ a");
        let file = mage_verilog::parse(&edited).unwrap();
        let (delta, stats) = elaborate_with(&file, "top", &provider).unwrap();
        assert_eq!(stats.rebuilt, 1);
        assert_eq!(stats.reused, total - 1);
        // The edited unit is comb: it lands in fanout rows, not trigger
        // rows.
        assert!(stats.fanout_rows > 0);
        assert_eq!(stats.trigger_rows, 0);
        // Store-exact against from-scratch.
        let scratch = elaborate(&file, "top").unwrap();
        assert_eq!(delta.processes, scratch.processes);
        assert_eq!(
            format!("{:?}", delta.compiled().procs),
            format!("{:?}", scratch.compiled().procs),
        );
        assert_eq!(
            format!("{:?}", delta.compiled().comb_readers),
            format!("{:?}", scratch.compiled().comb_readers),
        );
    }

    #[test]
    fn whitespace_only_change_is_a_full_reuse() {
        let parent = design_of(BASE);
        let messy = BASE.replace("assign x = a & b;", "assign   x=a&b; // comment");
        let provider = DesignUnits::new(parent.clone());
        let file = mage_verilog::parse(&messy).unwrap();
        let (_, stats) = elaborate_with(&file, "top", &provider).unwrap();
        assert_eq!(stats.rebuilt, 0);
        assert_eq!(stats.reused, parent.processes.len());
    }

    #[test]
    fn fingerprint_collision_forces_a_rebuild() {
        // A degenerate hasher maps every item and environment to the
        // same key; only the full text/env verification stands between a
        // collision and serving the wrong unit.
        fn collide(_: &str) -> u64 {
            0x42
        }
        let file = mage_verilog::parse(BASE).unwrap();
        let (parent, _) = elaborate_delta(&file, "top", None, collide).unwrap();
        let parent = Arc::new(parent);
        let total = parent.processes.len();
        let edited = BASE.replace("x | a", "x ^ a");
        let efile = mage_verilog::parse(&edited).unwrap();
        let provider = DesignUnits::new(parent.clone());
        let (delta, stats) = elaborate_delta(&efile, "top", Some(&provider), collide).unwrap();
        // The edited item collides with a parent key but fails text
        // verification: it must rebuild, and the design must match a
        // from-scratch build exactly.
        assert_eq!(stats.rebuilt, 1);
        assert_eq!(stats.reused, total - 1);
        let scratch = elaborate(&efile, "top").unwrap();
        assert_eq!(delta.processes, scratch.processes);
    }

    #[test]
    fn renamed_signal_rebuilds_affected_units() {
        let parent = design_of(BASE);
        let provider = DesignUnits::new(parent.clone());
        // Renaming `x` changes the canonical text of every unit reading
        // it AND the binding environment of the whole module.
        let renamed = BASE.replace('x', "y");
        let file = mage_verilog::parse(&renamed).unwrap();
        let (_, stats) = elaborate_with(&file, "top", &provider).unwrap();
        assert_eq!(stats.reused, 0);
        assert_eq!(stats.rebuilt, parent.processes.len());
    }

    #[test]
    fn changed_width_rebuilds_despite_identical_text() {
        let wide = BASE.replace("wire x;", "wire [1:0] x;");
        let parent = design_of(&wide);
        let provider = DesignUnits::new(parent.clone());
        // Same item text everywhere except the declaration — but the
        // width change shifts the binding environment, so nothing the
        // width could affect is reused blindly.
        let file = mage_verilog::parse(BASE).unwrap();
        let (delta, stats) = elaborate_with(&file, "top", &provider).unwrap();
        assert_eq!(stats.reused, 0);
        assert!(stats.rebuilt > 0);
        let scratch = elaborate(&file, "top").unwrap();
        assert_eq!(delta.processes, scratch.processes);
    }

    #[test]
    fn delta_gate_reads_environment_per_call() {
        // Not a parallel-safe env-var test pattern in general, but the
        // suite runs these assertions against whatever ambient value is
        // set plus explicit overrides through a scoped helper.
        let key = "MAGE_SIM_DELTA";
        let prev = std::env::var(key).ok();
        std::env::set_var(key, "off");
        assert!(!delta_enabled());
        std::env::set_var(key, "0");
        assert!(!delta_enabled());
        std::env::set_var(key, "false");
        assert!(!delta_enabled());
        std::env::set_var(key, "on");
        assert!(delta_enabled());
        match prev {
            Some(v) => std::env::set_var(key, v),
            None => std::env::remove_var(key),
        }
    }
}
