//! Bytecode interpretation: executes [`CompiledProcess`] streams over a
//! pre-sized register file.
//!
//! This is the compile-once, execute-many counterpart of the
//! tree-walking [`crate::eval`] path. All widths were resolved by
//! [`crate::compile`]; execution is a flat `pc` loop in which
//!
//! * every operator writes into its destination slot **in place**
//!   (`set_add`, `set_and`, `assign_resized`, …) — for the ≤ 64-bit
//!   widths that dominate the benchmark corpus the whole loop runs
//!   without a single heap allocation;
//! * stores go through the same slice-precise `apply_write` as the
//!   legacy path, so change detection and non-blocking commit order are
//!   identical (the tree-walker stays alive as the differential-testing
//!   oracle — see `tests/compiled_vs_interp.rs`).
//!
//! # The interpreter stack
//!
//! Four loops share the instruction set, selected per process and per
//! evaluation:
//!
//! * [`execute_wide`] — `LogicVec` slots, any width (four-state);
//! * [`execute_narrow`] — raw `(aval, bval)` word pairs when every
//!   value fits in 64 bits (four-state);
//! * [`execute_two_state`] — narrow **two-state**: pure-value
//!   instructions run over the aval plane with bval known zero,
//!   bailing out (and rewinding) to `execute_narrow` when an `X`/`Z`
//!   or an X-producing hazard appears mid-run;
//! * [`execute_two_state_pure`] — narrow two-state over bare `u64`
//!   aval registers for [`CompiledProcess::hazard_free`] streams,
//!   which cannot bail: the Verilator model, and the steady-state hot
//!   loop of defined kernels.
//!
//! Dispatch between four-state and two-state happens in [`execute`]:
//! an eligible process takes the two-state path whenever its read set
//! is fully defined ([`CompiledProcess::reads_fully_defined`]), so the
//! all-`X` boot state runs four-state until the first defined values
//! arrive, and any poked `X`/`Z` demotes exactly the processes that
//! read it until it clears.
//!
//! The register file for each process is owned by the [`crate::Simulator`]
//! and reused across executions, so steady-state simulation performs no
//! per-activation setup beyond the `pc` loop itself.
//!
//! Change reporting is what feeds the event wheel: blocking stores go
//! through `apply_write` (or the narrow whole-signal fast path below),
//! which records a signal in `changed` only when the stored value
//! actually moved — the scheduler turns exactly those entries into
//! fanout events, so a store of an unchanged value schedules nothing.

use crate::compile::{BinOp, CmpOp, CompiledProcess, Instr, ReduceOp, Slot};
use crate::design::SignalId;
use crate::eval::{apply_write, PendingWrite, Store};
use mage_logic::{LogicBit, LogicVec, Truth};
use mage_verilog::ast::CaseKind;

/// Split the register file at `dst`: slots are SSA (every destination is
/// allocated after all of its operands), so `&mut regs[dst]` plus shared
/// access to all lower slots covers every instruction without moves or
/// clones.
#[inline]
fn dst_srcs(regs: &mut [LogicVec], dst: Slot) -> (&mut LogicVec, &[LogicVec]) {
    let (lo, hi) = regs.split_at_mut(dst as usize);
    (&mut hi[0], lo)
}

/// Write `bit` into `dst` as a 1-bit value zero-extended to `dst`'s
/// width (the shape of every reduction/comparison/logical result).
#[inline]
fn set_bit_result(dst: &mut LogicVec, bit: LogicBit) {
    dst.fill(LogicBit::Zero);
    dst.set_bit(0, bit);
}

/// Register file of one process: wide processes hold `LogicVec` slots,
/// narrow processes (every width ≤ 64) hold raw plane-word pairs.
#[derive(Debug, Clone)]
pub enum RegFile {
    /// `LogicVec` per slot.
    Wide(Vec<LogicVec>),
    /// Narrow state: `(aval, bval)` per slot, plus the two-state
    /// machinery — a pure aval-plane file for hazard-free streams and
    /// the pooled pre-run write-set snapshot the bailing two-state
    /// path rewinds from.
    Narrow {
        /// `(aval, bval)` per slot.
        regs: Vec<(u64, u64)>,
        /// aval word per slot ([`CompiledProcess::hazard_free`]
        /// streams only, else empty): the two-state interpreter for
        /// those runs touches no bval storage at all.
        aregs: Vec<u64>,
        /// Plane pairs of `proc.writes`, captured before a bail-able
        /// two-state attempt (empty between runs).
        snap: Vec<(u64, u64)>,
    },
}

impl RegFile {
    /// The matching register file for a compiled process.
    pub fn for_process(proc: &CompiledProcess) -> RegFile {
        if proc.narrow {
            RegFile::Narrow {
                regs: proc.make_narrow_regs(),
                aregs: if proc.hazard_free {
                    vec![0; proc.slot_widths.len()]
                } else {
                    Vec::new()
                },
                snap: Vec::new(),
            }
        } else {
            RegFile::Wide(proc.make_regs())
        }
    }
}

/// Which execution path serviced an [`execute`] call (feeds the
/// scheduler's `two_state_evals`/`two_state_fallbacks` counters).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecOutcome {
    /// The two-state (aval-plane-only) interpreter ran to completion.
    TwoState,
    /// A fused [`crate::plan::EvalPlan`] serviced the evaluation (a
    /// two-state run with superinstruction dispatch): `ops` plan
    /// opcodes retired, covering `src` source instructions — what the
    /// unfused interpreter would have dispatched on the same control
    /// path. Feeds `fused_evals`/`plan_steps`/`plan_unfused_steps`.
    Fused {
        /// Plan opcodes retired.
        ops: u32,
        /// Source instructions those opcodes covered.
        src: u32,
    },
    /// The process is two-state eligible but ran four-state this time:
    /// an `X`/`Z` in its read set at dispatch, or a mid-run bailout
    /// (division by zero, out-of-range read, an unknown appearing on a
    /// re-read of the process's own store writes). `reason` says which
    /// flavor — the fuzz coverage map treats the two as distinct
    /// behaviors to keep exercising.
    Fallback {
        /// Why the two-state attempt did not complete.
        reason: BailReason,
    },
    /// The four-state path by construction (wide process, two-state
    /// disabled, or compile-time ineligible).
    FourState,
}

/// Why a two-state-eligible process ran four-state
/// ([`ExecOutcome::Fallback`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BailReason {
    /// An `X`/`Z` in the read set at dispatch (including the all-`X`
    /// boot state): the two-state run was never attempted.
    DispatchUndef,
    /// The run started two-state and bailed mid-stream (division by
    /// zero, out-of-range dynamic read, an unknown re-read of the
    /// process's own store writes); every observable effect was
    /// rewound before the four-state re-run.
    MidRun,
}

/// Execute one compiled process body.
///
/// Blocking stores write through to `store` (recording changed signals
/// in `changed`); non-blocking stores queue on `nba` exactly like the
/// tree-walking executor.
///
/// When `two_state` is set and the process is eligible
/// ([`CompiledProcess::two_state`]), execution first tries the
/// aval-plane-only interpreter: the read set is scanned for definedness
/// ([`CompiledProcess::reads_fully_defined`] — the all-`X` boot state
/// fails this until the first defined store, so X-boot always runs
/// four-state), the write set is snapshotted, and a mid-run bailout
/// rewinds every observable effect (stores, queued NBAs, change
/// records) before re-running the four-state narrow path — a completed
/// two-state run is therefore store-exact by construction, which the
/// corpus lockstep suites and `tests/two_state.rs` verify against both
/// retained oracles.
pub fn execute(
    proc: &CompiledProcess,
    regfile: &mut RegFile,
    store: &mut Store,
    nba: &mut Vec<PendingWrite>,
    changed: &mut Vec<SignalId>,
    two_state: bool,
    fuse: bool,
) -> ExecOutcome {
    match regfile {
        RegFile::Narrow { regs, aregs, snap } => {
            if two_state && proc.two_state {
                if proc.reads_fully_defined(store) {
                    if proc.hazard_free {
                        // No bail site exists in the stream. With fusion
                        // enabled, dispatch the superinstruction plan
                        // (store-exact against the pure interpreter by
                        // construction); otherwise run the unfused pure
                        // aval-plane interpreter — no snapshot, no bval
                        // storage, no rewind path either way.
                        if fuse {
                            if let Some(plan) = &proc.plan {
                                let (ops, src) =
                                    crate::plan::execute_plan(plan, aregs, store, nba, changed);
                                return ExecOutcome::Fused { ops, src };
                            }
                        }
                        execute_two_state_pure(proc, aregs, store, nba, changed);
                        return ExecOutcome::TwoState;
                    }
                    // Bail-able stream: snapshot the write set so a
                    // mid-run bailout can rewind.
                    snap.clear();
                    snap.extend(
                        proc.writes
                            .iter()
                            .map(|sig| store[sig.index()].planes_u64()),
                    );
                    let nba_len = nba.len();
                    let changed_len = changed.len();
                    if execute_two_state(proc, regs, store, nba, changed) {
                        snap.clear();
                        return ExecOutcome::TwoState;
                    }
                    // Bailout: rewind the partial run so the four-state
                    // re-execution sees exactly the dispatch-time state.
                    nba.truncate(nba_len);
                    changed.truncate(changed_len);
                    for (sig, &(a, b)) in proc.writes.iter().zip(snap.iter()) {
                        let cur = &mut store[sig.index()];
                        if cur.planes_u64() != (a, b) {
                            let width = cur.width();
                            *cur = LogicVec::from_planes_u64(width, a, b);
                        }
                    }
                    snap.clear();
                    execute_narrow(proc, regs, store, nba, changed);
                    return ExecOutcome::Fallback {
                        reason: BailReason::MidRun,
                    };
                }
                execute_narrow(proc, regs, store, nba, changed);
                return ExecOutcome::Fallback {
                    reason: BailReason::DispatchUndef,
                };
            }
            execute_narrow(proc, regs, store, nba, changed);
            ExecOutcome::FourState
        }
        RegFile::Wide(w) => {
            execute_wide(proc, w, store, nba, changed);
            ExecOutcome::FourState
        }
    }
}

/// The `LogicVec`-slot interpreter (processes touching > 64-bit values).
fn execute_wide(
    proc: &CompiledProcess,
    regs: &mut [LogicVec],
    store: &mut Store,
    nba: &mut Vec<PendingWrite>,
    changed: &mut Vec<SignalId>,
) {
    debug_assert_eq!(regs.len(), proc.slot_widths.len());
    let mut pc = 0usize;
    while pc < proc.code.len() {
        match &proc.code[pc] {
            Instr::Const { dst, k } => {
                // Pool entries are pre-sized to the slot width.
                regs[*dst as usize].assign_resized(&proc.consts[*k as usize]);
            }
            Instr::Load { dst, sig } => {
                regs[*dst as usize].assign_resized(&store[sig.index()]);
            }
            Instr::Copy { dst, src } => {
                let (d, lo) = dst_srcs(regs, *dst);
                d.assign_resized(&lo[*src as usize]);
            }
            Instr::Slice { dst, src, lsb } => {
                let (d, lo) = dst_srcs(regs, *dst);
                let s = &lo[*src as usize];
                for i in 0..d.width() {
                    d.set_bit(i, s.bit(lsb + i));
                }
            }
            Instr::Not { dst, a } => {
                let (d, lo) = dst_srcs(regs, *dst);
                d.set_not(&lo[*a as usize]);
            }
            Instr::Bin { op, dst, a, b } => {
                let (d, lo) = dst_srcs(regs, *dst);
                let (av, bv) = (&lo[*a as usize], &lo[*b as usize]);
                match op {
                    BinOp::Add => d.set_add(av, bv),
                    BinOp::Sub => d.set_sub(av, bv),
                    BinOp::And => d.set_and(av, bv),
                    BinOp::Or => d.set_or(av, bv),
                    BinOp::Xor => d.set_xor(av, bv),
                    BinOp::Xnor => d.set_xnor(av, bv),
                    // Rare in RTL hot loops; the allocating forms are
                    // inline (no heap) at ≤ 64 bits anyway.
                    BinOp::Mul => d.assign_resized(&av.mul(bv)),
                    BinOp::Div => d.assign_resized(&av.div(bv)),
                    BinOp::Mod => d.assign_resized(&av.rem(bv)),
                }
            }
            Instr::Shift { left, dst, a, amt } => {
                let (d, lo) = dst_srcs(regs, *dst);
                let (av, amtv) = (&lo[*a as usize], &lo[*amt as usize]);
                let r = if *left { av.shl(amtv) } else { av.shr(amtv) };
                d.assign_resized(&r);
            }
            Instr::LogicBin { and, dst, a, b } => {
                let ta = regs[*a as usize].truth();
                let tb = regs[*b as usize].truth();
                let t = if *and { ta.and(tb) } else { ta.or(tb) };
                set_bit_result(&mut regs[*dst as usize], t.to_bit());
            }
            Instr::Reduce { op, dst, a } => {
                let av = &regs[*a as usize];
                let bit = match op {
                    ReduceOp::And => av.reduce_and(),
                    ReduceOp::Or => av.reduce_or(),
                    ReduceOp::Xor => av.reduce_xor(),
                    ReduceOp::Nand => av.reduce_nand(),
                    ReduceOp::Nor => av.reduce_nor(),
                    ReduceOp::Xnor => av.reduce_xnor(),
                    ReduceOp::LogicNot => av.truth().not().to_bit(),
                };
                set_bit_result(&mut regs[*dst as usize], bit);
            }
            Instr::Cmp { op, dst, a, b } => {
                let (av, bv) = (&regs[*a as usize], &regs[*b as usize]);
                let bit = match op {
                    CmpOp::Eq => av.logic_eq(bv),
                    CmpOp::Neq => av.logic_neq(bv),
                    CmpOp::CaseEq => LogicBit::from(av.case_eq(bv)),
                    CmpOp::CaseNeq => LogicBit::from(!av.case_eq(bv)),
                    CmpOp::Lt => av.lt(bv),
                    CmpOp::Le => av.le(bv),
                    CmpOp::Gt => av.gt(bv),
                    CmpOp::Ge => av.ge(bv),
                };
                set_bit_result(&mut regs[*dst as usize], bit);
            }
            Instr::Select { dst, c, t, f } => {
                let (d, lo) = dst_srcs(regs, *dst);
                match lo[*c as usize].truth() {
                    Truth::True => d.assign_resized(&lo[*t as usize]),
                    Truth::False => d.assign_resized(&lo[*f as usize]),
                    Truth::Unknown => {
                        let m = LogicVec::mux(Truth::Unknown, &lo[*t as usize], &lo[*f as usize]);
                        d.assign_resized(&m);
                    }
                }
            }
            Instr::Concat { dst, parts } => {
                let (d, lo) = dst_srcs(regs, *dst);
                for (slot, offset) in parts {
                    d.write_slice(*offset as isize, &lo[*slot as usize]);
                }
            }
            Instr::Repl { dst, src, n } => {
                let (d, lo) = dst_srcs(regs, *dst);
                let s = &lo[*src as usize];
                let w = s.width();
                for k in 0..*n {
                    d.write_slice((k * w) as isize, s);
                }
            }
            Instr::BitSelSig {
                dst,
                sig,
                idx,
                lsb_index,
            } => {
                let bit = match regs[*idx as usize].to_u64() {
                    Some(i) => {
                        let phys = i as i64 - lsb_index;
                        if phys >= 0 {
                            store[sig.index()].get(phys as usize).unwrap_or(LogicBit::X)
                        } else {
                            LogicBit::X
                        }
                    }
                    None => LogicBit::X,
                };
                set_bit_result(&mut regs[*dst as usize], bit);
            }
            Instr::ReadSlice { dst, sig, lsb } => {
                let d = &mut regs[*dst as usize];
                let s = &store[sig.index()];
                for i in 0..d.width() {
                    let src = lsb + i as i64;
                    let bit = if src >= 0 {
                        s.get(src as usize).unwrap_or(LogicBit::X)
                    } else {
                        LogicBit::X
                    };
                    d.set_bit(i, bit);
                }
            }
            Instr::Jump { target } => {
                pc = *target;
                continue;
            }
            Instr::JumpIfNotTrue { cond, target } => {
                if !regs[*cond as usize].truth().is_true() {
                    pc = *target;
                    continue;
                }
            }
            Instr::JumpIfMatch {
                sel,
                label,
                kind,
                target,
            } => {
                let (sv, lv) = (&regs[*sel as usize], &regs[*label as usize]);
                let hit = match kind {
                    CaseKind::Case => sv.case_eq(lv),
                    CaseKind::Casez => sv.matches_casez(lv),
                };
                if hit {
                    pc = *target;
                    continue;
                }
            }
            Instr::Store {
                sig,
                src,
                lsb,
                width,
                nonblocking,
            } => {
                let value = &regs[*src as usize];
                if *nonblocking {
                    nba.push(PendingWrite {
                        signal: *sig,
                        lsb: *lsb,
                        width: *width,
                        value: value.clone(),
                    });
                } else {
                    apply_write(store, *sig, *lsb, *width, value, changed);
                }
            }
            Instr::StoreBitDyn {
                sig,
                idx,
                lsb_index,
                src,
                nonblocking,
            } => {
                let valid_phys = match regs[*idx as usize].to_u64() {
                    Some(i) => {
                        let phys = i as i64 - lsb_index;
                        let width = store[sig.index()].width();
                        (phys >= 0 && (phys as usize) < width).then_some(phys)
                    }
                    None => None,
                };
                if let Some(phys) = valid_phys {
                    let value = &regs[*src as usize];
                    if *nonblocking {
                        nba.push(PendingWrite {
                            signal: *sig,
                            lsb: phys,
                            width: 1,
                            value: value.clone(),
                        });
                    } else {
                        apply_write(store, *sig, phys, 1, value, changed);
                    }
                }
            }
        }
        pc += 1;
    }
}

// ----------------------------------------------------------------------
// Narrow path: every slot and signal ≤ 64 bits → raw plane-word pairs
// ----------------------------------------------------------------------

/// Truth value of a canonical `(aval, bval)` pair (no masking needed:
/// registers keep bits above their width clear).
#[inline]
fn truth_of(a: u64, b: u64) -> Truth {
    if a & !b != 0 {
        Truth::True
    } else if b != 0 {
        Truth::Unknown
    } else {
        Truth::False
    }
}

/// Encode a [`LogicBit`] as an LSB plane pair.
#[inline]
fn bit_planes(bit: LogicBit) -> (u64, u64) {
    let (a, b) = bit.to_planes();
    (a as u64, b as u64)
}

/// The narrow interpreter: identical semantics to the wide path, word
/// arithmetic only. Mirrors `eval`'s four-state rules bit-exactly — the
/// differential suite drives all three executors against each other.
fn execute_narrow(
    proc: &CompiledProcess,
    regs: &mut [(u64, u64)],
    store: &mut Store,
    nba: &mut Vec<PendingWrite>,
    changed: &mut Vec<SignalId>,
) {
    debug_assert_eq!(regs.len(), proc.slot_widths.len());
    let masks = &proc.slot_masks;
    let mut pc = 0usize;
    while pc < proc.code.len() {
        match &proc.code[pc] {
            Instr::Const { dst, k } => {
                // Pool entries are pre-masked to the slot width.
                regs[*dst as usize] = proc.narrow_consts[*k as usize];
            }
            Instr::Load { dst, sig } => {
                let (a, b) = store[sig.index()].planes_u64();
                let m = masks[*dst as usize];
                regs[*dst as usize] = (a & m, b & m);
            }
            Instr::Copy { dst, src } => {
                let (a, b) = regs[*src as usize];
                let m = masks[*dst as usize];
                regs[*dst as usize] = (a & m, b & m);
            }
            Instr::Slice { dst, src, lsb } => {
                let (a, b) = regs[*src as usize];
                let m = masks[*dst as usize];
                regs[*dst as usize] = ((a >> lsb) & m, (b >> lsb) & m);
            }
            Instr::Not { dst, a } => {
                let (aa, ab) = regs[*a as usize];
                let m = masks[*dst as usize];
                let na = aa | ab;
                regs[*dst as usize] = ((!na | ab) & m, ab & m);
            }
            Instr::Bin { op, dst, a, b } => {
                let (aa, ax) = regs[*a as usize];
                let (ba, bx) = regs[*b as usize];
                let m = masks[*dst as usize];
                regs[*dst as usize] = match op {
                    BinOp::And => {
                        let (na, ma2) = (aa | ax, ba | bx);
                        let x = (ax | bx) & na & ma2;
                        let ones = (na & !ax) & (ma2 & !bx);
                        ((ones | x) & m, x & m)
                    }
                    BinOp::Or => {
                        let (na, ma2) = (aa | ax, ba | bx);
                        let one_a = na & !ax;
                        let one_b = ma2 & !bx;
                        let x = (ax | bx) & !one_a & !one_b;
                        ((one_a | one_b | x) & m, x & m)
                    }
                    BinOp::Xor => {
                        let x = ax | bx;
                        ((((aa | ax) ^ (ba | bx)) | x) & m, x & m)
                    }
                    BinOp::Xnor => {
                        let x = ax | bx;
                        let v = (aa | ax) ^ (ba | bx);
                        ((!v | x) & m, x & m)
                    }
                    BinOp::Add => {
                        if ax | bx != 0 {
                            (m, m)
                        } else {
                            (aa.wrapping_add(ba) & m, 0)
                        }
                    }
                    BinOp::Sub => {
                        if ax | bx != 0 {
                            (m, m)
                        } else {
                            (aa.wrapping_sub(ba) & m, 0)
                        }
                    }
                    BinOp::Mul => {
                        if ax | bx != 0 {
                            (m, m)
                        } else {
                            (aa.wrapping_mul(ba) & m, 0)
                        }
                    }
                    BinOp::Div => {
                        if ax | bx != 0 || ba == 0 {
                            (m, m)
                        } else {
                            ((aa / ba) & m, 0)
                        }
                    }
                    BinOp::Mod => {
                        if ax | bx != 0 || ba == 0 {
                            (m, m)
                        } else {
                            ((aa % ba) & m, 0)
                        }
                    }
                };
            }
            Instr::Shift { left, dst, a, amt } => {
                let (aa, ax) = regs[*a as usize];
                let (na, nx) = regs[*amt as usize];
                let m = masks[*dst as usize];
                let w = proc.slot_widths[*dst as usize] as u64;
                regs[*dst as usize] = if nx != 0 {
                    // Unknown amount poisons; an X *value* merely shifts.
                    (m, m)
                } else if na >= w {
                    (0, 0)
                } else if *left {
                    ((aa << na) & m, (ax << na) & m)
                } else {
                    (aa >> na, ax >> na)
                };
            }
            Instr::LogicBin { and, dst, a, b } => {
                let (aa, ax) = regs[*a as usize];
                let (ba, bx) = regs[*b as usize];
                let (ta, tb) = (truth_of(aa, ax), truth_of(ba, bx));
                let t = if *and { ta.and(tb) } else { ta.or(tb) };
                regs[*dst as usize] = bit_planes(t.to_bit());
            }
            Instr::Reduce { op, dst, a } => {
                let (aa, ax) = regs[*a as usize];
                let am = masks[*a as usize];
                let na = aa | ax;
                let bit = match op {
                    ReduceOp::And => {
                        if !na & am != 0 {
                            LogicBit::Zero
                        } else if ax != 0 {
                            LogicBit::X
                        } else {
                            LogicBit::One
                        }
                    }
                    ReduceOp::Nand => {
                        if !na & am != 0 {
                            LogicBit::One
                        } else if ax != 0 {
                            LogicBit::X
                        } else {
                            LogicBit::Zero
                        }
                    }
                    ReduceOp::Or => {
                        if aa & !ax != 0 {
                            LogicBit::One
                        } else if ax != 0 {
                            LogicBit::X
                        } else {
                            LogicBit::Zero
                        }
                    }
                    ReduceOp::Nor => {
                        if aa & !ax != 0 {
                            LogicBit::Zero
                        } else if ax != 0 {
                            LogicBit::X
                        } else {
                            LogicBit::One
                        }
                    }
                    ReduceOp::Xor => {
                        if ax != 0 {
                            LogicBit::X
                        } else if aa.count_ones() & 1 == 1 {
                            LogicBit::One
                        } else {
                            LogicBit::Zero
                        }
                    }
                    ReduceOp::Xnor => {
                        if ax != 0 {
                            LogicBit::X
                        } else if aa.count_ones() & 1 == 1 {
                            LogicBit::Zero
                        } else {
                            LogicBit::One
                        }
                    }
                    ReduceOp::LogicNot => truth_of(aa, ax).not().to_bit(),
                };
                regs[*dst as usize] = bit_planes(bit);
            }
            Instr::Cmp { op, dst, a, b } => {
                let (aa, ax) = regs[*a as usize];
                let (ba, bx) = regs[*b as usize];
                let bit = match op {
                    CmpOp::Eq | CmpOp::Neq => {
                        let defined = !ax & !bx;
                        let eq = if (aa ^ ba) & defined != 0 {
                            LogicBit::Zero
                        } else if ax | bx != 0 {
                            LogicBit::X
                        } else {
                            LogicBit::One
                        };
                        if matches!(op, CmpOp::Eq) {
                            eq
                        } else {
                            eq.not()
                        }
                    }
                    CmpOp::CaseEq => LogicBit::from(aa == ba && ax == bx),
                    CmpOp::CaseNeq => LogicBit::from(!(aa == ba && ax == bx)),
                    CmpOp::Lt | CmpOp::Le | CmpOp::Gt | CmpOp::Ge => {
                        if ax | bx != 0 {
                            LogicBit::X
                        } else {
                            LogicBit::from(match op {
                                CmpOp::Lt => aa < ba,
                                CmpOp::Le => aa <= ba,
                                CmpOp::Gt => aa > ba,
                                CmpOp::Ge => aa >= ba,
                                _ => unreachable!(),
                            })
                        }
                    }
                };
                regs[*dst as usize] = bit_planes(bit);
            }
            Instr::Select { dst, c, t, f } => {
                let (ca, cx) = regs[*c as usize];
                let (ta, tx) = regs[*t as usize];
                let (fa, fx) = regs[*f as usize];
                let m = masks[*dst as usize];
                regs[*dst as usize] = match truth_of(ca, cx) {
                    Truth::True => (ta & m, tx & m),
                    Truth::False => (fa & m, fx & m),
                    Truth::Unknown => {
                        // Per-bit merge of the normalized branches:
                        // agreeing positions keep their value, the rest
                        // go X.
                        let (nt, nf) = (ta | tx, fa | fx);
                        let eq = !((nt ^ nf) | (tx ^ fx));
                        (((nt & eq) | !eq) & m, ((tx & eq) | !eq) & m)
                    }
                };
            }
            Instr::Concat { dst, parts } => {
                let mut acc = (0u64, 0u64);
                for (slot, offset) in parts {
                    let (pa, pb) = regs[*slot as usize];
                    acc.0 |= pa << offset;
                    acc.1 |= pb << offset;
                }
                regs[*dst as usize] = acc;
            }
            Instr::Repl { dst, src, n } => {
                let (pa, pb) = regs[*src as usize];
                let w = proc.slot_widths[*src as usize];
                let mut acc = (0u64, 0u64);
                for k in 0..*n {
                    acc.0 |= pa << (k * w);
                    acc.1 |= pb << (k * w);
                }
                regs[*dst as usize] = acc;
            }
            Instr::BitSelSig {
                dst,
                sig,
                idx,
                lsb_index,
            } => {
                let (ia, ix) = regs[*idx as usize];
                let value = &store[sig.index()];
                let bit = if ix != 0 {
                    LogicBit::X
                } else {
                    let phys = ia as i64 - lsb_index;
                    if phys >= 0 && (phys as usize) < value.width() {
                        let (sa, sb) = value.planes_u64();
                        LogicBit::from_planes((sa >> phys) & 1 == 1, (sb >> phys) & 1 == 1)
                    } else {
                        LogicBit::X
                    }
                };
                regs[*dst as usize] = bit_planes(bit);
            }
            Instr::ReadSlice { dst, sig, lsb } => {
                let value = &store[sig.index()];
                let (sa, sb) = value.planes_u64();
                let w = proc.slot_widths[*dst as usize];
                let m = masks[*dst as usize];
                let sw = value.width() as i64;
                regs[*dst as usize] = if *lsb >= 0 && lsb + (w as i64) <= sw {
                    (((sa >> lsb) & m), ((sb >> lsb) & m))
                } else {
                    // Out-of-range positions read X.
                    let mut acc = (0u64, 0u64);
                    for i in 0..w {
                        let src = lsb + i as i64;
                        let (ba, bb) = if src >= 0 && src < sw {
                            ((sa >> src) & 1, (sb >> src) & 1)
                        } else {
                            (1, 1)
                        };
                        acc.0 |= ba << i;
                        acc.1 |= bb << i;
                    }
                    acc
                };
            }
            Instr::Jump { target } => {
                pc = *target;
                continue;
            }
            Instr::JumpIfNotTrue { cond, target } => {
                let (ca, cx) = regs[*cond as usize];
                if !truth_of(ca, cx).is_true() {
                    pc = *target;
                    continue;
                }
            }
            Instr::JumpIfMatch {
                sel,
                label,
                kind,
                target,
            } => {
                let (sa, sx) = regs[*sel as usize];
                let (la, lx) = regs[*label as usize];
                let hit = match kind {
                    CaseKind::Case => sa == la && sx == lx,
                    CaseKind::Casez => {
                        let wild = lx & !la;
                        ((sa ^ la) | (sx ^ lx)) & !wild == 0
                    }
                };
                if hit {
                    pc = *target;
                    continue;
                }
            }
            Instr::Store {
                sig,
                src,
                lsb,
                width,
                nonblocking,
            } => {
                let (va, vb) = regs[*src as usize];
                if *nonblocking {
                    nba.push(PendingWrite {
                        signal: *sig,
                        lsb: *lsb,
                        width: *width,
                        value: LogicVec::from_planes_u64(*width, va, vb),
                    });
                } else {
                    let cur = &mut store[sig.index()];
                    if *lsb == 0 && *width == cur.width() {
                        // Whole-signal fast path: plane compare, no
                        // LogicVec round-trip on the no-change case.
                        if cur.planes_u64() != (va, vb) {
                            *cur = LogicVec::from_planes_u64(*width, va, vb);
                            changed.push(*sig);
                        }
                    } else {
                        let value = LogicVec::from_planes_u64(*width, va, vb);
                        apply_write(store, *sig, *lsb, *width, &value, changed);
                    }
                }
            }
            Instr::StoreBitDyn {
                sig,
                idx,
                lsb_index,
                src,
                nonblocking,
            } => {
                let (ia, ix) = regs[*idx as usize];
                let width = store[sig.index()].width();
                let valid_phys = if ix != 0 {
                    None
                } else {
                    let phys = ia as i64 - lsb_index;
                    (phys >= 0 && (phys as usize) < width).then_some(phys)
                };
                if let Some(phys) = valid_phys {
                    let (va, vb) = regs[*src as usize];
                    let value = LogicVec::from_planes_u64(1, va, vb);
                    if *nonblocking {
                        nba.push(PendingWrite {
                            signal: *sig,
                            lsb: phys,
                            width: 1,
                            value,
                        });
                    } else {
                        apply_write(store, *sig, phys, 1, &value, changed);
                    }
                }
            }
        }
        pc += 1;
    }
}

// ----------------------------------------------------------------------
// Two-state path: fully defined inputs → aval-plane-only execution
// ----------------------------------------------------------------------

/// The pure two-state interpreter for [`CompiledProcess::hazard_free`]
/// streams: registers are bare aval words, no bval plane is read,
/// written or even stored, and no bail site exists — by the hazard
/// analysis, given a fully defined read set every intermediate value is
/// defined (no division/modulo, no dynamic bit selects, statically
/// in-bounds part selects, no undefined constants, and the process
/// cannot store an `X` for its own loads to re-read). This is the
/// Verilator execution model verbatim, and the steady-state hot loop of
/// the grading path: defined corpus kernels dispatch here for every
/// evaluation.
fn execute_two_state_pure(
    proc: &CompiledProcess,
    regs: &mut [u64],
    store: &mut Store,
    nba: &mut Vec<PendingWrite>,
    changed: &mut Vec<SignalId>,
) {
    debug_assert_eq!(regs.len(), proc.slot_widths.len());
    debug_assert!(proc.hazard_free);
    let masks = &proc.slot_masks;
    let mut pc = 0usize;
    while pc < proc.code.len() {
        match &proc.code[pc] {
            Instr::Const { dst, k } => {
                // Hazard-free pools are fully defined: bval is 0.
                regs[*dst as usize] = proc.narrow_consts[*k as usize].0;
            }
            Instr::Load { dst, sig } => {
                let (a, _) = store[sig.index()].planes_u64();
                regs[*dst as usize] = a & masks[*dst as usize];
            }
            Instr::Copy { dst, src } => {
                regs[*dst as usize] = regs[*src as usize] & masks[*dst as usize];
            }
            Instr::Slice { dst, src, lsb } => {
                regs[*dst as usize] = (regs[*src as usize] >> lsb) & masks[*dst as usize];
            }
            Instr::Not { dst, a } => {
                regs[*dst as usize] = !regs[*a as usize] & masks[*dst as usize];
            }
            Instr::Bin { op, dst, a, b } => {
                let x = regs[*a as usize];
                let y = regs[*b as usize];
                let m = masks[*dst as usize];
                regs[*dst as usize] = match op {
                    BinOp::And => x & y,
                    BinOp::Or => x | y,
                    BinOp::Xor => x ^ y,
                    BinOp::Xnor => !(x ^ y) & m,
                    BinOp::Add => x.wrapping_add(y) & m,
                    BinOp::Sub => x.wrapping_sub(y) & m,
                    BinOp::Mul => x.wrapping_mul(y) & m,
                    // Excluded by the hazard analysis.
                    BinOp::Div | BinOp::Mod => unreachable!("hazard-free stream has no div/mod"),
                };
            }
            Instr::Shift { left, dst, a, amt } => {
                let v = regs[*a as usize];
                let n = regs[*amt as usize];
                let w = proc.slot_widths[*dst as usize] as u64;
                regs[*dst as usize] = if n >= w {
                    0
                } else if *left {
                    (v << n) & masks[*dst as usize]
                } else {
                    v >> n
                };
            }
            Instr::LogicBin { and, dst, a, b } => {
                let ta = regs[*a as usize] != 0;
                let tb = regs[*b as usize] != 0;
                regs[*dst as usize] = (if *and { ta && tb } else { ta || tb }) as u64;
            }
            Instr::Reduce { op, dst, a } => {
                let v = regs[*a as usize];
                let am = masks[*a as usize];
                regs[*dst as usize] = match op {
                    ReduceOp::And => (v == am) as u64,
                    ReduceOp::Nand => (v != am) as u64,
                    ReduceOp::Or => (v != 0) as u64,
                    ReduceOp::Nor => (v == 0) as u64,
                    ReduceOp::Xor => (v.count_ones() & 1) as u64,
                    ReduceOp::Xnor => (1 - (v.count_ones() & 1)) as u64,
                    ReduceOp::LogicNot => (v == 0) as u64,
                };
            }
            Instr::Cmp { op, dst, a, b } => {
                let x = regs[*a as usize];
                let y = regs[*b as usize];
                regs[*dst as usize] = match op {
                    // With every value defined, case equality *is*
                    // logical equality.
                    CmpOp::Eq | CmpOp::CaseEq => (x == y) as u64,
                    CmpOp::Neq | CmpOp::CaseNeq => (x != y) as u64,
                    CmpOp::Lt => (x < y) as u64,
                    CmpOp::Le => (x <= y) as u64,
                    CmpOp::Gt => (x > y) as u64,
                    CmpOp::Ge => (x >= y) as u64,
                };
            }
            Instr::Select { dst, c, t, f } => {
                let r = if regs[*c as usize] != 0 {
                    regs[*t as usize]
                } else {
                    regs[*f as usize]
                };
                regs[*dst as usize] = r & masks[*dst as usize];
            }
            Instr::Concat { dst, parts } => {
                let mut acc = 0u64;
                for (slot, offset) in parts {
                    acc |= regs[*slot as usize] << offset;
                }
                regs[*dst as usize] = acc;
            }
            Instr::Repl { dst, src, n } => {
                let v = regs[*src as usize];
                let w = proc.slot_widths[*src as usize];
                let mut acc = 0u64;
                for k in 0..*n {
                    acc |= v << (k * w);
                }
                regs[*dst as usize] = acc;
            }
            Instr::BitSelSig { .. } => unreachable!("hazard-free stream has no dynamic bit select"),
            Instr::ReadSlice { dst, sig, lsb } => {
                // Statically in bounds by the hazard analysis.
                let (sa, _) = store[sig.index()].planes_u64();
                regs[*dst as usize] = (sa >> lsb) & masks[*dst as usize];
            }
            Instr::Jump { target } => {
                pc = *target;
                continue;
            }
            Instr::JumpIfNotTrue { cond, target } => {
                if regs[*cond as usize] == 0 {
                    pc = *target;
                    continue;
                }
            }
            Instr::JumpIfMatch {
                sel,
                label,
                kind: _,
                target,
            } => {
                // No undefined constants → no casez wildcards: both
                // case flavors reduce to word equality.
                if regs[*sel as usize] == regs[*label as usize] {
                    pc = *target;
                    continue;
                }
            }
            Instr::Store {
                sig,
                src,
                lsb,
                width,
                nonblocking,
            } => {
                let va = regs[*src as usize];
                if *nonblocking {
                    nba.push(PendingWrite {
                        signal: *sig,
                        lsb: *lsb,
                        width: *width,
                        value: LogicVec::from_planes_u64(*width, va, 0),
                    });
                } else {
                    let cur = &mut store[sig.index()];
                    if *lsb == 0 && *width == cur.width() {
                        if cur.planes_u64() != (va, 0) {
                            *cur = LogicVec::from_planes_u64(*width, va, 0);
                            changed.push(*sig);
                        }
                    } else {
                        let value = LogicVec::from_planes_u64(*width, va, 0);
                        apply_write(store, *sig, *lsb, *width, &value, changed);
                    }
                }
            }
            Instr::StoreBitDyn {
                sig,
                idx,
                lsb_index,
                src,
                nonblocking,
            } => {
                let ia = regs[*idx as usize];
                let width = store[sig.index()].width();
                let phys = ia as i64 - lsb_index;
                if phys >= 0 && (phys as usize) < width {
                    let value = LogicVec::from_planes_u64(1, regs[*src as usize], 0);
                    if *nonblocking {
                        nba.push(PendingWrite {
                            signal: *sig,
                            lsb: phys,
                            width: 1,
                            value,
                        });
                    } else {
                        apply_write(store, *sig, phys, 1, &value, changed);
                    }
                }
            }
        }
        pc += 1;
    }
}

/// The two-state interpreter (Verilator's execution model): pure-value
/// instructions run over the aval plane alone with the bval plane known
/// zero, skipping every four-state masking/merging formula of
/// [`execute_narrow`].
///
/// Exactness is maintained by a three-part contract with
/// [`crate::compile::two_state_eligible`]:
///
/// * **untainted slots hold `bval == 0`** — every pure-aval writer
///   stores a zero bval, defined constants are pre-masked, and store
///   reads bail on any unknown, so the induction never breaks;
/// * **tainted slots (undefined constants and their plane-exact
///   closure) hold exact four-state pairs** — `Const`, `Copy`,
///   `Slice`, `Select`, `Concat` and `Repl` copy both planes, and the
///   eligibility analysis guarantees tainted values only ever reach
///   plane-exact consumers (case dispatch, case equality, stores);
/// * **X-producing operations bail out** (`return false`) before
///   computing a wrong value: division/modulo by zero, out-of-range or
///   unknown-index reads, and any store read whose bval plane is
///   non-zero (the process re-reading an `X` it just stored).
///
/// `false` means the caller must rewind (writes snapshot, `nba`,
/// `changed`) and re-run [`execute_narrow`]; `true` means the stores
/// performed are bit-identical to what the four-state path would have
/// produced.
fn execute_two_state(
    proc: &CompiledProcess,
    regs: &mut [(u64, u64)],
    store: &mut Store,
    nba: &mut Vec<PendingWrite>,
    changed: &mut Vec<SignalId>,
) -> bool {
    debug_assert_eq!(regs.len(), proc.slot_widths.len());
    let masks = &proc.slot_masks;
    let mut pc = 0usize;
    while pc < proc.code.len() {
        match &proc.code[pc] {
            Instr::Const { dst, k } => {
                // Full pair: undefined constants (casez labels) keep
                // their planes for the plane-exact consumers.
                regs[*dst as usize] = proc.narrow_consts[*k as usize];
            }
            Instr::Load { dst, sig } => {
                let v = &store[sig.index()];
                if v.undef_mask_u64() != 0 {
                    return false;
                }
                let (a, _) = v.planes_u64();
                regs[*dst as usize] = (a & masks[*dst as usize], 0);
            }
            Instr::Copy { dst, src } => {
                let (a, b) = regs[*src as usize];
                let m = masks[*dst as usize];
                regs[*dst as usize] = (a & m, b & m);
            }
            Instr::Slice { dst, src, lsb } => {
                let (a, b) = regs[*src as usize];
                let m = masks[*dst as usize];
                regs[*dst as usize] = ((a >> lsb) & m, (b >> lsb) & m);
            }
            Instr::Not { dst, a } => {
                let v = regs[*a as usize].0;
                regs[*dst as usize] = (!v & masks[*dst as usize], 0);
            }
            Instr::Bin { op, dst, a, b } => {
                let x = regs[*a as usize].0;
                let y = regs[*b as usize].0;
                let m = masks[*dst as usize];
                let r = match op {
                    BinOp::And => x & y,
                    BinOp::Or => x | y,
                    BinOp::Xor => x ^ y,
                    BinOp::Xnor => !(x ^ y) & m,
                    BinOp::Add => x.wrapping_add(y) & m,
                    BinOp::Sub => x.wrapping_sub(y) & m,
                    BinOp::Mul => x.wrapping_mul(y) & m,
                    BinOp::Div => {
                        if y == 0 {
                            return false;
                        }
                        (x / y) & m
                    }
                    BinOp::Mod => {
                        if y == 0 {
                            return false;
                        }
                        (x % y) & m
                    }
                };
                regs[*dst as usize] = (r, 0);
            }
            Instr::Shift { left, dst, a, amt } => {
                let v = regs[*a as usize].0;
                let n = regs[*amt as usize].0;
                let w = proc.slot_widths[*dst as usize] as u64;
                let r = if n >= w {
                    0
                } else if *left {
                    (v << n) & masks[*dst as usize]
                } else {
                    v >> n
                };
                regs[*dst as usize] = (r, 0);
            }
            Instr::LogicBin { and, dst, a, b } => {
                let ta = regs[*a as usize].0 != 0;
                let tb = regs[*b as usize].0 != 0;
                let r = if *and { ta && tb } else { ta || tb };
                regs[*dst as usize] = (r as u64, 0);
            }
            Instr::Reduce { op, dst, a } => {
                let v = regs[*a as usize].0;
                let am = masks[*a as usize];
                let bit = match op {
                    ReduceOp::And => v == am,
                    ReduceOp::Nand => v != am,
                    ReduceOp::Or => v != 0,
                    ReduceOp::Nor => v == 0,
                    ReduceOp::Xor => v.count_ones() & 1 == 1,
                    ReduceOp::Xnor => v.count_ones() & 1 == 0,
                    ReduceOp::LogicNot => v == 0,
                };
                regs[*dst as usize] = (bit as u64, 0);
            }
            Instr::Cmp { op, dst, a, b } => {
                let (aa, ax) = regs[*a as usize];
                let (ba, bx) = regs[*b as usize];
                let bit = match op {
                    // Defined operands (compile-enforced): aval compares
                    // are exact.
                    CmpOp::Eq => aa == ba,
                    CmpOp::Neq => aa != ba,
                    // Plane-exact (tainted operands allowed).
                    CmpOp::CaseEq => aa == ba && ax == bx,
                    CmpOp::CaseNeq => !(aa == ba && ax == bx),
                    CmpOp::Lt => aa < ba,
                    CmpOp::Le => aa <= ba,
                    CmpOp::Gt => aa > ba,
                    CmpOp::Ge => aa >= ba,
                };
                regs[*dst as usize] = (bit as u64, 0);
            }
            Instr::Select { dst, c, t, f } => {
                // Plane-exact: an undefined-constant condition merges
                // exactly as the four-state path would.
                let (ca, cx) = regs[*c as usize];
                let (ta, tx) = regs[*t as usize];
                let (fa, fx) = regs[*f as usize];
                let m = masks[*dst as usize];
                regs[*dst as usize] = if ca & !cx != 0 {
                    (ta & m, tx & m)
                } else if cx == 0 {
                    (fa & m, fx & m)
                } else {
                    let (nt, nf) = (ta | tx, fa | fx);
                    let eq = !((nt ^ nf) | (tx ^ fx));
                    (((nt & eq) | !eq) & m, ((tx & eq) | !eq) & m)
                };
            }
            Instr::Concat { dst, parts } => {
                let mut acc = (0u64, 0u64);
                for (slot, offset) in parts {
                    let (pa, pb) = regs[*slot as usize];
                    acc.0 |= pa << offset;
                    acc.1 |= pb << offset;
                }
                regs[*dst as usize] = acc;
            }
            Instr::Repl { dst, src, n } => {
                let (pa, pb) = regs[*src as usize];
                let w = proc.slot_widths[*src as usize];
                let mut acc = (0u64, 0u64);
                for k in 0..*n {
                    acc.0 |= pa << (k * w);
                    acc.1 |= pb << (k * w);
                }
                regs[*dst as usize] = acc;
            }
            Instr::BitSelSig {
                dst,
                sig,
                idx,
                lsb_index,
            } => {
                let (ia, ix) = regs[*idx as usize];
                if ix != 0 {
                    // Unknown index (an undefined-constant expression):
                    // the result would be X.
                    return false;
                }
                let value = &store[sig.index()];
                let phys = ia as i64 - lsb_index;
                if phys < 0 || phys as usize >= value.width() {
                    // Out-of-range reads X.
                    return false;
                }
                let (sa, sb) = value.planes_u64();
                if (sb >> phys) & 1 != 0 {
                    return false;
                }
                regs[*dst as usize] = ((sa >> phys) & 1, 0);
            }
            Instr::ReadSlice { dst, sig, lsb } => {
                let value = &store[sig.index()];
                let w = proc.slot_widths[*dst as usize];
                let m = masks[*dst as usize];
                let sw = value.width() as i64;
                if *lsb < 0 || lsb + (w as i64) > sw {
                    // Out-of-range positions read X.
                    return false;
                }
                let (sa, sb) = value.planes_u64();
                if (sb >> lsb) & m != 0 {
                    return false;
                }
                regs[*dst as usize] = ((sa >> lsb) & m, 0);
            }
            Instr::Jump { target } => {
                pc = *target;
                continue;
            }
            Instr::JumpIfNotTrue { cond, target } => {
                // Plane-exact truth: definitely-true iff a defined 1
                // bit exists (ca & !cx != 0) — same cost as the pure
                // two-state test, correct for tainted conditions too.
                let (ca, cx) = regs[*cond as usize];
                if ca & !cx == 0 {
                    pc = *target;
                    continue;
                }
            }
            Instr::JumpIfMatch {
                sel,
                label,
                kind,
                target,
            } => {
                let (sa, sx) = regs[*sel as usize];
                let (la, lx) = regs[*label as usize];
                let hit = match kind {
                    CaseKind::Case => sa == la && sx == lx,
                    CaseKind::Casez => {
                        let wild = lx & !la;
                        ((sa ^ la) | (sx ^ lx)) & !wild == 0
                    }
                };
                if hit {
                    pc = *target;
                    continue;
                }
            }
            Instr::Store {
                sig,
                src,
                lsb,
                width,
                nonblocking,
            } => {
                // Plane-exact (a stored undefined constant must land as
                // X/Z in the store, poisoning downstream read gates).
                let (va, vb) = regs[*src as usize];
                if *nonblocking {
                    nba.push(PendingWrite {
                        signal: *sig,
                        lsb: *lsb,
                        width: *width,
                        value: LogicVec::from_planes_u64(*width, va, vb),
                    });
                } else {
                    let cur = &mut store[sig.index()];
                    if *lsb == 0 && *width == cur.width() {
                        if cur.planes_u64() != (va, vb) {
                            *cur = LogicVec::from_planes_u64(*width, va, vb);
                            changed.push(*sig);
                        }
                    } else {
                        let value = LogicVec::from_planes_u64(*width, va, vb);
                        apply_write(store, *sig, *lsb, *width, &value, changed);
                    }
                }
            }
            Instr::StoreBitDyn {
                sig,
                idx,
                lsb_index,
                src,
                nonblocking,
            } => {
                let (ia, ix) = regs[*idx as usize];
                let width = store[sig.index()].width();
                let valid_phys = if ix != 0 {
                    None
                } else {
                    let phys = ia as i64 - lsb_index;
                    (phys >= 0 && (phys as usize) < width).then_some(phys)
                };
                if let Some(phys) = valid_phys {
                    let (va, vb) = regs[*src as usize];
                    let value = LogicVec::from_planes_u64(1, va, vb);
                    if *nonblocking {
                        nba.push(PendingWrite {
                            signal: *sig,
                            lsb: phys,
                            width: 1,
                            value,
                        });
                    } else {
                        apply_write(store, *sig, phys, 1, &value, changed);
                    }
                }
            }
        }
        pc += 1;
    }
    true
}
