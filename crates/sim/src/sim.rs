//! The four-state cycle/event simulator.

use crate::compile::{compile_design, CompiledDesign};
use crate::design::{Design, Process, SignalId};
use crate::error::SimError;
use crate::eval::{apply_write, exec, PendingWrite, Store};
use crate::interp;
use mage_logic::{LogicBit, LogicVec};
use mage_verilog::ast::Edge;
use std::sync::Arc;

/// Upper bound on combinational fixpoint iterations per settle.
const SETTLE_LIMIT_FACTOR: usize = 64;
/// Upper bound on NBA-commit → edge-trigger cascade rounds.
const CASCADE_LIMIT: usize = 64;

/// IEEE-1364 edge detection on the LSB of a changing signal.
fn is_edge(edge: Edge, old: LogicBit, new: LogicBit) -> bool {
    let (old, new) = (old.normalized(), new.normalized());
    if old == new {
        return false;
    }
    match edge {
        // posedge: 0→1, 0→X, X→1
        Edge::Pos => old == LogicBit::Zero || new == LogicBit::One,
        // negedge: 1→0, 1→X, X→0
        Edge::Neg => old == LogicBit::One || new == LogicBit::Zero,
    }
}

/// An instance of a design being simulated.
///
/// The simulator owns a value store (one [`LogicVec`] per signal, all `X`
/// at time zero, like an event-driven simulator's un-reset state),
/// executes edge-triggered processes with non-blocking-assignment
/// semantics, and settles combinational processes to a fixpoint after
/// every disturbance.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use mage_logic::LogicVec;
/// use mage_sim::{elaborate, Simulator};
///
/// let file = mage_verilog::parse(
///     "module top(input a, input b, output y); assign y = a & b; endmodule",
/// ).unwrap();
/// let design = Arc::new(elaborate(&file, "top")?);
/// let mut sim = Simulator::new(design);
/// sim.settle().unwrap();
/// sim.poke("a", LogicVec::from_bool(true)).unwrap();
/// sim.poke("b", LogicVec::from_bool(true)).unwrap();
/// assert_eq!(sim.peek_by_name("y").unwrap().to_u64(), Some(1));
/// # Ok::<(), mage_sim::ElabError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Simulator {
    design: Arc<Design>,
    /// Per-process bytecode, shared by clones of this simulator.
    compiled: Arc<CompiledDesign>,
    /// Per-process register files, reused across executions.
    regs: Vec<interp::RegFile>,
    store: Store,
    time: u64,
    mode: ExecMode,
    /// signal index -> comb process indices reading it
    comb_deps: Vec<Vec<usize>>,
    /// signal index -> seq process indices with an edge on it
    edge_deps: Vec<Vec<usize>>,
    /// Pooled worklist scratch — pokes arrive thousands of times per
    /// grading run, so the settle loop must not allocate per call.
    wl: Worklist,
}

/// Reusable scratch buffers of the settle/cascade loops. All buffers are
/// empty (or all-false) between calls; `take`/restore keeps the borrow
/// checker happy around `run_body`.
#[derive(Debug, Clone, Default)]
struct Worklist {
    queue: std::collections::VecDeque<usize>,
    in_queue: Vec<bool>,
    before: Vec<LogicVec>,
    nba: Vec<PendingWrite>,
    scratch: Vec<SignalId>,
    init: Vec<usize>,
    /// Cascade dedup flags (all-false between calls).
    in_triggered: Vec<bool>,
    /// Cascade pre-commit LSB snapshots (all-`None` between calls).
    olds: Vec<Option<LogicBit>>,
}

/// Which executor runs process bodies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// Compile-once bytecode interpreter (the default).
    #[default]
    Compiled,
    /// Legacy tree-walking interpreter, kept as the differential-testing
    /// oracle.
    Legacy,
}

impl Simulator {
    /// Create a simulator with every signal at `X` and time 0, using the
    /// bytecode executor (or the legacy tree-walker when the
    /// `MAGE_SIM_EXEC=legacy` environment variable is set — the hook the
    /// perf harness uses to measure the pre-bytecode baseline
    /// end-to-end).
    ///
    /// Call [`Simulator::settle`] before reading combinational outputs.
    pub fn new(design: Arc<Design>) -> Self {
        let mode = match std::env::var("MAGE_SIM_EXEC") {
            Ok(v) if v.eq_ignore_ascii_case("legacy") => ExecMode::Legacy,
            _ => ExecMode::Compiled,
        };
        Self::with_mode(design, mode)
    }

    /// Create a simulator with an explicit executor choice.
    pub fn with_mode(design: Arc<Design>, mode: ExecMode) -> Self {
        let store: Store = design
            .signals
            .iter()
            .map(|s| LogicVec::all_x(s.width))
            .collect();
        // Dense dependency tables indexed by `SignalId::index()`, deduped
        // with a per-process stamp (the HashMap predecessor deduped with
        // an O(n²) `contains` scan).
        let nsig = design.signals.len();
        let mut comb_deps: Vec<Vec<usize>> = vec![Vec::new(); nsig];
        let mut edge_deps: Vec<Vec<usize>> = vec![Vec::new(); nsig];
        let mut stamp: Vec<usize> = vec![usize::MAX; nsig];
        for (i, p) in design.processes.iter().enumerate() {
            match p {
                Process::Comb { reads, .. } => {
                    for &r in reads {
                        if stamp[r.index()] != i {
                            stamp[r.index()] = i;
                            comb_deps[r.index()].push(i);
                        }
                    }
                }
                Process::Seq { edges, .. } => {
                    for &(_, s) in edges {
                        if stamp[s.index()] != i {
                            stamp[s.index()] = i;
                            edge_deps[s.index()].push(i);
                        }
                    }
                }
            }
        }
        let compiled = Arc::new(compile_design(&design));
        let regs: Vec<interp::RegFile> = compiled
            .procs
            .iter()
            .map(interp::RegFile::for_process)
            .collect();
        Simulator {
            design,
            compiled,
            regs,
            store,
            time: 0,
            mode,
            comb_deps,
            edge_deps,
            wl: Worklist::default(),
        }
    }

    /// The design being simulated.
    pub fn design(&self) -> &Design {
        &self.design
    }

    /// The executor currently in use.
    pub fn mode(&self) -> ExecMode {
        self.mode
    }

    /// Run process `pi`'s body with the configured executor.
    fn run_body(
        &mut self,
        pi: usize,
        nba: &mut Vec<PendingWrite>,
        changed: &mut Vec<SignalId>,
    ) {
        match self.mode {
            ExecMode::Compiled => interp::execute(
                &self.compiled.procs[pi],
                &mut self.regs[pi],
                &mut self.store,
                nba,
                changed,
            ),
            ExecMode::Legacy => {
                let design = self.design.clone();
                let body = match &design.processes[pi] {
                    Process::Comb { body, .. } => body,
                    Process::Seq { body, .. } => body,
                };
                exec(&design, &mut self.store, body, nba, changed);
            }
        }
    }

    /// Current simulation time (advanced only by [`Simulator::advance`]).
    pub fn time(&self) -> u64 {
        self.time
    }

    /// Advance the nominal time stamp (used by testbench logs).
    pub fn advance(&mut self, dt: u64) {
        self.time += dt;
    }

    /// Read the current value of a signal.
    pub fn peek(&self, id: SignalId) -> &LogicVec {
        &self.store[id.index()]
    }

    /// Read a signal by hierarchical name.
    pub fn peek_by_name(&self, name: &str) -> Option<&LogicVec> {
        self.design.signal(name).map(|id| self.peek(id))
    }

    /// Drive a top-level input by name and propagate the change (edges
    /// first, then combinational settle).
    ///
    /// # Errors
    ///
    /// [`SimError::UnknownInput`] if `name` is not a top-level input;
    /// propagation errors as in [`Simulator::settle`].
    pub fn poke(&mut self, name: &str, value: LogicVec) -> Result<(), SimError> {
        let id = self
            .design
            .signal(name)
            .filter(|id| self.design.inputs.contains(id))
            .ok_or_else(|| SimError::UnknownInput(name.to_string()))?;
        self.poke_id(id, value)
    }

    /// Drive several top-level inputs at once, then propagate: all
    /// stores update first, every edge those updates produce triggers
    /// once, and the combinational fanout settles a single time.
    ///
    /// This is the testbench fast path — poking a step's drives one by
    /// one re-settles the entire fanout per input, multiplying process
    /// activations by the drive count.
    ///
    /// # Errors
    ///
    /// [`SimError::UnknownInput`] if any name is not a top-level input
    /// (earlier drives of the batch stay applied); propagation errors as
    /// in [`Simulator::settle`].
    pub fn poke_many<'d>(
        &mut self,
        drives: impl IntoIterator<Item = (&'d str, LogicVec)>,
    ) -> Result<(), SimError> {
        let mut changed: Vec<SignalId> = Vec::new();
        let mut triggered: Vec<usize> = Vec::new();
        for (name, value) in drives {
            let id = self
                .design
                .signal(name)
                .filter(|id| self.design.inputs.contains(id))
                .ok_or_else(|| SimError::UnknownInput(name.to_string()))?;
            let width = self.design.width(id);
            let value = value.resized(width);
            let old = &self.store[id.index()];
            if old.case_eq(&value) {
                continue;
            }
            let old_bit = old.get(0).unwrap_or(LogicBit::X);
            let new_bit = value.get(0).unwrap_or(LogicBit::X);
            self.store[id.index()] = value;
            for &pi in &self.edge_deps[id.index()] {
                if let Process::Seq { edges, .. } = &self.design.processes[pi] {
                    if edges
                        .iter()
                        .any(|&(e, s)| s == id && is_edge(e, old_bit, new_bit))
                        && !triggered.contains(&pi)
                    {
                        triggered.push(pi);
                    }
                }
            }
            changed.push(id);
        }
        if changed.is_empty() {
            return Ok(());
        }
        self.run_seq_cascade(triggered, &mut changed)?;
        self.settle_from(changed)
    }

    /// Drive a signal by id (testbenches use this for clocks and data).
    ///
    /// # Errors
    ///
    /// Propagation errors as in [`Simulator::settle`].
    pub fn poke_id(&mut self, id: SignalId, value: LogicVec) -> Result<(), SimError> {
        let width = self.design.width(id);
        let value = value.resized(width);
        let old = self.store[id.index()].clone();
        if old.case_eq(&value) {
            return Ok(());
        }
        self.store[id.index()] = value.clone();

        // 1. Edge-triggered processes sampling the pre-NBA world.
        let old_bit = old.get(0).unwrap_or(LogicBit::X);
        let new_bit = value.get(0).unwrap_or(LogicBit::X);
        let mut triggered: Vec<usize> = Vec::new();
        for &pi in &self.edge_deps[id.index()] {
            if let Process::Seq { edges, .. } = &self.design.processes[pi] {
                if edges
                    .iter()
                    .any(|&(e, s)| s == id && is_edge(e, old_bit, new_bit))
                {
                    triggered.push(pi);
                }
            }
        }
        let mut changed = vec![id];
        self.run_seq_cascade(triggered, &mut changed)?;

        // 2. Combinational settle from everything that moved.
        self.settle_from(changed)
    }

    /// Run triggered sequential processes, commit their non-blocking
    /// writes, and follow any edges those commits produce (clock
    /// dividers), up to [`CASCADE_LIMIT`] rounds.
    fn run_seq_cascade(
        &mut self,
        mut triggered: Vec<usize>,
        changed: &mut Vec<SignalId>,
    ) -> Result<(), SimError> {
        if triggered.is_empty() {
            return Ok(());
        }
        let design = self.design.clone();
        let mut rounds = 0usize;
        // Dense dedup of the next round's trigger list (the predecessor
        // used an O(n²) `contains` scan per candidate) and pre-commit
        // LSB snapshots — both pooled, since this runs per poke.
        let mut in_triggered = std::mem::take(&mut self.wl.in_triggered);
        in_triggered.resize(design.processes.len(), false);
        let mut olds = std::mem::take(&mut self.wl.olds);
        olds.resize(design.signals.len(), None);
        let mut result = Ok(());
        while !triggered.is_empty() {
            rounds += 1;
            if rounds > CASCADE_LIMIT {
                result = Err(SimError::EdgeCascade { rounds });
                break;
            }
            let mut nba: Vec<PendingWrite> = Vec::new();
            for pi in triggered.drain(..) {
                // Blocking writes inside sequential bodies write
                // through (standard Verilog), tracked in `changed`.
                self.run_body(pi, &mut nba, changed);
            }
            // Commit NBAs, detecting new edges.
            let mut nba_changed: Vec<SignalId> = Vec::new();
            for w in &nba {
                let slot = &mut olds[w.signal.index()];
                if slot.is_none() {
                    *slot = Some(self.store[w.signal.index()].get(0).unwrap_or(LogicBit::X));
                }
            }
            for w in &nba {
                apply_write(
                    &mut self.store,
                    w.signal,
                    w.lsb,
                    w.width,
                    &w.value,
                    &mut nba_changed,
                );
            }
            for &sig in &nba_changed {
                let old_bit = olds[sig.index()].unwrap_or(LogicBit::X);
                let new_bit = self.store[sig.index()].get(0).unwrap_or(LogicBit::X);
                for &pi in &self.edge_deps[sig.index()] {
                    if let Process::Seq { edges, .. } = &design.processes[pi] {
                        if edges
                            .iter()
                            .any(|&(e, s)| s == sig && is_edge(e, old_bit, new_bit))
                            && !in_triggered[pi]
                        {
                            in_triggered[pi] = true;
                            triggered.push(pi);
                        }
                    }
                }
            }
            for &pi in &triggered {
                in_triggered[pi] = false;
            }
            for w in &nba {
                olds[w.signal.index()] = None;
            }
            changed.extend(nba_changed);
        }
        // Buffers are all-false/all-None again (maintained per round);
        // pool them for the next cascade.
        self.wl.in_triggered = in_triggered;
        self.wl.olds = olds;
        result
    }

    /// Evaluate every combinational process to a fixpoint.
    ///
    /// # Errors
    ///
    /// [`SimError::CombinationalLoop`] when no fixpoint is reached — a
    /// real failure mode for mutated candidates, which the judge agent
    /// scores as zero.
    pub fn settle(&mut self) -> Result<(), SimError> {
        let all: Vec<usize> = (0..self.design.processes.len())
            .filter(|&i| matches!(self.design.processes[i], Process::Comb { .. }))
            .collect();
        self.run_comb_worklist(&all)
    }

    /// Settle starting from the processes sensitive to `changed` signals.
    fn settle_from(&mut self, changed: Vec<SignalId>) -> Result<(), SimError> {
        let mut init = std::mem::take(&mut self.wl.init);
        init.clear();
        let mut in_queue = std::mem::take(&mut self.wl.in_queue);
        in_queue.resize(self.design.processes.len(), false);
        for sig in changed {
            for &p in &self.comb_deps[sig.index()] {
                if !in_queue[p] {
                    in_queue[p] = true;
                    init.push(p);
                }
            }
        }
        for &p in &init {
            in_queue[p] = false;
        }
        self.wl.in_queue = in_queue;
        let r = self.run_comb_worklist(&init);
        self.wl.init = init;
        r
    }

    fn run_comb_worklist(&mut self, init: &[usize]) -> Result<(), SimError> {
        let design = self.design.clone();
        let mut queue = std::mem::take(&mut self.wl.queue);
        let mut in_queue = std::mem::take(&mut self.wl.in_queue);
        queue.clear();
        queue.extend(init.iter().copied());
        in_queue.resize(design.processes.len(), false);
        for &p in init {
            in_queue[p] = true;
        }
        let limit = SETTLE_LIMIT_FACTOR * design.processes.len().max(4) + 64;
        let mut iterations = 0usize;
        let mut result = Ok(());
        while let Some(pi) = queue.pop_front() {
            in_queue[pi] = false;
            iterations += 1;
            if iterations > limit {
                result = Err(SimError::CombinationalLoop { iterations });
                break;
            }
            let Process::Comb { writes, .. } = &design.processes[pi] else {
                continue;
            };
            // Snapshot the write set so a process that reads what it
            // writes (an accumulation chain) only reports *net* changes;
            // intermediate blocking-write glitches must not re-trigger it.
            let mut before = std::mem::take(&mut self.wl.before);
            before.clear();
            before.extend(writes.iter().map(|id| self.store[id.index()].clone()));
            let mut nba = std::mem::take(&mut self.wl.nba);
            let mut scratch = std::mem::take(&mut self.wl.scratch);
            nba.clear();
            scratch.clear();
            self.run_body(pi, &mut nba, &mut scratch);
            // NBAs inside comb always blocks commit immediately at the end
            // of the process (simplified @* semantics).
            for w in &nba {
                apply_write(
                    &mut self.store,
                    w.signal,
                    w.lsb,
                    w.width,
                    &w.value,
                    &mut scratch,
                );
            }
            // Sequential processes must not be edge-triggered by
            // combinational glitches in this model; only real pokes and
            // NBA commits produce edges. (Clock gating through logic is
            // outside the benchmark subset.)
            for (id, old) in writes.iter().zip(before.iter()) {
                if self.store[id.index()].case_eq(old) {
                    continue;
                }
                for &p in &self.comb_deps[id.index()] {
                    if !in_queue[p] {
                        in_queue[p] = true;
                        queue.push_back(p);
                    }
                }
            }
            self.wl.before = before;
            self.wl.nba = nba;
            self.wl.scratch = scratch;
        }
        // Restore the all-false/empty invariant before pooling the
        // buffers (the error path leaves entries queued).
        for p in queue.drain(..) {
            in_queue[p] = false;
        }
        self.wl.queue = queue;
        self.wl.in_queue = in_queue;
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elab::elaborate;

    fn sim_of(src: &str) -> Simulator {
        let file = mage_verilog::parse(src).unwrap();
        let top = file.modules.last().unwrap().name.clone();
        let design = Arc::new(elaborate(&file, &top).unwrap());
        let mut s = Simulator::new(design);
        s.settle().unwrap();
        s
    }

    fn v(w: usize, x: u64) -> LogicVec {
        LogicVec::from_u64(w, x)
    }

    #[test]
    fn and_gate_truth_table() {
        let mut s = sim_of("module top(input a, input b, output y); assign y = a & b; endmodule");
        for (a, b, y) in [(0, 0, 0), (0, 1, 0), (1, 0, 0), (1, 1, 1)] {
            s.poke("a", v(1, a)).unwrap();
            s.poke("b", v(1, b)).unwrap();
            assert_eq!(s.peek_by_name("y").unwrap().to_u64(), Some(y));
        }
    }

    #[test]
    fn outputs_x_before_drive() {
        let s = sim_of("module top(input a, output y); assign y = ~a; endmodule");
        assert!(s.peek_by_name("y").unwrap().is_all_x());
    }

    #[test]
    fn adder_with_carry_capture() {
        let mut s = sim_of(
            "module top(input [3:0] a, input [3:0] b, output [4:0] s);
               assign s = a + b;
             endmodule",
        );
        s.poke("a", v(4, 9)).unwrap();
        s.poke("b", v(4, 9)).unwrap();
        // Context width 5 captures the carry.
        assert_eq!(s.peek_by_name("s").unwrap().to_u64(), Some(18));
    }

    #[test]
    fn concat_lvalue_splits_sum() {
        let mut s = sim_of(
            "module top(input [3:0] a, input [3:0] b, output cout, output [3:0] sum);
               assign {cout, sum} = a + b;
             endmodule",
        );
        s.poke("a", v(4, 12)).unwrap();
        s.poke("b", v(4, 7)).unwrap();
        assert_eq!(s.peek_by_name("sum").unwrap().to_u64(), Some(3));
        assert_eq!(s.peek_by_name("cout").unwrap().to_u64(), Some(1));
    }

    #[test]
    fn comb_always_with_case() {
        let mut s = sim_of(
            "module top(input [1:0] sel, input [3:0] a, input [3:0] b, input [3:0] c, output reg [3:0] y);
               always @(*) case (sel)
                 2'b00: y = a;
                 2'b01: y = b;
                 default: y = c;
               endcase
             endmodule",
        );
        s.poke("a", v(4, 1)).unwrap();
        s.poke("b", v(4, 2)).unwrap();
        s.poke("c", v(4, 3)).unwrap();
        s.poke("sel", v(2, 0)).unwrap();
        assert_eq!(s.peek_by_name("y").unwrap().to_u64(), Some(1));
        s.poke("sel", v(2, 1)).unwrap();
        assert_eq!(s.peek_by_name("y").unwrap().to_u64(), Some(2));
        s.poke("sel", v(2, 3)).unwrap();
        assert_eq!(s.peek_by_name("y").unwrap().to_u64(), Some(3));
    }

    #[test]
    fn dff_samples_on_posedge_only() {
        let mut s = sim_of(
            "module top(input clk, input d, output reg q);
               always @(posedge clk) q <= d;
             endmodule",
        );
        s.poke("clk", v(1, 0)).unwrap();
        s.poke("d", v(1, 1)).unwrap();
        assert!(s.peek_by_name("q").unwrap().is_all_x(), "q X before clock");
        s.poke("clk", v(1, 1)).unwrap(); // posedge
        assert_eq!(s.peek_by_name("q").unwrap().to_u64(), Some(1));
        s.poke("d", v(1, 0)).unwrap(); // no edge: q holds
        assert_eq!(s.peek_by_name("q").unwrap().to_u64(), Some(1));
        s.poke("clk", v(1, 0)).unwrap(); // negedge: q holds
        assert_eq!(s.peek_by_name("q").unwrap().to_u64(), Some(1));
        s.poke("clk", v(1, 1)).unwrap(); // posedge samples new d
        assert_eq!(s.peek_by_name("q").unwrap().to_u64(), Some(0));
    }

    #[test]
    fn nba_swap_is_simultaneous() {
        let mut s = sim_of(
            "module top(input clk, input [7:0] init_a, output reg [7:0] a, output reg [7:0] b);
               always @(posedge clk) begin
                 a <= b;
                 b <= a;
               end
             endmodule",
        );
        // Force initial values through input-independent paths: poke via
        // clocked capture is impossible here, so initialize by hand.
        let ida = s.design().signal("a").unwrap();
        let idb = s.design().signal("b").unwrap();
        s.store[ida.index()] = v(8, 1);
        s.store[idb.index()] = v(8, 2);
        s.poke("clk", v(1, 0)).unwrap();
        s.poke("clk", v(1, 1)).unwrap();
        assert_eq!(s.peek(ida).to_u64(), Some(2), "a takes old b");
        assert_eq!(s.peek(idb).to_u64(), Some(1), "b takes old a");
    }

    #[test]
    fn async_reset_dominates() {
        let mut s = sim_of(
            "module top(input clk, input rst, input d, output reg q);
               always @(posedge clk or posedge rst)
                 if (rst) q <= 1'b0; else q <= d;
             endmodule",
        );
        s.poke("clk", v(1, 0)).unwrap();
        s.poke("d", v(1, 1)).unwrap();
        s.poke("rst", v(1, 1)).unwrap(); // async reset without clock
        assert_eq!(s.peek_by_name("q").unwrap().to_u64(), Some(0));
        s.poke("rst", v(1, 0)).unwrap();
        s.poke("clk", v(1, 1)).unwrap();
        assert_eq!(s.peek_by_name("q").unwrap().to_u64(), Some(1));
    }

    #[test]
    fn counter_counts() {
        let mut s = sim_of(
            "module top(input clk, input rst, output reg [3:0] q);
               always @(posedge clk) begin
                 if (rst) q <= 4'd0;
                 else q <= q + 4'd1;
               end
             endmodule",
        );
        s.poke("clk", v(1, 0)).unwrap();
        s.poke("rst", v(1, 1)).unwrap();
        s.poke("clk", v(1, 1)).unwrap();
        s.poke("clk", v(1, 0)).unwrap();
        s.poke("rst", v(1, 0)).unwrap();
        for expect in 1..=5u64 {
            s.poke("clk", v(1, 1)).unwrap();
            s.poke("clk", v(1, 0)).unwrap();
            assert_eq!(s.peek_by_name("q").unwrap().to_u64(), Some(expect % 16));
        }
    }

    #[test]
    fn hierarchy_flattens_and_works() {
        let mut s = sim_of(
            "module fa(input a, input b, input cin, output s, output cout);
               assign s = a ^ b ^ cin;
               assign cout = (a & b) | (cin & (a ^ b));
             endmodule
             module top(input [1:0] x, input [1:0] y, output [2:0] sum);
               wire c0;
               fa f0 (.a(x[0]), .b(y[0]), .cin(1'b0), .s(sum[0]), .cout(c0));
               fa f1 (.a(x[1]), .b(y[1]), .cin(c0), .s(sum[1]), .cout(sum[2]));
             endmodule",
        );
        for x in 0..4u64 {
            for y in 0..4u64 {
                s.poke("x", v(2, x)).unwrap();
                s.poke("y", v(2, y)).unwrap();
                assert_eq!(
                    s.peek_by_name("sum").unwrap().to_u64(),
                    Some(x + y),
                    "{x}+{y}"
                );
            }
        }
    }

    #[test]
    fn parameter_override_changes_width() {
        let mut s = sim_of(
            "module w #(parameter N = 4)(input [N-1:0] a, output [N-1:0] y);
               assign y = ~a;
             endmodule
             module top(input [7:0] a, output [7:0] y);
               w #(.N(8)) u (.a(a), .y(y));
             endmodule",
        );
        s.poke("a", v(8, 0x0F)).unwrap();
        assert_eq!(s.peek_by_name("y").unwrap().to_u64(), Some(0xF0));
    }

    #[test]
    fn for_loop_reverses_bits() {
        let mut s = sim_of(
            "module top(input [7:0] a, output reg [7:0] y);
               integer i;
               always @(*) for (i = 0; i < 8; i = i + 1) y[i] = a[7 - i];
             endmodule",
        );
        s.poke("a", v(8, 0b1101_0010)).unwrap();
        assert_eq!(s.peek_by_name("y").unwrap().to_u64(), Some(0b0100_1011));
    }

    #[test]
    fn combinational_loop_detected() {
        let file = mage_verilog::parse(
            "module top(input a, output y);
               assign y = a ? ~y : 1'b0; // rings when a = 1
             endmodule",
        )
        .unwrap();
        let design = Arc::new(elaborate(&file, "top").unwrap());
        let mut s = Simulator::new(design);
        s.settle().unwrap(); // all-X fixpoint settles fine
        s.poke("a", v(1, 0)).unwrap(); // y settles to a defined 0
        assert_eq!(s.peek_by_name("y").unwrap().to_u64(), Some(0));
        // Now y = ~y oscillates between defined values: must error, not hang.
        let r = s.poke("a", v(1, 1));
        assert!(matches!(r, Err(SimError::CombinationalLoop { .. })));
    }

    #[test]
    fn clock_divider_cascade() {
        let mut s = sim_of(
            "module top(input clk, input rst, output reg c0, output reg c1);
               always @(posedge clk or posedge rst)
                 if (rst) c0 <= 1'b0; else c0 <= ~c0;
               always @(posedge c0 or posedge rst)
                 if (rst) c1 <= 1'b0; else c1 <= ~c1;
             endmodule",
        );
        s.poke("clk", v(1, 0)).unwrap();
        s.poke("rst", v(1, 1)).unwrap();
        s.poke("rst", v(1, 0)).unwrap();
        let mut c1_seq = Vec::new();
        for _ in 0..8 {
            s.poke("clk", v(1, 1)).unwrap();
            s.poke("clk", v(1, 0)).unwrap();
            c1_seq.push(s.peek_by_name("c1").unwrap().to_u64().unwrap());
        }
        // c0 toggles each cycle: 1,0,1,0…; c1 toggles on c0 rising.
        assert_eq!(c1_seq, vec![1, 1, 0, 0, 1, 1, 0, 0]);
    }

    #[test]
    fn part_select_lvalue_and_rvalue() {
        let mut s = sim_of(
            "module top(input [7:0] a, output reg [7:0] y);
               always @(*) begin
                 y = 8'h00;
                 y[3:0] = a[7:4];
               end
             endmodule",
        );
        s.poke("a", v(8, 0xA5)).unwrap();
        assert_eq!(s.peek_by_name("y").unwrap().to_u64(), Some(0x0A));
    }

    #[test]
    fn dynamic_bit_select_write() {
        let mut s = sim_of(
            "module top(input [2:0] idx, output reg [7:0] y);
               always @(*) begin
                 y = 8'h00;
                 y[idx] = 1'b1;
               end
             endmodule",
        );
        for i in 0..8u64 {
            s.poke("idx", v(3, i)).unwrap();
            assert_eq!(s.peek_by_name("y").unwrap().to_u64(), Some(1 << i));
        }
    }

    #[test]
    fn x_propagates_through_arith_not_through_masks() {
        let mut s = sim_of(
            "module top(input [3:0] a, output [3:0] add_y, output [3:0] and_y);
               assign add_y = a + 4'd1;
               assign and_y = a & 4'h0;
             endmodule",
        );
        // `a` is still X.
        assert!(s.peek_by_name("add_y").unwrap().is_all_x());
        assert!(s.peek_by_name("and_y").unwrap().is_all_zero());
        s.poke("a", v(4, 3)).unwrap();
        assert_eq!(s.peek_by_name("add_y").unwrap().to_u64(), Some(4));
    }

    #[test]
    fn shift_ops() {
        let mut s = sim_of(
            "module top(input [7:0] a, input [2:0] n, output [7:0] l, output [7:0] r);
               assign l = a << n;
               assign r = a >> n;
             endmodule",
        );
        s.poke("a", v(8, 0b0001_1000)).unwrap();
        s.poke("n", v(3, 2)).unwrap();
        assert_eq!(s.peek_by_name("l").unwrap().to_u64(), Some(0b0110_0000));
        assert_eq!(s.peek_by_name("r").unwrap().to_u64(), Some(0b0000_0110));
    }

    #[test]
    fn casez_wildcard_priority() {
        let mut s = sim_of(
            "module top(input [3:0] r, output reg [1:0] y);
               always @(*) casez (r)
                 4'b1???: y = 2'd3;
                 4'b01??: y = 2'd2;
                 4'b001?: y = 2'd1;
                 default: y = 2'd0;
               endcase
             endmodule",
        );
        s.poke("r", v(4, 0b1010)).unwrap();
        assert_eq!(s.peek_by_name("y").unwrap().to_u64(), Some(3));
        s.poke("r", v(4, 0b0110)).unwrap();
        assert_eq!(s.peek_by_name("y").unwrap().to_u64(), Some(2));
        s.poke("r", v(4, 0b0010)).unwrap();
        assert_eq!(s.peek_by_name("y").unwrap().to_u64(), Some(1));
        s.poke("r", v(4, 0b0001)).unwrap();
        assert_eq!(s.peek_by_name("y").unwrap().to_u64(), Some(0));
    }

    #[test]
    fn poke_rejects_non_inputs() {
        let mut s = sim_of("module top(input a, output y); assign y = a; endmodule");
        assert!(matches!(
            s.poke("y", v(1, 0)),
            Err(SimError::UnknownInput(_))
        ));
        assert!(matches!(
            s.poke("zz", v(1, 0)),
            Err(SimError::UnknownInput(_))
        ));
    }
}
