//! The four-state cycle/event simulator.
//!
//! # Scheduling
//!
//! The default scheduler is a **two-region event wheel**:
//!
//! * **Active region** — combinational processes with a pending
//!   input-change event. Every signal change (poke, blocking write
//!   inside a sequential body, NBA commit) enqueues exactly the
//!   processes whose compiled bytecode reads that signal
//!   ([`crate::compile::CompiledDesign::comb_readers`]); the region
//!   drains to a fixpoint with net-change detection, so a process that
//!   reads what it writes settles when its output is stable.
//! * **NBA region** — non-blocking writes queued by the sequential
//!   processes an edge triggered. Commits happen as a wave; each
//!   committed transition is classified into the unique posedge/negedge
//!   it makes and dispatched through the per-edge trigger lists
//!   [`Design::triggers`] computed at elaboration — no per-step scan of
//!   any process's sensitivity list. Commit waves cascade (clock
//!   dividers) up to [`CASCADE_LIMIT`] rounds before the active region
//!   runs.
//!
//! Events persist between calls: at time zero every combinational
//! process carries an initial event (the all-`X` evaluation), and
//! [`Simulator::settle`] *drains* pending events rather than
//! re-evaluating the whole design — a settled simulator re-settles in
//! O(1). Pokes drive only the fanout of the signals that actually
//! changed, so toggling one clock of a multi-clock design never touches
//! the other domain.
//!
//! # Lazy combinational evaluation
//!
//! Pokes are *lazy*: a drive whose transition fires no edge-triggered
//! process updates the store and enqueues its combinational fanout
//! without draining — the active region flushes at the next observation
//! point ([`Simulator::peek`]/[`Simulator::peek_by_name`], which take
//! `&mut self` for exactly this reason, or [`Simulator::settle`]) or
//! immediately before the next real clock edge (so flops always sample
//! the same settled pre-edge state an eager scheduler would have
//! produced). Poking a step's data drives one by one then reading an
//! output therefore settles the shared fanout once instead of once per
//! drive. Both schedulers implement the identical deferral rule, so the
//! lockstep suites stay store-exact at every observation point.
//!
//! A flush that faults (combinational loop, edge cascade) *latches*:
//! the error is reported by the call that discovered it (or swallowed
//! and latched, when that call was a `peek` — peeks must return a
//! value), and reads freeze at the fault-time store until the next
//! poke or [`Simulator::settle`] clears the latch and re-attempts the
//! pending work. A standing fault re-reports there; driving the input
//! that broke the loop recovers, exactly as under eager evaluation.
//!
//! # The three-executor stack
//!
//! Process bodies execute on one of three executors:
//!
//! 1. **Legacy** ([`ExecMode::Legacy`] / `MAGE_SIM_EXEC=legacy`) — the
//!    pre-wheel scheduler (full-scan edge dispatch + a per-call
//!    worklist seeded after the fact) driving the tree-walking
//!    evaluator: the differential oracle, kept verbatim.
//! 2. **Four-state compiled** — the bytecode interpreter on the event
//!    wheel, full `X`/`Z` propagation over both value planes.
//! 3. **Two-state compiled** (the default dispatch inside
//!    [`ExecMode::Compiled`]) — when an eligible process's read set is
//!    fully defined, its bytecode executes over the aval plane only,
//!    skipping all bval-plane masking/merging (the Verilator model).
//!    The gate is per evaluation: the all-`X` boot state runs
//!    four-state until the first defined store, an `X`/`Z` poked into
//!    a read demotes exactly the processes that read it, and mid-run
//!    hazards (division by zero, out-of-range reads, a re-read of a
//!    just-stored `X`) bail out, rewind, and re-run four-state —
//!    completed two-state runs are store-exact by construction.
//!    [`Simulator::set_two_state`] or `MAGE_SIM_TWO_STATE=off`
//!    disables the dispatch; `EvalCounts::two_state_evals` /
//!    `two_state_fallbacks` account for every eligible evaluation.
//!
//! The corpus lockstep suites (`tests/compiled_vs_interp_corpus.rs`,
//! `crates/sim/tests/{event_wheel,two_state}.rs`) hold all three
//! store-exact after every poke.

use crate::compile::CompiledDesign;
use crate::design::{Design, Process, SignalId};
use crate::error::SimError;
use crate::eval::{apply_write, exec, PendingWrite, Store};
use crate::interp;
use mage_logic::{LogicBit, LogicVec};
use mage_verilog::ast::Edge;
use std::collections::VecDeque;
use std::sync::Arc;

/// Upper bound on combinational fixpoint iterations per settle.
const SETTLE_LIMIT_FACTOR: usize = 64;
/// Upper bound on NBA-commit → edge-trigger cascade rounds.
const CASCADE_LIMIT: usize = 64;

/// IEEE-1364 edge detection on the LSB of a changing signal.
fn is_edge(edge: Edge, old: LogicBit, new: LogicBit) -> bool {
    let (old, new) = (old.normalized(), new.normalized());
    if old == new {
        return false;
    }
    match edge {
        // posedge: 0→1, 0→X, X→1
        Edge::Pos => old == LogicBit::Zero || new == LogicBit::One,
        // negedge: 1→0, 1→X, X→0
        Edge::Neg => old == LogicBit::One || new == LogicBit::Zero,
    }
}

/// Classify a changing LSB into the unique edge it makes (`None` when
/// the normalized value is unchanged). Under [`is_edge`]'s rules a
/// change is a posedge or a negedge, never both, so the wheel can
/// dispatch one per-edge trigger list per transition.
fn edge_kind(old: LogicBit, new: LogicBit) -> Option<Edge> {
    let (old, new) = (old.normalized(), new.normalized());
    if old == new {
        None
    } else if old == LogicBit::Zero || new == LogicBit::One {
        Some(Edge::Pos)
    } else {
        Some(Edge::Neg)
    }
}

/// Scheduler work counters of one simulator instance (cumulative; see
/// [`Simulator::eval_counts`]). The perf harness records these per
/// step/edge to make scheduling regressions visible next to wall-clock.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EvalCounts {
    /// Combinational process body executions.
    pub comb_evals: u64,
    /// Sequential (edge-triggered) process body executions.
    pub seq_evals: u64,
    /// Processes examined for edge sensitivity on a signal change. The
    /// legacy scheduler scans every process sensitized to the signal in
    /// either direction; the wheel indexes the matching per-edge trigger
    /// list, so every probe it pays for is an actual trigger.
    pub edge_probes: u64,
    /// Process body executions serviced by the two-state
    /// (aval-plane-only) interpreter — a subset of
    /// `comb_evals + seq_evals`. Zero in legacy mode and with
    /// `MAGE_SIM_TWO_STATE=off`.
    pub two_state_evals: u64,
    /// Executions of two-state-*eligible* processes that ran four-state
    /// anyway: an `X`/`Z` in the read set at dispatch (including the
    /// all-`X` boot state) or a mid-run bailout (division by zero,
    /// out-of-range read). `two_state_evals` growing while this stays
    /// flat is the defined-steady-state signature; the proptest suite
    /// uses the pair to assert fallback *and* recovery.
    pub two_state_fallbacks: u64,
    /// Process body executions serviced by a fused
    /// [`crate::plan::EvalPlan`] (superinstruction dispatch) — a subset
    /// of `two_state_evals`. Zero in legacy mode, with
    /// `MAGE_SIM_TWO_STATE=off`, and under `MAGE_SIM_FUSE=off`.
    pub fused_evals: u64,
    /// Fused plan opcodes retired across all `fused_evals`.
    pub plan_steps: u64,
    /// Source bytecode instructions those plan opcodes covered — what
    /// the unfused interpreter would have dispatched on the same
    /// control paths. `plan_steps < plan_unfused_steps` is the fusion
    /// win in dispatch economics, independent of wall clock.
    pub plan_unfused_steps: u64,
    /// Cascade plans this simulator's design dropped in its delta
    /// rebuild ([`crate::CompiledDesign::invalidated_plans`], seeded at
    /// construction; 0 for scratch-compiled designs and in legacy
    /// mode). [`Simulator::reset_eval_counts`] clears the seed along
    /// with the runtime counters.
    pub plan_invalidations: u64,
}

impl EvalCounts {
    /// Total process body executions (both kinds).
    pub fn total_evals(&self) -> u64 {
        self.comb_evals + self.seq_evals
    }
}

/// An instance of a design being simulated.
///
/// The simulator owns a value store (one [`LogicVec`] per signal, all `X`
/// at time zero, like an event-driven simulator's un-reset state),
/// executes edge-triggered processes with non-blocking-assignment
/// semantics, and settles combinational processes to a fixpoint after
/// every disturbance (see the module docs for the event wheel).
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use mage_logic::LogicVec;
/// use mage_sim::{elaborate, Simulator};
///
/// let file = mage_verilog::parse(
///     "module top(input a, input b, output y); assign y = a & b; endmodule",
/// ).unwrap();
/// let design = Arc::new(elaborate(&file, "top")?);
/// let mut sim = Simulator::new(design);
/// sim.settle().unwrap();
/// sim.poke("a", LogicVec::from_bool(true)).unwrap();
/// sim.poke("b", LogicVec::from_bool(true)).unwrap();
/// assert_eq!(sim.peek_by_name("y").unwrap().to_u64(), Some(1));
/// # Ok::<(), mage_sim::ElabError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Simulator {
    design: Arc<Design>,
    /// Per-process bytecode, compiled once per [`Design`] and shared by
    /// every simulator over it (see [`Design::compiled`]). `None` in
    /// legacy mode — the tree-walker never executes bytecode, so the
    /// oracle does not pay for (or depend on) the lowering.
    compiled: Option<Arc<CompiledDesign>>,
    /// Per-process register files, reused across executions.
    regs: Vec<interp::RegFile>,
    store: Store,
    time: u64,
    mode: ExecMode,
    /// Two-state fast-path dispatch enable (compiled mode; on by
    /// default, off under `MAGE_SIM_TWO_STATE=off`/`0` or
    /// [`Simulator::set_two_state`] — the hook the differential suites
    /// use to hold the pure four-state path against the fast path).
    two_state: bool,
    /// Fused-plan dispatch enable (compiled mode; defaults to the
    /// `MAGE_SIM_FUSE` environment gate ([`crate::plan::fuse_enabled`])
    /// snapshotted at construction — `env::var` takes a process lock,
    /// too hot for the per-drain path — and overridden per simulator
    /// with [`Simulator::set_fuse`], the hook the differential suites
    /// use).
    fuse: bool,
    /// Wheel scheduler state (the default path).
    wheel: Wheel,
    /// Oracle scheduler state (`ExecMode::Legacy` only).
    legacy: Option<Box<LegacySched>>,
    /// Latched propagation fault from a deferred flush (see the module
    /// docs): peeks freeze the store under it; the next poke or
    /// `settle` clears it and re-attempts the pending work.
    fault: Option<SimError>,
    counts: EvalCounts,
    /// Fuzz-coverage sink ([`crate::coverage`]): `None` (the default)
    /// costs one branch per body execution; the `mage-fuzz` lockstep
    /// oracles enable it to record dynamic behavior features (execution
    /// outcomes, bail reasons, cascade dispatches).
    coverage: Option<Box<crate::FuzzCoverage>>,
}

/// The two-region event wheel. `active`/`triggered` carry pending
/// events between calls; the remaining buffers are pooled scratch,
/// empty (or all-`false`/`None`) between drains.
#[derive(Debug, Clone, Default)]
struct Wheel {
    /// Active region: comb processes with a pending input-change event.
    active: VecDeque<usize>,
    in_active: Vec<bool>,
    /// Seq processes triggered by a not-yet-drained edge.
    triggered: Vec<usize>,
    in_triggered: Vec<bool>,
    /// NBA-region scratch.
    nba: Vec<PendingWrite>,
    changed: Vec<SignalId>,
    /// Pre-commit LSB snapshots (all-`None` between waves).
    olds: Vec<Option<LogicBit>>,
    /// Net-change snapshot of a comb run's write set.
    before: Vec<LogicVec>,
    scratch: Vec<SignalId>,
}

impl Wheel {
    /// Enqueue the comb fanout of a changed signal on the active region.
    #[inline]
    fn comb_fanout(&mut self, compiled: &CompiledDesign, sig: SignalId) {
        for &p in compiled.comb_readers(sig) {
            let p = p as usize;
            if !self.in_active[p] {
                self.in_active[p] = true;
                self.active.push_back(p);
            }
        }
    }

    /// Classify a transition and enqueue its per-edge trigger list.
    #[inline]
    fn edge_triggers(
        &mut self,
        design: &Design,
        counts: &mut EvalCounts,
        sig: SignalId,
        old_bit: LogicBit,
        new_bit: LogicBit,
    ) {
        classify_edge_triggers(
            design,
            counts,
            &mut self.in_triggered,
            &mut self.triggered,
            sig,
            old_bit,
            new_bit,
        );
    }
}

/// Classify a transition into its unique edge and enqueue the per-edge
/// trigger list on `out` (deduped through `in_triggered`). One body for
/// both enqueue sites — poke-driven edges and NBA-commit-driven edges
/// must never drift in classification or probe accounting.
#[inline]
fn classify_edge_triggers(
    design: &Design,
    counts: &mut EvalCounts,
    in_triggered: &mut [bool],
    out: &mut Vec<usize>,
    sig: SignalId,
    old_bit: LogicBit,
    new_bit: LogicBit,
) {
    if let Some(edge) = edge_kind(old_bit, new_bit) {
        let list = design.triggers(edge, sig);
        counts.edge_probes += list.len() as u64;
        for &p in list {
            let p = p as usize;
            if !in_triggered[p] {
                in_triggered[p] = true;
                out.push(p);
            }
        }
    }
}

/// The pre-wheel scheduler, kept verbatim as the differential oracle:
/// dense dependency tables scanned per change, with the comb worklist
/// seeded from the accumulated change list after each disturbance.
#[derive(Debug, Clone)]
struct LegacySched {
    /// signal index -> comb process indices reading it
    comb_deps: Vec<Vec<usize>>,
    /// signal index -> seq process indices with an edge on it
    edge_deps: Vec<Vec<usize>>,
    /// Pooled worklist scratch — pokes arrive thousands of times per
    /// grading run, so the settle loop must not allocate per call.
    wl: Worklist,
    /// `true` once the time-zero events have run (first settle or first
    /// propagating poke). Until then a poke settles *every* comb
    /// process, matching the wheel's pending time-zero events — Verilog
    /// time-zero semantics, and what keeps the two schedulers
    /// store-exact when a caller pokes before the first `settle`.
    booted: bool,
    /// Signals changed by deferred (edge-free) pokes, not yet settled —
    /// the legacy mirror of the wheel's pending active region.
    pending: Vec<SignalId>,
}

impl LegacySched {
    fn build(design: &Design) -> Self {
        // Dense dependency tables indexed by `SignalId::index()`, deduped
        // with a per-process stamp.
        let nsig = design.signals.len();
        let mut comb_deps: Vec<Vec<usize>> = vec![Vec::new(); nsig];
        let mut edge_deps: Vec<Vec<usize>> = vec![Vec::new(); nsig];
        let mut stamp: Vec<usize> = vec![usize::MAX; nsig];
        for (i, p) in design.processes.iter().enumerate() {
            match p {
                Process::Comb { reads, .. } => {
                    for &r in reads {
                        if stamp[r.index()] != i {
                            stamp[r.index()] = i;
                            comb_deps[r.index()].push(i);
                        }
                    }
                }
                Process::Seq { edges, .. } => {
                    for &(_, s) in edges {
                        if stamp[s.index()] != i {
                            stamp[s.index()] = i;
                            edge_deps[s.index()].push(i);
                        }
                    }
                }
            }
        }
        LegacySched {
            comb_deps,
            edge_deps,
            wl: Worklist::default(),
            booted: false,
            pending: Vec::new(),
        }
    }
}

/// Reusable scratch buffers of the legacy settle/cascade loops. All
/// buffers are empty (or all-false) between calls.
#[derive(Debug, Clone, Default)]
struct Worklist {
    queue: VecDeque<usize>,
    in_queue: Vec<bool>,
    before: Vec<LogicVec>,
    nba: Vec<PendingWrite>,
    scratch: Vec<SignalId>,
    init: Vec<usize>,
    /// Cascade dedup flags (all-false between calls).
    in_triggered: Vec<bool>,
    /// Cascade pre-commit LSB snapshots (all-`None` between calls).
    olds: Vec<Option<LogicBit>>,
}

/// Which executor (and scheduler) runs process bodies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// Compile-once bytecode interpreter scheduled by the two-region
    /// event wheel (the default).
    #[default]
    Compiled,
    /// Legacy tree-walking interpreter with the scan-based worklist
    /// scheduler, kept as the differential-testing oracle.
    Legacy,
}

impl Simulator {
    /// Create a simulator with every signal at `X` and time 0, using the
    /// bytecode executor (or the legacy tree-walker when the
    /// `MAGE_SIM_EXEC=legacy` environment variable is set — the hook the
    /// perf harness uses to measure the pre-bytecode baseline
    /// end-to-end).
    ///
    /// Call [`Simulator::settle`] before reading combinational outputs.
    pub fn new(design: Arc<Design>) -> Self {
        let mode = match std::env::var("MAGE_SIM_EXEC") {
            Ok(v) if v.eq_ignore_ascii_case("legacy") => ExecMode::Legacy,
            _ => ExecMode::Compiled,
        };
        Self::with_mode(design, mode)
    }

    /// Create a simulator with an explicit executor choice.
    pub fn with_mode(design: Arc<Design>, mode: ExecMode) -> Self {
        let store: Store = design
            .signals
            .iter()
            .map(|s| LogicVec::all_x(s.width))
            .collect();
        let nproc = design.processes.len();
        let (compiled, regs, legacy) = match mode {
            ExecMode::Compiled => {
                let compiled = Arc::clone(design.compiled());
                let regs = compiled
                    .procs
                    .iter()
                    .map(interp::RegFile::for_process)
                    .collect();
                (Some(compiled), regs, None)
            }
            ExecMode::Legacy => (
                None,
                Vec::new(),
                Some(Box::new(LegacySched::build(&design))),
            ),
        };
        let mut wheel = Wheel::default();
        if mode == ExecMode::Compiled {
            wheel.in_active = vec![false; nproc];
            wheel.in_triggered = vec![false; nproc];
            wheel.olds = vec![None; design.signals.len()];
            // Time-zero events: every comb process evaluates once, in
            // design order (matching the oracle's full first settle).
            for (i, p) in design.processes.iter().enumerate() {
                if matches!(p, Process::Comb { .. }) {
                    wheel.in_active[i] = true;
                    wheel.active.push_back(i);
                }
            }
        }
        let two_state = mode == ExecMode::Compiled
            && !matches!(
                std::env::var("MAGE_SIM_TWO_STATE"),
                Ok(v) if v == "0" || v.eq_ignore_ascii_case("off")
            );
        let fuse = mode == ExecMode::Compiled && crate::fuse_enabled();
        let mut counts = EvalCounts::default();
        if let Some(compiled) = &compiled {
            // Surface the design's delta-rebuild plan drops: 0 for
            // scratch compiles, the cascade-invalidation count for
            // delta-assembled designs.
            counts.plan_invalidations = compiled.invalidated_plans as u64;
        }
        Simulator {
            design,
            compiled,
            regs,
            store,
            time: 0,
            mode,
            two_state,
            fuse,
            wheel,
            legacy,
            fault: None,
            counts,
            coverage: None,
        }
    }

    /// Start recording dynamic coverage features ([`crate::coverage`])
    /// into an owned [`crate::FuzzCoverage`] map. Idempotent; the map
    /// accumulates until [`Simulator::take_coverage`].
    pub fn enable_coverage(&mut self) {
        if self.coverage.is_none() {
            self.coverage = Some(Box::default());
        }
    }

    /// The coverage map recorded so far, if enabled.
    pub fn coverage(&self) -> Option<&crate::FuzzCoverage> {
        self.coverage.as_deref()
    }

    /// Detach and return the recorded coverage map (recording stops).
    pub fn take_coverage(&mut self) -> Option<crate::FuzzCoverage> {
        self.coverage.take().map(|b| *b)
    }

    /// Whether two-state fast-path dispatch is enabled.
    pub fn two_state(&self) -> bool {
        self.two_state
    }

    /// Enable or disable the two-state fast path (compiled mode only;
    /// a no-op on the legacy executor). Turning it off forces every
    /// process through the four-state interpreter — the differential
    /// suites use this to lockstep the fast path against pure
    /// four-state execution on the same executor.
    pub fn set_two_state(&mut self, on: bool) {
        self.two_state = on && self.mode == ExecMode::Compiled;
    }

    /// Force fused-plan dispatch on or off for this simulator,
    /// overriding the `MAGE_SIM_FUSE` environment gate snapshotted at
    /// construction (compiled mode only; legacy never fuses). The
    /// differential suites use this to lockstep fused execution against
    /// the unfused two-state interpreter without touching process
    /// environment.
    pub fn set_fuse(&mut self, on: bool) {
        self.fuse = on && self.mode == ExecMode::Compiled;
    }

    /// Whether fused-plan dispatch is active: the
    /// [`Simulator::set_fuse`] override if called, else the
    /// `MAGE_SIM_FUSE` environment gate as read at construction, and
    /// never in legacy mode.
    pub fn fuse_active(&self) -> bool {
        self.fuse
    }

    /// The design being simulated.
    pub fn design(&self) -> &Design {
        &self.design
    }

    /// The executor currently in use.
    pub fn mode(&self) -> ExecMode {
        self.mode
    }

    /// Cumulative scheduler work counters since construction (or the
    /// last [`Simulator::reset_eval_counts`]).
    pub fn eval_counts(&self) -> EvalCounts {
        self.counts
    }

    /// The compiled design (wheel mode only).
    fn compiled(&self) -> Arc<CompiledDesign> {
        Arc::clone(
            self.compiled
                .as_ref()
                .expect("bytecode is compiled in wheel mode"),
        )
    }

    /// Zero the scheduler work counters.
    pub fn reset_eval_counts(&mut self) {
        self.counts = EvalCounts::default();
    }

    /// Run process `pi`'s body with the configured executor. `fuse` is
    /// the drain's per-call fused-dispatch decision (always `false` on
    /// the legacy scheduler's call sites — the oracle never fuses).
    fn run_body(
        &mut self,
        pi: usize,
        nba: &mut Vec<PendingWrite>,
        changed: &mut Vec<SignalId>,
        fuse: bool,
    ) {
        match self.mode {
            ExecMode::Compiled => {
                let compiled = self.compiled.as_ref().expect("wheel mode has bytecode");
                let outcome = interp::execute(
                    &compiled.procs[pi],
                    &mut self.regs[pi],
                    &mut self.store,
                    nba,
                    changed,
                    self.two_state,
                    fuse,
                );
                match outcome {
                    interp::ExecOutcome::TwoState => self.counts.two_state_evals += 1,
                    interp::ExecOutcome::Fused { ops, src } => {
                        self.counts.two_state_evals += 1;
                        self.counts.fused_evals += 1;
                        self.counts.plan_steps += ops as u64;
                        self.counts.plan_unfused_steps += src as u64;
                    }
                    interp::ExecOutcome::Fallback { .. } => self.counts.two_state_fallbacks += 1,
                    interp::ExecOutcome::FourState => {}
                }
                if self.coverage.is_some() {
                    let comb = matches!(self.design.processes[pi], Process::Comb { .. });
                    if let Some(cov) = self.coverage.as_deref_mut() {
                        cov.record(crate::coverage::outcome_feature(outcome, comb));
                    }
                }
            }
            ExecMode::Legacy => {
                let design = self.design.clone();
                let body = match &design.processes[pi] {
                    Process::Comb { body, .. } => body,
                    Process::Seq { body, .. } => body,
                };
                exec(&design, &mut self.store, body, nba, changed);
            }
        }
    }

    /// Current simulation time (advanced only by [`Simulator::advance`]).
    pub fn time(&self) -> u64 {
        self.time
    }

    /// Advance the nominal time stamp (used by testbench logs).
    pub fn advance(&mut self, dt: u64) {
        self.time += dt;
    }

    /// Read the current value of a signal, flushing any deferred
    /// combinational work first (the lazy-poke observation point — see
    /// the module docs). A flush fault latches rather than surfacing
    /// here; the fault-time store is returned, frozen, until a later
    /// poke or [`Simulator::settle`] re-attempts and reports the error.
    pub fn peek(&mut self, id: SignalId) -> &LogicVec {
        self.flush_for_read();
        &self.store[id.index()]
    }

    /// Read a signal by hierarchical name (flushes like
    /// [`Simulator::peek`]).
    pub fn peek_by_name(&mut self, name: &str) -> Option<&LogicVec> {
        let id = self.design.signal(name)?;
        Some(self.peek(id))
    }

    /// Flush deferred combinational work before a read. Under a latched
    /// fault the store stays frozen (re-draining a faulted region would
    /// churn it per read); a fresh fault latches silently.
    fn flush_for_read(&mut self) {
        if self.fault.is_some() {
            return;
        }
        if let Err(e) = self.flush_pending() {
            self.fault = Some(e);
        }
    }

    /// Drain whatever the lazy pokes deferred on the current scheduler.
    fn flush_pending(&mut self) -> Result<(), SimError> {
        match self.mode {
            ExecMode::Compiled => self.drain(),
            ExecMode::Legacy => {
                let mut sched = self.take_legacy();
                let pending = std::mem::take(&mut sched.pending);
                let r = if pending.is_empty() && sched.booted {
                    Ok(())
                } else {
                    self.settle_from(&mut sched, pending)
                };
                self.legacy = Some(sched);
                r
            }
        }
    }

    /// Drive a top-level input by name and propagate the change (edges
    /// first, then combinational settle).
    ///
    /// # Errors
    ///
    /// [`SimError::UnknownInput`] if `name` is not a top-level input;
    /// propagation errors as in [`Simulator::settle`].
    pub fn poke(&mut self, name: &str, value: LogicVec) -> Result<(), SimError> {
        let id = self
            .design
            .signal(name)
            .filter(|id| self.design.inputs.contains(id))
            .ok_or_else(|| SimError::UnknownInput(name.to_string()))?;
        self.poke_id(id, value)
    }

    /// Drive several top-level inputs at once, then propagate: all
    /// stores update first, every edge those updates produce triggers
    /// once, and the combinational fanout settles a single time.
    ///
    /// This is the testbench fast path — poking a step's drives one by
    /// one re-settles the entire fanout per input, multiplying process
    /// activations by the drive count. Simultaneous edges on several
    /// clocks trigger both domains in one wave.
    ///
    /// # Errors
    ///
    /// [`SimError::UnknownInput`] if any name is not a top-level input —
    /// the names are validated up front, so a failed batch applies
    /// nothing (both schedulers agree on this, which the lockstep
    /// suites depend on); propagation errors as in
    /// [`Simulator::settle`].
    pub fn poke_many<'d>(
        &mut self,
        drives: impl IntoIterator<Item = (&'d str, LogicVec)>,
    ) -> Result<(), SimError> {
        self.fault = None;
        match self.mode {
            ExecMode::Compiled => self.poke_many_wheel(drives),
            ExecMode::Legacy => self.poke_many_legacy(drives),
        }
    }

    /// Drive a signal by id (testbenches use this for clocks and data).
    ///
    /// # Errors
    ///
    /// Propagation errors as in [`Simulator::settle`].
    pub fn poke_id(&mut self, id: SignalId, value: LogicVec) -> Result<(), SimError> {
        self.fault = None;
        match self.mode {
            ExecMode::Compiled => self.poke_id_wheel(id, value),
            ExecMode::Legacy => self.poke_id_legacy(id, value),
        }
    }

    /// Propagate pending events to a fixpoint.
    ///
    /// On the wheel this *drains* the pending-event regions: the first
    /// call after construction evaluates every combinational process
    /// (the time-zero events); once settled, further calls with no
    /// intervening changes are O(1). The legacy oracle re-evaluates every
    /// combinational process on each call — the stores agree either way,
    /// because re-evaluating a settled process cannot change it.
    ///
    /// # Errors
    ///
    /// [`SimError::CombinationalLoop`] when no fixpoint is reached — a
    /// real failure mode for mutated candidates, which the judge agent
    /// scores as zero. `settle` also clears a latched fault and
    /// re-attempts the pending work, so a standing fault re-reports and
    /// a cleared one settles.
    pub fn settle(&mut self) -> Result<(), SimError> {
        self.fault = None;
        let r = match self.mode {
            ExecMode::Compiled => self.drain(),
            ExecMode::Legacy => self.settle_legacy(),
        };
        self.latch(r)
    }

    /// Latch a propagation error so subsequent pokes fail fast and
    /// peeks freeze the store until the next [`Simulator::settle`].
    fn latch(&mut self, r: Result<(), SimError>) -> Result<(), SimError> {
        if let Err(e) = &r {
            self.fault = Some(e.clone());
        }
        r
    }

    // ------------------------------------------------------------------
    // Event-wheel scheduler (ExecMode::Compiled)
    // ------------------------------------------------------------------

    /// Does a `old_bit → new_bit` transition on `id` fire at least one
    /// edge-triggered process? This is the lazy-poke deferral rule —
    /// both schedulers use it, so they always agree on what defers.
    fn transition_fires(
        design: &Design,
        id: SignalId,
        old_bit: LogicBit,
        new_bit: LogicBit,
    ) -> bool {
        edge_kind(old_bit, new_bit).is_some_and(|e| !design.triggers(e, id).is_empty())
    }

    fn poke_id_wheel(&mut self, id: SignalId, value: LogicVec) -> Result<(), SimError> {
        let width = self.design.width(id);
        let value = value.resized(width);
        let old = &self.store[id.index()];
        if old.case_eq(&value) {
            return Ok(());
        }
        let old_bit = old.get(0).unwrap_or(LogicBit::X);
        let new_bit = value.get(0).unwrap_or(LogicBit::X);
        let fires = Self::transition_fires(&self.design, id, old_bit, new_bit);
        if fires {
            // Flops must sample the settled pre-edge state: flush the
            // deferred combinational work before the edge dispatches.
            let r = self.drain();
            if r.is_err() {
                return self.latch(r);
            }
        }
        self.store[id.index()] = value;
        let design = Arc::clone(&self.design);
        let compiled = self.compiled();
        let mut wheel = std::mem::take(&mut self.wheel);
        wheel.comb_fanout(&compiled, id);
        wheel.edge_triggers(&design, &mut self.counts, id, old_bit, new_bit);
        self.wheel = wheel;
        if !fires {
            // No edge fired: leave the comb fanout pending for the next
            // observation point (peek / settle / real edge).
            return Ok(());
        }
        let r = self.drain();
        self.latch(r)
    }

    /// Would applying `resolved` in order fire any edge-triggered
    /// process? Sequential-application semantics: a later drive of the
    /// same signal transitions from the earlier drive's value, so the
    /// pre-pass tracks an overlay rather than diffing against the store.
    fn batch_fires(&self, resolved: &[(SignalId, LogicVec)]) -> bool {
        let mut overlay: std::collections::HashMap<usize, LogicVec> =
            std::collections::HashMap::new();
        for (id, value) in resolved {
            let width = self.design.width(*id);
            let value = value.resized(width);
            let old = overlay.get(&id.index()).unwrap_or(&self.store[id.index()]);
            if old.case_eq(&value) {
                continue;
            }
            let old_bit = old.get(0).unwrap_or(LogicBit::X);
            let new_bit = value.get(0).unwrap_or(LogicBit::X);
            if Self::transition_fires(&self.design, *id, old_bit, new_bit) {
                return true;
            }
            overlay.insert(id.index(), value);
        }
        false
    }

    fn poke_many_wheel<'d>(
        &mut self,
        drives: impl IntoIterator<Item = (&'d str, LogicVec)>,
    ) -> Result<(), SimError> {
        let design = Arc::clone(&self.design);
        let compiled = self.compiled();
        let resolved = Self::resolve_drives(&design, drives)?;
        let fires = self.batch_fires(&resolved);
        if fires {
            // Pre-edge flush, as in `poke_id_wheel`.
            let r = self.drain();
            if r.is_err() {
                return self.latch(r);
            }
        }
        let mut wheel = std::mem::take(&mut self.wheel);
        let mut any_changed = false;
        for (id, value) in resolved {
            let width = design.width(id);
            let value = value.resized(width);
            let old = &self.store[id.index()];
            if old.case_eq(&value) {
                continue;
            }
            let old_bit = old.get(0).unwrap_or(LogicBit::X);
            let new_bit = value.get(0).unwrap_or(LogicBit::X);
            self.store[id.index()] = value;
            wheel.comb_fanout(&compiled, id);
            wheel.edge_triggers(&design, &mut self.counts, id, old_bit, new_bit);
            any_changed = true;
        }
        self.wheel = wheel;
        if !any_changed || !fires {
            // A no-op batch does not propagate; an edge-free one defers
            // its comb fanout to the next observation point.
            return Ok(());
        }
        let r = self.drain();
        self.latch(r)
    }

    /// Validate and resolve a drive batch up front, so an unknown name
    /// fails the whole batch before any store is touched.
    fn resolve_drives<'d>(
        design: &Design,
        drives: impl IntoIterator<Item = (&'d str, LogicVec)>,
    ) -> Result<Vec<(SignalId, LogicVec)>, SimError> {
        drives
            .into_iter()
            .map(|(name, value)| {
                design
                    .signal(name)
                    .filter(|id| design.inputs.contains(id))
                    .map(|id| (id, value))
                    .ok_or_else(|| SimError::UnknownInput(name.to_string()))
            })
            .collect()
    }

    /// Drain both wheel regions: the NBA region first (edge cascades,
    /// which only pokes and commits can extend), then the active region
    /// to a combinational fixpoint. Pending events *survive* a fault —
    /// the faulting work stays queued, so a later `settle` re-attempts
    /// it and keeps reporting the fault until the design state changes
    /// (mirroring the oracle, whose full re-evaluation re-detects a
    /// standing fault; a faulted simulator's exact post-fault store is
    /// outside the differential contract, and the pipeline abandons
    /// faulted candidates at the first error).
    fn drain(&mut self) -> Result<(), SimError> {
        // One fused-dispatch decision per drain, from the
        // construction-time snapshot (or its `set_fuse` override) — the
        // drain path is too hot for an `env::var` read.
        let fuse = self.fuse_active();
        let mut wheel = std::mem::take(&mut self.wheel);
        let result = self
            .nba_region(&mut wheel, fuse)
            .and_then(|()| self.active_region(&mut wheel, fuse));
        self.wheel = wheel;
        result
    }

    /// Run the NBA region: execute triggered sequential processes,
    /// commit their non-blocking writes as a wave, and follow any edges
    /// those commits produce (clock dividers), up to [`CASCADE_LIMIT`]
    /// waves. Blocking writes and commits enqueue comb fanout on the
    /// active region as they land.
    fn nba_region(&mut self, wheel: &mut Wheel, fuse: bool) -> Result<(), SimError> {
        if wheel.triggered.is_empty() {
            return Ok(());
        }
        let design = Arc::clone(&self.design);
        let compiled = self.compiled();
        // Trigger dedup flags re-arm per wave (a divider's process may
        // legitimately run once per wave).
        for &pi in &wheel.triggered {
            wheel.in_triggered[pi] = false;
        }
        let mut triggered = std::mem::take(&mut wheel.triggered);
        let mut rounds = 0usize;
        while !triggered.is_empty() {
            rounds += 1;
            if rounds > CASCADE_LIMIT {
                wheel.triggered = triggered;
                return Err(SimError::EdgeCascade { rounds });
            }
            let mut nba = std::mem::take(&mut wheel.nba);
            let mut changed = std::mem::take(&mut wheel.changed);
            for pi in triggered.drain(..) {
                self.counts.seq_evals += 1;
                changed.clear();
                // Blocking writes inside sequential bodies write
                // through (standard Verilog); their fanout becomes
                // active events immediately.
                self.run_body(pi, &mut nba, &mut changed, fuse);
                for &sig in &changed {
                    wheel.comb_fanout(&compiled, sig);
                }
            }
            // Commit the wave, detecting new edges against pre-commit
            // LSB snapshots.
            changed.clear();
            for w in &nba {
                let slot = &mut wheel.olds[w.signal.index()];
                if slot.is_none() {
                    *slot = Some(self.store[w.signal.index()].get(0).unwrap_or(LogicBit::X));
                }
            }
            for w in &nba {
                apply_write(
                    &mut self.store,
                    w.signal,
                    w.lsb,
                    w.width,
                    &w.value,
                    &mut changed,
                );
            }
            for &sig in &changed {
                let old_bit = wheel.olds[sig.index()].unwrap_or(LogicBit::X);
                let new_bit = self.store[sig.index()].get(0).unwrap_or(LogicBit::X);
                wheel.comb_fanout(&compiled, sig);
                classify_edge_triggers(
                    &design,
                    &mut self.counts,
                    &mut wheel.in_triggered,
                    &mut triggered,
                    sig,
                    old_bit,
                    new_bit,
                );
            }
            for &pi in &triggered {
                wheel.in_triggered[pi] = false;
            }
            for w in &nba {
                wheel.olds[w.signal.index()] = None;
            }
            nba.clear();
            changed.clear();
            wheel.nba = nba;
            wheel.changed = changed;
        }
        // Hand the (drained) trigger list back to the pool so the next
        // edge reuses its capacity.
        wheel.triggered = triggered;
        Ok(())
    }

    /// Drain the active region: evaluate pending combinational processes
    /// to a fixpoint, enqueueing the fanout of *net* output changes.
    fn active_region(&mut self, wheel: &mut Wheel, fuse: bool) -> Result<(), SimError> {
        if wheel.active.is_empty() {
            return Ok(());
        }
        let compiled = self.compiled();
        let limit = SETTLE_LIMIT_FACTOR * self.design.processes.len().max(4) + 64;
        let mut iterations = 0usize;
        while let Some(pi) = wheel.active.pop_front() {
            wheel.in_active[pi] = false;
            iterations += 1;
            if iterations > limit {
                // Keep the unevaluated event pending: a standing fault
                // must re-report on the next drain, not vanish with the
                // popped entry.
                wheel.in_active[pi] = true;
                wheel.active.push_front(pi);
                return Err(SimError::CombinationalLoop { iterations });
            }
            // Cascade fusion: when this event's process roots a fused
            // combinational cascade and the cascade's whole read set is
            // defined, run every member's plan straight through in
            // static topological order — one pass instead of N wheel
            // enqueues. No write snapshots and no fanout: the cascade
            // closure contains *every* combinational reader of every
            // member write by construction (else the cascade would not
            // have been built), members already run in dependency
            // order, and comb writes never edge-trigger in this model.
            // Stale queued members simply re-run as no-ops when popped
            // (pure functions at a fixpoint). A gate failure (an `X`/`Z`
            // anywhere in the read closure) falls through to the
            // ordinary per-process path, which dispatches four-state —
            // and the cascade resumes as soon as the unknown clears.
            if fuse && self.two_state {
                if let Some(ci) = compiled.cascade_of[pi] {
                    let cascade = &compiled.cascades[ci as usize];
                    if cascade
                        .reads
                        .iter()
                        .all(|s| self.store[s.index()].is_fully_defined())
                    {
                        let mut nba = std::mem::take(&mut wheel.nba);
                        let mut scratch = std::mem::take(&mut wheel.scratch);
                        nba.clear();
                        for &m in &cascade.procs {
                            let m = m as usize;
                            self.counts.comb_evals += 1;
                            self.counts.two_state_evals += 1;
                            self.counts.fused_evals += 1;
                            let plan = compiled.procs[m]
                                .plan
                                .as_ref()
                                .expect("cascade members have plans");
                            let aregs = match &mut self.regs[m] {
                                interp::RegFile::Narrow { aregs, .. } => aregs,
                                interp::RegFile::Wide(_) => {
                                    unreachable!("cascade members are narrow")
                                }
                            };
                            scratch.clear();
                            let (ops, src) = crate::plan::execute_plan(
                                plan,
                                aregs,
                                &mut self.store,
                                &mut nba,
                                &mut scratch,
                            );
                            self.counts.plan_steps += ops as u64;
                            self.counts.plan_unfused_steps += src as u64;
                            // Cascade members are NBA-free by
                            // construction (`EvalPlan::has_nba` gates
                            // membership).
                            debug_assert!(nba.is_empty());
                        }
                        scratch.clear();
                        wheel.nba = nba;
                        wheel.scratch = scratch;
                        if let Some(cov) = self.coverage.as_deref_mut() {
                            cov.record(crate::coverage::cascade_fire_feature(cascade.procs.len()));
                        }
                        continue;
                    }
                }
            }
            self.counts.comb_evals += 1;
            let writes = &compiled.procs[pi].writes;
            // Snapshot the write set so a process that reads what it
            // writes (an accumulation chain) only reports *net* changes;
            // intermediate blocking-write glitches must not re-trigger it.
            wheel.before.clear();
            wheel
                .before
                .extend(writes.iter().map(|id| self.store[id.index()].clone()));
            let mut nba = std::mem::take(&mut wheel.nba);
            let mut scratch = std::mem::take(&mut wheel.scratch);
            nba.clear();
            scratch.clear();
            self.run_body(pi, &mut nba, &mut scratch, fuse);
            // NBAs inside comb always blocks commit immediately at the
            // end of the process (simplified @* semantics).
            for w in &nba {
                apply_write(
                    &mut self.store,
                    w.signal,
                    w.lsb,
                    w.width,
                    &w.value,
                    &mut scratch,
                );
            }
            nba.clear();
            scratch.clear();
            wheel.nba = nba;
            wheel.scratch = scratch;
            // Sequential processes must not be edge-triggered by
            // combinational glitches in this model; only real pokes and
            // NBA commits produce edges. (Clock gating through logic is
            // outside the benchmark subset.)
            for (k, id) in writes.iter().enumerate() {
                if self.store[id.index()].case_eq(&wheel.before[k]) {
                    continue;
                }
                wheel.comb_fanout(&compiled, *id);
            }
            wheel.before.clear();
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Legacy scheduler (ExecMode::Legacy, the differential oracle)
    // ------------------------------------------------------------------

    fn take_legacy(&mut self) -> Box<LegacySched> {
        self.legacy.take().expect("legacy scheduler present")
    }

    fn poke_id_legacy(&mut self, id: SignalId, value: LogicVec) -> Result<(), SimError> {
        let width = self.design.width(id);
        let value = value.resized(width);
        let old = self.store[id.index()].clone();
        if old.case_eq(&value) {
            return Ok(());
        }

        // 1. Edge-triggered processes sampling the pre-NBA world. The
        //    scan runs before the store write (and before the deferral
        //    decision) so probe accounting matches the eager scheduler.
        let old_bit = old.get(0).unwrap_or(LogicBit::X);
        let new_bit = value.get(0).unwrap_or(LogicBit::X);
        let mut sched = self.take_legacy();
        let mut triggered: Vec<usize> = Vec::new();
        for &pi in &sched.edge_deps[id.index()] {
            self.counts.edge_probes += 1;
            if let Process::Seq { edges, .. } = &self.design.processes[pi] {
                if edges
                    .iter()
                    .any(|&(e, s)| s == id && is_edge(e, old_bit, new_bit))
                {
                    triggered.push(pi);
                }
            }
        }
        if triggered.is_empty() {
            // Edge-free drive: defer the combinational settle to the
            // next observation point (the wheel does the same).
            self.store[id.index()] = value;
            sched.pending.push(id);
            self.legacy = Some(sched);
            return Ok(());
        }
        // 2. Flops sample the settled pre-edge state: flush deferred
        //    work before the clock value lands in the store.
        let pending = std::mem::take(&mut sched.pending);
        let mut r = if pending.is_empty() && sched.booted {
            Ok(())
        } else {
            self.settle_from(&mut sched, pending)
        };
        if r.is_ok() {
            self.store[id.index()] = value;
            let mut changed = vec![id];
            r = self
                .run_seq_cascade(&mut sched, triggered, &mut changed)
                // 3. Combinational settle from everything that moved.
                .and_then(|()| self.settle_from(&mut sched, changed));
        }
        self.legacy = Some(sched);
        self.latch(r)
    }

    fn poke_many_legacy<'d>(
        &mut self,
        drives: impl IntoIterator<Item = (&'d str, LogicVec)>,
    ) -> Result<(), SimError> {
        let resolved = Self::resolve_drives(&self.design, drives)?;
        let mut sched = self.take_legacy();
        // Pass 1 — no store writes yet: collect the change set and the
        // triggered processes with sequential-application semantics (an
        // overlay tracks same-signal re-drives), counting edge probes
        // exactly as the eager application loop did.
        let mut overlay: std::collections::HashMap<usize, LogicVec> =
            std::collections::HashMap::new();
        let mut changed: Vec<SignalId> = Vec::new();
        let mut triggered: Vec<usize> = Vec::new();
        for (id, value) in resolved {
            let width = self.design.width(id);
            let value = value.resized(width);
            let old = overlay.get(&id.index()).unwrap_or(&self.store[id.index()]);
            if old.case_eq(&value) {
                continue;
            }
            let old_bit = old.get(0).unwrap_or(LogicBit::X);
            let new_bit = value.get(0).unwrap_or(LogicBit::X);
            for &pi in &sched.edge_deps[id.index()] {
                self.counts.edge_probes += 1;
                if let Process::Seq { edges, .. } = &self.design.processes[pi] {
                    if edges
                        .iter()
                        .any(|&(e, s)| s == id && is_edge(e, old_bit, new_bit))
                        && !triggered.contains(&pi)
                    {
                        triggered.push(pi);
                    }
                }
            }
            changed.push(id);
            overlay.insert(id.index(), value);
        }
        if changed.is_empty() {
            self.legacy = Some(sched);
            return Ok(());
        }
        if triggered.is_empty() {
            // Edge-free batch: apply the stores and defer the settle.
            for (idx, value) in overlay {
                self.store[idx] = value;
            }
            sched.pending.extend(changed);
            self.legacy = Some(sched);
            return Ok(());
        }
        // Edge batch: flush deferred work pre-edge, then apply and
        // propagate exactly as the eager scheduler did.
        let pending = std::mem::take(&mut sched.pending);
        let mut r = if pending.is_empty() && sched.booted {
            Ok(())
        } else {
            self.settle_from(&mut sched, pending)
        };
        if r.is_ok() {
            for (idx, value) in overlay {
                self.store[idx] = value;
            }
            r = self
                .run_seq_cascade(&mut sched, triggered, &mut changed)
                .and_then(|()| self.settle_from(&mut sched, changed));
        }
        self.legacy = Some(sched);
        self.latch(r)
    }

    /// Run triggered sequential processes, commit their non-blocking
    /// writes, and follow any edges those commits produce (clock
    /// dividers), up to [`CASCADE_LIMIT`] rounds.
    fn run_seq_cascade(
        &mut self,
        sched: &mut LegacySched,
        mut triggered: Vec<usize>,
        changed: &mut Vec<SignalId>,
    ) -> Result<(), SimError> {
        if triggered.is_empty() {
            return Ok(());
        }
        let design = self.design.clone();
        let mut rounds = 0usize;
        // Dense dedup of the next round's trigger list and pre-commit
        // LSB snapshots — both pooled, since this runs per poke.
        sched.wl.in_triggered.resize(design.processes.len(), false);
        sched.wl.olds.resize(design.signals.len(), None);
        while !triggered.is_empty() {
            rounds += 1;
            if rounds > CASCADE_LIMIT {
                return Err(SimError::EdgeCascade { rounds });
            }
            let mut nba: Vec<PendingWrite> = Vec::new();
            for pi in triggered.drain(..) {
                // Blocking writes inside sequential bodies write
                // through (standard Verilog), tracked in `changed`.
                self.counts.seq_evals += 1;
                self.run_body(pi, &mut nba, changed, false);
            }
            // Commit NBAs, detecting new edges.
            let mut nba_changed: Vec<SignalId> = Vec::new();
            for w in &nba {
                let slot = &mut sched.wl.olds[w.signal.index()];
                if slot.is_none() {
                    *slot = Some(self.store[w.signal.index()].get(0).unwrap_or(LogicBit::X));
                }
            }
            for w in &nba {
                apply_write(
                    &mut self.store,
                    w.signal,
                    w.lsb,
                    w.width,
                    &w.value,
                    &mut nba_changed,
                );
            }
            for &sig in &nba_changed {
                let old_bit = sched.wl.olds[sig.index()].unwrap_or(LogicBit::X);
                let new_bit = self.store[sig.index()].get(0).unwrap_or(LogicBit::X);
                for &pi in &sched.edge_deps[sig.index()] {
                    self.counts.edge_probes += 1;
                    if let Process::Seq { edges, .. } = &design.processes[pi] {
                        if edges
                            .iter()
                            .any(|&(e, s)| s == sig && is_edge(e, old_bit, new_bit))
                            && !sched.wl.in_triggered[pi]
                        {
                            sched.wl.in_triggered[pi] = true;
                            triggered.push(pi);
                        }
                    }
                }
            }
            for &pi in &triggered {
                sched.wl.in_triggered[pi] = false;
            }
            for w in &nba {
                sched.wl.olds[w.signal.index()] = None;
            }
            changed.extend(nba_changed);
        }
        // Buffers are all-false/all-None again (maintained per round).
        Ok(())
    }

    /// Evaluate every combinational process (the legacy full settle).
    /// The full re-evaluation subsumes any deferred poke fanout, so the
    /// pending list clears here.
    fn settle_legacy(&mut self) -> Result<(), SimError> {
        let mut sched = self.take_legacy();
        sched.pending.clear();
        let r = self.run_all_combs_legacy(&mut sched);
        self.legacy = Some(sched);
        r
    }

    /// Run every comb process through the legacy worklist (the full
    /// settle), marking the time-zero events as serviced on success.
    fn run_all_combs_legacy(&mut self, sched: &mut LegacySched) -> Result<(), SimError> {
        let all: Vec<usize> = (0..self.design.processes.len())
            .filter(|&i| matches!(self.design.processes[i], Process::Comb { .. }))
            .collect();
        let r = self.run_comb_worklist(sched, &all);
        if r.is_ok() {
            sched.booted = true;
        }
        r
    }

    /// Settle starting from the processes sensitive to `changed` signals.
    fn settle_from(
        &mut self,
        sched: &mut LegacySched,
        changed: Vec<SignalId>,
    ) -> Result<(), SimError> {
        if !sched.booted {
            // The time-zero events never ran: every comb process is
            // still pending (the wheel's active region holds them all,
            // in design order, with the poked fanout a deduped subset)
            // — evaluate everything, exactly as the wheel drains.
            return self.run_all_combs_legacy(sched);
        }
        let mut init = std::mem::take(&mut sched.wl.init);
        init.clear();
        sched.wl.in_queue.resize(self.design.processes.len(), false);
        for sig in changed {
            for &p in &sched.comb_deps[sig.index()] {
                if !sched.wl.in_queue[p] {
                    sched.wl.in_queue[p] = true;
                    init.push(p);
                }
            }
        }
        for &p in &init {
            sched.wl.in_queue[p] = false;
        }
        let r = self.run_comb_worklist(sched, &init);
        sched.wl.init = init;
        r
    }

    fn run_comb_worklist(
        &mut self,
        sched: &mut LegacySched,
        init: &[usize],
    ) -> Result<(), SimError> {
        let design = self.design.clone();
        sched.wl.queue.clear();
        sched.wl.queue.extend(init.iter().copied());
        sched.wl.in_queue.resize(design.processes.len(), false);
        for &p in init {
            sched.wl.in_queue[p] = true;
        }
        let limit = SETTLE_LIMIT_FACTOR * design.processes.len().max(4) + 64;
        let mut iterations = 0usize;
        let mut result = Ok(());
        while let Some(pi) = sched.wl.queue.pop_front() {
            sched.wl.in_queue[pi] = false;
            iterations += 1;
            if iterations > limit {
                result = Err(SimError::CombinationalLoop { iterations });
                break;
            }
            let Process::Comb { writes, .. } = &design.processes[pi] else {
                continue;
            };
            self.counts.comb_evals += 1;
            // Snapshot the write set so a process that reads what it
            // writes (an accumulation chain) only reports *net* changes;
            // intermediate blocking-write glitches must not re-trigger it.
            sched.wl.before.clear();
            sched
                .wl
                .before
                .extend(writes.iter().map(|id| self.store[id.index()].clone()));
            let mut nba = std::mem::take(&mut sched.wl.nba);
            let mut scratch = std::mem::take(&mut sched.wl.scratch);
            nba.clear();
            scratch.clear();
            self.run_body(pi, &mut nba, &mut scratch, false);
            // NBAs inside comb always blocks commit immediately at the end
            // of the process (simplified @* semantics).
            for w in &nba {
                apply_write(
                    &mut self.store,
                    w.signal,
                    w.lsb,
                    w.width,
                    &w.value,
                    &mut scratch,
                );
            }
            sched.wl.nba = nba;
            sched.wl.scratch = scratch;
            // Sequential processes must not be edge-triggered by
            // combinational glitches in this model; only real pokes and
            // NBA commits produce edges. (Clock gating through logic is
            // outside the benchmark subset.)
            for (id, old) in writes.iter().zip(sched.wl.before.iter()) {
                if self.store[id.index()].case_eq(old) {
                    continue;
                }
                for &p in &sched.comb_deps[id.index()] {
                    if !sched.wl.in_queue[p] {
                        sched.wl.in_queue[p] = true;
                        sched.wl.queue.push_back(p);
                    }
                }
            }
        }
        // Restore the all-false/empty invariant before pooling the
        // buffers (the error path leaves entries queued).
        sched.wl.before.clear();
        for p in sched.wl.queue.drain(..) {
            sched.wl.in_queue[p] = false;
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elab::elaborate;

    fn sim_of(src: &str) -> Simulator {
        let file = mage_verilog::parse(src).unwrap();
        let top = file.modules.last().unwrap().name.clone();
        let design = Arc::new(elaborate(&file, &top).unwrap());
        let mut s = Simulator::new(design);
        s.settle().unwrap();
        s
    }

    fn v(w: usize, x: u64) -> LogicVec {
        LogicVec::from_u64(w, x)
    }

    #[test]
    fn and_gate_truth_table() {
        let mut s = sim_of("module top(input a, input b, output y); assign y = a & b; endmodule");
        for (a, b, y) in [(0, 0, 0), (0, 1, 0), (1, 0, 0), (1, 1, 1)] {
            s.poke("a", v(1, a)).unwrap();
            s.poke("b", v(1, b)).unwrap();
            assert_eq!(s.peek_by_name("y").unwrap().to_u64(), Some(y));
        }
    }

    #[test]
    fn outputs_x_before_drive() {
        let mut s = sim_of("module top(input a, output y); assign y = ~a; endmodule");
        assert!(s.peek_by_name("y").unwrap().is_all_x());
    }

    #[test]
    fn adder_with_carry_capture() {
        let mut s = sim_of(
            "module top(input [3:0] a, input [3:0] b, output [4:0] s);
               assign s = a + b;
             endmodule",
        );
        s.poke("a", v(4, 9)).unwrap();
        s.poke("b", v(4, 9)).unwrap();
        // Context width 5 captures the carry.
        assert_eq!(s.peek_by_name("s").unwrap().to_u64(), Some(18));
    }

    #[test]
    fn concat_lvalue_splits_sum() {
        let mut s = sim_of(
            "module top(input [3:0] a, input [3:0] b, output cout, output [3:0] sum);
               assign {cout, sum} = a + b;
             endmodule",
        );
        s.poke("a", v(4, 12)).unwrap();
        s.poke("b", v(4, 7)).unwrap();
        assert_eq!(s.peek_by_name("sum").unwrap().to_u64(), Some(3));
        assert_eq!(s.peek_by_name("cout").unwrap().to_u64(), Some(1));
    }

    #[test]
    fn comb_always_with_case() {
        let mut s = sim_of(
            "module top(input [1:0] sel, input [3:0] a, input [3:0] b, input [3:0] c, output reg [3:0] y);
               always @(*) case (sel)
                 2'b00: y = a;
                 2'b01: y = b;
                 default: y = c;
               endcase
             endmodule",
        );
        s.poke("a", v(4, 1)).unwrap();
        s.poke("b", v(4, 2)).unwrap();
        s.poke("c", v(4, 3)).unwrap();
        s.poke("sel", v(2, 0)).unwrap();
        assert_eq!(s.peek_by_name("y").unwrap().to_u64(), Some(1));
        s.poke("sel", v(2, 1)).unwrap();
        assert_eq!(s.peek_by_name("y").unwrap().to_u64(), Some(2));
        s.poke("sel", v(2, 3)).unwrap();
        assert_eq!(s.peek_by_name("y").unwrap().to_u64(), Some(3));
    }

    #[test]
    fn dff_samples_on_posedge_only() {
        let mut s = sim_of(
            "module top(input clk, input d, output reg q);
               always @(posedge clk) q <= d;
             endmodule",
        );
        s.poke("clk", v(1, 0)).unwrap();
        s.poke("d", v(1, 1)).unwrap();
        assert!(s.peek_by_name("q").unwrap().is_all_x(), "q X before clock");
        s.poke("clk", v(1, 1)).unwrap(); // posedge
        assert_eq!(s.peek_by_name("q").unwrap().to_u64(), Some(1));
        s.poke("d", v(1, 0)).unwrap(); // no edge: q holds
        assert_eq!(s.peek_by_name("q").unwrap().to_u64(), Some(1));
        s.poke("clk", v(1, 0)).unwrap(); // negedge: q holds
        assert_eq!(s.peek_by_name("q").unwrap().to_u64(), Some(1));
        s.poke("clk", v(1, 1)).unwrap(); // posedge samples new d
        assert_eq!(s.peek_by_name("q").unwrap().to_u64(), Some(0));
    }

    #[test]
    fn nba_swap_is_simultaneous() {
        let mut s = sim_of(
            "module top(input clk, input [7:0] init_a, output reg [7:0] a, output reg [7:0] b);
               always @(posedge clk) begin
                 a <= b;
                 b <= a;
               end
             endmodule",
        );
        // Force initial values through input-independent paths: poke via
        // clocked capture is impossible here, so initialize by hand.
        let ida = s.design().signal("a").unwrap();
        let idb = s.design().signal("b").unwrap();
        s.store[ida.index()] = v(8, 1);
        s.store[idb.index()] = v(8, 2);
        s.poke("clk", v(1, 0)).unwrap();
        s.poke("clk", v(1, 1)).unwrap();
        assert_eq!(s.peek(ida).to_u64(), Some(2), "a takes old b");
        assert_eq!(s.peek(idb).to_u64(), Some(1), "b takes old a");
    }

    #[test]
    fn async_reset_dominates() {
        let mut s = sim_of(
            "module top(input clk, input rst, input d, output reg q);
               always @(posedge clk or posedge rst)
                 if (rst) q <= 1'b0; else q <= d;
             endmodule",
        );
        s.poke("clk", v(1, 0)).unwrap();
        s.poke("d", v(1, 1)).unwrap();
        s.poke("rst", v(1, 1)).unwrap(); // async reset without clock
        assert_eq!(s.peek_by_name("q").unwrap().to_u64(), Some(0));
        s.poke("rst", v(1, 0)).unwrap();
        s.poke("clk", v(1, 1)).unwrap();
        assert_eq!(s.peek_by_name("q").unwrap().to_u64(), Some(1));
    }

    #[test]
    fn counter_counts() {
        let mut s = sim_of(
            "module top(input clk, input rst, output reg [3:0] q);
               always @(posedge clk) begin
                 if (rst) q <= 4'd0;
                 else q <= q + 4'd1;
               end
             endmodule",
        );
        s.poke("clk", v(1, 0)).unwrap();
        s.poke("rst", v(1, 1)).unwrap();
        s.poke("clk", v(1, 1)).unwrap();
        s.poke("clk", v(1, 0)).unwrap();
        s.poke("rst", v(1, 0)).unwrap();
        for expect in 1..=5u64 {
            s.poke("clk", v(1, 1)).unwrap();
            s.poke("clk", v(1, 0)).unwrap();
            assert_eq!(s.peek_by_name("q").unwrap().to_u64(), Some(expect % 16));
        }
    }

    #[test]
    fn hierarchy_flattens_and_works() {
        let mut s = sim_of(
            "module fa(input a, input b, input cin, output s, output cout);
               assign s = a ^ b ^ cin;
               assign cout = (a & b) | (cin & (a ^ b));
             endmodule
             module top(input [1:0] x, input [1:0] y, output [2:0] sum);
               wire c0;
               fa f0 (.a(x[0]), .b(y[0]), .cin(1'b0), .s(sum[0]), .cout(c0));
               fa f1 (.a(x[1]), .b(y[1]), .cin(c0), .s(sum[1]), .cout(sum[2]));
             endmodule",
        );
        for x in 0..4u64 {
            for y in 0..4u64 {
                s.poke("x", v(2, x)).unwrap();
                s.poke("y", v(2, y)).unwrap();
                assert_eq!(
                    s.peek_by_name("sum").unwrap().to_u64(),
                    Some(x + y),
                    "{x}+{y}"
                );
            }
        }
    }

    #[test]
    fn parameter_override_changes_width() {
        let mut s = sim_of(
            "module w #(parameter N = 4)(input [N-1:0] a, output [N-1:0] y);
               assign y = ~a;
             endmodule
             module top(input [7:0] a, output [7:0] y);
               w #(.N(8)) u (.a(a), .y(y));
             endmodule",
        );
        s.poke("a", v(8, 0x0F)).unwrap();
        assert_eq!(s.peek_by_name("y").unwrap().to_u64(), Some(0xF0));
    }

    #[test]
    fn for_loop_reverses_bits() {
        let mut s = sim_of(
            "module top(input [7:0] a, output reg [7:0] y);
               integer i;
               always @(*) for (i = 0; i < 8; i = i + 1) y[i] = a[7 - i];
             endmodule",
        );
        s.poke("a", v(8, 0b1101_0010)).unwrap();
        assert_eq!(s.peek_by_name("y").unwrap().to_u64(), Some(0b0100_1011));
    }

    #[test]
    fn combinational_loop_detected() {
        let file = mage_verilog::parse(
            "module top(input a, output y);
               assign y = a ? ~y : 1'b0; // rings when a = 1
             endmodule",
        )
        .unwrap();
        let design = Arc::new(elaborate(&file, "top").unwrap());
        let mut s = Simulator::new(design);
        s.settle().unwrap(); // all-X fixpoint settles fine
        s.poke("a", v(1, 0)).unwrap(); // y settles to a defined 0
        assert_eq!(s.peek_by_name("y").unwrap().to_u64(), Some(0));
        // Now y = ~y oscillates between defined values: must error, not
        // hang. The poke itself defers (`a` fires no edge), so the loop
        // surfaces at the flush.
        let r = s.poke("a", v(1, 1)).and_then(|()| s.settle());
        assert!(matches!(r, Err(SimError::CombinationalLoop { .. })));
        // A peek under the latched fault freezes instead of churning…
        let _ = s.peek_by_name("y");
        // …a standing fault re-reports on the next settle…
        assert!(matches!(
            s.settle(),
            Err(SimError::CombinationalLoop { .. })
        ));
        // …and driving the loop-breaking input recovers.
        s.poke("a", v(1, 0)).unwrap();
        s.settle().unwrap();
        assert_eq!(s.peek_by_name("y").unwrap().to_u64(), Some(0));
    }

    #[test]
    fn clock_divider_cascade() {
        let mut s = sim_of(
            "module top(input clk, input rst, output reg c0, output reg c1);
               always @(posedge clk or posedge rst)
                 if (rst) c0 <= 1'b0; else c0 <= ~c0;
               always @(posedge c0 or posedge rst)
                 if (rst) c1 <= 1'b0; else c1 <= ~c1;
             endmodule",
        );
        s.poke("clk", v(1, 0)).unwrap();
        s.poke("rst", v(1, 1)).unwrap();
        s.poke("rst", v(1, 0)).unwrap();
        let mut c1_seq = Vec::new();
        for _ in 0..8 {
            s.poke("clk", v(1, 1)).unwrap();
            s.poke("clk", v(1, 0)).unwrap();
            c1_seq.push(s.peek_by_name("c1").unwrap().to_u64().unwrap());
        }
        // c0 toggles each cycle: 1,0,1,0…; c1 toggles on c0 rising.
        assert_eq!(c1_seq, vec![1, 1, 0, 0, 1, 1, 0, 0]);
    }

    #[test]
    fn part_select_lvalue_and_rvalue() {
        let mut s = sim_of(
            "module top(input [7:0] a, output reg [7:0] y);
               always @(*) begin
                 y = 8'h00;
                 y[3:0] = a[7:4];
               end
             endmodule",
        );
        s.poke("a", v(8, 0xA5)).unwrap();
        assert_eq!(s.peek_by_name("y").unwrap().to_u64(), Some(0x0A));
    }

    #[test]
    fn dynamic_bit_select_write() {
        let mut s = sim_of(
            "module top(input [2:0] idx, output reg [7:0] y);
               always @(*) begin
                 y = 8'h00;
                 y[idx] = 1'b1;
               end
             endmodule",
        );
        for i in 0..8u64 {
            s.poke("idx", v(3, i)).unwrap();
            assert_eq!(s.peek_by_name("y").unwrap().to_u64(), Some(1 << i));
        }
    }

    #[test]
    fn x_propagates_through_arith_not_through_masks() {
        let mut s = sim_of(
            "module top(input [3:0] a, output [3:0] add_y, output [3:0] and_y);
               assign add_y = a + 4'd1;
               assign and_y = a & 4'h0;
             endmodule",
        );
        // `a` is still X.
        assert!(s.peek_by_name("add_y").unwrap().is_all_x());
        assert!(s.peek_by_name("and_y").unwrap().is_all_zero());
        s.poke("a", v(4, 3)).unwrap();
        assert_eq!(s.peek_by_name("add_y").unwrap().to_u64(), Some(4));
    }

    #[test]
    fn shift_ops() {
        let mut s = sim_of(
            "module top(input [7:0] a, input [2:0] n, output [7:0] l, output [7:0] r);
               assign l = a << n;
               assign r = a >> n;
             endmodule",
        );
        s.poke("a", v(8, 0b0001_1000)).unwrap();
        s.poke("n", v(3, 2)).unwrap();
        assert_eq!(s.peek_by_name("l").unwrap().to_u64(), Some(0b0110_0000));
        assert_eq!(s.peek_by_name("r").unwrap().to_u64(), Some(0b0000_0110));
    }

    #[test]
    fn casez_wildcard_priority() {
        let mut s = sim_of(
            "module top(input [3:0] r, output reg [1:0] y);
               always @(*) casez (r)
                 4'b1???: y = 2'd3;
                 4'b01??: y = 2'd2;
                 4'b001?: y = 2'd1;
                 default: y = 2'd0;
               endcase
             endmodule",
        );
        s.poke("r", v(4, 0b1010)).unwrap();
        assert_eq!(s.peek_by_name("y").unwrap().to_u64(), Some(3));
        s.poke("r", v(4, 0b0110)).unwrap();
        assert_eq!(s.peek_by_name("y").unwrap().to_u64(), Some(2));
        s.poke("r", v(4, 0b0010)).unwrap();
        assert_eq!(s.peek_by_name("y").unwrap().to_u64(), Some(1));
        s.poke("r", v(4, 0b0001)).unwrap();
        assert_eq!(s.peek_by_name("y").unwrap().to_u64(), Some(0));
    }

    #[test]
    fn poke_rejects_non_inputs() {
        let mut s = sim_of("module top(input a, output y); assign y = a; endmodule");
        assert!(matches!(
            s.poke("y", v(1, 0)),
            Err(SimError::UnknownInput(_))
        ));
        assert!(matches!(
            s.poke("zz", v(1, 0)),
            Err(SimError::UnknownInput(_))
        ));
    }

    #[test]
    fn settled_wheel_resettles_without_work() {
        // Wheel-specific invariant: pin the executor explicitly so the
        // test still checks the wheel when CI exports
        // MAGE_SIM_EXEC=legacy to run everything else on the oracle.
        let mut s = {
            let file =
                mage_verilog::parse("module top(input a, output y); assign y = ~a; endmodule")
                    .unwrap();
            let design = Arc::new(elaborate(&file, "top").unwrap());
            let mut s = Simulator::with_mode(design, ExecMode::Compiled);
            s.settle().unwrap();
            s
        };
        s.poke("a", v(1, 1)).unwrap();
        s.settle().unwrap(); // flush the deferred poke fanout
        s.reset_eval_counts();
        for _ in 0..10 {
            s.settle().unwrap();
        }
        assert_eq!(
            s.eval_counts().total_evals(),
            0,
            "a settled wheel has no pending events"
        );
        // The oracle re-evaluates per call by design.
        let mut l = {
            let file =
                mage_verilog::parse("module top(input a, output y); assign y = ~a; endmodule")
                    .unwrap();
            let design = Arc::new(elaborate(&file, "top").unwrap());
            Simulator::with_mode(design, ExecMode::Legacy)
        };
        l.settle().unwrap();
        l.reset_eval_counts();
        l.settle().unwrap();
        assert!(l.eval_counts().comb_evals > 0);
    }

    #[test]
    fn lazy_pokes_settle_once_at_observation() {
        // Per-drive settles of a poke-heavy step collapse into one flush
        // at the observation point — on both schedulers.
        let src = "module top(input [7:0] a, input [7:0] b, input [7:0] c, output [7:0] y);
                     assign y = a + b + c;
                   endmodule";
        for mode in [ExecMode::Compiled, ExecMode::Legacy] {
            let file = mage_verilog::parse(src).unwrap();
            let design = Arc::new(elaborate(&file, "top").unwrap());
            let mut s = Simulator::with_mode(design, mode);
            s.settle().unwrap();
            s.reset_eval_counts();
            s.poke("a", v(8, 1)).unwrap();
            s.poke("b", v(8, 2)).unwrap();
            s.poke("c", v(8, 3)).unwrap();
            assert_eq!(
                s.eval_counts().comb_evals,
                0,
                "edge-free pokes defer ({mode:?})"
            );
            assert_eq!(s.peek_by_name("y").unwrap().to_u64(), Some(6));
            assert_eq!(
                s.eval_counts().comb_evals,
                1,
                "one settle serves three drives ({mode:?})"
            );
        }
    }

    #[test]
    fn untouched_clock_domain_stays_idle() {
        let mut s = sim_of(
            "module top(input clka, input clkb, input rst, output reg [3:0] qa, output reg [3:0] qb);
               always @(posedge clka) if (rst) qa <= 4'd0; else qa <= qa + 4'd1;
               always @(posedge clkb) if (rst) qb <= 4'd0; else qb <= qb + 4'd1;
             endmodule",
        );
        s.poke("rst", v(1, 1)).unwrap();
        s.poke("clka", v(1, 0)).unwrap();
        s.poke("clkb", v(1, 0)).unwrap();
        s.poke("clka", v(1, 1)).unwrap();
        s.poke("clkb", v(1, 1)).unwrap();
        s.poke("clka", v(1, 0)).unwrap();
        s.poke("clkb", v(1, 0)).unwrap();
        s.poke("rst", v(1, 0)).unwrap();
        s.reset_eval_counts();
        // Toggle only domain A: domain B's process never runs.
        for _ in 0..4 {
            s.poke("clka", v(1, 1)).unwrap();
            s.poke("clka", v(1, 0)).unwrap();
        }
        let c = s.eval_counts();
        assert_eq!(c.seq_evals, 4, "only domain A's flop runs (posedges)");
        assert_eq!(s.peek_by_name("qa").unwrap().to_u64(), Some(4));
        assert_eq!(s.peek_by_name("qb").unwrap().to_u64(), Some(0));
    }
}
