//! Bytecode compilation: [`CStmt`]/[`CExpr`] trees → flat instruction
//! streams.
//!
//! The tree-walking interpreter in [`crate::eval`] recomputes every
//! context-determined width (`e.width(design)`) at every node on every
//! execution. This module performs that width resolution **once**, at
//! compile time, lowering each process body into a linear [`Instr`]
//! stream over a dense register file of pre-sized slots:
//!
//! * every expression node is assigned a fresh slot whose width is the
//!   node's fully-resolved context width, so the interpreter never asks
//!   for a width at runtime and can use the in-place `LogicVec`
//!   operators (`set_add`, `set_and`, …) that write into the pre-sized
//!   slot without allocating;
//! * constants are resized into a per-process constant pool at compile
//!   time (the tree-walker re-resizes them on every execution);
//! * `if`/`case` lower to conditional jumps; `case` label widths (the
//!   max over selector and every label) are folded once instead of per
//!   execution.
//!
//! # Width-resolution rules
//!
//! The lowering reproduces `eval`'s simplified context-determined
//! semantics exactly — the differential test in
//! `tests/compiled_vs_interp.rs` holds the two executions bit-identical
//! over the whole problem corpus:
//!
//! * arithmetic/bitwise nodes evaluate both operands at
//!   `w = max(ctx, lhs_w, rhs_w)` and truncate the result to `ctx`;
//! * shifts evaluate the value at `max(ctx, lhs_w)` and the amount at
//!   its self-determined width;
//! * comparisons/logical/reduction nodes are self-determined and
//!   produce a 1-bit result zero-extended to `ctx`;
//! * concatenation/replication/selects are self-determined, then
//!   adjusted to `ctx`.
//!
//! One deliberate deviation: the tree-walker evaluates only the taken
//! branch of a ternary when the condition is defined; the bytecode
//! evaluates both branches and then selects ([`Instr::Select`]).
//! Expressions are side-effect-free, so results are identical — the
//! compiled form trades a superset of (cheap, straight-line) work for
//! never duplicating branch code.

use crate::design::{CExpr, CLValue, CStmt, Design, Process, SignalId};
use crate::plan::{build_cascades, build_plan, CascadePlan, EvalPlan};
use mage_logic::LogicVec;
use mage_verilog::ast::{BinaryOp, CaseKind, UnaryOp};
use std::collections::HashMap;
use std::fmt;

/// Register-file slot index.
pub type Slot = u16;

/// Reduction flavor of [`Instr::Reduce`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceOp {
    /// `&a`
    And,
    /// `|a`
    Or,
    /// `^a`
    Xor,
    /// `~&a`
    Nand,
    /// `~|a`
    Nor,
    /// `~^a`
    Xnor,
    /// `!a` (logical not of the whole vector's truth value)
    LogicNot,
}

/// Comparison flavor of [`Instr::Cmp`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `==`
    Eq,
    /// `!=`
    Neq,
    /// `===`
    CaseEq,
    /// `!==`
    CaseNeq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// One bytecode instruction.
///
/// `dst`/`a`/`b`/… are register-file slots; the slot's width (fixed at
/// compile time, see [`CompiledProcess::slot_widths`]) is the
/// instruction's resolved result width. Stores address the simulation
/// value store by [`SignalId`].
#[derive(Debug, Clone, PartialEq)]
pub enum Instr {
    /// `dst = consts[k]` (already sized to `dst`'s width).
    Const {
        /// Destination slot.
        dst: Slot,
        /// Constant-pool index.
        k: u16,
    },
    /// `dst = store[sig]` resized to `dst`'s width.
    Load {
        /// Destination slot.
        dst: Slot,
        /// Source signal.
        sig: SignalId,
    },
    /// `dst = src` resized to `dst`'s width.
    Copy {
        /// Destination slot.
        dst: Slot,
        /// Source slot.
        src: Slot,
    },
    /// `dst = src[lsb +: dst.width]` (register slice, in-bounds by
    /// construction).
    Slice {
        /// Destination slot.
        dst: Slot,
        /// Source slot.
        src: Slot,
        /// LSB offset into `src`.
        lsb: usize,
    },
    /// `dst = ~a` (bitwise).
    Not {
        /// Destination slot.
        dst: Slot,
        /// Operand slot.
        a: Slot,
    },
    /// `dst = a <op> b` for width-preserving binary operators. Operands
    /// and destination share one width.
    Bin {
        /// Operator (arithmetic/bitwise subset only).
        op: BinOp,
        /// Destination slot.
        dst: Slot,
        /// Left operand slot.
        a: Slot,
        /// Right operand slot.
        b: Slot,
    },
    /// `dst = a << amt` / `dst = a >> amt` (amount self-determined).
    Shift {
        /// `true` = left shift.
        left: bool,
        /// Destination slot (same width as `a`).
        dst: Slot,
        /// Value slot.
        a: Slot,
        /// Amount slot.
        amt: Slot,
    },
    /// `dst = a && b` / `dst = a || b` on vector truth values.
    LogicBin {
        /// `true` = AND, `false` = OR.
        and: bool,
        /// Destination slot (1-bit result zero-extended).
        dst: Slot,
        /// Left operand slot.
        a: Slot,
        /// Right operand slot.
        b: Slot,
    },
    /// Reduction (or logical-not) of `a` into the LSB of `dst`.
    Reduce {
        /// Reduction flavor.
        op: ReduceOp,
        /// Destination slot.
        dst: Slot,
        /// Operand slot.
        a: Slot,
    },
    /// Comparison of `a` and `b` into the LSB of `dst`.
    Cmp {
        /// Comparison flavor.
        op: CmpOp,
        /// Destination slot.
        dst: Slot,
        /// Left operand slot.
        a: Slot,
        /// Right operand slot.
        b: Slot,
    },
    /// Four-state ternary: `dst = c ? t : f` (both branches already
    /// evaluated; an unknown select merges bitwise).
    Select {
        /// Destination slot.
        dst: Slot,
        /// Condition slot.
        c: Slot,
        /// Then-branch slot.
        t: Slot,
        /// Else-branch slot.
        f: Slot,
    },
    /// Concatenation: copy each `(slot, lsb_offset)` part into `dst`.
    /// Parts tile `dst` exactly.
    Concat {
        /// Destination slot.
        dst: Slot,
        /// `(part slot, LSB offset in dst)` pairs.
        parts: Vec<(Slot, usize)>,
    },
    /// Replication: `dst = {n{src}}` with `n` copies at stride
    /// `src.width`.
    Repl {
        /// Destination slot.
        dst: Slot,
        /// Source slot.
        src: Slot,
        /// Copy count.
        n: usize,
    },
    /// Dynamic bit select from the store: `dst = store[sig][idx]`,
    /// `X` when the index is unknown or out of range.
    BitSelSig {
        /// Destination slot.
        dst: Slot,
        /// Source signal.
        sig: SignalId,
        /// Index slot.
        idx: Slot,
        /// Declared LSB rebase of the signal.
        lsb_index: i64,
    },
    /// Constant part select from the store:
    /// `dst = store[sig][lsb +: dst.width]`, out-of-range bits `X`.
    ReadSlice {
        /// Destination slot.
        dst: Slot,
        /// Source signal.
        sig: SignalId,
        /// Physical LSB offset.
        lsb: i64,
    },
    /// Unconditional jump.
    Jump {
        /// Target instruction index.
        target: usize,
    },
    /// Jump when `cond`'s truth value is not definitely true.
    JumpIfNotTrue {
        /// Condition slot.
        cond: Slot,
        /// Target instruction index.
        target: usize,
    },
    /// Jump when `sel` matches `label` under `kind` (case dispatch).
    JumpIfMatch {
        /// Selector slot.
        sel: Slot,
        /// Label slot (same width as `sel`).
        label: Slot,
        /// `case` (exact four-state) vs `casez` (wildcards).
        kind: CaseKind,
        /// Target instruction index.
        target: usize,
    },
    /// Write `src` to `width` bits of `sig` at static offset `lsb`.
    Store {
        /// Target signal.
        sig: SignalId,
        /// Value slot (already sized to `width`).
        src: Slot,
        /// Physical LSB offset.
        lsb: i64,
        /// Slice width.
        width: usize,
        /// `<=` vs `=`.
        nonblocking: bool,
    },
    /// Write the 1-bit `src` to `sig` at the runtime index in `idx`;
    /// unknown/out-of-range indices write nothing.
    StoreBitDyn {
        /// Target signal.
        sig: SignalId,
        /// Index slot.
        idx: Slot,
        /// Declared LSB rebase of the signal.
        lsb_index: i64,
        /// 1-bit value slot.
        src: Slot,
        /// `<=` vs `=`.
        nonblocking: bool,
    },
}

/// Width-preserving binary operators of [`Instr::Bin`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
    /// `&`
    And,
    /// `|`
    Or,
    /// `^`
    Xor,
    /// `~^`
    Xnor,
}

/// One process body lowered to bytecode.
#[derive(Debug, Clone)]
pub struct CompiledProcess {
    /// The instruction stream.
    pub code: Vec<Instr>,
    /// Width of every register-file slot.
    pub slot_widths: Vec<usize>,
    /// Constant pool, each entry pre-sized to its use width.
    pub consts: Vec<LogicVec>,
    /// Signals the instruction stream can read (every `Load`,
    /// `BitSelSig` and `ReadSlice` source, deduped, in first-use order).
    /// Derived from the executable artifact rather than the AST, this is
    /// the precise sensitivity set the event wheel fans out on.
    pub reads: Vec<SignalId>,
    /// Signals the instruction stream can write (every `Store` and
    /// `StoreBitDyn` target, deduped, in first-use order). The wheel
    /// snapshots exactly these before a combinational run to detect
    /// *net* output changes.
    pub writes: Vec<SignalId>,
    /// `true` when every slot and every touched signal fits in 64 bits:
    /// the interpreter then runs its narrow path over raw
    /// `(aval, bval)` word pairs instead of `LogicVec`s.
    pub narrow: bool,
    /// `true` when the (narrow) stream is **two-state eligible**: given
    /// fully defined inputs, the interpreter may execute it over the
    /// aval plane alone, skipping every bval-plane masking/merging
    /// formula (the Verilator execution model). Decided once at compile
    /// time by [`two_state_eligible`]; at dispatch the `reads` set is
    /// the definedness summary the scheduler scans (all inputs defined
    /// → two-state, any `X`/`Z` → the four-state path), and the
    /// X-producing operations left in the stream (division by zero,
    /// out-of-range reads) bail out to four-state at runtime.
    pub two_state: bool,
    /// `true` when a dispatched two-state run of this (`two_state`)
    /// stream can **never** bail out: no division/modulo, no dynamic
    /// bit selects, every constant part select statically in bounds,
    /// and no undefined constants anywhere (so the process cannot
    /// store an `X` for its own loads to re-read). The interpreter
    /// then skips the pre-run write-set snapshot — the rewind can
    /// never be needed — which matters because the snapshot is per
    /// evaluation and bailouts are rare.
    pub hazard_free: bool,
    /// Per-slot valid-bit masks (`narrow` path only).
    pub slot_masks: Vec<u64>,
    /// Constant pool as plane-word pairs (`narrow` path only).
    pub narrow_consts: Vec<(u64, u64)>,
    /// The fused straight-line evaluation plan (`hazard_free` streams
    /// only, else `None`). Built unconditionally at compile time —
    /// dispatch, not construction, is gated by
    /// [`crate::plan::fuse_enabled`], so fused and unfused runs execute
    /// structurally identical designs and delta-reused units carry
    /// their plans verbatim.
    pub plan: Option<EvalPlan>,
}

impl CompiledProcess {
    /// A fresh register file for this process: one pre-sized vector per
    /// slot (contents are don't-care — every use is dominated by a
    /// definition).
    pub fn make_regs(&self) -> Vec<LogicVec> {
        if self.narrow {
            return Vec::new();
        }
        self.slot_widths.iter().map(|&w| LogicVec::new(w)).collect()
    }

    /// A fresh narrow register file (empty unless `narrow`).
    pub fn make_narrow_regs(&self) -> Vec<(u64, u64)> {
        if self.narrow {
            vec![(0, 0); self.slot_widths.len()]
        } else {
            Vec::new()
        }
    }

    /// `true` when every signal in `reads` is fully defined in `store`
    /// — the dispatch gate of the two-state path. The read set is
    /// derived from the executable artifact (every `Load`, `BitSelSig`
    /// and `ReadSlice` source), so it can never under-approximate the
    /// definedness a two-state run depends on at entry; values this
    /// process *writes* mid-run are re-checked per read by the
    /// interpreter.
    #[inline]
    pub fn reads_fully_defined(&self, store: &[LogicVec]) -> bool {
        self.reads
            .iter()
            .all(|sig| store[sig.index()].is_fully_defined())
    }
}

/// Every process of a design, compiled.
#[derive(Clone)]
pub struct CompiledDesign {
    /// Per-process bytecode, indexed like `design.processes`.
    pub procs: Vec<CompiledProcess>,
    /// Combinational fanout: `comb_readers[s]` lists the *combinational*
    /// process indices whose bytecode reads signal `s` (ascending, from
    /// the per-process [`CompiledProcess::reads`] sets). A signal-change
    /// event enqueues exactly these processes on the wheel's active
    /// region.
    pub comb_readers: Vec<Vec<u32>>,
    /// Fused combinational cascades ([`crate::plan::build_cascades`]):
    /// one per eligible hazard-free comb root, in topological order.
    pub cascades: Vec<CascadePlan>,
    /// Per-process cascade root index into `cascades` (`None` for
    /// processes without a fused cascade). The wheel's active region
    /// runs `cascades[cascade_of[p]]` straight through instead of
    /// evaluating `p` and enqueueing its fanout.
    pub cascade_of: Vec<Option<u32>>,
    /// How many cascade plans a delta rebuild dropped: cascades whose
    /// closure contains at least one rebuilt (non-reused) unit. A
    /// rebuilt unit invalidates every plan whose cascade contains it —
    /// cascades are rebuilt wholesale from the fresh unit set, so the
    /// resulting plans are exactly a from-scratch build's. Always 0 for
    /// scratch compiles.
    pub invalidated_plans: u32,
}

impl CompiledDesign {
    /// Combinational processes sensitive to `sig`.
    #[inline]
    pub fn comb_readers(&self, sig: SignalId) -> &[u32] {
        &self.comb_readers[sig.index()]
    }
}

// Manual impl excluding `invalidated_plans`: the corpus suites assert a
// delta build *structurally* equal to its scratch twin by comparing
// `Debug` output, and the invalidation counter is build provenance, not
// structure (a delta rebuild legitimately reports > 0 where the scratch
// build reports 0 — the artifacts are still identical).
impl fmt::Debug for CompiledDesign {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CompiledDesign")
            .field("procs", &self.procs)
            .field("comb_readers", &self.comb_readers)
            .field("cascades", &self.cascades)
            .field("cascade_of", &self.cascade_of)
            .finish()
    }
}

/// Compile every process body of `design`.
pub fn compile_design(design: &Design) -> CompiledDesign {
    assemble_design(design, Vec::new())
}

/// Assemble a [`CompiledDesign`] from per-process units: `prebuilt[i]`,
/// when present, is installed verbatim for process `i` (delta elaboration
/// reuses the parent's bytecode there); every other process is lowered
/// from scratch. The `comb_readers` fanout index is always rebuilt —
/// it is a cheap O(total reads) pass, and rebuilding it wholesale keeps
/// it exactly what a from-scratch compile would produce.
pub fn assemble_design(
    design: &Design,
    mut prebuilt: Vec<Option<CompiledProcess>>,
) -> CompiledDesign {
    // Which processes are NOT reused (delta builds only; empty for
    // scratch compiles) — the cascade-invalidation witness below.
    let fresh: Vec<bool> = prebuilt.iter().map(Option::is_none).collect();
    let procs: Vec<CompiledProcess> = design
        .processes
        .iter()
        .enumerate()
        .map(|(i, p)| {
            if let Some(slot) = prebuilt.get_mut(i) {
                if let Some(c) = slot.take() {
                    return c;
                }
            }
            let body = match p {
                Process::Comb { body, .. } => body,
                Process::Seq { body, .. } => body,
            };
            compile_process(design, body)
        })
        .collect();
    let mut comb_readers: Vec<Vec<u32>> = vec![Vec::new(); design.signals.len()];
    for (i, (proc_, p)) in procs.iter().zip(&design.processes).enumerate() {
        if matches!(p, Process::Comb { .. }) {
            for &sig in &proc_.reads {
                comb_readers[sig.index()].push(i as u32);
            }
        }
    }
    // Cascade plans are always rebuilt wholesale from the assembled
    // process set (like `comb_readers`), so a delta build's cascades are
    // exactly a scratch build's. The invalidation counter records how
    // many of them a delta rebuild *dropped*: every cascade whose
    // closure contains a fresh (rebuilt) unit is a plan the parent's
    // compile had that this rebuild could not carry over.
    let (cascades, cascade_of) = build_cascades(design, &procs, &comb_readers);
    let invalidated_plans = cascades
        .iter()
        .filter(|c| {
            c.procs
                .iter()
                .any(|&p| fresh.get(p as usize).copied().unwrap_or(false))
        })
        .count() as u32;
    CompiledDesign {
        procs,
        comb_readers,
        cascades,
        cascade_of,
        invalidated_plans,
    }
}

/// Compile one process body.
pub fn compile_process(design: &Design, body: &CStmt) -> CompiledProcess {
    let mut c = Compiler {
        design,
        code: Vec::new(),
        slot_widths: Vec::new(),
        consts: Vec::new(),
        const_index: HashMap::new(),
    };
    c.stmt(body);
    let sig_width = |sig: &SignalId| design.width(*sig);
    let narrow = c.slot_widths.iter().all(|&w| w <= 64)
        && c.code.iter().all(|i| match i {
            Instr::Load { sig, .. }
            | Instr::BitSelSig { sig, .. }
            | Instr::ReadSlice { sig, .. }
            | Instr::Store { sig, .. }
            | Instr::StoreBitDyn { sig, .. } => sig_width(sig) <= 64,
            _ => true,
        });
    let slot_masks = if narrow {
        c.slot_widths
            .iter()
            .map(|&w| if w == 64 { u64::MAX } else { (1u64 << w) - 1 })
            .collect()
    } else {
        Vec::new()
    };
    let narrow_consts = if narrow {
        c.consts.iter().map(|v| v.planes_u64()).collect()
    } else {
        Vec::new()
    };
    let (reads, writes) = touch_sets(&c.code, design.signals.len());
    let two_state = narrow && two_state_eligible(&c.code, &c.consts, c.slot_widths.len());
    let hazard_free = two_state
        && c.consts.iter().all(|k| k.is_fully_defined())
        && c.code.iter().all(|i| match i {
            Instr::Bin {
                op: BinOp::Div | BinOp::Mod,
                ..
            }
            | Instr::BitSelSig { .. } => false,
            // A statically in-bounds part select of an entry-defined
            // signal cannot read X (and with no undefined constants the
            // process cannot make its own reads undefined mid-run).
            Instr::ReadSlice { dst, sig, lsb } => {
                *lsb >= 0 && (*lsb as usize) + c.slot_widths[*dst as usize] <= design.width(*sig)
            }
            _ => true,
        });
    let mut cp = CompiledProcess {
        code: c.code,
        slot_widths: c.slot_widths,
        consts: c.consts,
        reads,
        writes,
        narrow,
        two_state,
        hazard_free,
        slot_masks,
        narrow_consts,
        plan: None,
    };
    cp.plan = build_plan(design, &cp);
    cp
}

/// Decide two-state eligibility of a narrow instruction stream.
///
/// The two-state interpreter evaluates the pure-value instructions
/// (arithmetic, bitwise, comparisons, reductions, shifts, logical
/// connectives) over the aval plane only, which is exact **iff** their
/// operands are fully defined. Definedness is enforced three ways:
///
/// * at dispatch, the scheduler scans the process read set
///   ([`CompiledProcess::reads_fully_defined`]) and every in-run store
///   read re-checks its bval plane, bailing out when an `X`/`Z`
///   appears;
/// * the X-*producing* operations that remain reachable from defined
///   inputs — division/modulo by zero and out-of-range reads — bail
///   out at runtime before any wrong value is computed;
/// * undefined **constants** (casez wildcard labels, explicit
///   `4'bxxxx` literals) are the one X source decidable at compile
///   time, and that is what this analysis tracks: slots that can carry
///   an undefined constant (directly or through the plane-exact
///   propagators `Copy`/`Slice`/`Select`/`Concat`/`Repl`) may only be
///   consumed by instructions the two-state interpreter executes
///   plane-exactly — case dispatch, case equality, jumps, selects,
///   copies/concats and stores. Any tainted flow into a pure-aval
///   instruction disqualifies the whole process, which then always
///   runs four-state.
///
/// Slots are SSA (one writing instruction each), so a single forward
/// pass computes the taint fixpoint regardless of jumps.
fn two_state_eligible(code: &[Instr], consts: &[LogicVec], nslots: usize) -> bool {
    let undef_const: Vec<bool> = consts.iter().map(|c| !c.is_fully_defined()).collect();
    let mut tainted = vec![false; nslots];
    let t = |tainted: &[bool], s: &Slot| tainted[*s as usize];
    for i in code {
        match i {
            Instr::Const { dst, k } => {
                if undef_const[*k as usize] {
                    tainted[*dst as usize] = true;
                }
            }
            // Plane-exact propagators: taint flows through.
            Instr::Copy { dst, src } | Instr::Slice { dst, src, .. } => {
                tainted[*dst as usize] |= t(&tainted, src);
            }
            Instr::Select { dst, c, t: ts, f } => {
                tainted[*dst as usize] |= t(&tainted, c) || t(&tainted, ts) || t(&tainted, f);
            }
            Instr::Concat { dst, parts } => {
                tainted[*dst as usize] |= parts.iter().any(|(s, _)| t(&tainted, s));
            }
            Instr::Repl { dst, src, .. } => {
                tainted[*dst as usize] |= t(&tainted, src);
            }
            // Plane-exact consumers (and defined-or-bail producers).
            Instr::Load { .. }
            | Instr::ReadSlice { .. }
            | Instr::BitSelSig { .. }
            | Instr::Jump { .. }
            | Instr::JumpIfNotTrue { .. }
            | Instr::JumpIfMatch { .. }
            | Instr::Store { .. }
            | Instr::StoreBitDyn { .. } => {}
            Instr::Cmp {
                op: CmpOp::CaseEq | CmpOp::CaseNeq,
                ..
            } => {}
            // Pure-aval instructions: a tainted operand disqualifies.
            Instr::Not { a, .. } => {
                if t(&tainted, a) {
                    return false;
                }
            }
            Instr::Bin { a, b, .. } | Instr::LogicBin { a, b, .. } | Instr::Cmp { a, b, .. } => {
                if t(&tainted, a) || t(&tainted, b) {
                    return false;
                }
            }
            Instr::Shift { a, amt, .. } => {
                if t(&tainted, a) || t(&tainted, amt) {
                    return false;
                }
            }
            Instr::Reduce { a, .. } => {
                if t(&tainted, a) {
                    return false;
                }
            }
        }
    }
    true
}

/// Extract the deduped (read, written) signal sets of an instruction
/// stream, in first-use order. Every store-reading instruction flavor is
/// covered, so the read set can never under-approximate the signals a
/// run depends on (the property precise event fanout needs).
fn touch_sets(code: &[Instr], nsig: usize) -> (Vec<SignalId>, Vec<SignalId>) {
    let mut reads: Vec<SignalId> = Vec::new();
    let mut writes: Vec<SignalId> = Vec::new();
    let mut read_stamp = vec![false; nsig];
    let mut write_stamp = vec![false; nsig];
    let mark = |sig: &SignalId, set: &mut Vec<SignalId>, stamp: &mut Vec<bool>| {
        if !stamp[sig.index()] {
            stamp[sig.index()] = true;
            set.push(*sig);
        }
    };
    for i in code {
        match i {
            Instr::Load { sig, .. }
            | Instr::BitSelSig { sig, .. }
            | Instr::ReadSlice { sig, .. } => mark(sig, &mut reads, &mut read_stamp),
            Instr::Store { sig, .. } | Instr::StoreBitDyn { sig, .. } => {
                mark(sig, &mut writes, &mut write_stamp)
            }
            _ => {}
        }
    }
    (reads, writes)
}

struct Compiler<'a> {
    design: &'a Design,
    code: Vec<Instr>,
    slot_widths: Vec<usize>,
    consts: Vec<LogicVec>,
    /// (binary string, width) → constant-pool index, to dedup the pool.
    const_index: HashMap<(String, usize), u16>,
}

impl<'a> Compiler<'a> {
    fn alloc(&mut self, width: usize) -> Slot {
        let ix = self.slot_widths.len();
        assert!(ix < u16::MAX as usize, "register file overflow");
        self.slot_widths.push(width.max(1));
        ix as Slot
    }

    fn konst(&mut self, v: LogicVec) -> u16 {
        let key = (v.to_binary_string(), v.width());
        if let Some(&k) = self.const_index.get(&key) {
            return k;
        }
        let k = self.consts.len();
        assert!(k < u16::MAX as usize, "constant pool overflow");
        self.consts.push(v);
        self.const_index.insert(key, k as u16);
        k as u16
    }

    fn emit(&mut self, i: Instr) -> usize {
        self.code.push(i);
        self.code.len() - 1
    }

    fn here(&self) -> usize {
        self.code.len()
    }

    fn patch(&mut self, at: usize, target_: usize) {
        match &mut self.code[at] {
            Instr::Jump { target }
            | Instr::JumpIfNotTrue { target, .. }
            | Instr::JumpIfMatch { target, .. } => *target = target_,
            other => unreachable!("patching non-jump {other:?}"),
        }
    }

    /// Narrow/widen `src` (width `from`) to `to`, emitting a `Copy` only
    /// when the widths differ.
    fn adjust(&mut self, src: Slot, from: usize, to: usize) -> Slot {
        if from == to {
            return src;
        }
        let dst = self.alloc(to);
        self.emit(Instr::Copy { dst, src });
        dst
    }

    // ------------------------------------------------------------------
    // Expressions
    // ------------------------------------------------------------------

    /// Compile `e` with context width `ctx`; the returned slot's width is
    /// exactly `max(ctx, 1)` — except for constant part selects, which
    /// keep their self-determined width when it exceeds `ctx`, mirroring
    /// `eval`.
    fn expr(&mut self, e: &CExpr, ctx: usize) -> Slot {
        let cw = ctx.max(1);
        match e {
            CExpr::Const(v) => {
                let dst = self.alloc(cw);
                let k = self.konst(v.resized(cw));
                self.emit(Instr::Const { dst, k });
                dst
            }
            CExpr::Sig(id) => {
                let dst = self.alloc(cw);
                self.emit(Instr::Load { dst, sig: *id });
                dst
            }
            CExpr::Unary(op, a) => {
                let self_w = a.width(self.design);
                match op {
                    UnaryOp::Not | UnaryOp::Neg | UnaryOp::Plus => {
                        let w = ctx.max(self_w).max(1);
                        let av = self.expr(a, w);
                        let r = match op {
                            UnaryOp::Not => {
                                let dst = self.alloc(w);
                                self.emit(Instr::Not { dst, a: av });
                                dst
                            }
                            UnaryOp::Neg => {
                                // -a == 0 - a at the operating width.
                                let zero = self.alloc(w);
                                let k = self.konst(LogicVec::new(w));
                                self.emit(Instr::Const { dst: zero, k });
                                let dst = self.alloc(w);
                                self.emit(Instr::Bin {
                                    op: BinOp::Sub,
                                    dst,
                                    a: zero,
                                    b: av,
                                });
                                dst
                            }
                            UnaryOp::Plus => av,
                            _ => unreachable!(),
                        };
                        self.adjust(r, w, cw)
                    }
                    UnaryOp::LogicNot => self.reduce(a, self_w, ReduceOp::LogicNot, cw),
                    UnaryOp::ReduceAnd => self.reduce(a, self_w, ReduceOp::And, cw),
                    UnaryOp::ReduceOr => self.reduce(a, self_w, ReduceOp::Or, cw),
                    UnaryOp::ReduceXor => self.reduce(a, self_w, ReduceOp::Xor, cw),
                    UnaryOp::ReduceNand => self.reduce(a, self_w, ReduceOp::Nand, cw),
                    UnaryOp::ReduceNor => self.reduce(a, self_w, ReduceOp::Nor, cw),
                    UnaryOp::ReduceXnor => self.reduce(a, self_w, ReduceOp::Xnor, cw),
                }
            }
            CExpr::Binary(op, l, r) => {
                let (lw, rw) = (l.width(self.design), r.width(self.design));
                match op {
                    BinaryOp::Add
                    | BinaryOp::Sub
                    | BinaryOp::Mul
                    | BinaryOp::Div
                    | BinaryOp::Mod
                    | BinaryOp::And
                    | BinaryOp::Or
                    | BinaryOp::Xor
                    | BinaryOp::Xnor => {
                        let w = ctx.max(lw).max(rw).max(1);
                        let a = self.expr(l, w);
                        let b = self.expr(r, w);
                        let dst = self.alloc(w);
                        let bop = match op {
                            BinaryOp::Add => BinOp::Add,
                            BinaryOp::Sub => BinOp::Sub,
                            BinaryOp::Mul => BinOp::Mul,
                            BinaryOp::Div => BinOp::Div,
                            BinaryOp::Mod => BinOp::Mod,
                            BinaryOp::And => BinOp::And,
                            BinaryOp::Or => BinOp::Or,
                            BinaryOp::Xor => BinOp::Xor,
                            BinaryOp::Xnor => BinOp::Xnor,
                            _ => unreachable!(),
                        };
                        self.emit(Instr::Bin { op: bop, dst, a, b });
                        self.adjust(dst, w, cw)
                    }
                    BinaryOp::Shl | BinaryOp::Shr => {
                        let w = ctx.max(lw).max(1);
                        let a = self.expr(l, w);
                        let amt = self.expr(r, rw);
                        let dst = self.alloc(w);
                        self.emit(Instr::Shift {
                            left: matches!(op, BinaryOp::Shl),
                            dst,
                            a,
                            amt,
                        });
                        self.adjust(dst, w, cw)
                    }
                    BinaryOp::LogicAnd | BinaryOp::LogicOr => {
                        let a = self.expr(l, lw);
                        let b = self.expr(r, rw);
                        let dst = self.alloc(cw);
                        self.emit(Instr::LogicBin {
                            and: matches!(op, BinaryOp::LogicAnd),
                            dst,
                            a,
                            b,
                        });
                        dst
                    }
                    BinaryOp::Eq
                    | BinaryOp::Neq
                    | BinaryOp::CaseEq
                    | BinaryOp::CaseNeq
                    | BinaryOp::Lt
                    | BinaryOp::Le
                    | BinaryOp::Gt
                    | BinaryOp::Ge => {
                        let w = lw.max(rw);
                        let a = self.expr(l, w);
                        let b = self.expr(r, w);
                        let dst = self.alloc(cw);
                        let cop = match op {
                            BinaryOp::Eq => CmpOp::Eq,
                            BinaryOp::Neq => CmpOp::Neq,
                            BinaryOp::CaseEq => CmpOp::CaseEq,
                            BinaryOp::CaseNeq => CmpOp::CaseNeq,
                            BinaryOp::Lt => CmpOp::Lt,
                            BinaryOp::Le => CmpOp::Le,
                            BinaryOp::Gt => CmpOp::Gt,
                            BinaryOp::Ge => CmpOp::Ge,
                            _ => unreachable!(),
                        };
                        self.emit(Instr::Cmp { op: cop, dst, a, b });
                        dst
                    }
                }
            }
            CExpr::Ternary(c, t, f) => {
                let w = ctx
                    .max(t.width(self.design))
                    .max(f.width(self.design))
                    .max(1);
                let ts = self.expr(t, w);
                let fs = self.expr(f, w);
                let cs = self.expr(c, c.width(self.design));
                let dst = self.alloc(cw);
                self.emit(Instr::Select {
                    dst,
                    c: cs,
                    t: ts,
                    f: fs,
                });
                dst
            }
            CExpr::Concat(parts) => {
                let widths: Vec<usize> = parts.iter().map(|p| p.width(self.design)).collect();
                let total: usize = widths.iter().sum();
                let slots: Vec<Slot> = parts
                    .iter()
                    .zip(&widths)
                    .map(|(p, &w)| self.expr(p, w))
                    .collect();
                // MSB-first in source order: the first part takes the top
                // bits.
                let mut offset = total;
                let placed: Vec<(Slot, usize)> = slots
                    .iter()
                    .zip(&widths)
                    .map(|(&s, &w)| {
                        offset -= w;
                        (s, offset)
                    })
                    .collect();
                let dst = self.alloc(total);
                self.emit(Instr::Concat { dst, parts: placed });
                self.adjust(dst, total.max(1), cw)
            }
            CExpr::Repl(n, v) => {
                let vw = v.width(self.design);
                let src = self.expr(v, vw);
                let total = n * vw;
                let dst = self.alloc(total);
                self.emit(Instr::Repl { dst, src, n: *n });
                self.adjust(dst, total.max(1), cw)
            }
            CExpr::BitSel(id, idx) => {
                let iw = idx.width(self.design);
                let is = self.expr(idx, iw);
                let dst = self.alloc(cw);
                self.emit(Instr::BitSelSig {
                    dst,
                    sig: *id,
                    idx: is,
                    lsb_index: self.design.decl(*id).lsb_index,
                });
                dst
            }
            CExpr::PartSel(id, lsb, width) => {
                // `eval` resizes to max(ctx, width): the self-determined
                // width survives a narrower context.
                let dst = self.alloc(*width);
                self.emit(Instr::ReadSlice {
                    dst,
                    sig: *id,
                    lsb: *lsb,
                });
                self.adjust(dst, *width, cw.max(*width))
            }
        }
    }

    /// Lower a reduction (or `!`) of `a` evaluated at its self width.
    fn reduce(&mut self, a: &CExpr, self_w: usize, op: ReduceOp, cw: usize) -> Slot {
        let av = self.expr(a, self_w);
        let dst = self.alloc(cw);
        self.emit(Instr::Reduce { op, dst, a: av });
        dst
    }

    // ------------------------------------------------------------------
    // Statements
    // ------------------------------------------------------------------

    fn stmt(&mut self, s: &CStmt) {
        match s {
            CStmt::Block(stmts) => {
                for s in stmts {
                    self.stmt(s);
                }
            }
            CStmt::Nop => {}
            CStmt::If(cond, then_s, else_s) => {
                let cs = self.expr(cond, cond.width(self.design));
                let jfalse = self.emit(Instr::JumpIfNotTrue {
                    cond: cs,
                    target: 0,
                });
                self.stmt(then_s);
                if let Some(e) = else_s {
                    let jend = self.emit(Instr::Jump { target: 0 });
                    let else_at = self.here();
                    self.patch(jfalse, else_at);
                    self.stmt(e);
                    let end = self.here();
                    self.patch(jend, end);
                } else {
                    let end = self.here();
                    self.patch(jfalse, end);
                }
            }
            CStmt::Case {
                kind,
                sel,
                arms,
                default,
            } => {
                // Width folded once: max over selector and every label.
                let mut w = sel.width(self.design);
                for (labels, _) in arms {
                    for l in labels {
                        w = w.max(l.width(self.design));
                    }
                }
                let ss = self.expr(sel, w);
                // Evaluate all labels up front (pure), then dispatch.
                let mut tests: Vec<(usize, usize)> = Vec::new(); // (jump ix, arm ix)
                for (ai, (labels, _)) in arms.iter().enumerate() {
                    for l in labels {
                        let ls = self.expr(l, w);
                        let j = self.emit(Instr::JumpIfMatch {
                            sel: ss,
                            label: ls,
                            kind: *kind,
                            target: 0,
                        });
                        tests.push((j, ai));
                    }
                }
                let jdefault = self.emit(Instr::Jump { target: 0 });
                let mut arm_starts: Vec<usize> = Vec::with_capacity(arms.len());
                let mut arm_end_jumps: Vec<usize> = Vec::with_capacity(arms.len());
                for (_, body) in arms {
                    arm_starts.push(self.here());
                    self.stmt(body);
                    arm_end_jumps.push(self.emit(Instr::Jump { target: 0 }));
                }
                let default_at = self.here();
                self.patch(jdefault, default_at);
                if let Some(d) = default {
                    self.stmt(d);
                }
                let end = self.here();
                for (j, ai) in tests {
                    self.patch(j, arm_starts[ai]);
                }
                for j in arm_end_jumps {
                    self.patch(j, end);
                }
            }
            CStmt::Assign {
                lv,
                rhs,
                nonblocking,
            } => {
                let total = lv.width(self.design);
                let rw = rhs.width(self.design);
                let vs = self.expr(rhs, total.max(rw));
                let vw = self.slot_widths[vs as usize];
                let value = self.adjust(vs, vw, total.max(1));
                // Pre-evaluate dynamic lvalue indices (the tree-walker
                // resolves every slice before applying any write).
                let slices = self.lvalue_slices(lv);
                // Distribute MSB-first: the first slice takes the top
                // bits.
                let mut hi = total;
                for slice in slices {
                    match slice {
                        LvSlice::Static { sig, lsb, width } => {
                            let lo = hi - width;
                            hi = lo;
                            let src = self.slice_of(value, total, lo, width);
                            self.emit(Instr::Store {
                                sig,
                                src,
                                lsb,
                                width,
                                nonblocking: *nonblocking,
                            });
                        }
                        LvSlice::DynBit {
                            sig,
                            idx,
                            lsb_index,
                        } => {
                            let lo = hi - 1;
                            hi = lo;
                            let src = self.slice_of(value, total, lo, 1);
                            self.emit(Instr::StoreBitDyn {
                                sig,
                                idx,
                                lsb_index,
                                src,
                                nonblocking: *nonblocking,
                            });
                        }
                    }
                }
            }
        }
    }

    /// Extract `width` bits of `value` (width `total`) at `lo` — the
    /// whole slot passes through untouched.
    fn slice_of(&mut self, value: Slot, total: usize, lo: usize, width: usize) -> Slot {
        if lo == 0 && width == total {
            return value;
        }
        let dst = self.alloc(width);
        self.emit(Instr::Slice {
            dst,
            src: value,
            lsb: lo,
        });
        dst
    }

    /// Flatten an lvalue into slices MSB-first, pre-compiling dynamic
    /// index expressions.
    fn lvalue_slices(&mut self, lv: &CLValue) -> Vec<LvSlice> {
        match lv {
            CLValue::Whole(id) => vec![LvSlice::Static {
                sig: *id,
                lsb: 0,
                width: self.design.width(*id),
            }],
            CLValue::BitSel(id, idx) => {
                let iw = idx.width(self.design);
                let is = self.expr(idx, iw);
                vec![LvSlice::DynBit {
                    sig: *id,
                    idx: is,
                    lsb_index: self.design.decl(*id).lsb_index,
                }]
            }
            CLValue::PartSel(id, lsb, width) => vec![LvSlice::Static {
                sig: *id,
                lsb: *lsb,
                width: *width,
            }],
            CLValue::Concat(parts) => parts.iter().flat_map(|p| self.lvalue_slices(p)).collect(),
        }
    }
}

/// One resolved lvalue slice.
enum LvSlice {
    /// Static offset and width.
    Static {
        sig: SignalId,
        lsb: i64,
        width: usize,
    },
    /// Dynamic single-bit target (index in a slot).
    DynBit {
        sig: SignalId,
        idx: Slot,
        lsb_index: i64,
    },
}
