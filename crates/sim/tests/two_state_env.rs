//! `MAGE_SIM_TWO_STATE` environment-hook test, isolated in its own
//! binary: env vars are process-global, so this must not share a
//! process with tests that construct simulators in parallel (the main
//! two-state suite lives in `two_state.rs`).

use mage_sim::{elaborate, ExecMode, Simulator};
use std::sync::Arc;

#[test]
fn env_hook_disables_two_state_dispatch() {
    let file =
        mage_verilog::parse("module top(input a, output y); assign y = ~a; endmodule").unwrap();
    let design = Arc::new(elaborate(&file, "top").unwrap());

    std::env::set_var("MAGE_SIM_TWO_STATE", "off");
    let off = Simulator::with_mode(Arc::clone(&design), ExecMode::Compiled);
    std::env::set_var("MAGE_SIM_TWO_STATE", "0");
    let zero = Simulator::with_mode(Arc::clone(&design), ExecMode::Compiled);
    std::env::remove_var("MAGE_SIM_TWO_STATE");
    let on = Simulator::with_mode(Arc::clone(&design), ExecMode::Compiled);

    assert!(!off.two_state(), "MAGE_SIM_TWO_STATE=off must disable");
    assert!(!zero.two_state(), "MAGE_SIM_TWO_STATE=0 must disable");
    assert!(on.two_state(), "default is on");

    // The legacy executor never has a two-state path, whatever the env.
    let legacy = Simulator::with_mode(design, ExecMode::Legacy);
    assert!(!legacy.two_state());

    // And the counters actually stay silent when disabled.
    let mut sim = {
        std::env::set_var("MAGE_SIM_TWO_STATE", "off");
        let file =
            mage_verilog::parse("module top(input a, output y); assign y = ~a; endmodule").unwrap();
        let design = Arc::new(elaborate(&file, "top").unwrap());
        let s = Simulator::new(design);
        std::env::remove_var("MAGE_SIM_TWO_STATE");
        s
    };
    sim.settle().unwrap();
    sim.poke("a", mage_logic::LogicVec::from_bool(true))
        .unwrap();
    assert_eq!(sim.eval_counts().two_state_evals, 0);
    assert_eq!(sim.eval_counts().two_state_fallbacks, 0);
}
