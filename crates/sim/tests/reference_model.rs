//! Differential tests: simulated designs vs software reference models,
//! plus property tests comparing random combinational expressions against
//! direct evaluation.

use mage_logic::LogicVec;
use mage_sim::{elaborate, Simulator};
use proptest::prelude::*;
use std::sync::Arc;

fn simulator(src: &str, top: &str) -> Simulator {
    let file = mage_verilog::parse(src).unwrap();
    let design = Arc::new(elaborate(&file, top).unwrap());
    let mut s = Simulator::new(design);
    s.settle().unwrap();
    s
}

fn v(w: usize, x: u64) -> LogicVec {
    LogicVec::from_u64(w, x)
}

// ----------------------------------------------------------------------
// Sequential reference models
// ----------------------------------------------------------------------

#[test]
fn shift_register_matches_model() {
    let mut s = simulator(
        "module sr(input clk, input rst, input d, output reg [7:0] q);
           always @(posedge clk) begin
             if (rst) q <= 8'h00;
             else q <= {q[6:0], d};
           end
         endmodule",
        "sr",
    );
    let mut model: u64 = 0;
    s.poke("rst", v(1, 1)).unwrap();
    s.poke("clk", v(1, 0)).unwrap();
    s.poke("clk", v(1, 1)).unwrap();
    s.poke("rst", v(1, 0)).unwrap();
    let bits = [1u64, 0, 1, 1, 0, 1, 0, 0, 1, 1, 1, 0];
    for &b in &bits {
        s.poke("d", v(1, b)).unwrap();
        s.poke("clk", v(1, 0)).unwrap();
        s.poke("clk", v(1, 1)).unwrap();
        model = ((model << 1) | b) & 0xFF;
        assert_eq!(s.peek_by_name("q").unwrap().to_u64(), Some(model));
    }
}

#[test]
fn moore_fsm_sequence_detector() {
    // Detects the sequence 1-0-1 on `x` (overlapping).
    let mut s = simulator(
        "module det(input clk, input rst, input x, output z);
           reg [1:0] state;
           localparam S0 = 2'd0, S1 = 2'd1, S2 = 2'd2, S3 = 2'd3;
           always @(posedge clk) begin
             if (rst) state <= S0;
             else case (state)
               S0: state <= x ? S1 : S0;
               S1: state <= x ? S1 : S2;
               S2: state <= x ? S3 : S0;
               S3: state <= x ? S1 : S2;
             endcase
           end
           assign z = state == S3;
         endmodule",
        "det",
    );
    s.poke("rst", v(1, 1)).unwrap();
    s.poke("clk", v(1, 0)).unwrap();
    s.poke("clk", v(1, 1)).unwrap();
    s.poke("rst", v(1, 0)).unwrap();
    let input = [1u64, 0, 1, 0, 1, 1, 0, 1, 0, 0, 1];
    // Software model.
    let mut state = 0u64;
    for &x in &input {
        s.poke("x", v(1, x)).unwrap();
        s.poke("clk", v(1, 0)).unwrap();
        s.poke("clk", v(1, 1)).unwrap();
        state = match (state, x) {
            (0, 1) => 1,
            (0, 0) => 0,
            (1, 1) => 1,
            (1, 0) => 2,
            (2, 1) => 3,
            (2, 0) => 0,
            (3, 1) => 1,
            (3, 0) => 2,
            _ => unreachable!(),
        };
        let z = s.peek_by_name("z").unwrap().to_u64().unwrap();
        assert_eq!(z, (state == 3) as u64);
    }
}

#[test]
fn gray_counter_changes_one_bit_per_cycle() {
    let mut s = simulator(
        "module gray(input clk, input rst, output [3:0] g);
           reg [3:0] bin;
           always @(posedge clk) begin
             if (rst) bin <= 4'd0;
             else bin <= bin + 4'd1;
           end
           assign g = bin ^ (bin >> 1);
         endmodule",
        "gray",
    );
    s.poke("rst", v(1, 1)).unwrap();
    s.poke("clk", v(1, 0)).unwrap();
    s.poke("clk", v(1, 1)).unwrap();
    s.poke("rst", v(1, 0)).unwrap();
    let mut prev = s.peek_by_name("g").unwrap().to_u64().unwrap();
    for _ in 0..20 {
        s.poke("clk", v(1, 0)).unwrap();
        s.poke("clk", v(1, 1)).unwrap();
        let cur = s.peek_by_name("g").unwrap().to_u64().unwrap();
        assert_eq!((cur ^ prev).count_ones(), 1, "gray property");
        prev = cur;
    }
}

#[test]
fn deep_hierarchy_ripple_adder() {
    // 8-bit ripple-carry adder from full-adder cells, 3 levels deep.
    let src = "
        module fa(input a, input b, input cin, output s, output cout);
          assign s = a ^ b ^ cin;
          assign cout = (a & b) | (cin & (a ^ b));
        endmodule
        module nib(input [3:0] a, input [3:0] b, input cin, output [3:0] s, output cout);
          wire c0, c1, c2;
          fa f0 (.a(a[0]), .b(b[0]), .cin(cin), .s(s[0]), .cout(c0));
          fa f1 (.a(a[1]), .b(b[1]), .cin(c0), .s(s[1]), .cout(c1));
          fa f2 (.a(a[2]), .b(b[2]), .cin(c1), .s(s[2]), .cout(c2));
          fa f3 (.a(a[3]), .b(b[3]), .cin(c2), .s(s[3]), .cout(cout));
        endmodule
        module add8(input [7:0] a, input [7:0] b, output [8:0] sum);
          wire c;
          nib lo (.a(a[3:0]), .b(b[3:0]), .cin(1'b0), .s(sum[3:0]), .cout(c));
          nib hi (.a(a[7:4]), .b(b[7:4]), .cin(c), .s(sum[7:4]), .cout(sum[8]));
        endmodule";
    let mut s = simulator(src, "add8");
    for (a, b) in [(0u64, 0u64), (255, 255), (170, 85), (1, 254), (200, 57)] {
        s.poke("a", v(8, a)).unwrap();
        s.poke("b", v(8, b)).unwrap();
        assert_eq!(s.peek_by_name("sum").unwrap().to_u64(), Some(a + b));
    }
}

#[test]
fn blocking_vs_nonblocking_difference_observable() {
    // Classic pipeline bug: blocking assignments collapse two stages.
    let nb = "module p(input clk, input d, output reg q2);
                reg q1;
                always @(posedge clk) begin
                  q1 <= d;
                  q2 <= q1;
                end
              endmodule";
    let bl = "module p(input clk, input d, output reg q2);
                reg q1;
                always @(posedge clk) begin
                  q1 = d;
                  q2 = q1;
                end
              endmodule";
    let run = |src: &str| {
        let mut s = simulator(src, "p");
        s.poke("clk", v(1, 0)).unwrap();
        s.poke("d", v(1, 1)).unwrap();
        s.poke("clk", v(1, 1)).unwrap();
        s.peek_by_name("q2").unwrap().clone()
    };
    let nb_q2 = run(nb);
    let bl_q2 = run(bl);
    // Non-blocking: q2 gets old q1 (X). Blocking: q2 gets d (1).
    assert!(nb_q2.is_all_x());
    assert_eq!(bl_q2.to_u64(), Some(1));
}

// ----------------------------------------------------------------------
// Property tests: random expression nets vs reference evaluation
// ----------------------------------------------------------------------

#[derive(Debug, Clone)]
enum Op {
    And,
    Or,
    Xor,
    Add,
    Sub,
}

impl Op {
    fn verilog(&self) -> &'static str {
        match self {
            Op::And => "&",
            Op::Or => "|",
            Op::Xor => "^",
            Op::Add => "+",
            Op::Sub => "-",
        }
    }
    fn apply(&self, a: u64, b: u64, mask: u64) -> u64 {
        (match self {
            Op::And => a & b,
            Op::Or => a | b,
            Op::Xor => a ^ b,
            Op::Add => a.wrapping_add(b),
            Op::Sub => a.wrapping_sub(b),
        }) & mask
    }
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        Just(Op::And),
        Just(Op::Or),
        Just(Op::Xor),
        Just(Op::Add),
        Just(Op::Sub),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `assign y = (a op1 b) op2 (a op3 c)` matches the u64 model for a
    /// random width and random operand values.
    #[test]
    fn random_expression_matches_reference(
        w in 1usize..16,
        ops in proptest::collection::vec(op_strategy(), 3),
        a in any::<u64>(),
        b in any::<u64>(),
        c in any::<u64>(),
    ) {
        let mask = if w >= 64 { u64::MAX } else { (1u64 << w) - 1 };
        let (a, b, c) = (a & mask, b & mask, c & mask);
        let src = format!(
            "module t(input [{msb}:0] a, input [{msb}:0] b, input [{msb}:0] c, output [{msb}:0] y);
               assign y = (a {o1} b) {o2} (a {o3} c);
             endmodule",
            msb = w - 1,
            o1 = ops[0].verilog(),
            o2 = ops[1].verilog(),
            o3 = ops[2].verilog(),
        );
        let mut s = simulator(&src, "t");
        s.poke("a", v(w, a)).unwrap();
        s.poke("b", v(w, b)).unwrap();
        s.poke("c", v(w, c)).unwrap();
        let expect = ops[1].apply(ops[0].apply(a, b, mask), ops[2].apply(a, c, mask), mask);
        prop_assert_eq!(s.peek_by_name("y").unwrap().to_u64(), Some(expect));
    }

    /// A registered version of the same expression matches after a clock.
    #[test]
    fn registered_expression_matches_reference(
        w in 1usize..12,
        op in op_strategy(),
        a in any::<u64>(),
        b in any::<u64>(),
    ) {
        let mask = if w >= 64 { u64::MAX } else { (1u64 << w) - 1 };
        let (a, b) = (a & mask, b & mask);
        let src = format!(
            "module t(input clk, input [{msb}:0] a, input [{msb}:0] b, output reg [{msb}:0] y);
               always @(posedge clk) y <= a {op} b;
             endmodule",
            msb = w - 1,
            op = op.verilog(),
        );
        let mut s = simulator(&src, "t");
        s.poke("clk", v(1, 0)).unwrap();
        s.poke("a", v(w, a)).unwrap();
        s.poke("b", v(w, b)).unwrap();
        prop_assert!(s.peek_by_name("y").unwrap().is_all_x());
        s.poke("clk", v(1, 1)).unwrap();
        prop_assert_eq!(s.peek_by_name("y").unwrap().to_u64(), Some(op.apply(a, b, mask)));
    }
}
