//! Two-state fast-path differential suite.
//!
//! The compiled executor dispatches eligible processes to an
//! aval-plane-only interpreter whenever their read set is fully
//! defined, falling back to the four-state path when an `X`/`Z`
//! appears (or a runtime hazard — division by zero, out-of-range read
//! — bails out mid-run). These tests hold that machinery to the
//! store-exactness contract against **both** retained oracles:
//!
//! * the four-state compiled path ([`Simulator::set_two_state`]`(false)`
//!   — same bytecode, same wheel, no fast path), and
//! * the legacy tree-walker with the scan worklist
//!   ([`ExecMode::Legacy`]);
//!
//! and pin the `EvalCounts` hit/fallback accounting: X-boot runs
//! four-state, defined steady state runs two-state, an injected `X`
//! falls back, and a re-driven defined value recovers.
//!
//! The proptest at the bottom is the corpus version: a single `X`/`Z`
//! bit injected at a random input/step of an otherwise-defined corpus
//! run, three executors in lockstep, every signal compared four-state
//! exact after every poke.

use mage_logic::{LogicBit, LogicVec};
use mage_sim::{elaborate, Design, ExecMode, SimError, Simulator};
use proptest::prelude::*;
use std::sync::Arc;

fn design_of(src: &str) -> Arc<Design> {
    let file = mage_verilog::parse(src).unwrap();
    let top = file.modules.last().unwrap().name.clone();
    Arc::new(elaborate(&file, &top).unwrap())
}

fn v(w: usize, x: u64) -> LogicVec {
    LogicVec::from_u64(w, x)
}

/// Three executors over one design: two-state (the default), pure
/// four-state compiled, and the legacy tree-walker.
struct Trio {
    fast: Simulator,
    four: Simulator,
    legacy: Simulator,
}

impl Trio {
    fn new(design: &Arc<Design>) -> Trio {
        // Pin both compiled variants explicitly (the suite must test
        // the fast path even when CI exports MAGE_SIM_TWO_STATE=off to
        // run everything *else* four-state; the default-on contract is
        // covered by `two_state_env.rs`).
        let mut fast = Simulator::with_mode(Arc::clone(design), ExecMode::Compiled);
        fast.set_two_state(true);
        let mut four = Simulator::with_mode(Arc::clone(design), ExecMode::Compiled);
        four.set_two_state(false);
        let legacy = Simulator::with_mode(Arc::clone(design), ExecMode::Legacy);
        Trio { fast, four, legacy }
    }

    fn settle(&mut self) -> Result<(), SimError> {
        let rf = self.fast.settle();
        let r4 = self.four.settle();
        let rl = self.legacy.settle();
        assert_eq!(rf, r4, "settle diverged vs four-state");
        assert_eq!(rf, rl, "settle diverged vs legacy");
        rf
    }

    fn poke(&mut self, name: &str, value: LogicVec, at: &str) -> Result<(), SimError> {
        let rf = self.fast.poke(name, value.clone());
        let r4 = self.four.poke(name, value.clone());
        let rl = self.legacy.poke(name, value);
        assert_eq!(rf, r4, "poke {name} at {at} diverged vs four-state");
        assert_eq!(rf, rl, "poke {name} at {at} diverged vs legacy");
        self.compare(at);
        rf
    }

    fn poke_id(
        &mut self,
        id: mage_sim::SignalId,
        value: LogicVec,
        at: &str,
    ) -> Result<(), SimError> {
        let rf = self.fast.poke_id(id, value.clone());
        let r4 = self.four.poke_id(id, value.clone());
        let rl = self.legacy.poke_id(id, value);
        assert_eq!(rf, r4, "poke_id at {at} diverged vs four-state");
        assert_eq!(rf, rl, "poke_id at {at} diverged vs legacy");
        self.compare(at);
        rf
    }

    /// Every signal, four-state exact, across all three stores.
    fn compare(&mut self, at: &str) {
        let names: Vec<String> = self
            .fast
            .design()
            .signals
            .iter()
            .map(|s| s.name.clone())
            .collect();
        for name in names {
            let id = self.fast.design().signal(&name).expect("name resolves");
            let f = self.fast.peek(id).clone();
            for (other, label) in [(&mut self.four, "four-state"), (&mut self.legacy, "legacy")] {
                let o = other.peek(id);
                assert!(
                    f.case_eq(o),
                    "at {at}: signal `{name}` diverged\n  two-state: {}\n  {label}:   {}",
                    f.to_binary_string(),
                    o.to_binary_string(),
                );
            }
        }
    }
}

const ALU_SRC: &str = "module top(input clk, input rst, input [3:0] a, input [3:0] b,
                              input [2:0] op, output reg [3:0] r, output zero,
                              output reg [7:0] acc);
      always @(*) begin
        case (op)
          3'd0: r = a + b;
          3'd1: r = a - b;
          3'd2: r = a & b;
          3'd3: r = a | b;
          default: r = a ^ b;
        endcase
      end
      assign zero = r == 4'd0;
      always @(posedge clk)
        if (rst) acc <= 8'd0; else acc <= acc + {4'b0000, r};
    endmodule";

/// Boot the ALU: reset released, clock low, all data inputs defined.
fn booted_alu(design: &Arc<Design>) -> Simulator {
    let mut sim = Simulator::with_mode(Arc::clone(design), ExecMode::Compiled);
    sim.set_two_state(true);
    sim.settle().unwrap();
    sim.poke_many([
        ("clk", v(1, 0)),
        ("rst", v(1, 1)),
        ("a", v(4, 3)),
        ("b", v(4, 5)),
        ("op", v(3, 0)),
    ])
    .unwrap();
    sim.poke("clk", v(1, 1)).unwrap(); // reset edge: acc ← 0
    sim.poke("clk", v(1, 0)).unwrap();
    sim.poke("rst", v(1, 0)).unwrap();
    sim
}

#[test]
fn x_boot_runs_four_state_then_defined_inputs_go_two_state() {
    let design = design_of(ALU_SRC);
    let mut sim = Simulator::with_mode(Arc::clone(&design), ExecMode::Compiled);
    sim.set_two_state(true);
    sim.settle().unwrap();
    let boot = sim.eval_counts();
    assert_eq!(
        boot.two_state_evals, 0,
        "all-X boot must not take the two-state path"
    );
    assert!(
        boot.two_state_fallbacks > 0,
        "boot evals of eligible processes count as fallbacks"
    );
    // Define every input and wash the boot X out of `acc`: from here
    // on, every evaluation is two-state.
    let mut sim = booted_alu(&design);
    sim.reset_eval_counts();
    for i in 0..8u64 {
        sim.poke("a", v(4, i)).unwrap();
        sim.poke("clk", v(1, 1)).unwrap();
        sim.poke("clk", v(1, 0)).unwrap();
    }
    let c = sim.eval_counts();
    assert!(c.two_state_evals > 0, "defined kernel must hit two-state");
    assert_eq!(c.two_state_fallbacks, 0, "no X anywhere → no fallbacks");
    assert_eq!(
        c.two_state_evals,
        c.total_evals(),
        "every eval of this all-eligible, fully defined design is a hit"
    );
}

#[test]
fn two_state_disabled_counts_nothing() {
    let design = design_of(ALU_SRC);
    let mut sim = Simulator::with_mode(Arc::clone(&design), ExecMode::Compiled);
    sim.set_two_state(false);
    sim.settle().unwrap();
    sim.poke_many([
        ("clk", v(1, 0)),
        ("rst", v(1, 0)),
        ("a", v(4, 3)),
        ("b", v(4, 5)),
        ("op", v(3, 0)),
    ])
    .unwrap();
    let c = sim.eval_counts();
    assert!(c.total_evals() > 0);
    assert_eq!(c.two_state_evals, 0);
    assert_eq!(c.two_state_fallbacks, 0, "disabled ≠ fallback");
    // Legacy mode likewise never touches the counters.
    let mut l = Simulator::with_mode(design, ExecMode::Legacy);
    l.settle().unwrap();
    l.poke("a", v(4, 1)).unwrap();
    assert_eq!(l.eval_counts().two_state_evals, 0);
    assert_eq!(l.eval_counts().two_state_fallbacks, 0);
}

#[test]
fn x_injection_falls_back_and_recovers() {
    let design = design_of("module top(input a, input b, output y); assign y = a & b; endmodule");
    let mut trio = Trio::new(&design);
    trio.settle().unwrap();
    trio.poke("a", v(1, 1), "define a").unwrap();
    trio.poke("b", v(1, 1), "define b").unwrap();
    trio.fast.reset_eval_counts();

    // Inject: X on `a` forces the single AND process four-state.
    trio.poke("a", LogicVec::all_x(1), "inject X").unwrap();
    let c = trio.fast.eval_counts();
    assert_eq!(c.two_state_evals, 0);
    assert_eq!(c.two_state_fallbacks, 1, "X read set → fallback");
    assert!(trio.fast.peek_by_name("y").unwrap().has_unknown());

    // Recover: a defined re-drive goes straight back to two-state.
    trio.poke("a", v(1, 0), "recover a").unwrap();
    let c = trio.fast.eval_counts();
    assert_eq!(c.two_state_evals, 1, "defined re-drive recovers");
    assert_eq!(c.two_state_fallbacks, 1);
    assert_eq!(trio.fast.peek_by_name("y").unwrap().to_u64(), Some(0));
}

#[test]
fn z_injection_is_as_unknown_as_x() {
    let design = design_of("module top(input [3:0] a, output [3:0] y); assign y = ~a; endmodule");
    let mut trio = Trio::new(&design);
    trio.settle().unwrap();
    trio.poke("a", v(4, 5), "define").unwrap();
    trio.fast.reset_eval_counts();
    let mut z = v(4, 5);
    z.set_bit(2, LogicBit::Z);
    trio.poke("a", z, "inject Z").unwrap();
    let c = trio.fast.eval_counts();
    assert_eq!(c.two_state_evals, 0, "Z gates the fast path like X");
    assert_eq!(c.two_state_fallbacks, 1);
    trio.poke("a", v(4, 5), "recover").unwrap();
    assert_eq!(trio.fast.eval_counts().two_state_evals, 1);
}

#[test]
fn division_by_zero_bails_out_mid_run() {
    // Defined inputs, X-producing op: the two-state attempt must bail
    // (counted as a fallback), rewind, and match both oracles' X.
    let design = design_of(
        "module top(input [3:0] a, input [3:0] b, output [3:0] q, output [3:0] m);
           assign q = a / b;
           assign m = a % b;
         endmodule",
    );
    let mut trio = Trio::new(&design);
    trio.settle().unwrap();
    trio.poke("a", v(4, 12), "define a").unwrap();
    trio.poke("b", v(4, 3), "define b").unwrap();
    assert_eq!(trio.fast.peek_by_name("q").unwrap().to_u64(), Some(4));
    let defined_hits = trio.fast.eval_counts().two_state_evals;
    assert!(defined_hits > 0, "nonzero divisor runs two-state");

    trio.fast.reset_eval_counts();
    trio.poke("b", v(4, 0), "zero divisor").unwrap();
    let c = trio.fast.eval_counts();
    assert!(
        c.two_state_fallbacks > 0,
        "division by zero must bail out of the two-state run"
    );
    assert_eq!(c.two_state_evals, 0);
    assert!(trio.fast.peek_by_name("q").unwrap().is_all_x());
    assert!(trio.fast.peek_by_name("m").unwrap().is_all_x());

    // Recovery: a nonzero divisor re-runs two-state.
    trio.poke("b", v(4, 5), "recover divisor").unwrap();
    assert!(trio.fast.eval_counts().two_state_evals > 0);
    assert_eq!(trio.fast.peek_by_name("q").unwrap().to_u64(), Some(2));
}

#[test]
fn casez_wildcard_labels_stay_two_state() {
    // Wildcard labels are undefined constants; they flow only into the
    // plane-exact case dispatch, so the process stays eligible.
    let design = design_of(
        "module top(input [3:0] r, output reg [1:0] y);
           always @(*) casez (r)
             4'b1???: y = 2'd3;
             4'b01??: y = 2'd2;
             4'b001?: y = 2'd1;
             default: y = 2'd0;
           endcase
         endmodule",
    );
    let mut trio = Trio::new(&design);
    trio.settle().unwrap();
    trio.fast.reset_eval_counts();
    for (r, y) in [(0b1010, 3), (0b0110, 2), (0b0010, 1), (0b0001, 0)] {
        trio.poke("r", v(4, r), "casez sweep").unwrap();
        assert_eq!(trio.fast.peek_by_name("y").unwrap().to_u64(), Some(y));
    }
    let c = trio.fast.eval_counts();
    assert_eq!(c.two_state_fallbacks, 0);
    assert_eq!(c.two_state_evals, c.total_evals());
    assert!(c.two_state_evals > 0);
}

#[test]
fn undefined_const_in_arithmetic_is_ineligible() {
    // `a + 4'bxx00` taints an arithmetic operand: the process must be
    // compile-time ineligible (never counted as hit *or* fallback) and
    // still propagate X exactly.
    let design = design_of(
        "module top(input [3:0] a, output [3:0] y, output [3:0] w);
           assign y = a + 4'bxx00;
           assign w = a & 4'b1100;
         endmodule",
    );
    let mut trio = Trio::new(&design);
    trio.settle().unwrap();
    trio.fast.reset_eval_counts();
    trio.poke("a", v(4, 7), "define").unwrap();
    let c = trio.fast.eval_counts();
    assert!(c.total_evals() > 0);
    // The tainted-adder process is ineligible; the masking AND beside
    // it is eligible and hits.
    assert!(c.two_state_evals > 0, "the clean process still hits");
    assert_eq!(c.two_state_fallbacks, 0);
    assert!(
        c.two_state_evals < c.total_evals(),
        "the tainted process must not be counted two-state"
    );
    assert!(trio.fast.peek_by_name("y").unwrap().has_unknown());
    assert_eq!(trio.fast.peek_by_name("w").unwrap().to_u64(), Some(4));
}

#[test]
fn own_store_x_reread_bails_out_and_rewinds() {
    // A process that conditionally stores an undefined constant and
    // re-loads it in the same body: dispatch sees a fully defined read
    // set, the two-state run stores the X (plane-exact), and the
    // re-read's bval check must bail out — the rewind-and-re-run then
    // has to land bit-identically on both oracles.
    let design = design_of(
        "module top(input sel, output reg [3:0] t, output reg [3:0] y);
           always @(*) begin
             if (sel) t = 4'b1010; else t = 4'b10x0;
             y = t;
           end
         endmodule",
    );
    let mut trio = Trio::new(&design);
    trio.settle().unwrap();
    trio.poke("sel", v(1, 1), "defined branch").unwrap();
    assert_eq!(trio.fast.peek_by_name("y").unwrap().to_u64(), Some(0b1010));
    trio.fast.reset_eval_counts();

    // Defined entry state, X stored mid-run: must bail, not complete.
    trio.poke("sel", v(1, 0), "take the X branch").unwrap();
    let c = trio.fast.eval_counts();
    assert_eq!(c.two_state_evals, 0, "the X re-read must bail out");
    assert!(c.two_state_fallbacks > 0);
    assert!(trio.fast.peek_by_name("y").unwrap().has_unknown());

    // Recovery: the defined branch re-runs two-state once `t` is
    // defined again (the four-state run that defines it falls back).
    trio.poke("sel", v(1, 1), "recover").unwrap();
    assert!(trio.fast.eval_counts().two_state_evals > 0);
    assert_eq!(trio.fast.peek_by_name("y").unwrap().to_u64(), Some(0b1010));
}

#[test]
fn sequential_processes_take_the_fast_path_too() {
    let design = design_of(
        "module top(input clk, input rst, output reg [3:0] q);
           always @(posedge clk) begin
             if (rst) q <= 4'd0;
             else q <= q + 4'd1;
           end
         endmodule",
    );
    let mut trio = Trio::new(&design);
    trio.settle().unwrap();
    trio.poke("clk", v(1, 0), "clk low").unwrap();
    trio.poke("rst", v(1, 1), "reset on").unwrap();
    trio.poke("clk", v(1, 1), "reset edge").unwrap();
    trio.poke("clk", v(1, 0), "clk low").unwrap();
    trio.poke("rst", v(1, 0), "reset off").unwrap();
    trio.fast.reset_eval_counts();
    for _ in 0..4 {
        trio.poke("clk", v(1, 1), "rise").unwrap();
        trio.poke("clk", v(1, 0), "fall").unwrap();
    }
    let c = trio.fast.eval_counts();
    assert_eq!(c.seq_evals, 4);
    assert_eq!(c.two_state_evals, 4, "all four flop evals are two-state");
    assert_eq!(c.two_state_fallbacks, 0);
    assert_eq!(trio.fast.peek_by_name("q").unwrap().to_u64(), Some(4));
}

// The `MAGE_SIM_TWO_STATE` env hook is covered in `two_state_env.rs` —
// a separate test binary, because mutating a process-global env var
// would race the parallel tests here.

// ----------------------------------------------------------------------
// Corpus proptest: single X/Z injection, three executors in lockstep
// ----------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Pick a corpus problem, run its stimulus on all three executors,
    /// inject one `X`/`Z` bit into a random input at a random step,
    /// re-drive the defined value two steps later, and hold every
    /// signal store-exact after every poke — fallback and recovery
    /// must be observationally invisible.
    #[test]
    fn corpus_single_xz_injection_store_exact(
        pidx in 0usize..64,
        step_pick in 0usize..1024,
        input_pick in 0usize..16,
        bit_pick in 0usize..256,
        use_z in any::<bool>(),
    ) {
        let problems = mage_problems::all_problems();
        let p = &problems[pidx % problems.len()];
        let oracle = p.oracle(0x75A7E);
        let design = &oracle.golden_design;
        let stim = &oracle.stimulus;
        let mut trio = Trio::new(design);
        if trio.settle().is_err() {
            return Ok(()); // boot fault: equality already asserted
        }
        // Cap the walked steps so a 1500-step clocked stimulus doesn't
        // dominate the suite; injection lands inside the walked prefix.
        let steps: Vec<_> = stim.steps.iter().take(48).collect();
        if steps.is_empty() {
            return Ok(());
        }
        let inject_at = step_pick % steps.len();
        let inputs = &design.inputs;
        let inject_id = inputs[input_pick % inputs.len()];
        let mut saved: Option<LogicVec> = None;

        if let Some(clk) = &stim.clock {
            if trio.poke(clk, LogicVec::from_bool(false), "clk boot").is_err() {
                return Ok(());
            }
        }
        'outer: for (i, step) in steps.iter().enumerate() {
            for (name, value) in step.iter() {
                if trio.poke(name, value.clone(), &format!("step {i}")).is_err() {
                    break 'outer;
                }
            }
            if i == inject_at {
                // Flip one bit of the chosen input to X or Z.
                let mut poisoned = trio.fast.peek(inject_id).clone();
                let bit = bit_pick % poisoned.width();
                saved = Some(poisoned.clone());
                poisoned.set_bit(bit, if use_z { LogicBit::Z } else { LogicBit::X });
                if trio.poke_id(inject_id, poisoned, &format!("inject @{i}")).is_err() {
                    break 'outer;
                }
            }
            if i == inject_at + 2 {
                if let Some(v) = saved.take() {
                    // Recovery: re-drive the defined pre-injection value
                    // (later stimulus steps may re-drive it anyway; this
                    // guarantees the X window closes even when they
                    // don't).
                    if trio.poke_id(inject_id, v, &format!("recover @{i}")).is_err() {
                        break 'outer;
                    }
                }
            }
            if let Some(clk) = &stim.clock {
                if trio.poke(clk, LogicVec::from_bool(true), &format!("step {i} rise")).is_err()
                    || trio.poke(clk, LogicVec::from_bool(false), &format!("step {i} fall")).is_err()
                {
                    break 'outer;
                }
            }
        }
        // Two-state never runs with the fast path disabled or on the
        // tree-walker, whatever the schedule did.
        prop_assert_eq!(trio.four.eval_counts().two_state_evals, 0);
        prop_assert_eq!(trio.four.eval_counts().two_state_fallbacks, 0);
        prop_assert_eq!(trio.legacy.eval_counts().two_state_evals, 0);
    }
}
