//! Differential tests: the bytecode interpreter vs the legacy
//! tree-walking oracle.
//!
//! Every problem in the benchmark corpus — plus mutated candidates of
//! each — is driven through two lock-stepped simulators, one per
//! executor, comparing the **entire value store** (every signal,
//! four-state exact) after boot and after every stimulus step. Faults
//! (combinational loops, edge cascades) must also agree.
//!
//! The corpus and mutation machinery live in downstream crates
//! (`mage-problems`, `mage-llm`), so this test drives them through the
//! workspace root crate's dev-dependencies instead; see
//! `tests/compiled_vs_interp_corpus.rs` at the workspace root for the
//! corpus half. This file covers the hand-written designs exercising
//! every instruction the compiler emits.

use mage_logic::LogicVec;
use mage_sim::{elaborate, Design, ExecMode, SimError, Simulator};
use std::sync::Arc;

/// Drive both executors in lockstep and compare the full store after
/// every poke. Returns the error both agreed on, if any.
fn lockstep(design: &Arc<Design>, schedule: &[(&str, u64)]) -> Option<SimError> {
    let mut fast = Simulator::with_mode(Arc::clone(design), ExecMode::Compiled);
    let mut slow = Simulator::with_mode(Arc::clone(design), ExecMode::Legacy);
    let rf = fast.settle();
    let rs = slow.settle();
    assert_eq!(rf, rs, "settle outcome diverged");
    compare_stores(design, &mut fast, &mut slow, "after boot settle");
    if rf.is_err() {
        return rf.err();
    }
    for (i, (name, value)) in schedule.iter().enumerate() {
        let width = design
            .signal(name)
            .map(|id| design.width(id))
            .expect("schedule drives known signals");
        let v = LogicVec::from_u64(width, *value);
        let rf = fast.poke(name, v.clone());
        let rs = slow.poke(name, v);
        assert_eq!(rf, rs, "poke #{i} ({name}={value}) outcome diverged");
        compare_stores(
            design,
            &mut fast,
            &mut slow,
            &format!("after poke #{i} {name}={value}"),
        );
        if rf.is_err() {
            return rf.err();
        }
        // Edge-free pokes defer their combinational flush: settle both
        // so propagation faults surface (identically) at every step.
        let rf = fast.settle();
        let rs = slow.settle();
        assert_eq!(rf, rs, "settle #{i} ({name}={value}) outcome diverged");
        compare_stores(
            design,
            &mut fast,
            &mut slow,
            &format!("after settle #{i} {name}={value}"),
        );
        if rf.is_err() {
            return rf.err();
        }
    }
    None
}

fn compare_stores(design: &Design, fast: &mut Simulator, slow: &mut Simulator, at: &str) {
    for (ix, decl) in design.signals.iter().enumerate() {
        let id = design.signal(&decl.name).expect("name resolves");
        let _ = ix;
        let (f, s) = (fast.peek(id).clone(), slow.peek(id));
        assert!(
            f.case_eq(s),
            "{at}: signal `{}` diverged\n  compiled: {}\n  legacy:   {}",
            decl.name,
            f.to_binary_string(),
            s.to_binary_string(),
        );
    }
}

fn design_of(src: &str) -> Arc<Design> {
    let file = mage_verilog::parse(src).unwrap();
    let top = file.modules.last().unwrap().name.clone();
    Arc::new(elaborate(&file, &top).unwrap())
}

#[test]
fn alu_every_op() {
    let d = design_of(
        "module top_module(input [3:0] a, input [3:0] b, input [2:0] op, output reg [4:0] r);
           always @(*) begin
             case (op)
               3'd0: r = a + b;
               3'd1: r = a - b;
               3'd2: r = a & b;
               3'd3: r = a | b;
               3'd4: r = a ^ b;
               3'd5: r = {4'b0, a < b};
               3'd6: r = a << b[1:0];
               default: r = {1'b0, ~a};
             endcase
           end
         endmodule",
    );
    let mut schedule = Vec::new();
    for i in 0..256u64 {
        schedule.push(("a", i & 0xF));
        schedule.push(("b", (i >> 4) & 0xF));
        schedule.push(("op", i % 8));
    }
    assert!(lockstep(&d, &schedule).is_none());
}

#[test]
fn sequential_with_reset_and_feedback() {
    let d = design_of(
        "module top_module(input clk, input rst, input [3:0] d, output reg [3:0] q, output [3:0] n);
           always @(posedge clk or posedge rst)
             if (rst) q <= 4'd0;
             else q <= q + d;
           assign n = ~q;
         endmodule",
    );
    let mut schedule = vec![("rst", 1), ("clk", 0), ("clk", 1), ("rst", 0)];
    for i in 0..40u64 {
        schedule.push(("d", i % 16));
        schedule.push(("clk", 0));
        schedule.push(("clk", 1));
    }
    assert!(lockstep(&d, &schedule).is_none());
}

#[test]
fn shift_register_concat_lvalue() {
    let d = design_of(
        "module top_module(input clk, input rst, input d, output reg [7:0] q, output msb);
           always @(posedge clk)
             if (rst) q <= 8'h00;
             else q <= {q[6:0], d};
           assign msb = q[7];
         endmodule",
    );
    let mut schedule = vec![("rst", 1), ("clk", 0), ("clk", 1), ("rst", 0)];
    for i in 0..32u64 {
        schedule.push(("d", (i * 7 + 3) & 1));
        schedule.push(("clk", 0));
        schedule.push(("clk", 1));
    }
    assert!(lockstep(&d, &schedule).is_none());
}

#[test]
fn dynamic_bit_select_read_and_write() {
    let d = design_of(
        "module top_module(input [2:0] idx, input [7:0] a, output reg [7:0] y, output sel);
           always @(*) begin
             y = 8'h00;
             y[idx] = 1'b1;
           end
           assign sel = a[idx];
         endmodule",
    );
    let mut schedule = Vec::new();
    for i in 0..64u64 {
        schedule.push(("idx", i % 8));
        schedule.push(("a", i * 37 % 256));
    }
    assert!(lockstep(&d, &schedule).is_none());
}

#[test]
fn ternary_x_merge_and_logical_ops() {
    // `sel` stays X at boot: the Select instruction must merge branches
    // exactly like the lazy tree-walker's mux.
    let d = design_of(
        "module top_module(input sel, input [3:0] a, input [3:0] b, output [3:0] y, output l);
           assign y = sel ? a : b;
           assign l = (a != 4'd0) && (b < 4'd9) || !sel;
         endmodule",
    );
    // First pokes leave `sel` at X while a/b become defined.
    let schedule = [
        ("a", 5u64),
        ("b", 5),
        ("a", 3),
        ("b", 12),
        ("sel", 1),
        ("sel", 0),
        ("a", 9),
    ];
    assert!(lockstep(&d, &schedule).is_none());
}

#[test]
fn reductions_replication_part_selects() {
    let d = design_of(
        "module top_module(input [7:0] a, output [2:0] r, output [7:0] m, output [3:0] p);
           assign r = {&a, ^a, |a};
           assign m = {4{a[1:0]}} ^ {2{a[7:4]}};
           assign p = a[6:3];
         endmodule",
    );
    let mut schedule = Vec::new();
    for i in 0..128u64 {
        schedule.push(("a", i * 11 % 256));
    }
    assert!(lockstep(&d, &schedule).is_none());
}

#[test]
fn wide_vectors_cross_word_boundary() {
    let d = design_of(
        "module top_module(input clk, input [63:0] a, input [63:0] b, output reg [95:0] acc, output [64:0] s);
           assign s = a + b;
           always @(posedge clk) acc <= {a[31:0], b} + {32'h0, acc[95:32]};
         endmodule",
    );
    let mut schedule = vec![("clk", 0u64)];
    for i in 0..16u64 {
        schedule.push(("a", i.wrapping_mul(0x9E37_79B9_7F4A_7C15)));
        schedule.push(("b", !i));
        schedule.push(("clk", 1));
        schedule.push(("clk", 0));
    }
    let schedule: Vec<(&str, u64)> = schedule;
    assert!(lockstep(&d, &schedule).is_none());
}

#[test]
fn division_modulo_and_x_poisoning() {
    let d = design_of(
        "module top_module(input [7:0] a, input [7:0] b, output [7:0] q, output [7:0] r);
           assign q = a / b;
           assign r = a % b;
         endmodule",
    );
    // b starts X (X-poison paths), then 0 (div-by-zero), then values.
    let schedule = [
        ("a", 200u64),
        ("b", 0),
        ("b", 7),
        ("a", 13),
        ("b", 13),
        ("a", 255),
        ("b", 2),
    ];
    assert!(lockstep(&d, &schedule).is_none());
}

#[test]
fn casez_wildcards_and_priority() {
    let d = design_of(
        "module top_module(input [3:0] r, output reg [1:0] y);
           always @(*) casez (r)
             4'b1???: y = 2'd3;
             4'b01??: y = 2'd2;
             4'b001?: y = 2'd1;
             default: y = 2'd0;
           endcase
         endmodule",
    );
    let schedule: Vec<(&str, u64)> = (0..16).map(|i| ("r", i)).collect();
    assert!(lockstep(&d, &schedule).is_none());
}

#[test]
fn hierarchy_flattened() {
    let d = design_of(
        "module fa(input a, input b, input cin, output s, output cout);
           assign s = a ^ b ^ cin;
           assign cout = (a & b) | (cin & (a ^ b));
         endmodule
         module top_module(input [1:0] x, input [1:0] y, output [2:0] sum);
           wire c0;
           fa f0 (.a(x[0]), .b(y[0]), .cin(1'b0), .s(sum[0]), .cout(c0));
           fa f1 (.a(x[1]), .b(y[1]), .cin(c0), .s(sum[1]), .cout(sum[2]));
         endmodule",
    );
    let mut schedule = Vec::new();
    for x in 0..4u64 {
        for y in 0..4u64 {
            schedule.push(("x", x));
            schedule.push(("y", y));
        }
    }
    assert!(lockstep(&d, &schedule).is_none());
}

#[test]
fn for_loop_unrolled_bit_reverse() {
    let d = design_of(
        "module top_module(input [7:0] a, output reg [7:0] y);
           integer i;
           always @(*) for (i = 0; i < 8; i = i + 1) y[i] = a[7 - i];
         endmodule",
    );
    let schedule: Vec<(&str, u64)> = (0..64).map(|i| ("a", i * 5 % 256)).collect();
    assert!(lockstep(&d, &schedule).is_none());
}

#[test]
fn combinational_loop_faults_identically() {
    let file = mage_verilog::parse(
        "module top_module(input a, output y);
           assign y = a ? ~y : 1'b0;
         endmodule",
    )
    .unwrap();
    let d = Arc::new(elaborate(&file, "top_module").unwrap());
    // a=0 settles; a=1 oscillates: both executors must report the same
    // CombinationalLoop fault.
    let fault = lockstep(&d, &[("a", 0), ("a", 1)]);
    assert!(
        matches!(fault, Some(SimError::CombinationalLoop { .. })),
        "{fault:?}"
    );
}

#[test]
fn clock_divider_cascade_identical() {
    let d = design_of(
        "module top_module(input clk, input rst, output reg c0, output reg c1);
           always @(posedge clk or posedge rst)
             if (rst) c0 <= 1'b0; else c0 <= ~c0;
           always @(posedge c0 or posedge rst)
             if (rst) c1 <= 1'b0; else c1 <= ~c1;
         endmodule",
    );
    let mut schedule = vec![("clk", 0u64), ("rst", 1), ("rst", 0)];
    for _ in 0..16 {
        schedule.push(("clk", 1));
        schedule.push(("clk", 0));
    }
    assert!(lockstep(&d, &schedule).is_none());
}
