//! Event-wheel differential suite: multi-clock designs driven through
//! the wheel scheduler (`ExecMode::Compiled`) and the legacy worklist
//! oracle (`ExecMode::Legacy`) in lockstep, asserting bit-identical
//! stores after every operation — including interleaved `settle()`
//! calls, which the wheel services by draining pending events while the
//! oracle re-evaluates everything.
//!
//! Also pins the wheel's dispatch economics: a settled wheel re-settles
//! with zero process evaluations, and per-edge trigger lists probe no
//! more processes than the oracle's sensitivity scan.

use mage_logic::LogicVec;
use mage_sim::{elaborate, Design, ExecMode, Simulator};
use std::sync::Arc;

fn design_of(src: &str, top: &str) -> Arc<Design> {
    let file = mage_verilog::parse(src).expect("parses");
    Arc::new(elaborate(&file, top).expect("elaborates"))
}

fn v(w: usize, x: u64) -> LogicVec {
    LogicVec::from_u64(w, x)
}

/// One lockstep operation.
enum Op<'a> {
    Poke(&'a str, LogicVec),
    PokeMany(Vec<(&'a str, LogicVec)>),
    Settle,
}

fn compare_stores(design: &Design, fast: &mut Simulator, slow: &mut Simulator, at: &str) {
    for decl in &design.signals {
        let id = design.signal(&decl.name).expect("name resolves");
        let (f, s) = (fast.peek(id).clone(), slow.peek(id));
        assert!(
            f.case_eq(s),
            "at {at}: signal `{}` diverged\n  wheel:  {}\n  legacy: {}",
            decl.name,
            f.to_binary_string(),
            s.to_binary_string(),
        );
    }
}

/// Run `ops` on both schedulers, comparing every signal after each op.
fn lockstep(design: &Arc<Design>, ops: Vec<Op<'_>>) {
    let mut fast = Simulator::with_mode(Arc::clone(design), ExecMode::Compiled);
    let mut slow = Simulator::with_mode(Arc::clone(design), ExecMode::Legacy);
    let rf = fast.settle();
    let rs = slow.settle();
    assert_eq!(rf, rs, "boot settle diverged");
    compare_stores(design, &mut fast, &mut slow, "boot");
    for (i, op) in ops.into_iter().enumerate() {
        let at = format!("op {i}");
        let (rf, rs) = match op {
            Op::Poke(name, val) => (fast.poke(name, val.clone()), slow.poke(name, val)),
            Op::PokeMany(drives) => (
                fast.poke_many(drives.iter().map(|(n, v)| (*n, v.clone()))),
                slow.poke_many(drives.iter().map(|(n, v)| (*n, v.clone()))),
            ),
            Op::Settle => (fast.settle(), slow.settle()),
        };
        assert_eq!(rf, rs, "{at} diverged in result");
        compare_stores(design, &mut fast, &mut slow, &at);
        if rf.is_err() {
            return;
        }
    }
}

const DUAL_COUNTER: &str = "module top(
    input clka, input clkb, input rst,
    input [7:0] da, input [7:0] db,
    output reg [7:0] qa, output reg [15:0] qb,
    output [7:0] mixa, output [15:0] mixb);
  always @(posedge clka or posedge rst)
    if (rst) qa <= 8'h00; else qa <= qa + da;
  always @(posedge clkb or posedge rst)
    if (rst) qb <= 16'h0000; else qb <= qb + {8'h00, db};
  assign mixa = qa ^ da;
  assign mixb = qb + {8'h00, db};
endmodule";

const MIXED_EDGES: &str = "module top(
    input clk, input rst, input [3:0] d,
    output reg [3:0] qp, output reg [3:0] qn, output [3:0] y);
  always @(posedge clk or posedge rst)
    if (rst) qp <= 4'd0; else qp <= d;
  always @(negedge clk)
    qn <= qp + 4'd1;
  assign y = qp ^ qn;
endmodule";

const DIVIDER_CHAIN: &str = "module top(input clk, input rst, output reg c0, output reg c1, output reg c2, output [1:0] lv);
  always @(posedge clk or posedge rst) if (rst) c0 <= 1'b0; else c0 <= ~c0;
  always @(posedge c0 or posedge rst)  if (rst) c1 <= 1'b0; else c1 <= ~c1;
  always @(posedge c1 or posedge rst)  if (rst) c2 <= 1'b0; else c2 <= ~c2;
  assign lv = {c2, c1};
endmodule";

const HANDSHAKE: &str = "module top(
    input clka, input clkb, input rst,
    input [7:0] data, input req,
    output reg ack, output reg [7:0] captured, output busy);
  reg reqa;
  always @(posedge clka or posedge rst)
    if (rst) reqa <= 1'b0; else reqa <= req;
  always @(posedge clkb or posedge rst)
    if (rst) begin ack <= 1'b0; captured <= 8'h00; end
    else begin
      ack <= reqa;
      if (reqa && !ack) captured <= data;
    end
  assign busy = reqa & ~ack;
endmodule";

#[test]
fn dual_clock_counter_lockstep() {
    let d = design_of(DUAL_COUNTER, "top");
    let mut ops = vec![
        Op::PokeMany(vec![
            ("rst", v(1, 1)),
            ("clka", v(1, 0)),
            ("clkb", v(1, 0)),
            ("da", v(8, 3)),
            ("db", v(8, 5)),
        ]),
        Op::Poke("rst", v(1, 0)),
    ];
    // Interleave the two domains at different rates: clka every
    // iteration, clkb every third, with data changing mid-stream.
    for i in 0..12u64 {
        ops.push(Op::Poke("clka", v(1, 1)));
        ops.push(Op::Poke("clka", v(1, 0)));
        if i % 3 == 0 {
            ops.push(Op::Poke("clkb", v(1, 1)));
            ops.push(Op::Poke("clkb", v(1, 0)));
        }
        if i == 6 {
            ops.push(Op::PokeMany(vec![("da", v(8, 7)), ("db", v(8, 11))]));
        }
        ops.push(Op::Settle); // a drained wheel must equal a full re-eval
    }
    // Simultaneous edges on both clocks in one drive batch.
    ops.push(Op::PokeMany(vec![("clka", v(1, 1)), ("clkb", v(1, 1))]));
    ops.push(Op::PokeMany(vec![("clka", v(1, 0)), ("clkb", v(1, 0))]));
    lockstep(&d, ops);
}

#[test]
fn mixed_edge_directions_lockstep() {
    let d = design_of(MIXED_EDGES, "top");
    let mut ops = vec![
        Op::PokeMany(vec![("rst", v(1, 1)), ("clk", v(1, 0)), ("d", v(4, 0))]),
        Op::Poke("rst", v(1, 0)),
    ];
    for i in 0..10u64 {
        ops.push(Op::Poke("d", v(4, i % 16)));
        ops.push(Op::Poke("clk", v(1, 1))); // posedge domain
        ops.push(Op::Poke("clk", v(1, 0))); // negedge domain
    }
    lockstep(&d, ops);
}

#[test]
fn divider_chain_cascade_lockstep() {
    let d = design_of(DIVIDER_CHAIN, "top");
    let mut ops = vec![
        Op::PokeMany(vec![("rst", v(1, 1)), ("clk", v(1, 0))]),
        Op::Poke("rst", v(1, 0)),
    ];
    for _ in 0..16 {
        ops.push(Op::Poke("clk", v(1, 1)));
        ops.push(Op::Poke("clk", v(1, 0)));
    }
    // Mid-stream async reset, then keep clocking.
    ops.push(Op::Poke("rst", v(1, 1)));
    ops.push(Op::Poke("rst", v(1, 0)));
    for _ in 0..8 {
        ops.push(Op::Poke("clk", v(1, 1)));
        ops.push(Op::Settle);
        ops.push(Op::Poke("clk", v(1, 0)));
    }
    lockstep(&d, ops);
}

#[test]
fn handshake_across_domains_lockstep() {
    let d = design_of(HANDSHAKE, "top");
    let mut ops = vec![
        Op::PokeMany(vec![
            ("rst", v(1, 1)),
            ("clka", v(1, 0)),
            ("clkb", v(1, 0)),
            ("req", v(1, 0)),
            ("data", v(8, 0xA5)),
        ]),
        Op::Poke("rst", v(1, 0)),
        Op::Poke("req", v(1, 1)),
    ];
    for i in 0..10u64 {
        // Drift the phases: A leads, B lags by one op.
        ops.push(Op::Poke("clka", v(1, 1)));
        ops.push(Op::Poke("clkb", v(1, 1)));
        ops.push(Op::Poke("clka", v(1, 0)));
        ops.push(Op::Poke("clkb", v(1, 0)));
        if i == 4 {
            ops.push(Op::PokeMany(vec![("req", v(1, 0)), ("data", v(8, 0x3C))]));
        }
        if i == 7 {
            ops.push(Op::Poke("req", v(1, 1)));
        }
    }
    lockstep(&d, ops);
}

#[test]
fn x_boot_edges_lockstep() {
    // First drives out of the all-X boot state make X→0 / X→1 edges;
    // the wheel's edge classifier must agree with the oracle's scan.
    let d = design_of(MIXED_EDGES, "top");
    lockstep(
        &d,
        vec![
            Op::Poke("clk", v(1, 1)), // X→1: posedge
            Op::Poke("clk", v(1, 0)), // 1→0: negedge
            Op::Poke("rst", v(1, 1)),
            Op::Poke("rst", v(1, 0)),
            Op::Poke("d", v(4, 9)),
            Op::Poke("clk", v(1, 1)),
        ],
    );
}

#[test]
fn poke_before_first_settle_stays_lockstep() {
    // No boot settle: the first poke must service the time-zero events
    // in both schedulers — the wheel drains its pending all-comb
    // region, the oracle's first propagating poke evaluates everything.
    // Without this, outputs untouched by the poke (z here) would read 0
    // on the wheel but X on the oracle.
    let d = design_of(
        "module top(input a, input clk, output y, output z, output reg q);
           assign y = ~a;
           assign z = 1'b0;
           always @(posedge clk) q <= a;
         endmodule",
        "top",
    );
    let mut fast = Simulator::with_mode(Arc::clone(&d), ExecMode::Compiled);
    let mut slow = Simulator::with_mode(Arc::clone(&d), ExecMode::Legacy);
    let (rf, rs) = (fast.poke("a", v(1, 1)), slow.poke("a", v(1, 1)));
    assert_eq!(rf, rs);
    compare_stores(&d, &mut fast, &mut slow, "first poke without settle");
    assert_eq!(
        fast.peek_by_name("z").unwrap().to_u64(),
        Some(0),
        "time-zero events must have evaluated the constant driver"
    );
    let (rf, rs) = (fast.poke("clk", v(1, 1)), slow.poke("clk", v(1, 1)));
    assert_eq!(rf, rs);
    compare_stores(&d, &mut fast, &mut slow, "clock edge after unsettled boot");

    // Same for a first poke_many, on fresh simulators.
    let mut fast = Simulator::with_mode(Arc::clone(&d), ExecMode::Compiled);
    let mut slow = Simulator::with_mode(Arc::clone(&d), ExecMode::Legacy);
    let drives = [("a", v(1, 1)), ("clk", v(1, 1))];
    let rf = fast.poke_many(drives.iter().map(|(n, x)| (*n, x.clone())));
    let rs = slow.poke_many(drives.iter().map(|(n, x)| (*n, x.clone())));
    assert_eq!(rf, rs);
    compare_stores(&d, &mut fast, &mut slow, "first poke_many without settle");
}

#[test]
fn failed_drive_batch_is_a_noop_in_both_schedulers() {
    // A batch with an unknown name must apply nothing: no store write,
    // no pending events. Both schedulers then stay lockstep through
    // later settles and pokes (the wheel's persistent event queue must
    // not retain triggers from the rejected batch).
    let d = design_of(MIXED_EDGES, "top");
    let mut fast = Simulator::with_mode(Arc::clone(&d), ExecMode::Compiled);
    let mut slow = Simulator::with_mode(Arc::clone(&d), ExecMode::Legacy);
    fast.settle().unwrap();
    slow.settle().unwrap();
    for sim in [&mut fast, &mut slow] {
        sim.poke_many([("rst", v(1, 1)), ("clk", v(1, 0)), ("d", v(4, 0))])
            .unwrap();
        sim.poke("rst", v(1, 0)).unwrap();
        let err = sim
            .poke_many([("clk", v(1, 1)), ("nonexistent", v(1, 1))])
            .unwrap_err();
        assert!(matches!(err, mage_sim::SimError::UnknownInput(_)));
    }
    compare_stores(&d, &mut fast, &mut slow, "after rejected batch");
    assert_eq!(
        fast.peek_by_name("qp").unwrap().to_u64(),
        Some(0),
        "the clk edge of the rejected batch must not have fired"
    );
    let (rf, rs) = (fast.settle(), slow.settle());
    assert_eq!(rf, rs);
    compare_stores(&d, &mut fast, &mut slow, "settle after rejected batch");
    for (f, s) in [
        (fast.poke("d", v(4, 5)), slow.poke("d", v(4, 5))),
        (fast.poke("clk", v(1, 1)), slow.poke("clk", v(1, 1))),
    ] {
        assert_eq!(f, s);
    }
    compare_stores(&d, &mut fast, &mut slow, "poke after rejected batch");
}

#[test]
fn standing_fault_keeps_reporting_on_resettle() {
    // A definite-valued combinational loop faults every settle on the
    // oracle (full re-evaluation re-detects it); the wheel keeps the
    // faulting events pending, so its settle must also keep erroring
    // rather than silently reporting Ok after the first fault.
    let d = design_of(
        "module top(input a, output y); assign y = a ? ~y : 1'b0; endmodule",
        "top",
    );
    for mode in [ExecMode::Compiled, ExecMode::Legacy] {
        let mut s = Simulator::with_mode(Arc::clone(&d), mode);
        s.settle().unwrap();
        s.poke("a", v(1, 0)).unwrap();
        // Flush a=0 so y reaches a *defined* value — lazy coalescing
        // would otherwise skip straight to a=1 with y still X, where
        // X = ~X is a fixpoint and the loop never excites.
        s.settle().unwrap();
        // The edge-free poke defers; the loop faults at the flush.
        assert!(
            s.poke("a", v(1, 1)).and_then(|()| s.settle()).is_err(),
            "{mode:?}: loop must fault"
        );
        for _ in 0..3 {
            assert!(
                s.settle().is_err(),
                "{mode:?}: a standing fault must keep reporting on settle"
            );
        }
    }
}

#[test]
fn settled_wheel_drains_in_constant_work() {
    let d = design_of(DUAL_COUNTER, "top");
    let mut s = Simulator::with_mode(Arc::clone(&d), ExecMode::Compiled);
    s.settle().unwrap();
    s.poke_many([("rst", v(1, 1)), ("clka", v(1, 0)), ("clkb", v(1, 0))])
        .unwrap();
    s.poke("rst", v(1, 0)).unwrap();
    s.reset_eval_counts();
    for _ in 0..100 {
        s.settle().unwrap();
    }
    assert_eq!(
        s.eval_counts().total_evals(),
        0,
        "settled wheel must drain without evaluating anything"
    );
}

#[test]
fn per_edge_triggers_probe_no_more_than_legacy_scan() {
    // MIXED_EDGES has a posedge and a negedge process on one clock: the
    // oracle scans both per clock change, the wheel probes only the
    // matching direction's list.
    let d = design_of(MIXED_EDGES, "top");
    let run = |mode: ExecMode| {
        let mut s = Simulator::with_mode(Arc::clone(&d), mode);
        s.settle().unwrap();
        s.poke_many([("rst", v(1, 1)), ("clk", v(1, 0)), ("d", v(4, 0))])
            .unwrap();
        s.poke("rst", v(1, 0)).unwrap();
        s.reset_eval_counts();
        for i in 0..16u64 {
            s.poke("d", v(4, i)).unwrap();
            s.poke("clk", v(1, 1)).unwrap();
            s.poke("clk", v(1, 0)).unwrap();
        }
        s.eval_counts()
    };
    let wheel = run(ExecMode::Compiled);
    let legacy = run(ExecMode::Legacy);
    assert_eq!(
        wheel.total_evals(),
        legacy.total_evals(),
        "both schedulers run the same process evaluations"
    );
    assert!(
        wheel.edge_probes < legacy.edge_probes,
        "per-edge lists must probe strictly fewer processes than the \
         full sensitivity scan (wheel {} vs legacy {})",
        wheel.edge_probes,
        legacy.edge_probes
    );
}

#[test]
fn untouched_domain_not_evaluated_per_edge() {
    let d = design_of(DUAL_COUNTER, "top");
    let mut s = Simulator::with_mode(Arc::clone(&d), ExecMode::Compiled);
    s.settle().unwrap();
    s.poke_many([
        ("rst", v(1, 1)),
        ("clka", v(1, 0)),
        ("clkb", v(1, 0)),
        ("da", v(8, 1)),
        ("db", v(8, 1)),
    ])
    .unwrap();
    s.poke("rst", v(1, 0)).unwrap();
    s.reset_eval_counts();
    for _ in 0..8 {
        s.poke("clka", v(1, 1)).unwrap();
        s.poke("clka", v(1, 0)).unwrap();
    }
    let c = s.eval_counts();
    // Per clka cycle: one seq eval (posedge only) and one comb re-eval
    // of qa's fanout (`mixa`). Domain B contributes nothing.
    assert_eq!(c.seq_evals, 8, "domain A's flop once per posedge");
    assert_eq!(
        c.comb_evals, 8,
        "only qa's comb fanout re-evaluates; domain B and mixb stay idle"
    );
}
