//! Engine configuration.

use mage_llm::SamplingParams;

/// Which system protocol to run — the paper's ablation axis (Table III)
/// plus the AIVRIL-style two-agent baseline of Table II.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SystemKind {
    /// One-pass generation, no testbench, no debugging (Table III (a)).
    Vanilla,
    /// The full MAGE workflow but every task shares ONE conversation
    /// history (Table III (b)).
    SingleAgent,
    /// AIVRIL-style split: a generation context (RTL + testbench) and a
    /// review context (judge + debug), with pass-rate-only feedback.
    TwoAgent,
    /// The full MAGE system: four isolated agents, checkpoint feedback
    /// (Table III (c)).
    Mage,
}

impl SystemKind {
    /// Display name used in result tables.
    pub fn name(self) -> &'static str {
        match self {
            SystemKind::Vanilla => "Vanilla LLM",
            SystemKind::SingleAgent => "Single-Agent",
            SystemKind::TwoAgent => "Two-Agent (AIVRIL-style)",
            SystemKind::Mage => "MAGE (Multi-Agent)",
        }
    }
}

impl std::fmt::Display for SystemKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// Engine parameters, defaulting to the paper's configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct MageConfig {
    /// Which protocol to run.
    pub system: SystemKind,
    /// Sampling parameters for every model call.
    pub sampling: SamplingParams,
    /// Candidates sampled in Step 4 (`c` in Eq. 1; the paper's Fig. 1
    /// illustrates c = 4).
    pub candidates: usize,
    /// Top-K candidates kept for debugging (Eq. 3).
    pub top_k: usize,
    /// Debug rounds in Step 5 (iteration limit of Eq. 4).
    pub max_debug_rounds: usize,
    /// Syntax-repair iterations per generation (`s = 5` in §III-A).
    pub syntax_retries: usize,
    /// Checkpoint window length `L_W` (Eq. 6).
    pub window_lw: usize,
    /// Maximum testbench regenerations after judge rejections (Step 3).
    pub tb_regen_limit: usize,
    /// Per-agent conversation budget in approximate tokens. When set,
    /// each agent's history is compacted (oldest messages elided into a
    /// summary stub) whenever it grows past the budget, bounding the
    /// memory a long debug loop holds — essential when hundreds of
    /// solves are in flight at once. `None` (the default) keeps full
    /// transcripts, preserving the paper-faithful behaviour.
    pub context_budget: Option<usize>,
}

impl MageConfig {
    /// The paper's High-Temperature configuration.
    pub fn high_temperature() -> Self {
        MageConfig {
            sampling: SamplingParams::high(),
            ..Self::default()
        }
    }

    /// The paper's Low-Temperature configuration.
    pub fn low_temperature() -> Self {
        MageConfig {
            sampling: SamplingParams::low(),
            ..Self::default()
        }
    }

    /// Same config with a different system protocol.
    pub fn with_system(mut self, system: SystemKind) -> Self {
        self.system = system;
        self
    }

    /// Same config with a per-agent conversation token budget.
    pub fn with_context_budget(mut self, budget: usize) -> Self {
        self.context_budget = Some(budget);
        self
    }
}

impl Default for MageConfig {
    fn default() -> Self {
        MageConfig {
            system: SystemKind::Mage,
            sampling: SamplingParams::high(),
            candidates: 4,
            top_k: 3,
            max_debug_rounds: 5,
            syntax_retries: 5,
            window_lw: 5,
            tb_regen_limit: 2,
            context_budget: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = MageConfig::default();
        assert_eq!(c.syntax_retries, 5, "s = 5 per §III-A");
        assert_eq!(c.window_lw, 5);
        assert_eq!(c.candidates, 4, "c = 4 per Fig. 1");
        assert_eq!(c.system, SystemKind::Mage);
        assert_eq!(MageConfig::high_temperature().sampling.temperature, 0.85);
        assert_eq!(MageConfig::low_temperature().sampling.temperature, 0.0);
    }

    #[test]
    fn with_system_rebinds() {
        let c = MageConfig::default().with_system(SystemKind::Vanilla);
        assert_eq!(c.system, SystemKind::Vanilla);
    }
}
