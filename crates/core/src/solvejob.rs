//! The resumable solve: MAGE's five-step workflow as an explicit state
//! machine.
//!
//! [`Mage::solve`](crate::Mage::solve) runs the workflow as one blocking
//! call — fine for a single evaluation, useless for a server that wants
//! to run hundreds of solves concurrently, coalesce their model calls
//! into batched dispatches, and share simulation work between them. This
//! module inverts the control flow: a [`SolveJob`] owns all per-solve
//! state (conversations, candidate pool, score cache, the partial
//! trace) and exposes one method, [`SolveJob::advance`], which consumes
//! the answer to the previous request and yields the next one:
//!
//! ```text
//!   advance(Start)            -> NeedLlm(request)
//!   advance(Llm(response))    -> NeedSim(candidate)   | NeedLlm(..) | Done(trace)
//!   advance(Sim(outcome))     -> NeedLlm(request)     | NeedSim(..) | Done(trace)
//! ```
//!
//! The driver — [`Mage::solve`](crate::Mage::solve) inline, or the
//! `mage-serve` scheduler across many jobs — owns *when and where* each
//! need is satisfied: LLM requests can be queued and batched
//! ([`mage_llm::RtlLanguageModel::generate_batch`]), simulation requests
//! can run on a thread pool against a shared elaboration cache, and the
//! job itself is a plain value: suspend it by simply holding it,
//! checkpoint it by moving it, resume it by calling `advance` again.
//!
//! Fidelity contract: driven single-threaded with scalar model calls,
//! the state machine reproduces the blocking loop **bit for bit** — the
//! same model-call sequence, the same prompts, the same trace. The
//! differential suite (`tests/solvejob_differential.rs`) enforces this
//! against [`Mage::solve_blocking`](crate::Mage::solve_blocking) for
//! every [`SystemKind`].

use crate::config::{MageConfig, SystemKind};
use crate::engine::{
    bench_digest, compile, strip_scoring, AgentRole, Candidate, Contexts, JobOutcome, SolveTrace,
};
use mage_llm::{
    DebugCall, JudgeTbCall, LlmRequest, LlmResponse, RtlGenCall, SyntaxFixCall, TaskKind,
    TbGenCall, TokenUsage,
};
use mage_sim::Design;
use mage_tb::textlog::{render_checkpoint_window, render_summary};
use mage_tb::{run_testbench, TbReport, Testbench};
use std::collections::HashMap;
use std::sync::Arc;

/// What a [`SolveJob`] needs next.
#[derive(Debug)]
pub enum SolveStep {
    /// Resolve this model request (scalar `dispatch` or as part of a
    /// `generate_batch`) and feed the response back as
    /// [`StepInput::Llm`].
    NeedLlm(LlmRequest),
    /// Execute this simulation work ([`execute_sim`], optionally behind
    /// a shared design cache) and feed the outcome back as
    /// [`StepInput::Sim`].
    NeedSim(SimRequest),
    /// The solve is complete; no further input is accepted.
    Done(Box<SolveTrace>),
}

/// A not-yet-dispatched external effect, parked per job by an
/// overlapped scheduler.
///
/// The BSP round engine resolves every [`SolveStep`] within the round
/// that produced it, so a request never outlives its round. A wave
/// scheduler instead *parks* the request — in an LLM queue waiting for
/// the next dispatch point, or in a sim queue waiting for the worker
/// pool — while other jobs advance. This envelope is that parked state:
/// it owns the request, so the job can be checkpointed mid-queue and
/// the request re-enqueued on restore, and the response (arriving out
/// of round) still routes to the right job by its queue tag.
#[derive(Debug, Clone)]
pub enum PendingWork {
    /// An LLM request awaiting the next dispatch point.
    Llm(LlmRequest),
    /// A simulation request awaiting a worker-pool wave.
    Sim(SimRequest),
}

impl SolveStep {
    /// Convert a yielded step into its parked form, or the finished
    /// trace. The overlapped scheduler calls this right after
    /// [`SolveJob::advance`]: a request goes into a wave queue, a
    /// terminal trace retires the job.
    pub fn into_pending(self) -> Result<PendingWork, Box<SolveTrace>> {
        match self {
            SolveStep::NeedLlm(req) => Ok(PendingWork::Llm(req)),
            SolveStep::NeedSim(req) => Ok(PendingWork::Sim(req)),
            SolveStep::Done(trace) => Err(trace),
        }
    }
}

/// The resolved answer to the previously yielded [`SolveStep`].
#[derive(Debug, Clone)]
pub enum StepInput {
    /// Kick off a fresh job (only valid as the first input).
    Start,
    /// Answer to a [`SolveStep::NeedLlm`].
    Llm(LlmResponse),
    /// Answer to a [`SolveStep::NeedSim`].
    Sim(SimOutcome),
}

/// Simulation work requested by a job: compile `source` and, when
/// `bench` is present, score it (Eq. 2). Fully owned, so it can cross
/// thread boundaries to a worker pool.
#[derive(Debug, Clone)]
pub struct SimRequest {
    /// Candidate Verilog source.
    pub source: String,
    /// Already-elaborated design, when the job has one (skips the
    /// compile).
    pub design: Option<Arc<Design>>,
    /// Bench to score against; `None` requests a compile only (the
    /// syntax-repair loop's probe).
    pub bench: Option<Arc<Testbench>>,
    /// Parent-design hint for delta compilation: the design this source
    /// was derived from (a debug trial names the candidate it rewrote).
    /// Executors may reuse the parent's unchanged compilation units
    /// verbatim ([`crate::compile_with_units`]); the hint never changes
    /// the result, only how much of it is rebuilt.
    pub parent: Option<Arc<Design>>,
}

/// The executor's answer to a [`SimRequest`].
#[derive(Debug, Clone)]
pub struct SimOutcome {
    /// Compile result: the elaborated design, or the diagnostic fed to
    /// the syntax-repair loop.
    pub design: Result<Arc<Design>, String>,
    /// The report behind the score, when the bench ran.
    pub report: Option<TbReport>,
    /// Eq. 2 score (0.0 when the compile or the simulation failed).
    pub score: f64,
}

/// Execute one simulation request with the default (uncached) compiler.
/// A [`SimRequest::parent`] hint routes through
/// [`compile_with_units`](crate::compile_with_units), reusing the
/// parent's unchanged compilation units.
pub fn execute_sim(req: &SimRequest) -> SimOutcome {
    execute_sim_with(req, |src| match &req.parent {
        Some(parent) => {
            crate::engine::compile_with_units(src, Some(parent)).map(|(design, _)| design)
        }
        None => compile(src),
    })
}

/// [`execute_sim`] through a per-solve unit pool: compiles route
/// through [`compile_pooled`](crate::engine::compile_pooled), so
/// sibling candidates of one solve reuse each other's unchanged
/// process units (and the parent hint still chains first). Results are
/// bit-identical to [`execute_sim`]; only the elaboration work moves.
pub fn execute_sim_pooled(req: &SimRequest, units: &crate::units::SolveUnits) -> SimOutcome {
    execute_sim_with(req, |src| {
        crate::engine::compile_pooled(src, req.parent.as_ref(), units).map(|(design, _)| design)
    })
}

/// Execute one simulation request, compiling through `compile_fn` —
/// the hook `mage-serve` uses to route compiles through its shared
/// `DesignCache`. `compile_fn` must behave exactly like [`compile`] (a
/// cache of a pure function qualifies); the job's determinism rests on
/// it.
pub fn execute_sim_with(
    req: &SimRequest,
    compile_fn: impl FnOnce(&str) -> Result<Arc<Design>, String>,
) -> SimOutcome {
    let design = match &req.design {
        Some(d) => Ok(Arc::clone(d)),
        None => compile_fn(&req.source),
    };
    let (report, score) = match (&design, &req.bench) {
        (Ok(d), Some(bench)) => match run_testbench(bench, d) {
            Ok(rep) => {
                let s = rep.score();
                (Some(rep), s)
            }
            Err(_) => (None, 0.0),
        },
        _ => (None, 0.0),
    };
    SimOutcome {
        design,
        report,
        score,
    }
}

/// Why a candidate is being generated (what to do once it is scored).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum GenPurpose {
    /// The Step 2 initial candidate.
    Initial,
    /// One Step 4 high-temperature sample.
    Sample,
}

/// What to do with a freshly scored candidate.
#[derive(Debug, Clone, Copy)]
enum ScoreTarget {
    /// Step 2: record the initial score, then judge or finish.
    Initial,
    /// Step 3: the best candidate re-scored against a regenerated bench.
    Rescore {
        /// The retry index of the regenerated bench.
        regen: usize,
    },
    /// Step 4: one sampled candidate joining the pool.
    Sample,
    /// Step 5: a debug trial for `selected[ix]` in `round`.
    Trial { round: usize, ix: usize },
}

/// The control-flow position of a job between `advance` calls.
#[derive(Debug)]
enum Phase {
    /// Created, not yet started.
    Start,
    /// Vanilla baseline: awaiting its single generation.
    VanillaRtl,
    /// Awaiting a testbench (`regen` = retry index).
    TbGen { regen: usize },
    /// Awaiting candidate RTL.
    GenRtl { purpose: GenPurpose },
    /// Awaiting the compile probe of the current source (`fixes` syntax
    /// repairs applied so far).
    GenCompile { purpose: GenPurpose, fixes: usize },
    /// Awaiting a syntax repair.
    GenFix { purpose: GenPurpose, fixes: usize },
    /// Awaiting the judge's verdict on the current bench.
    Judge { regen: usize },
    /// Awaiting the score of `cand`.
    Score {
        target: ScoreTarget,
        cand: Candidate,
    },
    /// Awaiting a debug rewrite of `selected[ix]`.
    DebugLlm { round: usize, ix: usize },
    /// Terminal.
    Finished,
}

/// One MAGE solve as a resumable value. See the module docs for the
/// protocol; see [`crate::Mage::solve`] for the minimal driver.
#[derive(Debug)]
pub struct SolveJob {
    config: MageConfig,
    problem_id: String,
    spec: String,
    ctx: Contexts,
    usage: TokenUsage,
    trace: SolveTrace,
    /// The current optimized bench (shared with emitted requests).
    tb: Option<Arc<Testbench>>,
    /// Digest of the current bench (Step 2 grounding).
    digest: Option<String>,
    /// Per-solve score cache keyed by source hash; cleared on bench
    /// regeneration, exactly like the blocking loop's.
    score_cache: HashMap<u64, Candidate>,
    /// Best candidate so far (Step 2/3).
    best: Option<Candidate>,
    /// Step 4 sampling pool.
    pool: Vec<Candidate>,
    /// Step 5 selected set.
    selected: Vec<Candidate>,
    /// Source under generation/repair.
    gen_source: String,
    /// Prompt of the outstanding LLM request (recorded with its reply).
    pending_prompt: String,
    /// Count of `advance` calls accepted so far — the job's position on
    /// its own timeline. Pure bookkeeping for schedulers (a cluster
    /// rebalancer prefers migrating the job with the most work left);
    /// never read by the state machine itself.
    advances: u64,
    phase: Phase,
}

impl SolveJob {
    /// Create a job for one task. Feed [`StepInput::Start`] to begin.
    pub fn new(problem_id: &str, spec: &str, config: MageConfig) -> Self {
        let ctx = Contexts::new(config.system, config.context_budget);
        let trace = SolveTrace {
            problem_id: problem_id.to_string(),
            final_source: String::new(),
            final_score: 0.0,
            initial_score: None,
            solved_pre_sampling: false,
            sampled_scores: Vec::new(),
            best_sampled_score: None,
            selected_mean_pre_debug: None,
            round_mean_scores: Vec::new(),
            tb_regens: 0,
            syntax_failures: 0,
            usage: TokenUsage::default(),
            peak_context_tokens: 0,
            outcome: JobOutcome::Completed,
        };
        SolveJob {
            config,
            problem_id: problem_id.to_string(),
            spec: spec.to_string(),
            ctx,
            usage: TokenUsage::default(),
            trace,
            tb: None,
            digest: None,
            score_cache: HashMap::new(),
            best: None,
            pool: Vec::new(),
            selected: Vec::new(),
            gen_source: String::new(),
            pending_prompt: String::new(),
            advances: 0,
            phase: Phase::Start,
        }
    }

    /// The problem this job solves.
    pub fn problem_id(&self) -> &str {
        &self.problem_id
    }

    /// The job's engine configuration.
    pub fn config(&self) -> &MageConfig {
        &self.config
    }

    /// `true` once [`SolveStep::Done`] has been yielded.
    pub fn is_finished(&self) -> bool {
        matches!(self.phase, Phase::Finished)
    }

    /// How many [`advance`](Self::advance) calls this job has accepted.
    /// Deterministic at any scheduler boundary — the count depends only
    /// on the job's own input stream, never on placement or timing —
    /// so a cluster can use it to pick migration victims without
    /// perturbing traces.
    pub fn advances(&self) -> u64 {
        self.advances
    }

    /// A stable label for the job's current control-flow position
    /// (report freight; the `Phase` enum itself stays private).
    pub fn phase_name(&self) -> &'static str {
        match &self.phase {
            Phase::Start => "start",
            Phase::VanillaRtl => "vanilla-rtl",
            Phase::TbGen { .. } => "tb-gen",
            Phase::GenRtl { .. } => "gen-rtl",
            Phase::GenCompile { .. } => "gen-compile",
            Phase::GenFix { .. } => "gen-fix",
            Phase::Judge { .. } => "judge",
            Phase::Score { .. } => "score",
            Phase::DebugLlm { .. } => "debug-llm",
            Phase::Finished => "finished",
        }
    }

    /// Terminate the solve early with [`JobOutcome::Failed`], from any
    /// non-finished phase. The fault-tolerant dispatch layer calls this
    /// when a job's retry budget, deadline, or backend pool is
    /// exhausted: the job finishes *as a value* — the partial trace is
    /// closed out with the best candidate seen so far (possibly none)
    /// and the structured `reason` — so the scheduler retires it like
    /// any completed job instead of panicking or hanging.
    ///
    /// Any outstanding request is abandoned; the job accepts no further
    /// input afterwards.
    ///
    /// # Panics
    ///
    /// Panics when the job already finished (a driver bug: a finished
    /// job cannot fail).
    pub fn fail(&mut self, reason: impl Into<String>) -> Box<SolveTrace> {
        assert!(
            !self.is_finished(),
            "SolveJob::fail on `{}`: job already finished",
            self.problem_id
        );
        self.phase = Phase::Finished;
        // Close the trace out with the best evidence gathered so far,
        // mirroring `finish` — a failed job still reports its partial
        // progress (initial score, sampled scores, usage...).
        let best = self.selected.first().cloned().or_else(|| self.best.clone());
        if let Some(best) = best {
            self.trace.final_source = best.source;
            self.trace.final_score = best.score;
        }
        self.trace.usage = self.usage;
        self.trace.peak_context_tokens = self.ctx.peak_tokens;
        self.trace.outcome = JobOutcome::Failed {
            reason: reason.into(),
        };
        Box::new(self.trace.clone())
    }

    /// The (partial until finished) trace.
    pub fn trace(&self) -> &SolveTrace {
        &self.trace
    }

    /// Feed the answer to the previously yielded step and obtain the
    /// next one. The first call must pass [`StepInput::Start`].
    ///
    /// # Panics
    ///
    /// Panics when `input` does not answer the outstanding step (a
    /// driver bug): e.g. a `Sim` outcome while an LLM request is
    /// pending, `Start` on a running job, or any input after `Done`.
    pub fn advance(&mut self, input: StepInput) -> SolveStep {
        self.advances += 1;
        let phase = std::mem::replace(&mut self.phase, Phase::Finished);
        match (phase, input) {
            (Phase::Start, StepInput::Start) => self.start(),

            (Phase::VanillaRtl, StepInput::Llm(resp)) => {
                let out = resp.into_rtl();
                self.usage += out.usage;
                let prompt = std::mem::take(&mut self.pending_prompt);
                self.ctx
                    .record(AgentRole::Rtl, TaskKind::GenerateRtl, &prompt, &out.value);
                self.trace.final_source = out.value;
                self.trace.usage = self.usage;
                self.trace.peak_context_tokens = self.ctx.peak_tokens;
                self.done()
            }

            (Phase::TbGen { regen }, StepInput::Llm(resp)) => {
                let out = resp.into_tb();
                self.usage += out.usage;
                let digest = bench_digest(&out.value);
                let prompt = std::mem::take(&mut self.pending_prompt);
                self.ctx.record(
                    AgentRole::Testbench,
                    TaskKind::GenerateTestbench,
                    &prompt,
                    &digest,
                );
                self.tb = Some(Arc::new(out.value));
                self.digest = Some(digest);
                if regen == 0 {
                    self.begin_gen(GenPurpose::Initial)
                } else {
                    // Step 3 regenerated the bench: old scores are void.
                    self.score_cache.clear();
                    let cand =
                        strip_scoring(self.best.clone().expect("best exists before a regen"));
                    self.begin_score(cand, ScoreTarget::Rescore { regen })
                }
            }

            (Phase::GenRtl { purpose }, StepInput::Llm(resp)) => {
                let out = resp.into_rtl();
                self.usage += out.usage;
                let prompt = std::mem::take(&mut self.pending_prompt);
                self.ctx
                    .record(AgentRole::Rtl, TaskKind::GenerateRtl, &prompt, &out.value);
                self.gen_source = out.value;
                self.emit_compile_probe(purpose, 0)
            }

            (Phase::GenCompile { purpose, fixes }, StepInput::Sim(outcome)) => {
                match outcome.design {
                    Ok(design) => {
                        let cand = Candidate {
                            source: self.gen_source.clone(),
                            design: Some(design),
                            score: 0.0,
                            report: None,
                        };
                        self.begin_score(cand, Self::gen_target(purpose))
                    }
                    Err(err) if fixes < self.config.syntax_retries => {
                        let req = LlmRequest::FixSyntax(SyntaxFixCall {
                            problem_id: self.problem_id.clone(),
                            candidate_source: self.gen_source.clone(),
                            error_text: err,
                            params: self.config.sampling,
                            conversation: self.ctx.conv_arc(AgentRole::Rtl),
                        });
                        self.phase = Phase::GenFix { purpose, fixes };
                        self.emit_llm(req)
                    }
                    Err(_) => {
                        // The final compile after `s` repairs still fails:
                        // carry the broken source forward unscored.
                        self.trace.syntax_failures += 1;
                        let cand = Candidate {
                            source: self.gen_source.clone(),
                            design: None,
                            score: 0.0,
                            report: None,
                        };
                        self.begin_score(cand, Self::gen_target(purpose))
                    }
                }
            }

            (Phase::GenFix { purpose, fixes }, StepInput::Llm(resp)) => {
                let out = resp.into_syntax();
                self.usage += out.usage;
                let prompt = std::mem::take(&mut self.pending_prompt);
                self.ctx
                    .record(AgentRole::Rtl, TaskKind::FixSyntax, &prompt, &out.value);
                self.gen_source = out.value;
                self.emit_compile_probe(purpose, fixes + 1)
            }

            (Phase::Judge { regen }, StepInput::Llm(resp)) => {
                let verdict = resp.into_judge();
                self.usage += verdict.usage;
                let prompt = std::mem::take(&mut self.pending_prompt);
                self.ctx.record(
                    AgentRole::Judge,
                    TaskKind::Judge,
                    &prompt,
                    if verdict.value {
                        "CORRECT"
                    } else {
                        "INCORRECT"
                    },
                );
                if verdict.value {
                    self.begin_sampling()
                } else {
                    self.trace.tb_regens += 1;
                    let req = self.tb_req(regen + 1);
                    self.phase = Phase::TbGen { regen: regen + 1 };
                    self.emit_llm(req)
                }
            }

            (Phase::Score { target, cand }, StepInput::Sim(outcome)) => {
                let scored = Candidate {
                    source: cand.source,
                    design: outcome.design.ok(),
                    score: outcome.score,
                    report: outcome.report,
                };
                self.score_cache
                    .insert(mage_logic::fnv1a(scored.source.as_bytes()), scored.clone());
                self.after_score(scored, target)
            }

            (Phase::DebugLlm { round, ix }, StepInput::Llm(resp)) => {
                let out = resp.into_debug();
                self.usage += out.usage;
                let prompt = std::mem::take(&mut self.pending_prompt);
                self.ctx
                    .record(AgentRole::Debug, TaskKind::DebugRtl, &prompt, &out.value);
                let cand = Candidate {
                    source: out.value,
                    design: None,
                    score: 0.0,
                    report: None,
                };
                self.begin_score(cand, ScoreTarget::Trial { round, ix })
            }

            (phase, input) => panic!(
                "SolveJob protocol violation on `{}`: phase {phase:?} cannot accept {input:?}",
                self.problem_id
            ),
        }
    }

    // ------------------------------------------------------------------
    // Transitions
    // ------------------------------------------------------------------

    fn start(&mut self) -> SolveStep {
        if self.config.system == SystemKind::Vanilla {
            let req = self.rtl_req();
            self.phase = Phase::VanillaRtl;
            return self.emit_llm(req);
        }
        let req = self.tb_req(0);
        self.phase = Phase::TbGen { regen: 0 };
        self.emit_llm(req)
    }

    /// Step 2 / Step 4 entry: request one candidate generation.
    fn begin_gen(&mut self, purpose: GenPurpose) -> SolveStep {
        let req = self.rtl_req();
        self.phase = Phase::GenRtl { purpose };
        self.emit_llm(req)
    }

    /// Probe the current source with a compile-only sim request.
    fn emit_compile_probe(&mut self, purpose: GenPurpose, fixes: usize) -> SolveStep {
        let req = SimRequest {
            source: self.gen_source.clone(),
            design: None,
            bench: None,
            parent: None,
        };
        self.phase = Phase::GenCompile { purpose, fixes };
        SolveStep::NeedSim(req)
    }

    fn gen_target(purpose: GenPurpose) -> ScoreTarget {
        match purpose {
            GenPurpose::Initial => ScoreTarget::Initial,
            GenPurpose::Sample => ScoreTarget::Sample,
        }
    }

    /// Score a candidate (through the per-solve cache) and continue at
    /// `target` once the score is known.
    fn begin_score(&mut self, cand: Candidate, target: ScoreTarget) -> SolveStep {
        let key = mage_logic::fnv1a(cand.source.as_bytes());
        if let Some(hit) = self.score_cache.get(&key) {
            let scored = hit.clone();
            return self.after_score(scored, target);
        }
        // A debug trial rewrites `selected[ix]`: that candidate's design
        // is the delta-compilation parent — everything the rewrite left
        // alone compiles by unit reuse.
        let parent = match target {
            ScoreTarget::Trial { ix, .. } => self.selected.get(ix).and_then(|c| c.design.clone()),
            _ => None,
        };
        let req = SimRequest {
            source: cand.source.clone(),
            design: cand.design.clone(),
            bench: Some(Arc::clone(
                self.tb.as_ref().expect("bench exists when scoring"),
            )),
            parent,
        };
        self.phase = Phase::Score { target, cand };
        SolveStep::NeedSim(req)
    }

    fn after_score(&mut self, scored: Candidate, target: ScoreTarget) -> SolveStep {
        match target {
            ScoreTarget::Initial => {
                self.trace.initial_score = scored.design.is_some().then_some(scored.score);
                let solved = scored.score >= 1.0;
                self.best = Some(scored);
                if solved {
                    self.trace.solved_pre_sampling = true;
                    let best = self.best.clone().expect("just set");
                    self.finish(best)
                } else {
                    self.begin_judge(0)
                }
            }
            ScoreTarget::Rescore { regen } => {
                let solved = scored.score >= 1.0;
                let score = scored.score;
                self.best = Some(scored);
                if solved {
                    self.trace.solved_pre_sampling = true;
                    self.trace.initial_score = Some(score);
                    let best = self.best.clone().expect("just set");
                    self.finish(best)
                } else {
                    self.begin_judge(regen)
                }
            }
            ScoreTarget::Sample => {
                self.trace.sampled_scores.push(scored.score);
                self.pool.push(scored);
                if self.trace.sampled_scores.len() < self.config.candidates {
                    self.begin_gen(GenPurpose::Sample)
                } else {
                    self.select_and_debug()
                }
            }
            ScoreTarget::Trial { round, ix } => {
                // Accept-or-rollback (Eq. 4): keep the better of the two.
                if scored.score > self.selected[ix].score {
                    self.selected[ix] = scored;
                }
                self.debug_next(round, ix + 1)
            }
        }
    }

    /// Step 3: ask the judge about the current bench, unless the regen
    /// budget is exhausted.
    fn begin_judge(&mut self, regen: usize) -> SolveStep {
        if regen >= self.config.tb_regen_limit {
            return self.begin_sampling();
        }
        let evidence = self
            .best
            .as_ref()
            .expect("best exists when judging")
            .report
            .as_ref()
            .map(render_summary)
            .unwrap_or_else(|| "candidate failed to compile".to_string());
        let req = LlmRequest::JudgeTb(JudgeTbCall {
            problem_id: self.problem_id.clone(),
            spec_text: self.spec.clone(),
            testbench: Arc::clone(self.tb.as_ref().expect("bench exists when judging")),
            evidence,
            params: self.config.sampling,
            conversation: self.ctx.conv_arc(AgentRole::Judge),
        });
        self.phase = Phase::Judge { regen };
        self.emit_llm(req)
    }

    /// Step 4 entry: seed the pool with the best candidate so far.
    fn begin_sampling(&mut self) -> SolveStep {
        self.pool = vec![self.best.clone().expect("best exists before sampling")];
        if self.config.candidates == 0 {
            self.select_and_debug()
        } else {
            self.begin_gen(GenPurpose::Sample)
        }
    }

    /// Step 4 ranking + dedup + Top-K selection, then into Step 5.
    fn select_and_debug(&mut self) -> SolveStep {
        let mut pool = std::mem::take(&mut self.pool);
        pool.sort_by(|a, b| b.score.partial_cmp(&a.score).expect("scores are finite"));
        self.trace.best_sampled_score = pool.first().map(|c| c.score);
        // Deduplicate textually identical candidates so the debug stage
        // works K *distinct* chains (duplicates add nothing under Eq. 4).
        let mut seen: Vec<u64> = Vec::new();
        let mut selected: Vec<Candidate> = Vec::new();
        for c in pool {
            let h = mage_logic::fnv1a(c.source.as_bytes());
            if !seen.contains(&h) {
                seen.push(h);
                selected.push(c);
            }
            if selected.len() == self.config.top_k {
                break;
            }
        }
        if selected.first().map(|c| c.score >= 1.0).unwrap_or(false) {
            let best = selected.swap_remove(0);
            return self.finish(best);
        }
        self.trace.selected_mean_pre_debug =
            Some(selected.iter().map(|c| c.score).sum::<f64>() / selected.len().max(1) as f64);
        self.selected = selected;
        self.debug_next(0, 0)
    }

    /// Step 5: find the next debuggable candidate at or after
    /// `selected[ix]` in `round`, or close the round.
    fn debug_next(&mut self, round: usize, mut ix: usize) -> SolveStep {
        if round >= self.config.max_debug_rounds {
            let best = self
                .selected
                .first()
                .cloned()
                .unwrap_or_else(|| self.best.clone().expect("best exists"));
            return self.finish(best);
        }
        while ix < self.selected.len() {
            let cand = &self.selected[ix];
            if cand.score < 1.0 {
                if let Some(report) = cand.report.clone() {
                    // MAGE and the single-agent ablation use the checkpoint
                    // window; the AIVRIL-style baseline only has pass rates.
                    let feedback = match self.config.system {
                        SystemKind::TwoAgent => render_summary(&report),
                        _ => render_checkpoint_window(&report, self.config.window_lw),
                    };
                    let req = LlmRequest::DebugRtl(DebugCall {
                        problem_id: self.problem_id.clone(),
                        candidate_source: cand.source.clone(),
                        feedback_text: feedback,
                        params: self.config.sampling,
                        conversation: self.ctx.conv_arc(AgentRole::Debug),
                    });
                    self.phase = Phase::DebugLlm { round, ix };
                    return self.emit_llm(req);
                }
            }
            ix += 1;
        }
        self.end_of_round(round)
    }

    fn end_of_round(&mut self, round: usize) -> SolveStep {
        self.selected
            .sort_by(|a, b| b.score.partial_cmp(&a.score).expect("finite"));
        let mean =
            self.selected.iter().map(|c| c.score).sum::<f64>() / self.selected.len().max(1) as f64;
        self.trace.round_mean_scores.push(mean);
        if self
            .selected
            .first()
            .map(|c| c.score >= 1.0)
            .unwrap_or(false)
        {
            let best = self
                .selected
                .first()
                .cloned()
                .expect("non-empty: first() was Some");
            return self.finish(best);
        }
        self.debug_next(round + 1, 0)
    }

    fn finish(&mut self, best: Candidate) -> SolveStep {
        self.trace.final_source = best.source;
        self.trace.final_score = best.score;
        self.trace.usage = self.usage;
        self.trace.peak_context_tokens = self.ctx.peak_tokens;
        self.done()
    }

    fn done(&mut self) -> SolveStep {
        self.phase = Phase::Finished;
        SolveStep::Done(Box::new(self.trace.clone()))
    }

    // ------------------------------------------------------------------
    // Request builders (each snapshots the requesting agent's context)
    // ------------------------------------------------------------------

    fn emit_llm(&mut self, req: LlmRequest) -> SolveStep {
        self.pending_prompt = req.render_prompt();
        SolveStep::NeedLlm(req)
    }

    fn rtl_req(&self) -> LlmRequest {
        LlmRequest::RtlGen(RtlGenCall {
            problem_id: self.problem_id.clone(),
            spec_text: self.spec.clone(),
            testbench_digest: self.digest.clone(),
            params: self.config.sampling,
            conversation: self.ctx.conv_arc(AgentRole::Rtl),
        })
    }

    fn tb_req(&self, retry: usize) -> LlmRequest {
        LlmRequest::TbGen(TbGenCall {
            problem_id: self.problem_id.clone(),
            spec_text: self.spec.clone(),
            retry,
            params: self.config.sampling,
            conversation: self.ctx.conv_arc(AgentRole::Testbench),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mage_llm::{ProblemOracle, RtlLanguageModel, SyntheticModel, SyntheticModelConfig};
    use mage_tb::Stimulus;
    use mage_verilog::parse;

    fn fixture_model(difficulty: f64, seed: u64) -> SyntheticModel {
        let golden = parse(
            "module top_module(input [3:0] a, input [3:0] b, output [3:0] y);
               assign y = a & b;
             endmodule",
        )
        .unwrap();
        let stim = Stimulus::exhaustive(&[("a".into(), 4), ("b".into(), 4)]);
        let mut m = SyntheticModel::new(SyntheticModelConfig::default(), seed);
        m.register(
            "and4",
            ProblemOracle::new(golden, "top_module", stim, difficulty),
        );
        m
    }

    /// Drive a job to completion with scalar calls, counting steps.
    fn drive(job: &mut SolveJob, model: &mut SyntheticModel) -> (SolveTrace, usize, usize) {
        let (mut llm, mut sim) = (0usize, 0usize);
        let mut step = job.advance(StepInput::Start);
        loop {
            step = match step {
                SolveStep::NeedLlm(req) => {
                    llm += 1;
                    let resp = model.dispatch(&req);
                    job.advance(StepInput::Llm(resp))
                }
                SolveStep::NeedSim(req) => {
                    sim += 1;
                    job.advance(StepInput::Sim(execute_sim(&req)))
                }
                SolveStep::Done(trace) => return (*trace, llm, sim),
            };
        }
    }

    #[test]
    fn job_runs_to_completion_and_is_reentrant_safe() {
        let mut model = fixture_model(1.5, 11);
        let mut job = SolveJob::new("and4", "4-bit AND", MageConfig::high_temperature());
        assert!(!job.is_finished());
        let (trace, llm, sim) = drive(&mut job, &mut model);
        assert!(job.is_finished());
        assert_eq!(trace.problem_id, "and4");
        assert!(llm >= 2, "at least bench + candidate: {llm}");
        assert!(sim >= 1);
        assert_eq!(job.trace(), &trace);
    }

    #[test]
    fn job_is_suspendable_mid_solve() {
        // Advance a few steps, move the job (checkpoint), finish later:
        // the trace matches an uninterrupted solve with the same seed.
        let mut m1 = fixture_model(2.0, 5);
        let mut j1 = SolveJob::new("and4", "4-bit AND", MageConfig::high_temperature());
        let (uninterrupted, _, _) = drive(&mut j1, &mut m1);

        let mut m2 = fixture_model(2.0, 5);
        let mut j2 = SolveJob::new("and4", "4-bit AND", MageConfig::high_temperature());
        let mut step = j2.advance(StepInput::Start);
        for _ in 0..3 {
            step = match step {
                SolveStep::NeedLlm(req) => {
                    let resp = m2.dispatch(&req);
                    j2.advance(StepInput::Llm(resp))
                }
                SolveStep::NeedSim(req) => j2.advance(StepInput::Sim(execute_sim(&req))),
                SolveStep::Done(_) => break,
            };
        }
        // "Checkpoint": move the whole job value, then resume.
        let mut resumed: SolveJob = j2;
        let trace = loop {
            step = match step {
                SolveStep::NeedLlm(req) => {
                    let resp = m2.dispatch(&req);
                    resumed.advance(StepInput::Llm(resp))
                }
                SolveStep::NeedSim(req) => resumed.advance(StepInput::Sim(execute_sim(&req))),
                SolveStep::Done(trace) => break *trace,
            };
        };
        assert_eq!(trace, uninterrupted);
    }

    #[test]
    #[should_panic(expected = "protocol violation")]
    fn wrong_input_kind_panics() {
        let mut job = SolveJob::new("and4", "4-bit AND", MageConfig::high_temperature());
        let _ = job.advance(StepInput::Sim(SimOutcome {
            design: Err("nope".into()),
            report: None,
            score: 0.0,
        }));
    }

    #[test]
    fn fail_terminates_with_partial_trace() {
        let mut model = fixture_model(2.0, 5);
        let mut job = SolveJob::new("and4", "4-bit AND", MageConfig::high_temperature());
        let mut step = job.advance(StepInput::Start);
        for _ in 0..3 {
            step = match step {
                SolveStep::NeedLlm(req) => {
                    let resp = model.dispatch(&req);
                    job.advance(StepInput::Llm(resp))
                }
                SolveStep::NeedSim(req) => job.advance(StepInput::Sim(execute_sim(&req))),
                SolveStep::Done(_) => panic!("fixture should not finish in 3 steps"),
            };
        }
        let trace = job.fail("llm retry budget exhausted");
        assert!(job.is_finished());
        assert_eq!(
            trace.outcome,
            crate::JobOutcome::Failed {
                reason: "llm retry budget exhausted".into()
            }
        );
        // Partial evidence survives: six steps in, tokens were spent.
        assert!(trace.usage.prompt > 0);
        assert_eq!(job.trace(), trace.as_ref());
    }

    #[test]
    #[should_panic(expected = "already finished")]
    fn fail_after_finish_panics() {
        let mut model = fixture_model(0.2, 3);
        let mut job = SolveJob::new("and4", "4-bit AND", MageConfig::high_temperature());
        let _ = drive(&mut job, &mut model);
        let _ = job.fail("too late");
    }

    #[test]
    fn compile_only_sim_request_skips_scoring() {
        let req = SimRequest {
            source: "module top_module(input a, output y); assign y = a; endmodule".into(),
            design: None,
            bench: None,
            parent: None,
        };
        let out = execute_sim(&req);
        assert!(out.design.is_ok());
        assert!(out.report.is_none());
        assert_eq!(out.score, 0.0);
    }
}
