//! Evaluation harness and the per-table / per-figure experiment drivers.
//!
//! Grading protocol: the engine's final answer is compiled and run
//! against the *benchmark* testbench — synthesized from the problem's
//! golden design with a fixed stimulus seed the engine never sees
//! (mirroring how VerilogEval grades against its reference bench).

use crate::config::{MageConfig, SystemKind};
use crate::engine::{compile, Mage, SolveTrace, Task};
use crate::metrics::{mean, pass_at_k, Summary};
use mage_llm::{SyntheticModel, SyntheticModelConfig, TokenUsage};
use mage_problems::{suite, Problem, SuiteId};
use mage_tb::{run_testbench, synthesize_testbench, CheckDensity, Testbench};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// Stimulus seed of the grading benches (never used for engine-side
/// stimulus).
pub const GRADE_STIM_SEED: u64 = 0x0D0C_5EED;

/// Options of one suite evaluation.
#[derive(Debug, Clone)]
pub struct EvalOptions {
    /// Which benchmark suite.
    pub suite: SuiteId,
    /// Engine configuration (system protocol + sampling).
    pub engine: MageConfig,
    /// Synthetic-channel configuration.
    pub model: SyntheticModelConfig,
    /// Evaluation runs `n` per problem (the paper uses 1 at Low-T and 20
    /// at High-T).
    pub runs: usize,
    /// Master seed.
    pub seed: u64,
}

impl EvalOptions {
    /// The paper's High-Temperature evaluation (n = 20) of a system.
    pub fn high(suite: SuiteId, system: SystemKind) -> Self {
        EvalOptions {
            suite,
            engine: MageConfig::high_temperature().with_system(system),
            model: SyntheticModelConfig::default(),
            runs: 20,
            seed: 0xCAFE,
        }
    }

    /// The paper's Low-Temperature evaluation (n = 1) of a system.
    pub fn low(suite: SuiteId, system: SystemKind) -> Self {
        EvalOptions {
            suite,
            engine: MageConfig::low_temperature().with_system(system),
            model: SyntheticModelConfig::default(),
            runs: 1,
            seed: 0xCAFE,
        }
    }

    /// Reduce run count (for quick tests and CI).
    pub fn with_runs(mut self, runs: usize) -> Self {
        self.runs = runs;
        self
    }

    /// Change the master seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Per-problem evaluation outcome.
#[derive(Debug, Clone)]
pub struct ProblemEval {
    /// Problem id.
    pub id: String,
    /// Runs executed.
    pub runs: usize,
    /// Runs whose final answer passed the grading bench (`c_p`).
    pub passing: usize,
    /// Eq. 7 pass@1.
    pub pass_at_1: f64,
    /// Traces of every run (figure harnesses mine these).
    pub traces: Vec<SolveTrace>,
}

/// Whole-suite evaluation outcome.
#[derive(Debug, Clone)]
pub struct SuiteEval {
    /// Which suite.
    pub suite: SuiteId,
    /// Which protocol.
    pub system: SystemKind,
    /// Sampling temperature used.
    pub temperature: f64,
    /// Per-problem results in id order.
    pub problems: Vec<ProblemEval>,
    /// Suite pass@1: the mean of per-problem Eq. 7 values.
    pub pass_at_1: f64,
    /// Total token usage across all runs.
    pub usage: TokenUsage,
}

/// Build a problem's grading bench (benchmark-side, fixed seed, and
/// substantially more thorough than anything the agents see).
pub fn grading_bench(problem: &Problem) -> Testbench {
    let oracle = problem.oracle(GRADE_STIM_SEED);
    let stim = problem.grading_stimulus(GRADE_STIM_SEED);
    synthesize_testbench(
        format!("{}-golden", problem.id),
        &oracle.golden_design,
        &stim,
        CheckDensity::EveryStep,
    )
}

/// Process-wide grading-bench cache: one synthesis per problem, shared
/// by every `(problem, run)` evaluation unit and every grade call.
static GRADING_BENCH_CACHE: OnceLock<Mutex<HashMap<String, Arc<Testbench>>>> = OnceLock::new();

/// The cached grading bench of a problem. The bench is a pure function
/// of the problem (the stimulus seed is the fixed [`GRADE_STIM_SEED`]),
/// so caching cannot change any result — it only removes the per-run
/// re-synthesis the serial evaluator paid.
pub fn grading_bench_shared(problem: &Problem) -> Arc<Testbench> {
    let cache = GRADING_BENCH_CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    if let Some(hit) = cache
        .lock()
        .expect("grading cache poisoned")
        .get(problem.id)
    {
        return Arc::clone(hit);
    }
    // Synthesize outside the lock: benches are thousands of simulated
    // steps, and parallel eval units would serialize on a held lock.
    let bench = Arc::new(grading_bench(problem));
    Arc::clone(
        cache
            .lock()
            .expect("grading cache poisoned")
            .entry(problem.id.to_string())
            .or_insert(bench),
    )
}

/// Number of problems with a cached grading bench (test hook).
#[doc(hidden)]
pub fn grading_bench_cache_size() -> usize {
    GRADING_BENCH_CACHE
        .get()
        .map(|c| c.lock().expect("grading cache poisoned").len())
        .unwrap_or(0)
}

/// Grade a final answer against the benchmark bench.
pub fn grade(problem: &Problem, source: &str) -> bool {
    let Ok(design) = compile(source) else {
        return false;
    };
    let bench = grading_bench_shared(problem);
    run_testbench(&bench, &design)
        .map(|r| r.passed())
        .unwrap_or(false)
}

/// The deterministic seed of one `(run, problem)` evaluation unit.
///
/// Each run's seed derives from the master seed exactly as the serial
/// evaluator derived it, decorrelated per problem with a stable FNV-1a
/// hash of the problem id. Because every unit owns its model and RNG,
/// scores and pass@k are **bit-identical** however the units are
/// scheduled — the parallel evaluation below matches a serial
/// `(run, problem)` loop result-for-result.
///
/// Public because the `mage-serve` and `bench_engine` job streams seed
/// their per-job models with the *same* scheme, keeping cross-harness
/// results comparable unit-for-unit.
pub fn unit_seed(master: u64, run: usize, problem_id: &str) -> u64 {
    let run_seed = master.wrapping_add(run as u64).wrapping_mul(0x9E37_79B9);
    run_seed ^ mage_logic::fnv1a(problem_id.as_bytes())
}

/// Evaluate one suite under the given options.
///
/// The `(run, problem)` grid is evaluated in parallel (one independent
/// engine + synthetic model per unit, each with a derived seed); results
/// are folded back in deterministic `(run, problem)` order. Set
/// `RAYON_NUM_THREADS=1` to force serial execution — scores are
/// identical either way.
pub fn evaluate_suite(opts: &EvalOptions) -> SuiteEval {
    use rayon::prelude::*;

    let problems = suite(opts.suite);
    let mut evals: Vec<ProblemEval> = problems
        .iter()
        .map(|p| ProblemEval {
            id: p.id.to_string(),
            runs: opts.runs,
            passing: 0,
            pass_at_1: 0.0,
            traces: Vec::new(),
        })
        .collect();

    let units: Vec<(usize, usize)> = (0..opts.runs)
        .flat_map(|run| (0..problems.len()).map(move |pix| (run, pix)))
        .collect();
    let results: Vec<(usize, SolveTrace, bool)> = units
        .into_par_iter()
        .map(|(run, pix)| {
            let p = &problems[pix];
            let seed = unit_seed(opts.seed, run, p.id);
            let mut model = SyntheticModel::new(opts.model.clone(), seed);
            model.register(p.id, p.oracle(seed));
            let mut engine = Mage::new(&mut model, opts.engine.clone());
            let trace = engine.solve(&Task {
                id: p.id,
                spec: p.spec,
            });
            let passed = grade(p, &trace.final_source);
            (pix, trace, passed)
        })
        .collect();

    let mut usage = TokenUsage::default();
    for (pix, trace, passed) in results {
        usage += trace.usage;
        if passed {
            evals[pix].passing += 1;
        }
        evals[pix].traces.push(trace);
    }

    for e in &mut evals {
        e.pass_at_1 = pass_at_k(e.runs, e.passing, 1);
    }
    let pass_at_1 = mean(&evals.iter().map(|e| e.pass_at_1).collect::<Vec<_>>());
    SuiteEval {
        suite: opts.suite,
        system: opts.engine.system,
        temperature: opts.engine.sampling.temperature,
        problems: evals,
        pass_at_1,
        usage,
    }
}

// ----------------------------------------------------------------------
// Table I — temperature configurations
// ----------------------------------------------------------------------

/// Table I result: MAGE pass rates under both temperature configs on
/// both suites.
#[derive(Debug, Clone)]
pub struct Table1 {
    /// High-T on V1-Human.
    pub high_v1: f64,
    /// High-T on V2.
    pub high_v2: f64,
    /// Low-T on V1-Human.
    pub low_v1: f64,
    /// Low-T on V2.
    pub low_v2: f64,
}

/// Regenerate Table I. `runs_high` scales the n = 20 evaluation (use a
/// smaller value for quick runs).
pub fn table1(runs_high: usize, seed: u64) -> Table1 {
    let h1 = evaluate_suite(
        &EvalOptions::high(SuiteId::V1Human, SystemKind::Mage)
            .with_runs(runs_high)
            .with_seed(seed),
    );
    let h2 = evaluate_suite(
        &EvalOptions::high(SuiteId::V2, SystemKind::Mage)
            .with_runs(runs_high)
            .with_seed(seed),
    );
    let l1 = evaluate_suite(&EvalOptions::low(SuiteId::V1Human, SystemKind::Mage).with_seed(seed));
    let l2 = evaluate_suite(&EvalOptions::low(SuiteId::V2, SystemKind::Mage).with_seed(seed));
    Table1 {
        high_v1: h1.pass_at_1,
        high_v2: h2.pass_at_1,
        low_v1: l1.pass_at_1,
        low_v2: l2.pass_at_1,
    }
}

// ----------------------------------------------------------------------
// Table II — systems comparison
// ----------------------------------------------------------------------

/// One row of Table II.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// System label.
    pub system: String,
    /// Open or closed source (reporting flavor only).
    pub open_source: bool,
    /// Pass@1 on V1-Human (None = not evaluated, as in the paper).
    pub v1: Option<f64>,
    /// Pass@1 on V2.
    pub v2: Option<f64>,
}

/// Table II result.
#[derive(Debug, Clone)]
pub struct Table2 {
    /// Rows in presentation order (baselines first, MAGE last).
    pub rows: Vec<Table2Row>,
}

/// Regenerate Table II: every re-implementable protocol baseline under
/// the identical synthetic channel, best temperature config per system.
pub fn table2(runs_high: usize, seed: u64) -> Table2 {
    let eval_both = |system: SystemKind| -> (f64, f64) {
        let hi1 = evaluate_suite(
            &EvalOptions::high(SuiteId::V1Human, system)
                .with_runs(runs_high)
                .with_seed(seed),
        );
        let lo1 = evaluate_suite(&EvalOptions::low(SuiteId::V1Human, system).with_seed(seed));
        let hi2 = evaluate_suite(
            &EvalOptions::high(SuiteId::V2, system)
                .with_runs(runs_high)
                .with_seed(seed),
        );
        let lo2 = evaluate_suite(&EvalOptions::low(SuiteId::V2, system).with_seed(seed));
        (
            hi1.pass_at_1.max(lo1.pass_at_1),
            hi2.pass_at_1.max(lo2.pass_at_1),
        )
    };
    let (van1, van2) = eval_both(SystemKind::Vanilla);
    let (two1, two2) = eval_both(SystemKind::TwoAgent);
    let (single1, single2) = eval_both(SystemKind::SingleAgent);
    let (mage1, mage2) = eval_both(SystemKind::Mage);
    Table2 {
        rows: vec![
            Table2Row {
                system: "Vanilla (synthetic Claude 3.5 Sonnet)".into(),
                open_source: true,
                v1: Some(van1),
                v2: Some(van2),
            },
            Table2Row {
                system: "AIVRIL-style two-agent".into(),
                open_source: false,
                v1: Some(two1),
                v2: Some(two2),
            },
            Table2Row {
                system: "Single-agent (merged contexts)".into(),
                open_source: true,
                v1: Some(single1),
                v2: Some(single2),
            },
            Table2Row {
                system: "MAGE (ours)".into(),
                open_source: true,
                v1: Some(mage1),
                v2: Some(mage2),
            },
        ],
    }
}

// ----------------------------------------------------------------------
// Table III — agent ablation
// ----------------------------------------------------------------------

/// Table III result: Low-T pass rates of the three configurations on V2.
#[derive(Debug, Clone)]
pub struct Table3 {
    /// Vanilla one-pass.
    pub vanilla: f64,
    /// Single shared-context agent.
    pub single_agent: f64,
    /// Full multi-agent MAGE.
    pub multi_agent: f64,
}

/// Regenerate Table III (Low-Temperature setting, per the paper).
/// `runs` extends the paper's n = 1 to reduce variance when desired.
pub fn table3(runs: usize, seed: u64) -> Table3 {
    let ev = |system| {
        evaluate_suite(
            &EvalOptions::low(SuiteId::V2, system)
                .with_runs(runs)
                .with_seed(seed),
        )
        .pass_at_1
    };
    Table3 {
        vanilla: ev(SystemKind::Vanilla),
        single_agent: ev(SystemKind::SingleAgent),
        multi_agent: ev(SystemKind::Mage),
    }
}

// ----------------------------------------------------------------------
// Fig. 2 — normalized mismatch of best candidate, Low-T vs High-T
// ----------------------------------------------------------------------

/// Per-problem data point of Fig. 2.
#[derive(Debug, Clone)]
pub struct Fig2Point {
    /// Problem id.
    pub id: String,
    /// Normalized mismatch (1 − best score) of the Low-T best candidate.
    pub low_t: f64,
    /// Normalized mismatch of the High-T best candidate (pooled over the
    /// evaluation runs).
    pub high_t: f64,
}

/// Fig. 2 result.
#[derive(Debug, Clone)]
pub struct Fig2 {
    /// Problems that reached Step 4 with residual mismatches.
    pub points: Vec<Fig2Point>,
}

/// Regenerate Fig. 2's distribution data from two suite evaluations.
pub fn fig2(runs_high: usize, seed: u64) -> Fig2 {
    let low = evaluate_suite(&EvalOptions::low(SuiteId::V2, SystemKind::Mage).with_seed(seed));
    let high = evaluate_suite(
        &EvalOptions::high(SuiteId::V2, SystemKind::Mage)
            .with_runs(runs_high)
            .with_seed(seed),
    );
    let mut points = Vec::new();
    for (lo, hi) in low.problems.iter().zip(high.problems.iter()) {
        let best = |traces: &[SolveTrace]| -> Option<f64> {
            let scores: Vec<f64> = traces
                .iter()
                .filter(|t| !t.solved_pre_sampling)
                .filter_map(|t| t.best_sampled_score)
                .collect();
            scores.iter().cloned().fold(None, |acc: Option<f64>, s| {
                Some(acc.map_or(s, |a| a.max(s)))
            })
        };
        let (Some(lo_best), Some(hi_best)) = (best(&lo.traces), best(&hi.traces)) else {
            continue;
        };
        // The paper excludes problems with zero mismatch in both configs.
        if lo_best >= 1.0 && hi_best >= 1.0 {
            continue;
        }
        points.push(Fig2Point {
            id: lo.id.clone(),
            low_t: 1.0 - lo_best,
            high_t: 1.0 - hi_best,
        });
    }
    Fig2 { points }
}

impl Fig2 {
    /// Five-number summaries of the two series.
    pub fn summaries(&self) -> (Summary, Summary) {
        let low: Vec<f64> = self.points.iter().map(|p| p.low_t).collect();
        let high: Vec<f64> = self.points.iter().map(|p| p.high_t).collect();
        (Summary::of(&low), Summary::of(&high))
    }

    /// Fraction of problems where the High-T best candidate has strictly
    /// lower mismatch.
    pub fn high_wins_fraction(&self) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        self.points.iter().filter(|p| p.high_t < p.low_t).count() as f64 / self.points.len() as f64
    }
}

// ----------------------------------------------------------------------
// Fig. 4 — sampling and debugging score improvements
// ----------------------------------------------------------------------

/// Fig. 4 result.
#[derive(Debug, Clone)]
pub struct Fig4 {
    /// Initial-candidate scores (problems entering Step 4).
    pub without_sampling: Vec<f64>,
    /// Best sampled score for the same runs.
    pub with_sampling: Vec<f64>,
    /// Mean score of the selected set after each debug round, averaged
    /// over runs (index = round).
    pub round_means: Vec<f64>,
    /// Mean score entering the debug stage.
    pub initial_debug_mean: f64,
}

/// Regenerate Fig. 4 from a High-T MAGE evaluation of V2.
pub fn fig4(runs_high: usize, seed: u64) -> Fig4 {
    let eval = evaluate_suite(
        &EvalOptions::high(SuiteId::V2, SystemKind::Mage)
            .with_runs(runs_high)
            .with_seed(seed),
    );
    let mut without = Vec::new();
    let mut with_s = Vec::new();
    let mut per_round: Vec<Vec<f64>> = Vec::new();
    let mut entering = Vec::new();
    for p in &eval.problems {
        for t in &p.traces {
            if t.solved_pre_sampling {
                continue;
            }
            if let (Some(init), Some(best)) = (t.initial_score, t.best_sampled_score) {
                without.push(init);
                with_s.push(best);
            }
            if !t.round_mean_scores.is_empty() {
                if let Some(pre) = t.selected_mean_pre_debug {
                    entering.push(pre);
                }
                for (r, s) in t.round_mean_scores.iter().enumerate() {
                    if per_round.len() <= r {
                        per_round.resize(r + 1, Vec::new());
                    }
                    per_round[r].push(*s);
                }
            }
        }
    }
    Fig4 {
        without_sampling: without,
        with_sampling: with_s,
        round_means: per_round.iter().map(|v| mean(v)).collect(),
        initial_debug_mean: mean(&entering),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grading_bench_accepts_golden() {
        let p = mage_problems::by_id("prob001_and2").unwrap();
        assert!(grade(p, p.golden));
        assert!(!grade(
            p,
            "module top_module(input a, input b, output y); assign y = a | b; endmodule"
        ));
        assert!(!grade(p, "not even verilog"));
    }

    #[test]
    fn grading_bench_is_synthesized_once_per_problem() {
        // NB: the cache is process-global and sibling tests insert into
        // it concurrently, so assert only on this problem's entry.
        let p = mage_problems::by_id("prob010_mux2").unwrap();
        let first = grading_bench_shared(p);
        // Repeat grades and bench fetches reuse the same allocation.
        assert!(grade(p, p.golden));
        assert!(grade(p, p.golden));
        let again = grading_bench_shared(p);
        assert!(Arc::ptr_eq(&first, &again), "bench must be cached");
        assert!(grading_bench_cache_size() >= 1);
        // And the cached bench equals a fresh synthesis (purity).
        assert_eq!(*first, grading_bench(p));
    }

    #[test]
    fn tiny_evaluation_runs_end_to_end() {
        // 1 run over V1 at low temperature, vanilla protocol: fast.
        let opts = EvalOptions::low(SuiteId::V1Human, SystemKind::Vanilla).with_seed(1);
        let eval = evaluate_suite(&opts);
        assert_eq!(
            eval.problems.len(),
            mage_problems::suite(SuiteId::V1Human).len()
        );
        assert!(eval.pass_at_1 > 0.2, "vanilla should solve some problems");
        assert!(eval.pass_at_1 < 1.0, "vanilla must not be perfect");
        assert!(eval.usage.total() > 0);
    }

    #[test]
    fn evaluation_is_schedule_deterministic() {
        // Every (run, problem) unit is independently seeded, so two
        // evaluations — whatever the thread interleaving — must agree
        // bit-for-bit on scores, pass counts and token usage.
        let opts = EvalOptions::low(SuiteId::V1Human, SystemKind::Mage)
            .with_runs(2)
            .with_seed(11);
        let a = evaluate_suite(&opts);
        let b = evaluate_suite(&opts);
        assert_eq!(a.pass_at_1, b.pass_at_1);
        assert_eq!(a.usage.total(), b.usage.total());
        for (pa, pb) in a.problems.iter().zip(b.problems.iter()) {
            assert_eq!(pa.passing, pb.passing, "{}", pa.id);
            let fa: Vec<f64> = pa.traces.iter().map(|t| t.final_score).collect();
            let fb: Vec<f64> = pb.traces.iter().map(|t| t.final_score).collect();
            assert_eq!(fa, fb, "{}", pa.id);
        }
    }

    #[test]
    fn mage_beats_vanilla_on_small_sample() {
        let van =
            evaluate_suite(&EvalOptions::low(SuiteId::V1Human, SystemKind::Vanilla).with_seed(7));
        let mage =
            evaluate_suite(&EvalOptions::low(SuiteId::V1Human, SystemKind::Mage).with_seed(7));
        assert!(
            mage.pass_at_1 > van.pass_at_1,
            "MAGE {:.3} must beat vanilla {:.3}",
            mage.pass_at_1,
            van.pass_at_1
        );
    }
}
