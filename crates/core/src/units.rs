//! A per-solve process-unit pool for the solo engine.
//!
//! `mage-serve` shares compilation units across jobs through its
//! `UnitCache` fabric, but the solo [`crate::Mage`] engine compiled
//! every sibling candidate from scratch: the high-temperature samples
//! of one solve routinely share most of their processes (the model
//! rewrites one `always` block and keeps the rest), yet each candidate
//! re-walked every module item through elaboration and lowering.
//!
//! [`SolveUnits`] closes that gap: a solve-lifetime [`UnitSource`]
//! pool, probed by item fingerprint *before* a module item's body is
//! elaborated (see `crates/sim/src/elab.rs`), so a process identical to
//! one seen in any earlier sibling skips the elaboration walk and the
//! lowering both. The pool is advisory by construction — delta
//! elaboration verifies the canonical item text and full binding
//! environment on every hit, and a verified unit is bit-identical to a
//! rebuild — so pooling changes *where* work happens, never what any
//! compile returns. The `MAGE_SIM_DELTA` oracle discipline applies:
//! callers gate on [`mage_sim::delta_enabled`] (see
//! [`crate::compile_pooled`]), and under `MAGE_SIM_DELTA=off` the pool
//! is never consulted.

use mage_sim::{ProcessUnit, UnitKey, UnitSource, UnitTag};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// A solve-lifetime unit pool: every process elaborated for any
/// candidate of one solve is published here and served, fully verified,
/// to later sibling compiles. Unbounded — the working set is one
/// solve's distinct processes, released with the solve.
#[derive(Debug, Default)]
pub struct SolveUnits {
    pool: Mutex<HashMap<UnitKey, (UnitTag, ProcessUnit)>>,
    hits: AtomicUsize,
    misses: AtomicUsize,
}

impl SolveUnits {
    /// An empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Distinct unit keys pooled.
    pub fn len(&self) -> usize {
        self.pool.lock().expect("solve pool poisoned").len()
    }

    /// `true` when nothing is pooled.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookups served from the pool (elaboration walks skipped).
    pub fn hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that fell through to a fresh elaboration.
    pub fn misses(&self) -> usize {
        self.misses.load(Ordering::Relaxed)
    }
}

impl UnitSource for SolveUnits {
    fn lookup(&self, tag: &UnitTag) -> Option<ProcessUnit> {
        let pool = self.pool.lock().expect("solve pool poisoned");
        if let Some((stored, unit)) = pool.get(&tag.key) {
            // Full verification, as every UnitSource must: identical
            // canonical text AND identical binding environment, or the
            // hit is a collision and the item rebuilds.
            if *stored.text == *tag.text && *stored.env == *tag.env {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Some(unit.clone());
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        None
    }

    fn publish(&self, tag: &UnitTag, unit: ProcessUnit) {
        // First insert wins; an identical racer would store an
        // identical unit anyway (units are pure in their tag).
        self.pool
            .lock()
            .expect("solve pool poisoned")
            .entry(tag.key)
            .or_insert_with(|| (tag.clone(), unit));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{compile, compile_pooled};
    use std::sync::Arc;

    const BASE: &str = "module top_module(input clk, input a, input b, \
                        output reg q, output w);\n\
                        wire x;\n\
                        assign x = a & b;\n\
                        assign w = x | a;\n\
                        always @(posedge clk) q <= x;\n\
                        endmodule\n";

    /// Force `MAGE_SIM_DELTA` for the duration of `f` (env vars are
    /// process-global; serialized on one lock).
    fn with_delta<R>(value: &str, f: impl FnOnce() -> R) -> R {
        static LOCK: Mutex<()> = Mutex::new(());
        let _guard = LOCK.lock().unwrap_or_else(|p| p.into_inner());
        let prev = std::env::var("MAGE_SIM_DELTA").ok();
        std::env::set_var("MAGE_SIM_DELTA", value);
        let r = f();
        match prev {
            Some(v) => std::env::set_var("MAGE_SIM_DELTA", v),
            None => std::env::remove_var("MAGE_SIM_DELTA"),
        }
        r
    }

    #[test]
    fn sibling_candidates_reuse_pooled_units() {
        with_delta("on", || {
            let units = SolveUnits::new();
            let (d1, s1) = compile_pooled(BASE, None, &units).expect("elaborates");
            assert_eq!(s1.rebuilt, d1.processes.len(), "cold pool builds all");
            assert_eq!(units.len(), d1.processes.len(), "fresh units pooled");
            // A sibling differing in one process: every other unit is
            // served from the pool, elaboration walk skipped.
            let sibling = BASE.replace("x | a", "x ^ a");
            let (d2, s2) = compile_pooled(&sibling, None, &units).expect("elaborates");
            assert_eq!(s2.reused, d1.processes.len() - 1);
            assert_eq!(s2.rebuilt, 1);
            assert_eq!(units.hits(), d1.processes.len() - 1);
            // Pooled compiles are store-exact against from-scratch.
            let scratch = compile(&sibling).expect("elaborates");
            assert_eq!(d2.processes, scratch.processes);
            assert_eq!(
                format!("{:?}", d2.compiled()),
                format!("{:?}", scratch.compiled()),
            );
        });
    }

    #[test]
    fn parent_hint_chains_ahead_of_the_pool() {
        with_delta("on", || {
            let units = SolveUnits::new();
            let (parent, _) = compile_pooled(BASE, None, &units).expect("elaborates");
            let edited = BASE.replace("x | a", "x ^ a");
            // Parent-first chaining: unchanged units come from the
            // parent design, the edit rebuilds and publishes.
            let before = units.len();
            let (d, stats) =
                compile_pooled(&edited, Some(&Arc::clone(&parent)), &units).expect("elaborates");
            assert_eq!(stats.rebuilt, 1);
            assert!(units.len() > before, "fresh unit published to the pool");
            let scratch = compile(&edited).expect("elaborates");
            assert_eq!(d.processes, scratch.processes);
        });
    }

    #[test]
    fn delta_off_bypasses_the_pool_entirely() {
        with_delta("off", || {
            let units = SolveUnits::new();
            let (d1, _) = compile_pooled(BASE, None, &units).expect("elaborates");
            let sibling = BASE.replace("x | a", "x ^ a");
            let (d2, stats) = compile_pooled(&sibling, None, &units).expect("elaborates");
            assert!(units.is_empty(), "off-oracle must never touch the pool");
            assert_eq!((units.hits(), units.misses()), (0, 0));
            assert_eq!(stats.rebuilt, d2.processes.len());
            assert_eq!(d1.processes.len(), d2.processes.len());
        });
    }

    #[test]
    fn colliding_key_with_different_identity_misses() {
        // Hand-rolled collision: publish under a tag, then look up with
        // the same key but a different environment witness.
        let units = SolveUnits::new();
        with_delta("on", || {
            let (d, _) = compile_pooled(BASE, None, &units).expect("elaborates");
            assert!(!units.is_empty());
            let _ = d;
        });
        let pool = units.pool.lock().unwrap();
        let (tag, _) = pool.values().next().expect("pooled unit").clone();
        drop(pool);
        let mut wrong = tag.clone();
        wrong.env = "m=other;p=;s=[];c=[]".into();
        assert!(
            units.lookup(&wrong).is_none(),
            "unverified identity must miss"
        );
    }
}
