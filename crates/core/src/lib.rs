//! The MAGE engine: a multi-agent system for automated RTL code
//! generation (DAC 2025 reproduction).
//!
//! This crate is the paper's primary contribution: four specialized
//! agents (testbench generation, RTL generation, judging, debugging)
//! orchestrated by the five-step workflow of §III-A, with
//! high-temperature candidate sampling and mismatch-score ranking
//! (§III-B, Eqs. 1–4) and the Verilog-state-checkpoint debugging
//! mechanism (§III-C, Eqs. 5–6).
//!
//! * [`Mage`] — the engine, generic over any [`mage_llm::RtlLanguageModel`];
//! * [`MageConfig`] / [`SystemKind`] — the paper's configurations and the
//!   ablation protocols (vanilla / single-agent / two-agent / multi-agent);
//! * [`experiments`] — the evaluation harness and drivers regenerating
//!   every table and figure of §IV;
//! * [`metrics`] — the unbiased pass@k estimator (Eq. 7);
//! * [`casestudy`] — the Fig. 3 checkpoint-debugging case study.
//!
//! # Quickstart
//!
//! ```
//! use mage_core::{Mage, MageConfig, Task};
//! use mage_llm::{SyntheticModel, SyntheticModelConfig};
//! use mage_problems::by_id;
//!
//! let problem = by_id("prob010_mux2").expect("corpus problem");
//! let mut model = SyntheticModel::new(SyntheticModelConfig::default(), 42);
//! model.register(problem.id, problem.oracle(42));
//!
//! let mut engine = Mage::new(&mut model, MageConfig::high_temperature());
//! let trace = engine.solve(&Task { id: problem.id, spec: problem.spec });
//! assert!(trace.final_score > 0.0);
//! println!("solved with score {:.3}", trace.final_score);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod casestudy;
mod config;
mod engine;
pub mod experiments;
pub mod metrics;
pub mod solvejob;
pub mod tables;
pub mod units;

pub use config::{MageConfig, SystemKind};
pub use engine::{
    compile, compile_pooled, compile_with_provider, compile_with_units, Candidate, JobOutcome,
    Mage, SolveTrace, Task,
};
pub use solvejob::{
    execute_sim, execute_sim_pooled, execute_sim_with, PendingWork, SimOutcome, SimRequest,
    SolveJob, SolveStep, StepInput,
};
pub use units::SolveUnits;
