//! The MAGE orchestrator: the five-step workflow of §III-A.
//!
//! ```text
//! Step 1  Testbench agent emits the optimized (state-checkpoint) bench.
//! Step 2  RTL agent emits the initial candidate, grounded on the bench.
//! Step 3  If the candidate fails, the judge decides whether the BENCH is
//!         at fault and has it regenerated (bounded retries).
//! Step 4  High-temperature sampling: c candidates, simulation-scored
//!         (Eq. 2), top-K selected (Eq. 3).
//! Step 5  Checkpoint debugging: per-candidate debug trials, accepted
//!         only when the score does not regress (Eq. 4), until a perfect
//!         score or the round limit.
//! ```
//!
//! The same engine runs every ablation protocol ([`SystemKind`]): the
//! protocols differ only in how agent roles share conversation contexts
//! and in the feedback format their debugger receives.

use crate::config::{MageConfig, SystemKind};
use crate::units::SolveUnits;
use mage_llm::{
    Conversation, DebugRequest, JudgeTbRequest, ModelOutput, Role, RtlGenRequest, RtlLanguageModel,
    SyntaxFixRequest, TaskKind, TbGenRequest, TokenUsage,
};
use mage_sim::{
    delta_enabled, elaborate, elaborate_with, ChainedUnits, DeltaStats, Design, DesignUnits,
    UnitSource,
};
use mage_tb::textlog::{render_checkpoint_window, render_summary};
use mage_tb::{run_testbench, TbReport, Testbench};
use mage_verilog::parse;
use std::collections::HashMap;
use std::sync::Arc;

/// A generation task handed to the engine: the problem id and its
/// natural-language specification. (The benchmark's golden testbench
/// stays with the *evaluation harness* — the engine never sees it.)
#[derive(Debug, Clone)]
pub struct Task<'a> {
    /// Problem id (keys the synthetic model's oracle).
    pub id: &'a str,
    /// Natural-language specification.
    pub spec: &'a str,
}

/// Agent roles; the protocol maps each to a conversation context.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum AgentRole {
    Testbench,
    Rtl,
    Judge,
    Debug,
}

/// The conversation contexts of one solve, shaped by the protocol.
///
/// Conversations live behind `Arc` so a request snapshot is one
/// refcount bump; [`Contexts::record`] clones-on-write only when a
/// still-held snapshot would otherwise see the mutation.
#[derive(Debug, Clone)]
pub(crate) struct Contexts {
    kind: SystemKind,
    convs: Vec<Arc<Conversation>>,
    /// Per-conversation token budget ([`MageConfig::context_budget`]).
    budget: Option<usize>,
    /// Largest single-conversation token count seen (post-compaction).
    pub(crate) peak_tokens: usize,
}

impl Contexts {
    pub(crate) fn new(kind: SystemKind, budget: Option<usize>) -> Self {
        let n = match kind {
            SystemKind::Vanilla | SystemKind::SingleAgent => 1,
            SystemKind::TwoAgent => 2,
            SystemKind::Mage => 4,
        };
        Contexts {
            kind,
            convs: (0..n).map(|_| Arc::new(Conversation::new())).collect(),
            budget,
            peak_tokens: 0,
        }
    }

    fn index(&self, role: AgentRole) -> usize {
        match self.kind {
            SystemKind::Vanilla | SystemKind::SingleAgent => 0,
            SystemKind::TwoAgent => match role {
                // Generation context vs review context (AIVRIL split).
                AgentRole::Testbench | AgentRole::Rtl => 0,
                AgentRole::Judge | AgentRole::Debug => 1,
            },
            SystemKind::Mage => match role {
                AgentRole::Testbench => 0,
                AgentRole::Rtl => 1,
                AgentRole::Judge => 2,
                AgentRole::Debug => 3,
            },
        }
    }

    pub(crate) fn conv(&self, role: AgentRole) -> &Conversation {
        self.convs[self.index(role)].as_ref()
    }

    /// An `Arc` snapshot of a role's conversation (what owned requests
    /// carry).
    pub(crate) fn conv_arc(&self, role: AgentRole) -> Arc<Conversation> {
        Arc::clone(&self.convs[self.index(role)])
    }

    pub(crate) fn record(&mut self, role: AgentRole, task: TaskKind, prompt: &str, reply: &str) {
        let ix = self.index(role);
        let conv = Arc::make_mut(&mut self.convs[ix]);
        conv.push(Role::User, task, prompt);
        conv.push(Role::Assistant, task, reply);
        if let Some(budget) = self.budget {
            conv.compact_to(budget);
        }
        // Peak of what is actually *held* (post-compaction): the memory
        // bound a budget buys is exactly what this metric verifies.
        self.peak_tokens = self.peak_tokens.max(self.convs[ix].total_tokens());
    }
}

/// One scored candidate.
#[derive(Debug, Clone)]
pub struct Candidate {
    /// Verilog source text.
    pub source: String,
    /// Elaborated design, when the source compiles.
    pub design: Option<Arc<Design>>,
    /// Eq. 2 score against the optimized bench (0 when broken).
    pub score: f64,
    /// The report behind the score, when simulation ran.
    pub report: Option<TbReport>,
}

/// How a solve terminated.
///
/// The blocking loop and a fault-free served run always finish
/// [`JobOutcome::Completed`]; only the fault-tolerant dispatch layer in
/// `mage-serve` produces [`JobOutcome::Failed`] — a job whose LLM
/// retry budget, deadline, or backend pool was exhausted is finished
/// *as a value* (partial trace, structured reason) instead of poisoning
/// the scheduler round it died in.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum JobOutcome {
    /// The workflow ran to its normal end.
    #[default]
    Completed,
    /// The solve was cut short by the serving layer.
    Failed {
        /// Human-readable cause (e.g. `"llm retry budget exhausted: ..."`).
        reason: String,
    },
}

impl JobOutcome {
    /// `true` for [`JobOutcome::Failed`].
    pub fn is_failed(&self) -> bool {
        matches!(self, JobOutcome::Failed { .. })
    }
}

/// The full trace of one engine run on one task (feeds every figure).
///
/// `PartialEq` compares every field bit-for-bit — the differential and
/// determinism suites rely on it.
#[derive(Debug, Clone, PartialEq)]
pub struct SolveTrace {
    /// Problem id.
    pub problem_id: String,
    /// The final answer source.
    pub final_source: String,
    /// Final Eq. 2 score against the optimized bench.
    pub final_score: f64,
    /// Score of the Step 2 initial candidate (None if it never compiled).
    pub initial_score: Option<f64>,
    /// `true` when the initial candidate already passed (no Step 4/5).
    pub solved_pre_sampling: bool,
    /// Scores of the Step 4 sampled candidates.
    pub sampled_scores: Vec<f64>,
    /// Best sampled score (Fig. 4a's "with sampling" series).
    pub best_sampled_score: Option<f64>,
    /// Mean score of the selected set entering Step 5 (Fig. 4b baseline).
    pub selected_mean_pre_debug: Option<f64>,
    /// Mean score of the selected set after each debug round (Fig. 4b).
    pub round_mean_scores: Vec<f64>,
    /// Testbench regenerations triggered by the judge (Step 3).
    pub tb_regens: usize,
    /// Generations abandoned for unrepairable syntax.
    pub syntax_failures: usize,
    /// Total token usage of the run.
    pub usage: TokenUsage,
    /// Largest per-agent conversation (approximate tokens) held at any
    /// point of the run, after any [`MageConfig::context_budget`]
    /// compaction. The memory-accounting metric of long debug loops.
    pub peak_context_tokens: usize,
    /// How the solve terminated (always `Completed` outside the
    /// fault-tolerant serving layer).
    pub outcome: JobOutcome,
}

/// The MAGE engine, generic over the language-model backend.
///
/// # Example
///
/// ```
/// use mage_core::{Mage, MageConfig, Task};
/// use mage_llm::{ProblemOracle, SyntheticModel, SyntheticModelConfig};
/// use mage_tb::Stimulus;
///
/// let golden = mage_verilog::parse(
///     "module top_module(input a, input b, output y); assign y = a ^ b; endmodule",
/// ).unwrap();
/// let stim = Stimulus::exhaustive(&[("a".into(), 1), ("b".into(), 1)]);
/// let mut model = SyntheticModel::new(SyntheticModelConfig::default(), 7);
/// model.register("xor2", ProblemOracle::new(golden, "top_module", stim, 0.4));
///
/// let mut engine = Mage::new(&mut model, MageConfig::high_temperature());
/// let trace = engine.solve(&Task { id: "xor2", spec: "Implement XOR." });
/// assert!(trace.final_score > 0.9);
/// ```
#[derive(Debug)]
pub struct Mage<'m, M: RtlLanguageModel> {
    model: &'m mut M,
    config: MageConfig,
}

impl<'m, M: RtlLanguageModel> Mage<'m, M> {
    /// Create an engine over a backend.
    pub fn new(model: &'m mut M, config: MageConfig) -> Self {
        Mage { model, config }
    }

    /// The engine configuration.
    pub fn config(&self) -> &MageConfig {
        &self.config
    }

    /// Run the workflow on one task.
    ///
    /// This drives the resumable state machine ([`crate::SolveJob`])
    /// to completion with scalar model calls and an inline simulation
    /// executor — the single-job view of exactly what `mage-serve`
    /// schedules across many jobs. [`Mage::solve_blocking`] keeps the
    /// original straight-line loop as the differential oracle; the two
    /// produce bit-identical traces (see `tests/solvejob_differential.rs`).
    pub fn solve(&mut self, task: &Task<'_>) -> SolveTrace {
        let mut job = crate::solvejob::SolveJob::new(task.id, task.spec, self.config.clone());
        // Solve-lifetime unit pool: sibling candidates of this solve
        // share unchanged process units (see [`SolveUnits`]).
        let units = SolveUnits::new();
        let mut step = job.advance(crate::solvejob::StepInput::Start);
        loop {
            step = match step {
                crate::solvejob::SolveStep::NeedLlm(req) => {
                    let resp = self.model.dispatch(&req);
                    // Release the request's conversation snapshot before
                    // advancing, so the job's contexts stay uniquely
                    // owned and record() never needs a copy-on-write
                    // clone of the transcript.
                    drop(req);
                    job.advance(crate::solvejob::StepInput::Llm(resp))
                }
                crate::solvejob::SolveStep::NeedSim(req) => {
                    let outcome = crate::solvejob::execute_sim_pooled(&req, &units);
                    job.advance(crate::solvejob::StepInput::Sim(outcome))
                }
                crate::solvejob::SolveStep::Done(trace) => return *trace,
            };
        }
    }

    /// Run the workflow on one task as one blocking loop.
    ///
    /// This is the pre-state-machine implementation, kept verbatim as
    /// the differential oracle for [`Mage::solve`]: every refactor of
    /// the resumable engine must keep `solve` bit-identical to this.
    pub fn solve_blocking(&mut self, task: &Task<'_>) -> SolveTrace {
        let mut ctx = Contexts::new(self.config.system, self.config.context_budget);
        let mut usage = TokenUsage::default();
        let mut trace = SolveTrace {
            problem_id: task.id.to_string(),
            final_source: String::new(),
            final_score: 0.0,
            initial_score: None,
            solved_pre_sampling: false,
            sampled_scores: Vec::new(),
            best_sampled_score: None,
            selected_mean_pre_debug: None,
            round_mean_scores: Vec::new(),
            tb_regens: 0,
            syntax_failures: 0,
            usage,
            peak_context_tokens: 0,
            outcome: JobOutcome::Completed,
        };

        // --- Vanilla baseline: one pass, nothing else. ---
        if self.config.system == SystemKind::Vanilla {
            let req = RtlGenRequest {
                problem_id: task.id,
                spec_text: task.spec,
                testbench_digest: None,
                params: self.config.sampling,
                conversation: ctx.conv(AgentRole::Rtl),
            };
            let prompt = req.render_prompt();
            let out = self.model.generate_rtl(&req);
            usage += out.usage;
            ctx.record(AgentRole::Rtl, TaskKind::GenerateRtl, &prompt, &out.value);
            trace.final_source = out.value;
            trace.usage = usage;
            trace.peak_context_tokens = ctx.peak_tokens;
            return trace;
        }

        // --- Step 1: optimized testbench. ---
        let mut tb = self.generate_testbench(task, 0, &mut ctx, &mut usage);
        let mut digest = bench_digest(&tb);

        // --- Step 2: initial candidate (with syntax repair). ---
        // Solve-lifetime unit pool: sibling candidates of this solve
        // share unchanged process units (see [`SolveUnits`]).
        let units = SolveUnits::new();
        let mut score_cache: HashMap<u64, Candidate> = HashMap::new();
        let initial = self.generate_candidate(
            task,
            Some(&digest),
            &mut ctx,
            &mut usage,
            &mut trace,
            &units,
        );
        let initial = self.score_candidate(initial, &tb, &mut score_cache, &units);
        trace.initial_score = initial.design.is_some().then_some(initial.score);

        let mut best = initial.clone();
        if best.score >= 1.0 {
            trace.solved_pre_sampling = true;
            return self.finish(trace, best, usage, ctx.peak_tokens);
        }

        // --- Step 3: judge the bench; regenerate when deemed faulty. ---
        for regen in 0..self.config.tb_regen_limit {
            let evidence = best
                .report
                .as_ref()
                .map(render_summary)
                .unwrap_or_else(|| "candidate failed to compile".to_string());
            let req = JudgeTbRequest {
                problem_id: task.id,
                spec_text: task.spec,
                testbench: &tb,
                evidence: &evidence,
                params: self.config.sampling,
                conversation: ctx.conv(AgentRole::Judge),
            };
            let prompt = req.render_prompt();
            let verdict = self.model.judge_testbench(&req);
            usage += verdict.usage;
            ctx.record(
                AgentRole::Judge,
                TaskKind::Judge,
                &prompt,
                if verdict.value {
                    "CORRECT"
                } else {
                    "INCORRECT"
                },
            );
            if verdict.value {
                break;
            }
            trace.tb_regens += 1;
            tb = self.generate_testbench(task, regen + 1, &mut ctx, &mut usage);
            digest = bench_digest(&tb);
            score_cache.clear();
            best = self.score_candidate(strip_scoring(best), &tb, &mut score_cache, &units);
            if best.score >= 1.0 {
                trace.solved_pre_sampling = true;
                trace.initial_score = Some(best.score);
                return self.finish(trace, best, usage, ctx.peak_tokens);
            }
        }

        // --- Step 4: sampling & ranking. ---
        let mut pool: Vec<Candidate> = vec![best.clone()];
        for _ in 0..self.config.candidates {
            let cand = self.generate_candidate(
                task,
                Some(&digest),
                &mut ctx,
                &mut usage,
                &mut trace,
                &units,
            );
            let cand = self.score_candidate(cand, &tb, &mut score_cache, &units);
            trace.sampled_scores.push(cand.score);
            pool.push(cand);
        }
        pool.sort_by(|a, b| b.score.partial_cmp(&a.score).expect("scores are finite"));
        trace.best_sampled_score = pool.first().map(|c| c.score);
        // Deduplicate textually identical candidates so the debug stage
        // works K *distinct* chains (duplicates add nothing under Eq. 4).
        let mut seen: Vec<u64> = Vec::new();
        let mut selected: Vec<Candidate> = Vec::new();
        for c in pool {
            let h = mage_logic::fnv1a(c.source.as_bytes());
            if !seen.contains(&h) {
                seen.push(h);
                selected.push(c);
            }
            if selected.len() == self.config.top_k {
                break;
            }
        }

        if selected.first().map(|c| c.score >= 1.0).unwrap_or(false) {
            let best = selected.swap_remove(0);
            return self.finish(trace, best, usage, ctx.peak_tokens);
        }

        // --- Step 5: debugging with state checkpoints (Eq. 4). ---
        trace.selected_mean_pre_debug =
            Some(selected.iter().map(|c| c.score).sum::<f64>() / selected.len().max(1) as f64);
        for _round in 0..self.config.max_debug_rounds {
            for cand in &mut selected {
                if cand.score >= 1.0 {
                    continue;
                }
                let Some(report) = cand.report.clone() else {
                    continue;
                };
                // MAGE and the single-agent ablation use the checkpoint
                // window; the AIVRIL-style baseline only has pass rates.
                let feedback = match self.config.system {
                    SystemKind::TwoAgent => render_summary(&report),
                    _ => render_checkpoint_window(&report, self.config.window_lw),
                };
                let req = DebugRequest {
                    problem_id: task.id,
                    candidate_source: &cand.source,
                    feedback_text: &feedback,
                    params: self.config.sampling,
                    conversation: ctx.conv(AgentRole::Debug),
                };
                let prompt = req.render_prompt();
                let out = self.model.debug_rtl(&req);
                usage += out.usage;
                ctx.record(AgentRole::Debug, TaskKind::DebugRtl, &prompt, &out.value);
                let trial = self.score_candidate(
                    Candidate {
                        source: out.value,
                        design: None,
                        score: 0.0,
                        report: None,
                    },
                    &tb,
                    &mut score_cache,
                    &units,
                );
                // Accept-or-rollback (Eq. 4): keep the better of the two.
                if trial.score > cand.score {
                    *cand = trial;
                }
            }
            selected.sort_by(|a, b| b.score.partial_cmp(&a.score).expect("finite"));
            let mean = selected.iter().map(|c| c.score).sum::<f64>() / selected.len().max(1) as f64;
            trace.round_mean_scores.push(mean);
            if selected.first().map(|c| c.score >= 1.0).unwrap_or(false) {
                break;
            }
        }

        let best = selected.into_iter().next().unwrap_or(best);
        self.finish(trace, best, usage, ctx.peak_tokens)
    }

    fn finish(
        &self,
        mut trace: SolveTrace,
        best: Candidate,
        usage: TokenUsage,
        peak: usize,
    ) -> SolveTrace {
        trace.final_source = best.source;
        trace.final_score = best.score;
        trace.usage = usage;
        trace.peak_context_tokens = peak;
        trace
    }

    // ------------------------------------------------------------------
    // Agent sub-flows
    // ------------------------------------------------------------------

    fn generate_testbench(
        &mut self,
        task: &Task<'_>,
        retry: usize,
        ctx: &mut Contexts,
        usage: &mut TokenUsage,
    ) -> Testbench {
        let req = TbGenRequest {
            problem_id: task.id,
            spec_text: task.spec,
            retry,
            params: self.config.sampling,
            conversation: ctx.conv(AgentRole::Testbench),
        };
        let prompt = req.render_prompt();
        let out: ModelOutput<Testbench> = self.model.generate_testbench(&req);
        *usage += out.usage;
        let reply = bench_digest(&out.value);
        ctx.record(
            AgentRole::Testbench,
            TaskKind::GenerateTestbench,
            &prompt,
            &reply,
        );
        out.value
    }

    /// Generate one candidate with the `s = 5` syntax-repair loop.
    fn generate_candidate(
        &mut self,
        task: &Task<'_>,
        digest: Option<&str>,
        ctx: &mut Contexts,
        usage: &mut TokenUsage,
        trace: &mut SolveTrace,
        units: &SolveUnits,
    ) -> Candidate {
        let req = RtlGenRequest {
            problem_id: task.id,
            spec_text: task.spec,
            testbench_digest: digest,
            params: self.config.sampling,
            conversation: ctx.conv(AgentRole::Rtl),
        };
        let prompt = req.render_prompt();
        let out = self.model.generate_rtl(&req);
        *usage += out.usage;
        ctx.record(AgentRole::Rtl, TaskKind::GenerateRtl, &prompt, &out.value);
        let mut source = out.value;

        for _attempt in 0..self.config.syntax_retries {
            match compile_pooled(&source, None, units).map(|(d, _)| d) {
                Ok(design) => {
                    return Candidate {
                        source,
                        design: Some(design),
                        score: 0.0,
                        report: None,
                    }
                }
                Err(err) => {
                    let req = SyntaxFixRequest {
                        problem_id: task.id,
                        candidate_source: &source,
                        error_text: &err,
                        params: self.config.sampling,
                        conversation: ctx.conv(AgentRole::Rtl),
                    };
                    let prompt = req.render_prompt();
                    let fixed = self.model.fix_syntax(&req);
                    *usage += fixed.usage;
                    ctx.record(AgentRole::Rtl, TaskKind::FixSyntax, &prompt, &fixed.value);
                    source = fixed.value;
                }
            }
        }
        match compile_pooled(&source, None, units).map(|(d, _)| d) {
            Ok(design) => Candidate {
                source,
                design: Some(design),
                score: 0.0,
                report: None,
            },
            Err(_) => {
                trace.syntax_failures += 1;
                Candidate {
                    source,
                    design: None,
                    score: 0.0,
                    report: None,
                }
            }
        }
    }

    /// Judge-agent tooling: simulate and score a candidate (Eq. 2).
    fn score_candidate(
        &self,
        mut cand: Candidate,
        tb: &Testbench,
        cache: &mut HashMap<u64, Candidate>,
        units: &SolveUnits,
    ) -> Candidate {
        let key = mage_logic::fnv1a(cand.source.as_bytes());
        if let Some(hit) = cache.get(&key) {
            return hit.clone();
        }
        if cand.design.is_none() {
            cand.design = compile_pooled(&cand.source, None, units)
                .ok()
                .map(|(d, _)| d);
        }
        let scored = match &cand.design {
            None => cand,
            Some(design) => match run_testbench(tb, design) {
                Ok(report) => Candidate {
                    score: report.score(),
                    report: Some(report),
                    ..cand
                },
                Err(_) => Candidate {
                    score: 0.0,
                    report: None,
                    ..cand
                },
            },
        };
        cache.insert(key, scored.clone());
        scored
    }
}

/// Compile a candidate: parse and elaborate, with the module named
/// `top_module` (or the last module) as top. The error string is the
/// diagnostic fed to the syntax-repair loop.
pub fn compile(source: &str) -> Result<Arc<Design>, String> {
    compile_with_units(source, None).map(|(design, _)| design)
}

/// [`compile`] with a parent-design hint: when delta compilation is
/// enabled ([`mage_sim::delta_enabled`]) and a parent is given, each
/// process unit unchanged from the parent is reused verbatim and only
/// the edited units are rebuilt — the debug loop's common case, where a
/// candidate differs from the design it was debugged from by one
/// process body. Returns the per-unit reuse counters alongside the
/// design; without a parent (or with `MAGE_SIM_DELTA=off`) the stats
/// report every unit as rebuilt.
pub fn compile_with_units(
    source: &str,
    parent: Option<&Arc<Design>>,
) -> Result<(Arc<Design>, DeltaStats), String> {
    match parent {
        Some(parent) if delta_enabled() => {
            let provider = DesignUnits::new(Arc::clone(parent));
            compile_with_provider(source, &provider)
        }
        _ => {
            let (file, top) = parse_top(source)?;
            elaborate(&file, &top)
                .map(|design| {
                    let stats = DeltaStats {
                        rebuilt: design.processes.len(),
                        ..DeltaStats::default()
                    };
                    (Arc::new(design), stats)
                })
                .map_err(|e| e.to_string())
        }
    }
}

/// [`compile_with_units`] through a per-solve unit pool: when delta
/// compilation is enabled, unchanged units are served from the parent
/// design (chained first, when given) and from `units` — the pool every
/// sibling candidate of one solve publishes to — so identical processes
/// across siblings skip the elaboration walk, not just the lowering.
/// Fresh units are published back to the pool. Pooling never changes
/// the result (every hit is verified against the unit's canonical text
/// and binding environment); under `MAGE_SIM_DELTA=off` the pool is
/// never consulted and this is exactly [`compile_with_units`].
pub fn compile_pooled(
    source: &str,
    parent: Option<&Arc<Design>>,
    units: &SolveUnits,
) -> Result<(Arc<Design>, DeltaStats), String> {
    if !delta_enabled() {
        return compile_with_units(source, parent);
    }
    match parent {
        Some(parent) => {
            let provider = DesignUnits::new(Arc::clone(parent));
            let sources: Vec<&dyn UnitSource> = vec![&provider, units];
            compile_with_provider(source, &ChainedUnits::new(sources))
        }
        None => compile_with_provider(source, units),
    }
}

/// [`compile_with_units`] against an arbitrary unit provider — the hook
/// the serve layer uses to chain the parent design with its shared
/// process-unit cache. The caller owns the [`delta_enabled`] gate: this
/// function always probes `provider`.
pub fn compile_with_provider(
    source: &str,
    provider: &dyn UnitSource,
) -> Result<(Arc<Design>, DeltaStats), String> {
    let (file, top) = parse_top(source)?;
    elaborate_with(&file, &top, provider)
        .map(|(design, stats)| (Arc::new(design), stats))
        .map_err(|e| e.to_string())
}

fn parse_top(source: &str) -> Result<(mage_verilog::SourceFile, String), String> {
    let file = parse(source).map_err(|e| e.to_string())?;
    let top = file
        .module("top_module")
        .map(|m| m.name.clone())
        .or_else(|| file.modules.last().map(|m| m.name.clone()))
        .ok_or_else(|| "no module found".to_string())?;
    Ok((file, top))
}

pub(crate) fn bench_digest(tb: &Testbench) -> String {
    format!(
        "optimized testbench `{}`: {} steps, {} state checkpoints{}",
        tb.name,
        tb.steps.len(),
        tb.total_checks(),
        match tb.all_clocks().as_slice() {
            [] => ", combinational".to_string(),
            [c] => format!(", clocked by `{c}`"),
            many => format!(", clocked by `{}`", many.join("`, `")),
        }
    )
}

pub(crate) fn strip_scoring(c: Candidate) -> Candidate {
    Candidate {
        score: 0.0,
        report: None,
        ..c
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mage_llm::{ProblemOracle, SyntheticModel, SyntheticModelConfig};
    use mage_tb::Stimulus;

    fn fixture_model(difficulty: f64, seed: u64) -> SyntheticModel {
        let golden = parse(
            "module top_module(input [3:0] a, input [3:0] b, output [3:0] y);
               assign y = a & b;
             endmodule",
        )
        .unwrap();
        let stim = Stimulus::exhaustive(&[("a".into(), 4), ("b".into(), 4)]);
        let mut m = SyntheticModel::new(SyntheticModelConfig::default(), seed);
        m.register(
            "and4",
            ProblemOracle::new(golden, "top_module", stim, difficulty),
        );
        m
    }

    #[test]
    fn easy_problem_solves_pre_sampling() {
        let mut model = fixture_model(0.0, 3);
        let mut engine = Mage::new(&mut model, MageConfig::high_temperature());
        let trace = engine.solve(&Task {
            id: "and4",
            spec: "4-bit AND",
        });
        assert_eq!(trace.final_score, 1.0);
        assert!(trace.solved_pre_sampling);
        assert!(trace.usage.total() > 0);
    }

    #[test]
    fn hard_problem_reaches_sampling_and_debugging() {
        let mut sampled_runs = 0usize;
        for seed in 0..8u64 {
            let mut model = fixture_model(3.5, seed);
            let mut engine = Mage::new(&mut model, MageConfig::high_temperature());
            let trace = engine.solve(&Task {
                id: "and4",
                spec: "4-bit AND",
            });
            if trace.solved_pre_sampling {
                continue;
            }
            sampled_runs += 1;
            // Step 4 produced scored candidates.
            assert!(!trace.sampled_scores.is_empty());
            // Debugging rounds were recorded unless sampling hit 1.0.
            assert!(!trace.round_mean_scores.is_empty() || trace.best_sampled_score == Some(1.0));
            // The engine's answer is at least as good as the best sample.
            if let Some(bs) = trace.best_sampled_score {
                assert!(trace.final_score >= bs - 1e-9);
            }
        }
        assert!(
            sampled_runs >= 3,
            "difficulty 3.5 should reach Step 4 in most runs ({sampled_runs}/8)"
        );
    }

    #[test]
    fn vanilla_makes_exactly_one_generation() {
        let mut model = fixture_model(1.0, 5);
        let cfg = MageConfig::low_temperature().with_system(SystemKind::Vanilla);
        let mut engine = Mage::new(&mut model, cfg);
        let trace = engine.solve(&Task {
            id: "and4",
            spec: "4-bit AND",
        });
        assert!(trace.sampled_scores.is_empty());
        assert!(trace.round_mean_scores.is_empty());
        assert_eq!(trace.tb_regens, 0);
        assert!(!trace.final_source.is_empty());
    }

    #[test]
    fn debug_rounds_never_regress() {
        let mut model = fixture_model(2.5, 21);
        let mut engine = Mage::new(&mut model, MageConfig::high_temperature());
        let trace = engine.solve(&Task {
            id: "and4",
            spec: "4-bit AND",
        });
        // Eq. 4 acceptance: mean score per round is non-decreasing.
        for w in trace.round_mean_scores.windows(2) {
            assert!(
                w[1] >= w[0] - 1e-9,
                "round means regressed: {:?}",
                trace.round_mean_scores
            );
        }
    }

    #[test]
    fn compile_reports_errors() {
        assert!(compile("module m(input a, output y assign y = a; endmodule").is_err());
        assert!(compile("module top_module(input a, output y); assign y = a; endmodule").is_ok());
    }

    #[test]
    fn contexts_follow_protocol() {
        let mage = Contexts::new(SystemKind::Mage, None);
        assert_eq!(mage.convs.len(), 4);
        let single = Contexts::new(SystemKind::SingleAgent, None);
        assert_eq!(single.convs.len(), 1);
        let two = Contexts::new(SystemKind::TwoAgent, None);
        assert_eq!(two.index(AgentRole::Rtl), two.index(AgentRole::Testbench));
        assert_eq!(two.index(AgentRole::Judge), two.index(AgentRole::Debug));
        assert_ne!(two.index(AgentRole::Rtl), two.index(AgentRole::Debug));
    }
}
