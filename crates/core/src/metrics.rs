//! Evaluation metrics: the unbiased pass@k estimator (Eq. 7) and small
//! distribution helpers used by the figure harnesses.

/// The unbiased pass@k estimator of Eq. 7:
/// `pass@k = 1 − C(n−c, k) / C(n, k)` for one problem with `c` passing
/// runs out of `n`; the suite metric is the mean over problems.
///
/// # Panics
///
/// Panics when `k > n` or `c > n` — an evaluation-harness bug.
pub fn pass_at_k(n: usize, c: usize, k: usize) -> f64 {
    assert!(k <= n, "pass@k needs k <= n");
    assert!(c <= n, "c <= n");
    if n == 0 {
        return 0.0;
    }
    if c == 0 {
        return 0.0;
    }
    if n - c < k {
        return 1.0;
    }
    // 1 - prod_{i=0}^{k-1} (n-c-i)/(n-i), the numerically stable form.
    let mut prod = 1.0f64;
    for i in 0..k {
        prod *= (n - c - i) as f64 / (n - i) as f64;
    }
    1.0 - prod
}

/// Mean of a slice (0.0 when empty).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Sample standard deviation (0.0 for fewer than two samples).
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    let var = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64;
    var.sqrt()
}

/// Quantile by linear interpolation on a sorted copy (`q` in `[0, 1]`).
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut s: Vec<f64> = xs.to_vec();
    s.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in metrics"));
    let pos = q.clamp(0.0, 1.0) * (s.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        s[lo]
    } else {
        s[lo] + (pos - lo as f64) * (s[hi] - s[lo])
    }
}

/// A five-number summary used when printing figure data as text.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Minimum.
    pub min: f64,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Maximum.
    pub max: f64,
    /// Mean.
    pub mean: f64,
}

impl Summary {
    /// Summarize a sample.
    pub fn of(xs: &[f64]) -> Summary {
        Summary {
            min: quantile(xs, 0.0),
            q1: quantile(xs, 0.25),
            median: quantile(xs, 0.5),
            q3: quantile(xs, 0.75),
            max: quantile(xs, 1.0),
            mean: mean(xs),
        }
    }
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "min {:.3} | q1 {:.3} | med {:.3} | q3 {:.3} | max {:.3} | mean {:.3}",
            self.min, self.q1, self.median, self.q3, self.max, self.mean
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pass_at_1_is_fraction_of_passing_runs() {
        assert!((pass_at_k(20, 10, 1) - 0.5).abs() < 1e-12);
        assert_eq!(pass_at_k(20, 0, 1), 0.0);
        assert_eq!(pass_at_k(20, 20, 1), 1.0);
        assert_eq!(pass_at_k(1, 1, 1), 1.0);
    }

    #[test]
    fn pass_at_k_matches_combinatorics() {
        // n=5, c=2, k=3: 1 - C(3,3)/C(5,3) = 1 - 1/10.
        assert!((pass_at_k(5, 2, 3) - 0.9).abs() < 1e-12);
        // If fewer than k failures exist, guaranteed pass.
        assert_eq!(pass_at_k(5, 3, 3), 1.0);
    }

    #[test]
    fn quantiles_interpolate() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 1.0), 4.0);
        assert!((quantile(&xs, 0.5) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn summary_is_consistent() {
        let xs = [0.2, 0.4, 0.9, 1.0, 0.7];
        let s = Summary::of(&xs);
        assert_eq!(s.min, 0.2);
        assert_eq!(s.max, 1.0);
        assert!((s.mean - 0.64).abs() < 1e-12);
    }

    #[test]
    fn std_dev_basic() {
        assert_eq!(std_dev(&[1.0]), 0.0);
        assert!((std_dev(&[1.0, 3.0]) - std::f64::consts::SQRT_2).abs() < 1e-9);
    }
}
