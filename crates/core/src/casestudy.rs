//! Fig. 3 — the state-checkpoint debugging case study on
//! `prob093_ece241_2014_q3`.
//!
//! Reproduces the paper's narrative end to end: a candidate with the
//! dropped `(c & d)` term in `mux_in[0]` is debugged once per trial,
//! either from the pass-rate summary (Fig. 3b) or from the checkpoint
//! window (Fig. 3c), and the one-shot fix rates are measured.

use crate::engine::compile;
use mage_llm::{
    Conversation, DebugRequest, RtlLanguageModel, SamplingParams, SyntheticModel,
    SyntheticModelConfig,
};
use mage_problems::by_id;
use mage_tb::textlog::{render_checkpoint_window, render_summary};
use mage_tb::{run_testbench, synthesize_testbench, CheckDensity, Testbench};

/// The buggy candidate of the case study: `mux_in[0]` is missing its
/// `(c & d)` term — exactly Fig. 3a.
pub const FIG3_BUGGY: &str = "module top_module(input c, input d, output reg [3:0] mux_in);
  always @(*) begin
    mux_in[0] = (~c & d) | (c & ~d);
    mux_in[1] = 1'b0;
    mux_in[2] = (~c & ~d) | (c & ~d);
    mux_in[3] = c & d;
  end
endmodule";

/// Fig. 3 artifacts.
#[derive(Debug, Clone)]
pub struct Fig3 {
    /// The pass-rate-only log (Fig. 3b, "without checkpoint").
    pub summary_log: String,
    /// The state-checkpoint window (Fig. 3c, "with checkpoint").
    pub checkpoint_log: String,
    /// One-shot fix rate when debugging from the summary.
    pub summary_fix_rate: f64,
    /// One-shot fix rate when debugging from the checkpoint window.
    pub checkpoint_fix_rate: f64,
    /// Trials per arm.
    pub trials: usize,
}

fn case_bench(seed: u64) -> Testbench {
    let p = by_id("prob093_ece241_2014_q3").expect("case-study problem registered");
    let oracle = p.oracle(seed);
    synthesize_testbench(
        p.id,
        &oracle.golden_design,
        &oracle.stimulus,
        CheckDensity::EveryStep,
    )
}

/// Run the case study with `trials` debug attempts per feedback style.
pub fn fig3(trials: usize, seed: u64) -> Fig3 {
    let p = by_id("prob093_ece241_2014_q3").expect("case-study problem registered");
    let tb = case_bench(seed);
    let buggy_design = compile(FIG3_BUGGY).expect("buggy candidate compiles");
    let report = run_testbench(&tb, &buggy_design).expect("interface matches");
    assert!(!report.passed(), "the case-study bug must be observable");

    let summary_log = render_summary(&report);
    let checkpoint_log = render_checkpoint_window(&report, 5);

    let fix_rate = |feedback: &str, arm: u64| -> f64 {
        let mut fixed = 0usize;
        for t in 0..trials {
            let mut model = SyntheticModel::new(
                SyntheticModelConfig::default(),
                seed ^ arm ^ (t as u64) << 8,
            );
            model.register(p.id, p.oracle(seed));
            let conv = Conversation::new();
            let out = model.debug_rtl(&DebugRequest {
                problem_id: p.id,
                candidate_source: FIG3_BUGGY,
                feedback_text: feedback,
                params: SamplingParams::high(),
                conversation: &conv,
            });
            let ok = compile(&out.value)
                .ok()
                .and_then(|d| run_testbench(&tb, &d).ok())
                .map(|r| r.passed())
                .unwrap_or(false);
            fixed += ok as usize;
        }
        fixed as f64 / trials.max(1) as f64
    };

    let summary_fix_rate = fix_rate(&summary_log, 0x5);
    let checkpoint_fix_rate = fix_rate(&checkpoint_log, 0xC);
    Fig3 {
        summary_log,
        checkpoint_log,
        summary_fix_rate,
        checkpoint_fix_rate,
        trials,
    }
}

/// Render the case study like the paper's figure.
pub fn render_fig3(f: &Fig3) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(
        s,
        "FIG 3: RTL Code State Checkpoint case study (Prob093-ece241-2014-q3)"
    );
    let _ = writeln!(
        s,
        "--- (a) RTL module with bug: mux_in[0] missing the (c & d) term ---"
    );
    let _ = writeln!(s, "--- (b) Log WITHOUT checkpoint ---");
    s.push_str(&f.summary_log);
    let _ = writeln!(s, "--- (c) Log WITH checkpoint ---");
    s.push_str(&f.checkpoint_log);
    let _ = writeln!(s, "--- One-shot debug outcome over {} trials ---", f.trials);
    let _ = writeln!(
        s,
        "  debug without checkpoint: {:5.1}% fixed (paper: wrong action, SIMULATION FAILED)",
        f.summary_fix_rate * 100.0
    );
    let _ = writeln!(
        s,
        "  debug with checkpoint:    {:5.1}% fixed (paper: correct action, SIMULATION PASSED)",
        f.checkpoint_fix_rate * 100.0
    );
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_study_reproduces_fig3_shape() {
        let f = fig3(40, 0xF163);
        assert!(
            f.checkpoint_fix_rate > f.summary_fix_rate,
            "checkpoint {:.2} must beat summary {:.2}",
            f.checkpoint_fix_rate,
            f.summary_fix_rate
        );
        assert!(f.checkpoint_fix_rate >= 0.3);
        // The logs carry the paper's distinguishing content.
        assert!(f.checkpoint_log.contains("Expected mux_in"));
        assert!(!f.summary_log.contains("Expected mux_in"));
        let rendered = render_fig3(&f);
        assert!(rendered.contains("State Checkpoint case study"));
    }
}
