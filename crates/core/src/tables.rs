//! Plain-text rendering of the paper's tables and figures.

use crate::experiments::{Fig2, Fig4, Table1, Table2, Table3};
use std::fmt::Write as _;

fn pct(x: f64) -> String {
    format!("{:5.1}", x * 100.0)
}

/// Render Table I in the paper's layout.
pub fn render_table1(t: &Table1) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "TABLE I: Pass rates of temperature configurations in MAGE"
    );
    let _ = writeln!(
        s,
        "{:<12} {:>24} {:>22}",
        "Config", "VerilogEval-Human Pass@1", "VerilogEval-V2 Pass@1"
    );
    let _ = writeln!(
        s,
        "{:<12} {:>24} {:>22}",
        "High Temp",
        pct(t.high_v1),
        pct(t.high_v2)
    );
    let _ = writeln!(
        s,
        "{:<12} {:>24} {:>22}",
        "Low Temp",
        pct(t.low_v1),
        pct(t.low_v2)
    );
    s
}

/// Render Table II in the paper's layout (plus the paper's reported
/// numbers for the systems we cannot re-run, for side-by-side context).
pub fn render_table2(t: &Table2) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "TABLE II: Pass rates of systems under the identical synthetic channel"
    );
    let _ = writeln!(
        s,
        "{:<42} {:>6} {:>10} {:>10}",
        "System", "Open", "V1-Human", "V2"
    );
    for row in &t.rows {
        let _ = writeln!(
            s,
            "{:<42} {:>6} {:>10} {:>10}",
            row.system,
            if row.open_source { "yes" } else { "no" },
            row.v1.map(pct).unwrap_or_else(|| "  N/A".into()),
            row.v2.map(pct).unwrap_or_else(|| "  N/A".into()),
        );
    }
    if let (Some(mage), Some(van)) = (t.rows.last(), t.rows.first()) {
        if let (Some(m1), Some(v1), Some(m2), Some(v2)) = (mage.v1, van.v1, mage.v2, van.v2) {
            let _ = writeln!(
                s,
                "{:<42} {:>6} {:>10} {:>10}",
                "Improvement over vanilla (Δ)",
                "",
                format!("{:+5.1}", (m1 - v1) * 100.0),
                format!("{:+5.1}", (m2 - v2) * 100.0),
            );
        }
    }
    let _ = writeln!(s);
    let _ = writeln!(
        s,
        "Paper-reported reference points (not re-runnable offline):"
    );
    let _ = writeln!(s, "  Claude 3.5 Sonnet vanilla 75.0 / 72.4 | AIVRIL 64.7 / N/A | VerilogCoder N/A / 94.2 | MAGE 94.8 / 95.7");
    s
}

/// Render Table III in the paper's layout.
pub fn render_table3(t: &Table3) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "TABLE III: Multi-agent task distribution ablation (V2, Low-T)"
    );
    let _ = writeln!(s, "{:<24} {:>8} {:>14}", "Config", "Pass%", "Improvement");
    let _ = writeln!(s, "{:<24} {:>8} {:>14}", "Vanilla LLM", pct(t.vanilla), "");
    let _ = writeln!(
        s,
        "{:<24} {:>8} {:>14}",
        "Single-Agent",
        pct(t.single_agent),
        format!("{:+5.1}", (t.single_agent - t.vanilla) * 100.0)
    );
    let _ = writeln!(
        s,
        "{:<24} {:>8} {:>14}",
        "Multi-Agent",
        pct(t.multi_agent),
        format!("{:+5.1}", (t.multi_agent - t.vanilla) * 100.0)
    );
    s
}

/// Render the Fig. 2 distribution data as text (violin-plot substitute).
pub fn render_fig2(f: &Fig2) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "FIG 2: Normalized mismatch of the best candidate (problems reaching Step 4)"
    );
    let (low, high) = f.summaries();
    let _ = writeln!(s, "  Low-T  (T=0.00, n=1):  {low}");
    let _ = writeln!(s, "  High-T (T=0.85, n=20): {high}");
    let _ = writeln!(
        s,
        "  High-T best candidate strictly better on {:.0}% of {} problems",
        f.high_wins_fraction() * 100.0,
        f.points.len()
    );
    let _ = writeln!(s, "  per-problem (id, low_t, high_t):");
    for p in &f.points {
        let _ = writeln!(s, "    {:<28} {:.3}  {:.3}", p.id, p.low_t, p.high_t);
    }
    s
}

/// Render the Fig. 4 score-improvement data as text.
pub fn render_fig4(f: &Fig4) -> String {
    use crate::metrics::Summary;
    let mut s = String::new();
    let _ = writeln!(s, "FIG 4(a): Score distribution without vs with sampling");
    let _ = writeln!(
        s,
        "  without sampling: {}",
        Summary::of(&f.without_sampling)
    );
    let _ = writeln!(s, "  with sampling:    {}", Summary::of(&f.with_sampling));
    let _ = writeln!(s, "FIG 4(b): Mean score per debug round");
    let _ = writeln!(s, "  entering debug: {:.3}", f.initial_debug_mean);
    for (i, m) in f.round_means.iter().enumerate() {
        let _ = writeln!(s, "  after round {}: {:.3}", i + 1, m);
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renderers_produce_layout() {
        let t1 = Table1 {
            high_v1: 0.948,
            high_v2: 0.957,
            low_v1: 0.891,
            low_v2: 0.936,
        };
        let s = render_table1(&t1);
        assert!(s.contains("High Temp"));
        assert!(s.contains("94.8"));
        assert!(s.contains("93.6"));

        let t3 = Table3 {
            vanilla: 0.724,
            single_agent: 0.839,
            multi_agent: 0.936,
        };
        let s = render_table3(&t3);
        assert!(s.contains("+11.5"));
        assert!(s.contains("+21.2"));
    }
}
