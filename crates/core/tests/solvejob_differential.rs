//! Engine-refactor fidelity: the resumable state machine behind
//! [`Mage::solve`] must reproduce the pre-refactor blocking loop
//! ([`Mage::solve_blocking`]) **bit for bit** — same model-call
//! sequence, same prompts, same RNG consumption, same trace — for every
//! ablation protocol and both temperature configurations.
//!
//! The blocking loop is kept verbatim as the legacy path, so this suite
//! is a true differential oracle, not a golden-file snapshot.

use mage_core::{Mage, MageConfig, SolveTrace, SystemKind, Task};
use mage_llm::{SyntheticModel, SyntheticModelConfig};

const SYSTEMS: [SystemKind; 4] = [
    SystemKind::Vanilla,
    SystemKind::SingleAgent,
    SystemKind::TwoAgent,
    SystemKind::Mage,
];

/// Run both paths on one (problem, config, seed) cell with independent,
/// identically seeded models, and return the two traces.
fn both_paths(problem_id: &str, config: &MageConfig, seed: u64) -> (SolveTrace, SolveTrace) {
    let p = mage_problems::by_id(problem_id).expect("corpus problem");
    let task = Task {
        id: p.id,
        spec: p.spec,
    };

    let mut model_a = SyntheticModel::new(SyntheticModelConfig::default(), seed);
    model_a.register(p.id, p.oracle(seed));
    let machine = Mage::new(&mut model_a, config.clone()).solve(&task);

    let mut model_b = SyntheticModel::new(SyntheticModelConfig::default(), seed);
    model_b.register(p.id, p.oracle(seed));
    let blocking = Mage::new(&mut model_b, config.clone()).solve_blocking(&task);

    (machine, blocking)
}

#[test]
fn every_system_kind_matches_blocking_high_temperature() {
    // High temperature exercises the master RNG stream, so any drift in
    // call *order* (not just content) breaks equality.
    for &system in &SYSTEMS {
        for seed in [1u64, 7, 23] {
            let cfg = MageConfig::high_temperature().with_system(system);
            let (machine, blocking) = both_paths("prob012_mux4_case", &cfg, seed);
            assert_eq!(
                machine, blocking,
                "state machine diverged from blocking loop: {system:?} seed {seed}"
            );
        }
    }
}

#[test]
fn every_system_kind_matches_blocking_low_temperature() {
    for &system in &SYSTEMS {
        let cfg = MageConfig::low_temperature().with_system(system);
        let (machine, blocking) = both_paths("prob012_mux4_case", &cfg, 3);
        assert_eq!(machine, blocking, "{system:?} diverged at low temperature");
    }
}

#[test]
fn hard_problems_match_through_sampling_and_debugging() {
    // Higher-difficulty problems reach Step 4/5, covering the sampling
    // pool, dedup/selection and the accept-or-rollback debug loop.
    for problem in ["prob029_alu4", "prob044_pipeline2"] {
        for seed in [2u64, 9] {
            let cfg = MageConfig::high_temperature();
            let (machine, blocking) = both_paths(problem, &cfg, seed);
            assert_eq!(machine, blocking, "{problem} seed {seed}");
        }
    }
}

#[test]
fn context_budget_matches_blocking() {
    // Compaction mutates conversations mid-run; both paths must compact
    // identically or prompts (and thus the synthetic channel) drift.
    let cfg = MageConfig::high_temperature().with_context_budget(600);
    for seed in [4u64, 13] {
        let (machine, blocking) = both_paths("prob029_alu4", &cfg, seed);
        assert_eq!(machine, blocking, "budgeted run diverged at seed {seed}");
        assert!(machine.peak_context_tokens <= 600);
    }
}

#[test]
fn degenerate_configs_match() {
    // Corner configurations hit the state machine's edge transitions:
    // no judging, no sampling, no debugging.
    let base = MageConfig::high_temperature();
    let corners = [
        MageConfig {
            tb_regen_limit: 0,
            ..base.clone()
        },
        MageConfig {
            candidates: 0,
            ..base.clone()
        },
        MageConfig {
            max_debug_rounds: 0,
            ..base.clone()
        },
        MageConfig {
            candidates: 0,
            max_debug_rounds: 0,
            tb_regen_limit: 0,
            ..base.clone()
        },
    ];
    for (i, cfg) in corners.iter().enumerate() {
        let (machine, blocking) = both_paths("prob012_mux4_case", cfg, 5);
        assert_eq!(machine, blocking, "corner config #{i} diverged");
    }
}
