//! Token-usage accounting and context-growth bounds for long debug
//! loops (the memory audit behind `mage-serve`'s 100-job streams).

use mage_core::{Mage, MageConfig, Task};
use mage_llm::{
    DebugRequest, JudgeTbRequest, ModelOutput, RtlGenRequest, RtlLanguageModel, SyntaxFixRequest,
    SyntheticModel, SyntheticModelConfig, TbGenRequest, TokenUsage,
};
use mage_tb::Testbench;

/// A transparent wrapper that sums the usage of every scalar call — the
/// independent ledger `SolveTrace::usage` must reconcile against.
struct Metered {
    inner: SyntheticModel,
    ledger: TokenUsage,
    calls: usize,
}

impl Metered {
    fn tally<T>(&mut self, out: ModelOutput<T>) -> ModelOutput<T> {
        self.ledger += out.usage;
        self.calls += 1;
        out
    }
}

impl RtlLanguageModel for Metered {
    fn name(&self) -> &str {
        "metered"
    }
    fn generate_rtl(&mut self, req: &RtlGenRequest<'_>) -> ModelOutput<String> {
        let out = self.inner.generate_rtl(req);
        self.tally(out)
    }
    fn generate_testbench(&mut self, req: &TbGenRequest<'_>) -> ModelOutput<Testbench> {
        let out = self.inner.generate_testbench(req);
        self.tally(out)
    }
    fn judge_testbench(&mut self, req: &JudgeTbRequest<'_>) -> ModelOutput<bool> {
        let out = self.inner.judge_testbench(req);
        self.tally(out)
    }
    fn debug_rtl(&mut self, req: &DebugRequest<'_>) -> ModelOutput<String> {
        let out = self.inner.debug_rtl(req);
        self.tally(out)
    }
    fn fix_syntax(&mut self, req: &SyntaxFixRequest<'_>) -> ModelOutput<String> {
        let out = self.inner.fix_syntax(req);
        self.tally(out)
    }
}

fn metered(seed: u64) -> Metered {
    let p = mage_problems::by_id("prob029_alu4").expect("corpus problem");
    let mut inner = SyntheticModel::new(SyntheticModelConfig::default(), seed);
    inner.register(p.id, p.oracle(seed));
    Metered {
        inner,
        ledger: TokenUsage::default(),
        calls: 0,
    }
}

fn solve_with(config: MageConfig, seed: u64) -> (Metered, mage_core::SolveTrace) {
    let p = mage_problems::by_id("prob029_alu4").unwrap();
    let mut model = metered(seed);
    let trace = Mage::new(&mut model, config).solve(&Task {
        id: p.id,
        spec: p.spec,
    });
    (model, trace)
}

#[test]
fn trace_usage_reconciles_with_per_call_ledger() {
    for seed in [1u64, 8, 21] {
        let (model, trace) = solve_with(MageConfig::high_temperature(), seed);
        assert!(model.calls > 0);
        assert_eq!(
            trace.usage, model.ledger,
            "trace usage must equal the sum of every model call's usage (seed {seed})"
        );
    }
}

#[test]
fn context_budget_bounds_peak_context() {
    // A long debug loop: many rounds against a hard problem. Unbudgeted
    // conversations grow with every exchange; a budget must cap the
    // peak without breaking usage accounting.
    let long_debug = MageConfig {
        max_debug_rounds: 12,
        ..MageConfig::high_temperature()
    };
    let budget = 800;
    // Runs that solve pre-sampling never grow a context; scan a fixed
    // seed set for one that reaches a long debug loop.
    let mut exercised = 0usize;
    for seed in 0..24u64 {
        let (_, unbounded) = solve_with(long_debug.clone(), seed);
        if unbounded.peak_context_tokens <= budget {
            continue;
        }
        exercised += 1;
        let capped_cfg = MageConfig {
            context_budget: Some(budget),
            ..long_debug.clone()
        };
        let (model, capped) = solve_with(capped_cfg, seed);
        assert!(
            capped.peak_context_tokens <= budget,
            "seed {seed}: capped peak {} over budget",
            capped.peak_context_tokens
        );
        assert!(
            unbounded.peak_context_tokens > capped.peak_context_tokens,
            "seed {seed}: unbudgeted peak {} should exceed capped peak {}",
            unbounded.peak_context_tokens,
            capped.peak_context_tokens
        );
        // Accounting still reconciles under compaction.
        assert_eq!(capped.usage, model.ledger);
        if exercised == 3 {
            break;
        }
    }
    assert!(
        exercised > 0,
        "no seed in 0..24 grew a context past {budget} tokens — weaken the budget"
    );
}
