//! Properties of the fuzz generator itself (ISSUE 10 satellite):
//! every generated design elaborates, widths stay in the supported
//! range, the case stream and coverage map are pure functions of the
//! seed, and the shrinker preserves the failure class it was asked to
//! preserve.

use mage_fuzz::{case_seed, generate, run_case, shrink_module, GenConfig, Session, SMOKE_SEED};
use mage_verilog::ast::Module;
use mage_verilog::{parse, print_module};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Validity by construction: every generated case parses back and
    /// elaborates without error, and every elaborated signal's width is
    /// inside the supported range.
    #[test]
    fn generated_designs_elaborate_with_bounded_widths(seed in any::<u64>()) {
        let cfg = GenConfig::default();
        let case = generate(seed, &cfg);
        let file = parse(&case.source)
            .map_err(|e| TestCaseError::fail(format!("seed {seed:#x}: parse: {e:?}")))?;
        let design = mage_sim::elaborate(&file, "top")
            .map_err(|e| TestCaseError::fail(format!("seed {seed:#x}: elab: {e:?}")))?;
        for s in &design.signals {
            prop_assert!(
                (1..=cfg.max_width).contains(&s.width),
                "seed {seed:#x}: signal `{}` has width {} outside 1..={}",
                s.name, s.width, cfg.max_width
            );
        }
    }
}

proptest! {
    // Full oracle runs are heavier (four executors per case), so fewer
    // proptest cases.
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The generated stream is divergence-free: roundtrip, four-executor
    /// lockstep, and delta mutants all pass on arbitrary seeds — the
    /// same property `--smoke` gates on, but over proptest-chosen seeds
    /// instead of the fixed smoke stream.
    #[test]
    fn generated_cases_pass_all_oracles(seed in any::<u64>()) {
        let cfg = GenConfig::default();
        let case = generate(seed, &cfg);
        run_case(&case, cfg.steps)
            .map_err(|f| TestCaseError::fail(format!("seed {seed:#x}: {f}\n{}", case.source)))?;
    }

    /// Shrinking preserves the failure class it is asked to keep: for a
    /// synthetic class ("the printed module still contains the marker
    /// operator"), the shrunk output still exhibits it, still parses,
    /// and never got bigger.
    #[test]
    fn shrinker_preserves_failure_class(seed in any::<u64>()) {
        let cfg = GenConfig::default();
        let case = generate(seed, &cfg);
        // Use a marker that generated modules frequently contain; skip
        // seeds that don't exhibit the class at all.
        let class = |m: &Module| print_module(m).contains('^');
        prop_assume!(class(&case.module));
        let shrunk = shrink_module(&case.module, &class);
        prop_assert!(class(&shrunk), "seed {seed:#x}: failure class lost in shrinking");
        let printed = print_module(&shrunk);
        prop_assert!(
            printed.len() <= print_module(&case.module).len(),
            "seed {seed:#x}: shrinking grew the module"
        );
        parse(&printed)
            .map_err(|e| TestCaseError::fail(format!("seed {seed:#x}: shrunk output unparseable: {e:?}")))?;
    }
}

/// Smoke determinism, the acceptance criterion verbatim: the same seed
/// yields the same case stream, the same kept entries, and the same
/// coverage map hash.
#[test]
fn smoke_stream_is_deterministic() {
    let run = || {
        let mut s = Session::new(GenConfig::default(), false);
        s.run_batch(SMOKE_SEED, 0, 30);
        (
            s.kept.iter().map(|e| e.seed).collect::<Vec<_>>(),
            s.coverage.map_hash(),
            s.divergences.len(),
        )
    };
    let (a, b) = (run(), run());
    assert_eq!(
        a, b,
        "same seed must reproduce the same stream and coverage map"
    );
    assert_eq!(a.2, 0, "smoke stream must be divergence-free");
}

/// The per-case seed stream is itself deterministic and collision-free
/// at smoke scale (distinct cases, not repeats of one design).
#[test]
fn case_stream_covers_distinct_designs() {
    let cfg = GenConfig::default();
    let mut sources = std::collections::BTreeSet::new();
    for i in 0..50u64 {
        sources.insert(generate(case_seed(SMOKE_SEED, 0, i), &cfg).source);
    }
    assert!(
        sources.len() >= 49,
        "case stream should produce distinct designs, got {} unique of 50",
        sources.len()
    );
}
