//! Differential oracles: the checks every fuzz case must survive.
//!
//! Three oracles, mirroring the repo's hand-built differential suites
//! but driven by generated inputs:
//!
//! 1. **Roundtrip** — parse → normalize-print → reparse must be a
//!    fixpoint (identical AST, identical source, identical per-item
//!    fingerprints). This is the contract the delta-compilation cache
//!    keys on.
//! 2. **Lockstep** — the four executors (legacy tree-walker, compiled
//!    four-state, compiled two-state unfused, compiled two-state fused)
//!    run the same drive plan and are compared store-exactly,
//!    signal-by-signal via `===`, after *every* poke.
//! 3. **Delta** — single-edit mutants of the design are built from
//!    scratch and by delta elaboration against the unedited parent;
//!    both builds must agree structurally (signals, processes,
//!    bytecode) or fail with the identical error.
//!
//! All executors are constructed via [`Simulator::with_mode`] with the
//! two-state and fusion switches set explicitly, so the oracles give
//! the same verdict under every `MAGE_SIM_*` environment leg of CI.

use crate::gen::{drives_for, GenCase};
use mage_logic::LogicVec;
use mage_sim::{
    coverage, elaborate, elaborate_with, Design, DesignUnits, ExecMode, FuzzCoverage, Simulator,
};
use mage_verilog::ast::SourceFile;
use mage_verilog::{module_fingerprints, parse, print_file};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// A fuzz-case failure: which oracle tripped, and a human-readable
/// description carrying enough context (executor, signal, poke index)
/// to reproduce by seed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Failure {
    /// The generated/replayed source did not parse.
    Parse(String),
    /// Parse→print→reparse was not a fixpoint.
    Roundtrip(String),
    /// The design did not elaborate (generator validity bug).
    Elab(String),
    /// Two executors disagreed on a signal value, poke result, or fault.
    Lockstep(String),
    /// A delta rebuild disagreed with its from-scratch twin.
    Delta(String),
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Failure::Parse(d) => write!(f, "parse: {d}"),
            Failure::Roundtrip(d) => write!(f, "roundtrip: {d}"),
            Failure::Elab(d) => write!(f, "elab: {d}"),
            Failure::Lockstep(d) => write!(f, "lockstep: {d}"),
            Failure::Delta(d) => write!(f, "delta: {d}"),
        }
    }
}

/// Outcome of a passing case.
#[derive(Debug, Clone)]
pub struct CaseOutcome {
    /// Features this case exercised (static design shape + dynamic
    /// execution features, merged across the compiled executors).
    pub coverage: FuzzCoverage,
    /// Total pokes applied per executor.
    pub pokes: usize,
}

/// The executor stack under test: `(mode, two_state, fuse, label)`.
/// Index 0 (the legacy tree-walker) is the comparison reference.
pub const EXECUTORS: [(ExecMode, bool, bool, &str); 4] = [
    (ExecMode::Legacy, false, false, "legacy"),
    (ExecMode::Compiled, false, false, "compiled-4s"),
    (ExecMode::Compiled, true, false, "compiled-2s"),
    (ExecMode::Compiled, true, true, "fused"),
];

/// Run every oracle on one case: roundtrip, four-executor lockstep on
/// the seed-derived drive plan, then delta-vs-scratch on mutants.
pub fn run_case(case: &GenCase, steps: usize) -> Result<CaseOutcome, Failure> {
    run_source(&case.source, case.seed, steps)
}

/// [`run_case`] for raw source text (corpus replay path): the drive
/// plan is re-derived from the seed against the module's actual ports.
pub fn run_source(source: &str, seed: u64, steps: usize) -> Result<CaseOutcome, Failure> {
    let file = check_roundtrip(source)?;
    let module = file
        .modules
        .last()
        .ok_or_else(|| Failure::Parse("no modules in source".to_string()))?
        .clone();
    let top = module.name.clone();
    let design = Arc::new(
        elaborate(&file, &top).map_err(|e| Failure::Elab(format!("seed {seed:#x}: {e:?}")))?,
    );
    let mut cov = FuzzCoverage::new();
    coverage::design_features(design.compiled(), &mut cov);
    let drives = drives_for(&module, seed, steps);
    let (run_cov, pokes) = lockstep(&design, &drives)?;
    cov.merge(&run_cov);
    check_delta_mutants(&file, &top, &design, seed)?;
    Ok(CaseOutcome {
        coverage: cov,
        pokes,
    })
}

/// Oracle 1: parse `source`, print it, reparse — the printed form must
/// be a fixpoint and the item fingerprints must be stable across it.
pub fn check_roundtrip(source: &str) -> Result<SourceFile, Failure> {
    let f1 = parse(source).map_err(|e| Failure::Parse(format!("{e:?}")))?;
    let printed = print_file(&f1);
    let f2 = parse(&printed)
        .map_err(|e| Failure::Roundtrip(format!("printed form does not reparse: {e:?}")))?;
    if f1 != f2 {
        return Err(Failure::Roundtrip(
            "parse(print(ast)) != ast: printer/parser normal forms disagree".to_string(),
        ));
    }
    let reprinted = print_file(&f2);
    if printed != reprinted {
        return Err(Failure::Roundtrip(
            "print is not idempotent on its own output".to_string(),
        ));
    }
    for (m1, m2) in f1.modules.iter().zip(f2.modules.iter()) {
        let (p1, p2) = (module_fingerprints(m1), module_fingerprints(m2));
        if p1.len() != p2.len()
            || p1
                .iter()
                .zip(p2.iter())
                .any(|(a, b)| a.fingerprint != b.fingerprint)
        {
            return Err(Failure::Roundtrip(format!(
                "item fingerprints unstable across reprint in module `{}`",
                m1.name
            )));
        }
    }
    Ok(f1)
}

/// Oracle 2: all four executors run `drives` in lockstep; the full
/// store is compared via `===` after every poke and every settle. Poke
/// and settle *results* must also agree — a fault on one executor only
/// is a divergence. Returns the merged runtime coverage of the
/// compiled executors and the poke count.
pub fn lockstep(
    design: &Arc<Design>,
    drives: &[Vec<(String, LogicVec)>],
) -> Result<(FuzzCoverage, usize), Failure> {
    let mut sims: Vec<(Simulator, &str)> = EXECUTORS
        .iter()
        .map(|(mode, two_state, fuse, label)| {
            let mut sim = Simulator::with_mode(Arc::clone(design), *mode);
            if *mode == ExecMode::Compiled {
                sim.set_two_state(*two_state);
                sim.set_fuse(*fuse);
                sim.enable_coverage();
            }
            (sim, *label)
        })
        .collect();
    let mut pokes = 0usize;

    let settle_all = |sims: &mut Vec<(Simulator, &str)>, at: &str| -> Result<bool, Failure> {
        let r0 = sims[0].0.settle();
        for i in 1..sims.len() {
            let ri = sims[i].0.settle();
            if ri != r0 {
                return Err(Failure::Lockstep(format!(
                    "settle at {at}: {} => {:?}, {} => {:?}",
                    sims[0].1, r0, sims[i].1, ri
                )));
            }
        }
        compare_all(design, sims, at)?;
        Ok(r0.is_ok())
    };

    if !settle_all(&mut sims, "boot")? {
        return Ok((drain_coverage(&mut sims), pokes));
    }
    'steps: for (i, step) in drives.iter().enumerate() {
        for (name, v) in step {
            let at = format!("step {i} poke {name}");
            let r0 = sims[0].0.poke(name, v.clone());
            for k in 1..sims.len() {
                let rk = sims[k].0.poke(name, v.clone());
                if rk != r0 {
                    return Err(Failure::Lockstep(format!(
                        "{at}: {} => {:?}, {} => {:?}",
                        sims[0].1, r0, sims[k].1, rk
                    )));
                }
            }
            pokes += 1;
            compare_all(design, &mut sims, &at)?;
            if r0.is_err() {
                // All executors agree on the fault; the case is over.
                break 'steps;
            }
        }
        if !settle_all(&mut sims, &format!("step {i} settle"))? {
            break;
        }
    }
    Ok((drain_coverage(&mut sims), pokes))
}

fn drain_coverage(sims: &mut [(Simulator, &str)]) -> FuzzCoverage {
    let mut cov = FuzzCoverage::new();
    for (sim, _) in sims.iter_mut() {
        if let Some(c) = sim.take_coverage() {
            cov.merge(&c);
        }
    }
    cov
}

/// Compare every signal of every executor against the reference
/// (index 0) with `===`.
fn compare_all(design: &Design, sims: &mut [(Simulator, &str)], at: &str) -> Result<(), Failure> {
    // `peek` needs `&mut` (it may lazily flush deferred pokes), so
    // snapshot each executor's store in turn.
    let mut values: Vec<Vec<LogicVec>> = Vec::with_capacity(sims.len());
    for (sim, _) in sims.iter_mut() {
        values.push(
            design
                .signals
                .iter()
                .map(|decl| {
                    let id = design.signal(&decl.name).expect("declared name resolves");
                    sim.peek(id).clone()
                })
                .collect(),
        );
    }
    for k in 1..sims.len() {
        for (s, decl) in design.signals.iter().enumerate() {
            let (va, vb) = (&values[0][s], &values[k][s]);
            if !va.case_eq(vb) {
                return Err(Failure::Lockstep(format!(
                    "at {at}: signal `{}` diverged: {} = {}, {} = {}",
                    decl.name,
                    sims[0].1,
                    va.to_binary_string(),
                    sims[k].1,
                    vb.to_binary_string()
                )));
            }
        }
    }
    Ok(())
}

/// Oracle 3: single-edit mutants, delta-built against the unedited
/// parent, must equal their own from-scratch builds — structurally and
/// on elaborability.
pub fn check_delta_mutants(
    file: &SourceFile,
    top: &str,
    parent: &Arc<Design>,
    seed: u64,
) -> Result<(), Failure> {
    let Some(top_ix) = file.modules.iter().position(|m| m.name == top) else {
        return Err(Failure::Elab(format!("top `{top}` not in file")));
    };
    let provider = DesignUnits::new(Arc::clone(parent));
    let mut rng = StdRng::seed_from_u64(seed ^ 0x00DE_17A0_F055_1135);
    let muts = mage_llm::mutate::sample_mutations(&file.modules[top_ix], 3, &mut rng);
    for (mi, m) in muts.iter().enumerate() {
        let mut edited = file.clone();
        if !mage_llm::mutate::apply_mutation(&mut edited.modules[top_ix], m) {
            continue;
        }
        let scratch = elaborate(&edited, top);
        let delta = elaborate_with(&edited, top, &provider);
        match (scratch, delta) {
            (Ok(scratch), Ok((delta, stats))) => {
                if stats.reused + stats.rebuilt != delta.processes.len() {
                    return Err(Failure::Delta(format!(
                        "mutant {mi} (seed {seed:#x}): unit accounting off: {stats:?} vs {} processes",
                        delta.processes.len()
                    )));
                }
                structurally_exact(&scratch, &delta)
                    .map_err(|d| Failure::Delta(format!("mutant {mi} (seed {seed:#x}): {d}")))?;
            }
            (Err(es), Err(ed)) => {
                if es != ed {
                    return Err(Failure::Delta(format!(
                        "mutant {mi} (seed {seed:#x}): error divergence: scratch {es:?}, delta {ed:?}"
                    )));
                }
            }
            (s, d) => {
                return Err(Failure::Delta(format!(
                    "mutant {mi} (seed {seed:#x}): elaborability divergence: scratch {:?}, delta {:?}",
                    s.map(|_| ()),
                    d.map(|_| ())
                )));
            }
        }
    }
    Ok(())
}

/// Structural store-exactness: same signal table, same interpreter
/// processes, same compiled artifacts (bytecode, plans, fanout index).
fn structurally_exact(scratch: &Design, delta: &Design) -> Result<(), String> {
    if format!("{:?}", scratch.signals) != format!("{:?}", delta.signals) {
        return Err("signal tables diverged".to_string());
    }
    if scratch.processes != delta.processes {
        return Err("interpreter processes diverged".to_string());
    }
    if format!("{:?}", scratch.compiled()) != format!("{:?}", delta.compiled()) {
        return Err("compiled artifacts diverged".to_string());
    }
    Ok(())
}
