//! Deterministic structural shrinking for corpus minimization.
//!
//! The vendored proptest shim deliberately has no shrinking, so the
//! fuzzer carries its own: a greedy fixpoint loop over single-step
//! structural reductions of a [`Module`], keeping a candidate exactly
//! when the caller's predicate still holds on it. Reductions can break
//! validity (e.g. deleting the driver of a signal another process
//! reads) — that is fine, because the predicate re-elaborates the
//! candidate and simply rejects it.
//!
//! Reduction steps, in deterministic order:
//!
//! * drop a module item (process or net declaration);
//! * drop an output port (demoting nothing — the predicate decides);
//! * replace an `if` by one of its branches, a `case` by one arm's
//!   body or its default, a `begin…end` block by a shorter block;
//! * replace a compound expression by one of its operands.
//!
//! The loop restarts from the first reduction after every accepted
//! step and stops at a fixpoint (or a step budget, as a runaway guard).

use mage_verilog::ast::{Expr, Item, Module, Stmt};

/// Upper bound on accepted reduction steps: generated modules are
/// small, so a well-behaved shrink terminates far below this.
const MAX_ACCEPTED_STEPS: usize = 500;

/// Greedily shrink `module` while `keep` holds. `keep` must hold on
/// the input; the result is a local minimum under the reduction steps.
pub fn shrink_module(module: &Module, keep: &dyn Fn(&Module) -> bool) -> Module {
    let mut current = module.clone();
    debug_assert!(keep(&current), "shrink precondition: keep(input)");
    for _ in 0..MAX_ACCEPTED_STEPS {
        let mut accepted = false;
        for candidate in reductions(&current) {
            if keep(&candidate) {
                current = candidate;
                accepted = true;
                break;
            }
        }
        if !accepted {
            break;
        }
    }
    current
}

/// All single-step reductions of `module`, in deterministic order:
/// coarse (item/port removal) before fine (statement/expression
/// simplification), so the shrinker discards whole processes before
/// polishing what remains.
fn reductions(module: &Module) -> Vec<Module> {
    let mut out = Vec::new();
    for i in 0..module.items.len() {
        let mut m = module.clone();
        m.items.remove(i);
        out.push(m);
    }
    for i in 0..module.ports.len() {
        if module.ports[i].dir == mage_verilog::ast::Direction::Output && module.ports.len() > 1 {
            let mut m = module.clone();
            m.ports.remove(i);
            out.push(m);
        }
    }
    for (i, item) in module.items.iter().enumerate() {
        for reduced in item_reductions(item) {
            let mut m = module.clone();
            m.items[i] = reduced;
            out.push(m);
        }
    }
    out
}

fn item_reductions(item: &Item) -> Vec<Item> {
    match item {
        Item::Assign { lhs, rhs } => expr_reductions(rhs)
            .into_iter()
            .map(|rhs| Item::Assign {
                lhs: lhs.clone(),
                rhs,
            })
            .collect(),
        Item::Always { sens, body } => stmt_reductions(body)
            .into_iter()
            .map(|body| Item::Always {
                sens: sens.clone(),
                body,
            })
            .collect(),
        _ => Vec::new(),
    }
}

/// Single-step reductions of a statement subtree, shallowest first.
fn stmt_reductions(s: &Stmt) -> Vec<Stmt> {
    let mut out = Vec::new();
    match s {
        Stmt::Block(stmts) => {
            if stmts.len() == 1 {
                out.push(stmts[0].clone());
            }
            for i in 0..stmts.len() {
                if stmts.len() > 1 {
                    let mut v = stmts.clone();
                    v.remove(i);
                    out.push(Stmt::Block(v));
                }
            }
            for (i, inner) in stmts.iter().enumerate() {
                for r in stmt_reductions(inner) {
                    let mut v = stmts.clone();
                    v[i] = r;
                    out.push(Stmt::Block(v));
                }
            }
        }
        Stmt::If {
            cond,
            then_branch,
            else_branch,
        } => {
            out.push((**then_branch).clone());
            if let Some(e) = else_branch {
                out.push((**e).clone());
                out.push(Stmt::If {
                    cond: cond.clone(),
                    then_branch: then_branch.clone(),
                    else_branch: None,
                });
            }
            for r in stmt_reductions(then_branch) {
                out.push(Stmt::If {
                    cond: cond.clone(),
                    then_branch: Box::new(r),
                    else_branch: else_branch.clone(),
                });
            }
            if let Some(e) = else_branch {
                for r in stmt_reductions(e) {
                    out.push(Stmt::If {
                        cond: cond.clone(),
                        then_branch: then_branch.clone(),
                        else_branch: Some(Box::new(r)),
                    });
                }
            }
            for c in expr_reductions(cond) {
                out.push(Stmt::If {
                    cond: c,
                    then_branch: then_branch.clone(),
                    else_branch: else_branch.clone(),
                });
            }
        }
        Stmt::Case {
            kind,
            expr,
            arms,
            default,
        } => {
            for arm in arms {
                out.push(arm.body.clone());
            }
            if let Some(d) = default {
                out.push((**d).clone());
            }
            if arms.len() > 1 {
                for i in 0..arms.len() {
                    let mut a = arms.clone();
                    a.remove(i);
                    out.push(Stmt::Case {
                        kind: *kind,
                        expr: expr.clone(),
                        arms: a,
                        default: default.clone(),
                    });
                }
            }
            for e in expr_reductions(expr) {
                out.push(Stmt::Case {
                    kind: *kind,
                    expr: e,
                    arms: arms.clone(),
                    default: default.clone(),
                });
            }
        }
        Stmt::Blocking { lhs, rhs } => {
            for r in expr_reductions(rhs) {
                out.push(Stmt::Blocking {
                    lhs: lhs.clone(),
                    rhs: r,
                });
            }
        }
        Stmt::NonBlocking { lhs, rhs } => {
            for r in expr_reductions(rhs) {
                out.push(Stmt::NonBlocking {
                    lhs: lhs.clone(),
                    rhs: r,
                });
            }
        }
        Stmt::For { .. } | Stmt::Empty => {}
    }
    out
}

/// Single-step reductions of an expression subtree: replace a node by
/// one of its operands, then recurse.
fn expr_reductions(e: &Expr) -> Vec<Expr> {
    let mut out = Vec::new();
    match e {
        Expr::Literal { .. } | Expr::Ident(_) => {}
        Expr::Unary { op, operand } => {
            out.push((**operand).clone());
            for r in expr_reductions(operand) {
                out.push(Expr::Unary {
                    op: *op,
                    operand: Box::new(r),
                });
            }
        }
        Expr::Binary { op, lhs, rhs } => {
            out.push((**lhs).clone());
            out.push((**rhs).clone());
            for r in expr_reductions(lhs) {
                out.push(Expr::Binary {
                    op: *op,
                    lhs: Box::new(r),
                    rhs: rhs.clone(),
                });
            }
            for r in expr_reductions(rhs) {
                out.push(Expr::Binary {
                    op: *op,
                    lhs: lhs.clone(),
                    rhs: Box::new(r),
                });
            }
        }
        Expr::Ternary {
            cond,
            then_expr,
            else_expr,
        } => {
            out.push((**then_expr).clone());
            out.push((**else_expr).clone());
            for r in expr_reductions(cond) {
                out.push(Expr::Ternary {
                    cond: Box::new(r),
                    then_expr: then_expr.clone(),
                    else_expr: else_expr.clone(),
                });
            }
        }
        Expr::Concat(parts) => {
            for p in parts {
                out.push(p.clone());
            }
            if parts.len() > 1 {
                for i in 0..parts.len() {
                    let mut v = parts.clone();
                    v.remove(i);
                    out.push(Expr::Concat(v));
                }
            }
        }
        Expr::Repl { value, .. } => {
            out.push((**value).clone());
        }
        Expr::Bit { base, index } => {
            out.push(Expr::Ident(base.clone()));
            for r in expr_reductions(index) {
                out.push(Expr::Bit {
                    base: base.clone(),
                    index: Box::new(r),
                });
            }
        }
        Expr::Part { base, .. } => {
            out.push(Expr::Ident(base.clone()));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mage_verilog::parse;

    #[test]
    fn shrinks_to_minimum_preserving_predicate() {
        // Predicate: the module still contains a division. The shrinker
        // must strip everything else and keep some `/`.
        let src = "module t(input [3:0] a, input [3:0] b, output [3:0] q, output [3:0] r);\n\
                   assign q = (a + b) / (b ^ 4'd3);\n\
                   assign r = a & b;\n\
                   endmodule\n";
        let file = parse(src).expect("parses");
        let has_div = |m: &Module| mage_verilog::print_module(m).contains('/');
        assert!(has_div(&file.modules[0]));
        let shrunk = shrink_module(&file.modules[0], &has_div);
        assert!(has_div(&shrunk), "failure class must survive shrinking");
        assert!(
            mage_verilog::print_module(&shrunk).len() < src.len(),
            "shrinker must make progress"
        );
        // The unrelated assign must be gone.
        assert!(!mage_verilog::print_module(&shrunk).contains('&'));
    }

    #[test]
    fn shrink_is_deterministic() {
        let src = "module t(input a, input b, output q);\n\
                   assign q = (a & b) | (a ^ b);\n\
                   endmodule\n";
        let file = parse(src).expect("parses");
        let keep = |m: &Module| mage_verilog::print_module(m).contains('^');
        let a = shrink_module(&file.modules[0], &keep);
        let b = shrink_module(&file.modules[0], &keep);
        assert_eq!(a, b);
    }
}
