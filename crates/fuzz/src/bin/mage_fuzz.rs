//! `mage-fuzz` — coverage-guided differential fuzzing driver.
//!
//! ```text
//! mage-fuzz --smoke [--corpus DIR]      # CI gate: fixed-seed batch + corpus replay
//! mage-fuzz --replay DIR                # replay a corpus directory only
//! mage-fuzz [--batches N] [--batch-size M] [--seed S] [--corpus DIR] [--persist] [--deep]
//! ```
//!
//! `--deep` switches to a harder generation config (deeper expression
//! and statement nesting, more processes and clock domains, longer
//! drive plans) for divergence hunting; the smoke gate and the corpus
//! format always use the default config.
//!
//! Exit status: `0` all oracles green; `1` any divergence, roundtrip
//! mismatch, or corpus replay failure; `2` usage error.

use mage_fuzz::{corpus, GenConfig, Session, SMOKE_CASES, SMOKE_SEED};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

struct Args {
    smoke: bool,
    replay_only: bool,
    batches: u64,
    batch_size: usize,
    seed: u64,
    corpus_dir: PathBuf,
    persist: bool,
    deep: bool,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: mage-fuzz --smoke [--corpus DIR]\n\
         \u{20}      mage-fuzz --replay DIR\n\
         \u{20}      mage-fuzz [--batches N] [--batch-size M] [--seed S] [--corpus DIR] [--persist] [--deep]"
    );
    ExitCode::from(2)
}

fn parse_args() -> Result<Args, ExitCode> {
    let mut args = Args {
        smoke: false,
        replay_only: false,
        batches: 5,
        batch_size: 40,
        seed: SMOKE_SEED,
        corpus_dir: PathBuf::from("fuzz/corpus"),
        persist: false,
        deep: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut take = |what: &str| -> Result<String, ExitCode> {
            it.next().ok_or_else(|| {
                eprintln!("mage-fuzz: {what} requires a value");
                usage()
            })
        };
        match a.as_str() {
            "--smoke" => args.smoke = true,
            "--replay" => {
                args.replay_only = true;
                args.corpus_dir = PathBuf::from(take("--replay")?);
            }
            "--corpus" => args.corpus_dir = PathBuf::from(take("--corpus")?),
            "--batches" => {
                args.batches = take("--batches")?.parse().map_err(|_| usage())?;
            }
            "--batch-size" => {
                args.batch_size = take("--batch-size")?.parse().map_err(|_| usage())?;
            }
            "--seed" => {
                let v = take("--seed")?;
                let v = v.trim_start_matches("0x");
                args.seed = u64::from_str_radix(v, 16)
                    .or_else(|_| v.parse())
                    .map_err(|_| usage())?;
            }
            "--persist" => args.persist = true,
            "--deep" => args.deep = true,
            "--help" | "-h" => return Err(usage()),
            other => {
                eprintln!("mage-fuzz: unknown argument `{other}`");
                return Err(usage());
            }
        }
    }
    Ok(args)
}

/// Replay every committed corpus entry; returns `(replayed, failed)`.
fn replay_corpus(dir: &Path) -> (usize, usize) {
    let entries = match corpus::load_dir(dir) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("mage-fuzz: cannot read corpus {}: {e}", dir.display());
            return (0, 1);
        }
    };
    let mut failed = 0usize;
    for (path, entry) in &entries {
        if let Err(f) = entry.replay() {
            eprintln!("mage-fuzz: corpus replay FAILED: {}: {f}", path.display());
            failed += 1;
        }
    }
    (entries.len(), failed)
}

fn report_divergences(session: &Session) {
    for d in &session.divergences {
        eprintln!(
            "mage-fuzz: DIVERGENCE seed {:#018x}: {}\n--- minimized reproducer ---\n{}",
            d.seed, d.failure, d.source
        );
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(code) => return code,
    };
    let cfg = if args.deep {
        GenConfig {
            max_procs: 12,
            max_inputs: 7,
            max_clocks: 3,
            max_expr_depth: 6,
            max_stmt_depth: 4,
            steps: 20,
            ..GenConfig::default()
        }
    } else {
        GenConfig::default()
    };

    if args.replay_only {
        let (replayed, failed) = replay_corpus(&args.corpus_dir);
        println!(
            "mage-fuzz --replay: {}/{replayed} corpus entries ok",
            replayed - failed
        );
        return if failed == 0 {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }

    if args.smoke {
        // Fixed seed, no minimization, plus a full corpus replay: the
        // CI merge gate. Deterministic by construction — the summary
        // line (including the coverage map hash) is identical on every
        // run with the same seed.
        let mut session = Session::new(cfg, false);
        let stats = session.run_batch(SMOKE_SEED, 0, SMOKE_CASES);
        let (replayed, replay_failed) = replay_corpus(&args.corpus_dir);
        report_divergences(&session);
        let ok = SMOKE_CASES - session.divergences.len();
        println!(
            "mage-fuzz --smoke: {ok}/{SMOKE_CASES} cases ok, {} divergences, \
             coverage {} features, map {:#018x}, corpus {}/{replayed} replayed ok",
            session.divergences.len(),
            stats.coverage,
            session.coverage.map_hash(),
            replayed - replay_failed,
        );
        return if session.divergences.is_empty() && replay_failed == 0 {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }

    // Full mode: minimizing, multi-batch, optional persistence. The
    // summary reports the cumulative kept-entry count per batch — the
    // coverage-growth signal the acceptance criteria ask for.
    let mut session = Session::new(cfg, true);
    let mut kept_per_batch = Vec::with_capacity(args.batches as usize);
    for b in 0..args.batches {
        let stats = session.run_batch(args.seed, b, args.batch_size);
        kept_per_batch.push(stats.kept_total);
        println!(
            "mage-fuzz: batch {b}: {} cases, kept total {}, coverage {} features",
            stats.cases, stats.kept_total, stats.coverage
        );
    }
    if args.persist {
        for entry in &session.kept {
            match corpus::save(&args.corpus_dir, entry) {
                Ok(path) => println!("mage-fuzz: kept {}", path.display()),
                Err(e) => eprintln!("mage-fuzz: cannot persist corpus entry: {e}"),
            }
        }
    }
    report_divergences(&session);
    let growing = kept_per_batch.windows(2).all(|w| w[1] > w[0]);
    println!(
        "mage-fuzz: {} batches x {} cases, {} divergences, coverage {} features, \
         map {:#018x}, kept per batch: {} (strictly increasing: {})",
        args.batches,
        args.batch_size,
        session.divergences.len(),
        session.coverage.len(),
        session.coverage.map_hash(),
        kept_per_batch
            .iter()
            .map(|k| k.to_string())
            .collect::<Vec<_>>()
            .join(" -> "),
        if growing { "yes" } else { "no" }
    );
    if session.divergences.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
