//! Corpus persistence and deterministic replay.
//!
//! Each corpus entry is a plain `.v` file under `fuzz/corpus/` whose
//! leading comment header records the generator seed and drive-plan
//! length:
//!
//! ```verilog
//! // mage-fuzz corpus entry — replay: mage-fuzz --replay fuzz/corpus
//! // seed: 0x00000000deadbeef
//! // steps: 10
//! module top(...);
//! ```
//!
//! Replay parses the (possibly shrunk) source *text* and re-derives the
//! drive plan from the seed against the module's actual input ports
//! ([`crate::gen::drives_for`]), so entries replay bit-identically
//! regardless of how much the shrinker removed. File names are
//! `s<seed:016x>.v`, which both dedupes per seed and sorts
//! deterministically.

use crate::oracle::{run_source, CaseOutcome, Failure};
use std::io;
use std::path::{Path, PathBuf};

/// One persisted (or to-be-persisted) corpus entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorpusEntry {
    /// Generator seed: regenerates the drive plan (and, pre-shrink, the
    /// whole case).
    pub seed: u64,
    /// Drive-plan length the entry was found with.
    pub steps: usize,
    /// Verilog source (shrunk, headerless).
    pub source: String,
}

impl CorpusEntry {
    /// Serialize with the replay header.
    pub fn to_file_contents(&self) -> String {
        format!(
            "// mage-fuzz corpus entry — replay: mage-fuzz --replay fuzz/corpus\n\
             // seed: {:#018x}\n\
             // steps: {}\n{}",
            self.seed, self.steps, self.source
        )
    }

    /// Parse a corpus file back into an entry.
    pub fn from_file_contents(text: &str) -> Result<CorpusEntry, String> {
        let mut seed = None;
        let mut steps = None;
        for line in text.lines().take_while(|l| l.starts_with("//")) {
            if let Some(rest) = line.strip_prefix("// seed:") {
                let rest = rest.trim().trim_start_matches("0x");
                seed = Some(
                    u64::from_str_radix(rest, 16).map_err(|e| format!("bad seed `{rest}`: {e}"))?,
                );
            } else if let Some(rest) = line.strip_prefix("// steps:") {
                steps = Some(
                    rest.trim()
                        .parse::<usize>()
                        .map_err(|e| format!("bad steps `{}`: {e}", rest.trim()))?,
                );
            }
        }
        let source: String = text
            .lines()
            .skip_while(|l| l.starts_with("//"))
            .collect::<Vec<_>>()
            .join("\n");
        Ok(CorpusEntry {
            seed: seed.ok_or("missing `// seed:` header")?,
            steps: steps.ok_or("missing `// steps:` header")?,
            source,
        })
    }

    /// The entry's canonical file name.
    pub fn file_name(&self) -> String {
        format!("s{:016x}.v", self.seed)
    }

    /// Run every oracle on this entry.
    pub fn replay(&self) -> Result<CaseOutcome, Failure> {
        run_source(&self.source, self.seed, self.steps)
    }
}

/// Write an entry under `dir` (creating it), returning the path.
pub fn save(dir: &Path, entry: &CorpusEntry) -> io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(entry.file_name());
    std::fs::write(&path, entry.to_file_contents())?;
    Ok(path)
}

/// Load every `.v` entry under `dir`, sorted by file name (= by seed).
/// A missing directory is an empty corpus, not an error.
pub fn load_dir(dir: &Path) -> io::Result<Vec<(PathBuf, CorpusEntry)>> {
    let mut paths: Vec<PathBuf> = match std::fs::read_dir(dir) {
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
        r => r?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|x| x == "v"))
            .collect(),
    };
    paths.sort();
    let mut out = Vec::with_capacity(paths.len());
    for path in paths {
        let text = std::fs::read_to_string(&path)?;
        let entry = CorpusEntry::from_file_contents(&text)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("{path:?}: {e}")))?;
        out.push((path, entry));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_roundtrip() {
        let entry = CorpusEntry {
            seed: 0xDEAD_BEEF,
            steps: 12,
            source: "module top(input a, output b);\nassign b = a;\nendmodule\n".to_string(),
        };
        let parsed = CorpusEntry::from_file_contents(&entry.to_file_contents()).expect("parses");
        assert_eq!(parsed.seed, entry.seed);
        assert_eq!(parsed.steps, entry.steps);
        assert_eq!(parsed.source.trim(), entry.source.trim());
        assert_eq!(entry.file_name(), "s00000000deadbeef.v");
    }
}
