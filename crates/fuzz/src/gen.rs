//! Seeded grammar-directed generation of random-but-valid Verilog.
//!
//! The generator builds a [`Module`] AST directly — never text — so
//! every case is valid *by construction*:
//!
//! * each signal is driven by exactly one process (no multi-driver
//!   conflicts);
//! * combinational processes (`assign`, `always @(*)`) read only
//!   signals generated *before* their own target, so the combinational
//!   dependency graph is a DAG and can never loop;
//! * sequential processes may read anything, including their own
//!   target — clocked feedback is the interesting case;
//! * constant selects are always in range (dynamic bit-select indices
//!   may still run out of range at runtime, which legally produces `X`
//!   and exercises the two-state bail path).
//!
//! The grammar deliberately spans the whole supported subset the ISSUE
//! names: `always`/`assign` processes, `case`/`casez`, part selects,
//! multi-clock domains with drifting phases, and X/Z-injecting
//! constants. Source text is obtained by pretty-printing the AST, so
//! the parse→print roundtrip oracle starts from the printer's own
//! normal form.
//!
//! Everything is a pure function of the seed: same seed, same config →
//! same module, same source, same drive plan. Corpus replay and the
//! `--smoke` CI gate depend on this.

use mage_logic::{LogicBit, LogicVec};
use mage_verilog::ast::{
    CaseArm, CaseKind, Direction, Edge, EdgeEvent, Expr, Item, LValue, LiteralForm, Module,
    NetKind, Port, Range, Sensitivity, SourceFile, Stmt,
};
use mage_verilog::print_file;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generation limits. The defaults match what the corpus format and the
/// smoke gate assume; changing them changes what a seed regenerates, so
/// corpus entries embed their drive-plan inputs (seed + step count)
/// rather than a config.
#[derive(Debug, Clone)]
pub struct GenConfig {
    /// Hard cap on any signal width (the simulator's supported range).
    pub max_width: usize,
    /// Minimum number of driven signals (= processes).
    pub min_procs: usize,
    /// Maximum number of driven signals.
    pub max_procs: usize,
    /// Maximum number of data input ports (at least 2 are generated).
    pub max_inputs: usize,
    /// Maximum number of clock inputs (at least 1 is generated).
    pub max_clocks: usize,
    /// Expression recursion depth bound.
    pub max_expr_depth: usize,
    /// Statement recursion depth bound.
    pub max_stmt_depth: usize,
    /// Drive-plan length in steps.
    pub steps: usize,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            max_width: 96,
            min_procs: 3,
            max_procs: 8,
            max_inputs: 5,
            max_clocks: 2,
            max_expr_depth: 4,
            max_stmt_depth: 3,
            steps: 10,
        }
    }
}

/// One generated fuzz case: the AST, its printed source, and the seed
/// that reproduces both (drives are re-derived from the seed via
/// [`drives_for`] so a shrunk module keeps a meaningful drive plan).
#[derive(Debug, Clone)]
pub struct GenCase {
    /// Generator seed.
    pub seed: u64,
    /// The generated top module (named `top`).
    pub module: Module,
    /// Pretty-printed source for `module`.
    pub source: String,
}

impl GenCase {
    /// Wrap the module in a single-module [`SourceFile`].
    pub fn file(&self) -> SourceFile {
        SourceFile {
            modules: vec![self.module.clone()],
        }
    }
}

/// How a generated signal is driven.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DriverKind {
    /// `assign name = expr;`
    Assign,
    /// `always @(*) …` with blocking assignments.
    Comb,
    /// `always @(edge …) …` with non-blocking assignments.
    Seq,
}

/// A readable signal: name and width.
type Sig = (String, usize);

/// Generate one case from a seed.
pub fn generate(seed: u64, cfg: &GenConfig) -> GenCase {
    let mut rng = StdRng::seed_from_u64(seed);
    let n_clocks = rng.gen_range(1..=cfg.max_clocks.max(1));
    let n_inputs = rng.gen_range(2..=cfg.max_inputs.max(2));
    let n_procs = rng.gen_range(cfg.min_procs..=cfg.max_procs.max(cfg.min_procs));

    let clocks: Vec<Sig> = (0..n_clocks).map(|i| (format!("clk{i}"), 1)).collect();
    let inputs: Vec<Sig> = (0..n_inputs)
        .map(|i| (format!("in{i}"), pick_width(&mut rng, cfg.max_width)))
        .collect();
    let driven: Vec<(Sig, DriverKind)> = (0..n_procs)
        .map(|i| {
            let w = pick_width(&mut rng, cfg.max_width);
            let kind = match rng.gen_range(0..100u32) {
                0..=34 => DriverKind::Assign,
                35..=59 => DriverKind::Comb,
                _ => DriverKind::Seq,
            };
            ((format!("s{i}"), w), kind)
        })
        .collect();
    let mut is_output: Vec<bool> = (0..n_procs).map(|_| rng.gen_bool(0.5)).collect();
    // At least one output port, so the design has an observable surface.
    *is_output.last_mut().expect("min_procs >= 1") = true;

    let mut ports: Vec<Port> = Vec::new();
    for (name, _) in &clocks {
        ports.push(port(Direction::Input, NetKind::Wire, name, 1));
    }
    for (name, w) in &inputs {
        ports.push(port(Direction::Input, NetKind::Wire, name, *w));
    }
    let mut items: Vec<Item> = Vec::new();
    for (i, ((name, w), kind)) in driven.iter().enumerate() {
        let net = match kind {
            DriverKind::Assign => NetKind::Wire,
            DriverKind::Comb | DriverKind::Seq => NetKind::Reg,
        };
        if is_output[i] {
            ports.push(port(Direction::Output, net, name, *w));
        } else {
            items.push(Item::Net {
                kind: net,
                range: range_for(*w),
                names: vec![name.clone()],
            });
        }
    }

    // Readable pools. Sequential processes may read every signal
    // (clocked feedback); combinational ones only what precedes them.
    let all_sigs: Vec<Sig> = clocks
        .iter()
        .chain(inputs.iter())
        .cloned()
        .chain(driven.iter().map(|(s, _)| s.clone()))
        .collect();

    for (i, ((name, w), kind)) in driven.iter().enumerate() {
        let comb_readable: Vec<Sig> = clocks
            .iter()
            .chain(inputs.iter())
            .cloned()
            .chain(driven[..i].iter().map(|(s, _)| s.clone()))
            .collect();
        let target = (name.as_str(), *w);
        match kind {
            DriverKind::Assign => items.push(Item::Assign {
                lhs: LValue::Ident(name.clone()),
                rhs: gen_expr(&mut rng, &comb_readable, cfg.max_expr_depth),
            }),
            DriverKind::Comb => {
                // Open with an unconditional full assignment so every
                // path drives the target — no accidental latches.
                let mut stmts = vec![Stmt::Blocking {
                    lhs: LValue::Ident(name.clone()),
                    rhs: gen_expr(&mut rng, &comb_readable, cfg.max_expr_depth),
                }];
                if rng.gen_bool(0.6) {
                    stmts.push(gen_stmt(
                        &mut rng,
                        &comb_readable,
                        target,
                        true,
                        cfg.max_stmt_depth,
                    ));
                }
                items.push(Item::Always {
                    sens: Sensitivity::Comb,
                    body: Stmt::Block(stmts),
                });
            }
            DriverKind::Seq => {
                let mut edges = vec![EdgeEvent {
                    edge: if rng.gen_bool(0.8) {
                        Edge::Pos
                    } else {
                        Edge::Neg
                    },
                    signal: clocks[rng.gen_range(0..clocks.len())].0.clone(),
                }];
                if clocks.len() > 1 && rng.gen_bool(0.25) {
                    let other = clocks
                        .iter()
                        .find(|(c, _)| *c != edges[0].signal)
                        .expect("two clocks");
                    edges.push(EdgeEvent {
                        edge: if rng.gen_bool(0.5) {
                            Edge::Pos
                        } else {
                            Edge::Neg
                        },
                        signal: other.0.clone(),
                    });
                }
                items.push(Item::Always {
                    sens: Sensitivity::Edges(edges),
                    body: gen_stmt(&mut rng, &all_sigs, target, false, cfg.max_stmt_depth),
                });
            }
        }
    }

    let module = Module {
        name: "top".to_string(),
        params: Vec::new(),
        ports,
        items,
    };
    let source = print_file(&SourceFile {
        modules: vec![module.clone()],
    });
    GenCase {
        seed,
        module,
        source,
    }
}

/// Derive the poke sequence for a module from a seed: one inner vec per
/// step, applied poke-by-poke (the lockstep oracle compares stores
/// after every single poke). Clock inputs (`clk*`) toggle with per-clock
/// periods and phases so multi-clock domains drift against each other;
/// data inputs change with probability per step and occasionally carry
/// `X`/`Z` bits.
///
/// Reads only the module's *input port list*, so the same seed still
/// yields a valid plan for a shrunk or mutated module.
pub fn drives_for(module: &Module, seed: u64, steps: usize) -> Vec<Vec<(String, LogicVec)>> {
    // Decorrelate from the structure stream: the same seed drives both.
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9E37_79B9_7F4A_7C15);
    let mut clocks: Vec<(String, usize, usize)> = Vec::new(); // name, half-period, phase
    let mut data: Vec<Sig> = Vec::new();
    for p in &module.ports {
        if p.dir != Direction::Input {
            continue;
        }
        let w = port_width(p);
        if p.name.starts_with("clk") && w == 1 {
            let half = rng.gen_range(1..=2usize);
            let phase = rng.gen_range(0..2usize);
            clocks.push((p.name.clone(), half, phase));
        } else {
            data.push((p.name.clone(), w));
        }
    }
    let mut plan = Vec::with_capacity(steps);
    for step in 0..steps {
        let mut pokes: Vec<(String, LogicVec)> = Vec::new();
        for (name, w) in &data {
            if step == 0 || rng.gen_bool(0.7) {
                pokes.push((name.clone(), random_value(&mut rng, *w)));
            }
        }
        for (name, half, phase) in &clocks {
            let level = (step / half + phase) % 2 == 1;
            pokes.push((name.clone(), LogicVec::from_bool(level)));
        }
        plan.push(pokes);
    }
    plan
}

/// Random `width`-bit value; occasionally seasons it with X/Z bits.
fn random_value(rng: &mut StdRng, width: usize) -> LogicVec {
    let mut v = LogicVec::filled(width, LogicBit::Zero);
    for i in 0..width {
        if rng.gen_bool(0.5) {
            v.set_bit(i, LogicBit::One);
        }
    }
    if rng.gen_bool(0.08) {
        for _ in 0..rng.gen_range(1..=2usize) {
            v.set_bit(rng.gen_range(0..width), LogicBit::X);
        }
    }
    if rng.gen_bool(0.05) {
        for _ in 0..rng.gen_range(1..=2usize) {
            v.set_bit(rng.gen_range(0..width), LogicBit::Z);
        }
    }
    v
}

/// Width distribution: mostly narrow, a tail of >64-bit signals to keep
/// the wide (multi-word) paths honest.
fn pick_width(rng: &mut StdRng, max: usize) -> usize {
    let w = match rng.gen_range(0..100u32) {
        0..=49 => rng.gen_range(1..=8usize),
        50..=79 => rng.gen_range(9..=32usize),
        80..=94 => rng.gen_range(33..=64usize),
        _ => rng.gen_range(65..=96usize),
    };
    w.min(max)
}

fn port(dir: Direction, kind: NetKind, name: &str, width: usize) -> Port {
    Port {
        dir,
        kind,
        name: name.to_string(),
        range: range_for(width),
    }
}

fn range_for(width: usize) -> Option<Range> {
    if width <= 1 {
        None
    } else {
        Some(Range {
            msb: Expr::number(width as u64 - 1),
            lsb: Expr::number(0),
        })
    }
}

/// Width of a generated/parsed port: ranges are literal `[w-1:0]`.
fn port_width(p: &Port) -> usize {
    match &p.range {
        None => 1,
        Some(r) => match (lit_u64(&r.msb), lit_u64(&r.lsb)) {
            (Some(m), Some(l)) => (m.max(l) - m.min(l) + 1) as usize,
            _ => 1,
        },
    }
}

fn lit_u64(e: &Expr) -> Option<u64> {
    match e {
        Expr::Literal { value, .. } => value.to_u64(),
        _ => None,
    }
}

const UNARY_OPS: [mage_verilog::ast::UnaryOp; 10] = {
    use mage_verilog::ast::UnaryOp::*;
    [
        Not, LogicNot, Neg, Plus, ReduceAnd, ReduceOr, ReduceXor, ReduceNand, ReduceNor, ReduceXnor,
    ]
};

const BINARY_OPS: [mage_verilog::ast::BinaryOp; 21] = {
    use mage_verilog::ast::BinaryOp::*;
    [
        Add, Sub, Mul, Div, Mod, And, Or, Xor, Xnor, LogicAnd, LogicOr, Eq, Neq, CaseEq, CaseNeq,
        Lt, Le, Gt, Ge, Shl, Shr,
    ]
};

/// Random expression over `readable`, depth-bounded.
fn gen_expr(rng: &mut StdRng, readable: &[Sig], depth: usize) -> Expr {
    if depth == 0 || rng.gen_bool(0.25) {
        return gen_leaf(rng, readable);
    }
    match rng.gen_range(0..10u32) {
        0 => Expr::Unary {
            op: UNARY_OPS[rng.gen_range(0..UNARY_OPS.len())],
            operand: Box::new(gen_expr(rng, readable, depth - 1)),
        },
        1..=4 => Expr::Binary {
            op: BINARY_OPS[rng.gen_range(0..BINARY_OPS.len())],
            lhs: Box::new(gen_expr(rng, readable, depth - 1)),
            rhs: Box::new(gen_expr(rng, readable, depth - 1)),
        },
        5 => Expr::Ternary {
            cond: Box::new(gen_expr(rng, readable, depth - 1)),
            then_expr: Box::new(gen_expr(rng, readable, depth - 1)),
            else_expr: Box::new(gen_expr(rng, readable, depth - 1)),
        },
        6 => Expr::Concat(
            (0..rng.gen_range(2..=3usize))
                .map(|_| gen_expr(rng, readable, depth - 1))
                .collect(),
        ),
        7 => Expr::Repl {
            count: Box::new(Expr::number(rng.gen_range(1..=3u64))),
            value: Box::new(gen_expr(rng, readable, depth - 1)),
        },
        _ => gen_select(rng, readable, depth),
    }
}

/// Bit or part select on a readable signal. Constant indices stay in
/// range; dynamic bit indices may run off the end at runtime (legal:
/// the read yields `X` and trips the two-state out-of-range bail).
fn gen_select(rng: &mut StdRng, readable: &[Sig], depth: usize) -> Expr {
    if readable.is_empty() {
        return gen_leaf(rng, readable);
    }
    let (name, w) = &readable[rng.gen_range(0..readable.len())];
    if *w >= 2 && rng.gen_bool(0.4) {
        let lsb = rng.gen_range(0..*w);
        let msb = rng.gen_range(lsb..*w);
        Expr::Part {
            base: name.clone(),
            msb: Box::new(Expr::number(msb as u64)),
            lsb: Box::new(Expr::number(lsb as u64)),
        }
    } else {
        let index = if rng.gen_bool(0.7) {
            Expr::number(rng.gen_range(0..*w) as u64)
        } else {
            gen_expr(rng, readable, depth.saturating_sub(2).min(1))
        };
        Expr::Bit {
            base: name.clone(),
            index: Box::new(index),
        }
    }
}

fn gen_leaf(rng: &mut StdRng, readable: &[Sig]) -> Expr {
    if !readable.is_empty() && rng.gen_bool(0.6) {
        Expr::Ident(readable[rng.gen_range(0..readable.len())].0.clone())
    } else if rng.gen_bool(0.15) {
        Expr::number(rng.gen_range(0..1024u64))
    } else {
        let width = rng.gen_range(1..=16usize);
        gen_sized_literal(rng, width, 0.12, 0.08)
    }
}

/// Sized literal with optional X/Z bit injection (probabilities are per
/// literal; injected count is 1–3 bits).
fn gen_sized_literal(rng: &mut StdRng, width: usize, p_x: f64, p_z: f64) -> Expr {
    let mask = if width >= 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    };
    let mut value = LogicVec::from_u64(width, rng.gen::<u64>() & mask);
    if rng.gen_bool(p_x) {
        for _ in 0..rng.gen_range(1..=3usize) {
            value.set_bit(rng.gen_range(0..width), LogicBit::X);
        }
    }
    if rng.gen_bool(p_z) {
        for _ in 0..rng.gen_range(1..=3usize) {
            value.set_bit(rng.gen_range(0..width), LogicBit::Z);
        }
    }
    Expr::Literal {
        value,
        form: LiteralForm::Sized,
    }
}

/// Random statement driving `target`; `blocking` selects the assignment
/// flavor (combinational always bodies use blocking, sequential use
/// non-blocking — never mixed within a process).
fn gen_stmt(
    rng: &mut StdRng,
    readable: &[Sig],
    target: (&str, usize),
    blocking: bool,
    depth: usize,
) -> Stmt {
    if depth == 0 {
        return gen_assign(rng, readable, target, blocking);
    }
    match rng.gen_range(0..100u32) {
        0..=44 => gen_assign(rng, readable, target, blocking),
        45..=64 => Stmt::If {
            cond: gen_expr(rng, readable, 2),
            then_branch: Box::new(gen_stmt(rng, readable, target, blocking, depth - 1)),
            else_branch: if rng.gen_bool(0.6) {
                Some(Box::new(gen_stmt(
                    rng,
                    readable,
                    target,
                    blocking,
                    depth - 1,
                )))
            } else {
                None
            },
        },
        65..=84 => {
            let kind = if rng.gen_bool(0.3) {
                CaseKind::Casez
            } else {
                CaseKind::Case
            };
            let arms = (0..rng.gen_range(1..=3usize))
                .map(|_| CaseArm {
                    labels: (0..rng.gen_range(1..=2usize))
                        .map(|_| {
                            let w = rng.gen_range(1..=6usize);
                            let p_z = if kind == CaseKind::Casez { 0.5 } else { 0.0 };
                            gen_sized_literal(rng, w, 0.05, p_z)
                        })
                        .collect(),
                    body: gen_stmt(rng, readable, target, blocking, depth - 1),
                })
                .collect();
            Stmt::Case {
                kind,
                expr: gen_expr(rng, readable, 2),
                arms,
                default: if rng.gen_bool(0.7) {
                    Some(Box::new(gen_stmt(
                        rng,
                        readable,
                        target,
                        blocking,
                        depth - 1,
                    )))
                } else {
                    None
                },
            }
        }
        _ => Stmt::Block(
            (0..rng.gen_range(1..=3usize))
                .map(|_| gen_stmt(rng, readable, target, blocking, depth - 1))
                .collect(),
        ),
    }
}

fn gen_assign(rng: &mut StdRng, readable: &[Sig], target: (&str, usize), blocking: bool) -> Stmt {
    let (name, w) = target;
    let lhs = if w >= 2 && rng.gen_bool(0.3) {
        if rng.gen_bool(0.5) {
            LValue::Bit(name.to_string(), Expr::number(rng.gen_range(0..w) as u64))
        } else {
            let lsb = rng.gen_range(0..w);
            let msb = rng.gen_range(lsb..w);
            LValue::Part(
                name.to_string(),
                Expr::number(msb as u64),
                Expr::number(lsb as u64),
            )
        }
    } else {
        LValue::Ident(name.to_string())
    };
    let rhs = gen_expr(rng, readable, 3);
    if blocking {
        Stmt::Blocking { lhs, rhs }
    } else {
        Stmt::NonBlocking { lhs, rhs }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_case() {
        let cfg = GenConfig::default();
        for seed in [0u64, 1, 0xDEAD_BEEF, u64::MAX] {
            let a = generate(seed, &cfg);
            let b = generate(seed, &cfg);
            assert_eq!(a.module, b.module);
            assert_eq!(a.source, b.source);
            let da = drives_for(&a.module, seed, cfg.steps);
            let db = drives_for(&b.module, seed, cfg.steps);
            assert_eq!(format!("{da:?}"), format!("{db:?}"));
        }
    }

    #[test]
    fn generated_cases_parse_back() {
        let cfg = GenConfig::default();
        for seed in 0..32u64 {
            let case = generate(seed, &cfg);
            let parsed = mage_verilog::parse(&case.source)
                .unwrap_or_else(|e| panic!("seed {seed}: generated source must parse: {e:?}"));
            assert_eq!(parsed.modules.len(), 1, "seed {seed}");
        }
    }

    #[test]
    fn drive_plans_cover_all_inputs() {
        let cfg = GenConfig::default();
        let case = generate(7, &cfg);
        let plan = drives_for(&case.module, 7, cfg.steps);
        assert_eq!(plan.len(), cfg.steps);
        let first: std::collections::BTreeSet<&str> =
            plan[0].iter().map(|(n, _)| n.as_str()).collect();
        for p in case
            .module
            .ports
            .iter()
            .filter(|p| p.dir == Direction::Input)
        {
            assert!(
                first.contains(p.name.as_str()),
                "step 0 must drive {}",
                p.name
            );
        }
    }
}
