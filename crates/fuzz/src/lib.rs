//! Coverage-guided differential fuzzing for the MAGE Verilog stack.
//!
//! The paper's multi-agent loop (MAGE, DAC 2025) trusts the simulator
//! to judge LLM-generated RTL; a silent miscompare between executors
//! would corrupt every downstream agent decision. This crate
//! stress-tests that trust: a seeded grammar-directed generator
//! ([`gen`]) grows random-but-valid Verilog inside the supported
//! subset, and every case must survive three oracles ([`oracle`]) —
//! parse→print→reparse roundtrips, four-executor lockstep simulation
//! with store-exact comparison after every poke, and delta-vs-scratch
//! rebuilds of single-edit mutants.
//!
//! Generation is *coverage-guided*: the simulator exposes a cheap
//! feature map ([`mage_sim::FuzzCoverage`] — bytecode opcode pairs,
//! superinstruction kinds, cascade lengths, two-state bail reasons),
//! and any case that lights up new features is shrunk ([`shrink`]) and
//! persisted as a corpus entry ([`corpus`]) keyed by its generator
//! seed, so the whole corpus replays deterministically.
//!
//! The `mage-fuzz` binary drives it all; `mage-fuzz --smoke` is the CI
//! gate (fixed seed, bounded batch, corpus replay).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod corpus;
pub mod gen;
pub mod oracle;
pub mod shrink;

pub use corpus::CorpusEntry;
pub use gen::{drives_for, generate, GenCase, GenConfig};
pub use mage_sim::FuzzCoverage;
pub use oracle::{run_case, run_source, CaseOutcome, Failure};
pub use shrink::shrink_module;

use mage_verilog::{print_file, SourceFile};

/// The fixed seed `mage-fuzz --smoke` (and CI) runs with.
pub const SMOKE_SEED: u64 = 0x4D41_4745_465A_0001; // "MAGEFZ" + rev

/// Cases per smoke run.
pub const SMOKE_CASES: usize = 200;

/// Derive the per-case seed for `(base, batch, index)` — a SplitMix64
/// finalizer over the packed coordinates, so every case stream is a
/// pure function of the base seed.
pub fn case_seed(base: u64, batch: u64, index: u64) -> u64 {
    let mut z = base
        .wrapping_add(batch.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(index.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A case that failed an oracle, with its reproducer.
#[derive(Debug, Clone)]
pub struct Divergence {
    /// Generating seed (regenerates the unshrunk case).
    pub seed: u64,
    /// What tripped.
    pub failure: Failure,
    /// Minimized source still reproducing the same failure class
    /// (falls back to the full source when shrinking is off).
    pub source: String,
}

/// Per-batch accounting, reported in the binary's summary line.
#[derive(Debug, Clone, Copy)]
pub struct BatchStats {
    /// Cases run in this batch.
    pub cases: usize,
    /// Cumulative kept-entry count after this batch.
    pub kept_total: usize,
    /// Cumulative coverage feature count after this batch.
    pub coverage: usize,
}

/// A fuzzing session: cumulative coverage, kept corpus entries, and
/// divergences across batches. Everything is a pure function of the
/// base seed and batch layout.
pub struct Session {
    cfg: GenConfig,
    /// Whether kept entries and divergences are minimized (full-mode
    /// default; off in smoke, which only checks).
    pub minimize: bool,
    /// Cumulative feature map.
    pub coverage: FuzzCoverage,
    /// Corpus entries kept because they hit new features.
    pub kept: Vec<CorpusEntry>,
    /// Oracle failures found so far.
    pub divergences: Vec<Divergence>,
    /// Total cases run.
    pub cases_run: usize,
}

impl Session {
    /// New session over a generation config.
    pub fn new(cfg: GenConfig, minimize: bool) -> Session {
        Session {
            cfg,
            minimize,
            coverage: FuzzCoverage::new(),
            kept: Vec::new(),
            divergences: Vec::new(),
            cases_run: 0,
        }
    }

    /// Run one batch of `count` cases. Seeds come from
    /// [`case_seed`]`(base, batch, 0..count)`.
    pub fn run_batch(&mut self, base: u64, batch: u64, count: usize) -> BatchStats {
        for i in 0..count {
            self.run_one(case_seed(base, batch, i as u64));
        }
        BatchStats {
            cases: count,
            kept_total: self.kept.len(),
            coverage: self.coverage.len(),
        }
    }

    /// Run a single seed: generate, run every oracle, keep the case
    /// (shrunk) if it lit up new coverage, record a divergence if an
    /// oracle tripped.
    pub fn run_one(&mut self, seed: u64) {
        self.cases_run += 1;
        let case = generate(seed, &self.cfg);
        let steps = self.cfg.steps;
        match run_case(&case, steps) {
            Ok(outcome) => {
                let novel = self.coverage.novel_ids(&outcome.coverage);
                if novel.is_empty() {
                    return;
                }
                let source = if self.minimize {
                    let keep = |m: &mage_verilog::ast::Module| -> bool {
                        let src = print_module_file(m);
                        match run_source(&src, seed, steps) {
                            Ok(out) => novel.iter().any(|id| out.coverage.contains(*id)),
                            Err(_) => false,
                        }
                    };
                    print_module_file(&shrink_module(&case.module, &keep))
                } else {
                    case.source.clone()
                };
                self.coverage.merge(&outcome.coverage);
                self.kept.push(CorpusEntry {
                    seed,
                    steps,
                    source,
                });
            }
            Err(failure) => {
                let source = if self.minimize {
                    let want = std::mem::discriminant(&failure);
                    let keep = |m: &mage_verilog::ast::Module| -> bool {
                        match run_source(&print_module_file(m), seed, steps) {
                            Err(f) => std::mem::discriminant(&f) == want,
                            Ok(_) => false,
                        }
                    };
                    // The unshrunk module must reproduce through the
                    // text path for the predicate to be meaningful;
                    // otherwise ship the original source as-is.
                    if keep(&case.module) {
                        print_module_file(&shrink_module(&case.module, &keep))
                    } else {
                        case.source.clone()
                    }
                } else {
                    case.source.clone()
                };
                self.divergences.push(Divergence {
                    seed,
                    failure,
                    source,
                });
            }
        }
    }
}

/// Print a single module as a standalone source file.
fn print_module_file(m: &mage_verilog::ast::Module) -> String {
    print_file(&SourceFile {
        modules: vec![m.clone()],
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_seed_is_stable_and_spreads() {
        assert_eq!(case_seed(1, 2, 3), case_seed(1, 2, 3));
        let mut seen = std::collections::BTreeSet::new();
        for b in 0..4u64 {
            for i in 0..64u64 {
                seen.insert(case_seed(SMOKE_SEED, b, i));
            }
        }
        assert_eq!(
            seen.len(),
            4 * 64,
            "no seed collisions in a smoke-sized run"
        );
    }
}
