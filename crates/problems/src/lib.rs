//! VerilogEval-style benchmark problem suites for the MAGE reproduction.
//!
//! Each [`Problem`] carries a natural-language specification, a golden
//! design in the MAGE Verilog subset, a difficulty rating for the
//! synthetic channel, and a stimulus recipe. Two suites mirror the
//! paper's benchmarks: [`SuiteId::V1Human`] and [`SuiteId::V2`]
//! (scaled-down but mixture-matched; see `DESIGN.md`).
//!
//! # Example
//!
//! ```
//! use mage_problems::{by_id, suite, SuiteId};
//!
//! let v2 = suite(SuiteId::V2);
//! assert!(v2.len() >= 40);
//! let fig3 = by_id("prob093_ece241_2014_q3").expect("the Fig. 3 case study");
//! let oracle = fig3.oracle(42);
//! assert_eq!(oracle.top, "top_module");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod comb;
mod extras;
mod hier;
mod problem;
mod registry;
mod seq;

pub use problem::{Category, Problem, StimSpec};
pub use registry::{all_problems, by_id, suite, SuiteId};
