//! Extension problems beyond the two evaluated suites.
//!
//! These exercise the substrate more broadly (wide datapaths, nested
//! hierarchies, less common operators) and are available to users via
//! [`crate::all_problems`] / [`crate::by_id`], but belong to neither
//! evaluated suite — the suites (and therefore every number in
//! `EXPERIMENTS.md`) stay frozen.

use crate::problem::{Category, Problem, StimSpec};

const CLOCKED: StimSpec = StimSpec::Clocked {
    cycles: 48,
    reset: Some("rst"),
    reset_active_high: true,
    reset_cycles: 2,
};

/// All extension problems.
pub(crate) static PROBLEMS: &[Problem] = &[
    Problem {
        id: "prob100_and_reduce16",
        category: Category::CombGate,
        difficulty: 0.6,
        top: "top_module",
        spec: "Given a 16-bit input `in`, output `all` (1 when every bit is set) and `none` (1 when no bit is set).",
        golden: "module top_module(input [15:0] in, output all, output none);
  assign all = &in;
  assign none = ~(|in);
endmodule",
        stim: StimSpec::RandomComb { vectors: 128 },
        in_v1: false,
        in_v2: false,
    },
    Problem {
        id: "prob101_mux8_case",
        category: Category::CombMux,
        difficulty: 1.2,
        top: "top_module",
        spec: "Implement an 8-to-1 one-bit multiplexer: the 3-bit select `sel` picks the corresponding bit of the 8-bit data input `d`.",
        golden: "module top_module(input [7:0] d, input [2:0] sel, output y);
  assign y = d[sel];
endmodule",
        stim: StimSpec::Exhaustive,
        in_v1: false,
        in_v2: false,
    },
    Problem {
        id: "prob102_zero_detect16",
        category: Category::CombArith,
        difficulty: 0.8,
        top: "top_module",
        spec: "Given a 16-bit input `in`, output `zero` (1 when the value is exactly 0) and `max` (1 when the value is all ones).",
        golden: "module top_module(input [15:0] in, output zero, output max);
  assign zero = in == 16'h0000;
  assign max = in == 16'hFFFF;
endmodule",
        stim: StimSpec::RandomComb { vectors: 128 },
        in_v1: false,
        in_v2: false,
    },
    Problem {
        id: "prob103_add16",
        category: Category::CombArith,
        difficulty: 1.1,
        top: "top_module",
        spec: "Implement a 16-bit adder with carry out: `{cout, sum} = a + b`.",
        golden: "module top_module(input [15:0] a, input [15:0] b, output [15:0] sum, output cout);
  assign {cout, sum} = a + b;
endmodule",
        stim: StimSpec::RandomComb { vectors: 192 },
        in_v1: false,
        in_v2: false,
    },
    Problem {
        id: "prob104_leading_one4",
        category: Category::CombCode,
        difficulty: 1.5,
        top: "top_module",
        spec: "Output a 4-bit one-hot mask `y` of the highest set bit of the 4-bit input `in` (0 when `in` is 0).",
        golden: "module top_module(input [3:0] in, output reg [3:0] y);
  always @(*) begin
    casez (in)
      4'b1???: y = 4'b1000;
      4'b01??: y = 4'b0100;
      4'b001?: y = 4'b0010;
      4'b0001: y = 4'b0001;
      default: y = 4'b0000;
    endcase
  end
endmodule",
        stim: StimSpec::Exhaustive,
        in_v1: false,
        in_v2: false,
    },
    Problem {
        id: "prob105_interleave8",
        category: Category::CombCode,
        difficulty: 1.3,
        top: "top_module",
        spec: "Interleave two 4-bit inputs into an 8-bit output: `y = {a[3], b[3], a[2], b[2], a[1], b[1], a[0], b[0]}`.",
        golden: "module top_module(input [3:0] a, input [3:0] b, output [7:0] y);
  assign y = {a[3], b[3], a[2], b[2], a[1], b[1], a[0], b[0]};
endmodule",
        stim: StimSpec::Exhaustive,
        in_v1: false,
        in_v2: false,
    },
    Problem {
        id: "prob106_rotl8",
        category: Category::CombArith,
        difficulty: 1.7,
        top: "top_module",
        spec: "Rotate the 8-bit input `in` left by the 3-bit amount `amt` (bits shifted out re-enter at the bottom).",
        golden: "module top_module(input [7:0] in, input [2:0] amt, output [7:0] y);
  wire [15:0] doubled;
  assign doubled = {in, in} << amt;
  assign y = doubled[15:8];
endmodule",
        stim: StimSpec::Exhaustive,
        in_v1: false,
        in_v2: false,
    },
    Problem {
        id: "prob107_clamp",
        category: Category::CombArith,
        difficulty: 1.4,
        top: "top_module",
        spec: "Clamp the 8-bit input `in` into the inclusive range [lo, hi]: output `in` when inside, the violated bound otherwise (assume lo <= hi).",
        golden: "module top_module(input [7:0] in, input [7:0] lo, input [7:0] hi, output [7:0] y);
  assign y = in < lo ? lo : (in > hi ? hi : in);
endmodule",
        stim: StimSpec::RandomComb { vectors: 192 },
        in_v1: false,
        in_v2: false,
    },
    Problem {
        id: "prob108_dff_negedge",
        category: Category::SeqReg,
        difficulty: 0.9,
        top: "top_module",
        spec: "Implement a falling-edge-triggered D flip-flop with synchronous active-high reset: `q` captures `d` on the falling clock edge (reset clears it at that edge).",
        golden: "module top_module(input clk, input rst, input d, output reg q);
  always @(negedge clk) begin
    if (rst) q <= 1'b0;
    else q <= d;
  end
endmodule",
        stim: CLOCKED,
        in_v1: false,
        in_v2: false,
    },
    Problem {
        id: "prob109_counter_wrap_n",
        category: Category::SeqCount,
        difficulty: 1.8,
        top: "top_module",
        spec: "Implement a parameterizable-feel mod-12 counter: counts 0..11 then wraps; `tick` is 1 during the final count.",
        golden: "module top_module(input clk, input rst, output reg [3:0] q, output tick);
  always @(posedge clk) begin
    if (rst) q <= 4'd0;
    else if (q == 4'd11) q <= 4'd0;
    else q <= q + 4'd1;
  end
  assign tick = q == 4'd11;
endmodule",
        stim: CLOCKED,
        in_v1: false,
        in_v2: false,
    },
    Problem {
        id: "prob110_pwm3",
        category: Category::SeqCount,
        difficulty: 2.0,
        top: "top_module",
        spec: "Implement a 3-bit PWM: a free-running 3-bit counter (synchronous reset) and output `out = counter < duty` for the 3-bit duty-cycle input.",
        golden: "module top_module(input clk, input rst, input [2:0] duty, output out);
  reg [2:0] cnt;
  always @(posedge clk) begin
    if (rst) cnt <= 3'd0;
    else cnt <= cnt + 3'd1;
  end
  assign out = cnt < duty;
endmodule",
        stim: CLOCKED,
        in_v1: false,
        in_v2: false,
    },
    Problem {
        id: "prob111_toggle_divider",
        category: Category::SeqCount,
        difficulty: 1.6,
        top: "top_module",
        spec: "Implement a divide-by-2 toggle output plus a 2-bit phase counter: `phase` increments every cycle (synchronous reset) and `half` is phase bit 0 inverted every cycle.",
        golden: "module top_module(input clk, input rst, output [1:0] phase, output half);
  reg [1:0] cnt;
  always @(posedge clk) begin
    if (rst) cnt <= 2'd0;
    else cnt <= cnt + 2'd1;
  end
  assign phase = cnt;
  assign half = cnt[0];
endmodule",
        stim: CLOCKED,
        in_v1: false,
        in_v2: false,
    },
    Problem {
        id: "prob112_majority_vote_reg",
        category: Category::SeqReg,
        difficulty: 2.2,
        top: "top_module",
        spec: "Implement a 3-sample majority voter over a serial input: keep the last three samples of `d` in a shift register (synchronous reset) and output the majority value of those three bits.",
        golden: "module top_module(input clk, input rst, input d, output vote);
  reg [2:0] win;
  always @(posedge clk) begin
    if (rst) win <= 3'b000;
    else win <= {win[1:0], d};
  end
  assign vote = (win[0] & win[1]) | (win[1] & win[2]) | (win[0] & win[2]);
endmodule",
        stim: CLOCKED,
        in_v1: false,
        in_v2: false,
    },
    Problem {
        id: "prob113_hier_xor_tree",
        category: Category::Hier,
        difficulty: 1.7,
        top: "top_module",
        spec: "Build an 8-bit parity tree from 2-input XOR cell instances (`x2`): output the XOR of all eight bits of `in`.",
        golden: "module x2(input a, input b, output y);
  assign y = a ^ b;
endmodule
module top_module(input [7:0] in, output parity);
  wire p0, p1, p2, p3, q0, q1;
  x2 u0 (.a(in[0]), .b(in[1]), .y(p0));
  x2 u1 (.a(in[2]), .b(in[3]), .y(p1));
  x2 u2 (.a(in[4]), .b(in[5]), .y(p2));
  x2 u3 (.a(in[6]), .b(in[7]), .y(p3));
  x2 v0 (.a(p0), .b(p1), .y(q0));
  x2 v1 (.a(p2), .b(p3), .y(q1));
  x2 w0 (.a(q0), .b(q1), .y(parity));
endmodule",
        stim: StimSpec::Exhaustive,
        in_v1: false,
        in_v2: false,
    },
    Problem {
        id: "prob114_gated_accum",
        category: Category::SeqReg,
        difficulty: 2.4,
        top: "top_module",
        spec: "Implement a gated 8-bit accumulator with clear-on-read semantics: when `rd` is 1 the accumulator resets to the current input `in`; otherwise it adds `in` when `en` is 1 and holds when `en` is 0. Synchronous reset clears it.",
        golden: "module top_module(input clk, input rst, input en, input rd, input [7:0] in, output reg [7:0] acc);
  always @(posedge clk) begin
    if (rst) acc <= 8'h00;
    else if (rd) acc <= in;
    else if (en) acc <= acc + in;
  end
endmodule",
        stim: CLOCKED,
        in_v1: false,
        in_v2: false,
    },
];
