//! Sequential benchmark problems: registers, counters, shift registers
//! and finite state machines.

use crate::problem::{Category, Problem, StimSpec};

const CLOCKED: StimSpec = StimSpec::Clocked {
    cycles: 48,
    reset: Some("rst"),
    reset_active_high: true,
    reset_cycles: 2,
};

const CLOCKED_LONG: StimSpec = StimSpec::Clocked {
    cycles: 96,
    reset: Some("rst"),
    reset_active_high: true,
    reset_cycles: 2,
};

/// All sequential problems.
pub(crate) static PROBLEMS: &[Problem] = &[
    // ------------------------------------------------------------------
    // Registers
    // ------------------------------------------------------------------
    Problem {
        id: "prob040_dff",
        category: Category::SeqReg,
        difficulty: 0.45,
        top: "top_module",
        spec: "Implement a D flip-flop with synchronous active-high reset: on each rising clock edge, `q` takes `d`, or 0 when `rst` is asserted.",
        golden: "module top_module(input clk, input rst, input d, output reg q);
  always @(posedge clk) begin
    if (rst) q <= 1'b0;
    else q <= d;
  end
endmodule",
        stim: CLOCKED,
        in_v1: true,
        in_v2: true,
    },
    Problem {
        id: "prob041_dff_en",
        category: Category::SeqReg,
        difficulty: 0.7,
        top: "top_module",
        spec: "Implement an 8-bit register with synchronous reset and write-enable: on the rising clock edge, load `d` when `en` is 1, clear to 0 when `rst` is 1 (reset dominates), otherwise hold.",
        golden: "module top_module(input clk, input rst, input en, input [7:0] d, output reg [7:0] q);
  always @(posedge clk) begin
    if (rst) q <= 8'h00;
    else if (en) q <= d;
  end
endmodule",
        stim: CLOCKED,
        in_v1: true,
        in_v2: true,
    },
    Problem {
        id: "prob042_dff_arst",
        category: Category::SeqReg,
        difficulty: 0.95,
        top: "top_module",
        spec: "Implement a D flip-flop with asynchronous active-high reset: `q` clears immediately when `rst` rises and captures `d` on rising clock edges while `rst` is low.",
        golden: "module top_module(input clk, input rst, input d, output reg q);
  always @(posedge clk or posedge rst) begin
    if (rst) q <= 1'b0;
    else q <= d;
  end
endmodule",
        stim: CLOCKED,
        in_v1: true,
        in_v2: true,
    },
    Problem {
        id: "prob043_tff",
        category: Category::SeqReg,
        difficulty: 0.8,
        top: "top_module",
        spec: "Implement a T flip-flop with synchronous reset: on each rising clock edge, toggle `q` when `t` is 1, hold otherwise; reset clears `q`.",
        golden: "module top_module(input clk, input rst, input t, output reg q);
  always @(posedge clk) begin
    if (rst) q <= 1'b0;
    else if (t) q <= ~q;
  end
endmodule",
        stim: CLOCKED,
        in_v1: false,
        in_v2: true,
    },
    Problem {
        id: "prob044_pipeline2",
        category: Category::SeqReg,
        difficulty: 1.0,
        top: "top_module",
        spec: "Implement a two-stage pipeline register: output `q` is the input `d` delayed by exactly two clock cycles; synchronous reset clears both stages.",
        golden: "module top_module(input clk, input rst, input [3:0] d, output reg [3:0] q);
  reg [3:0] s1;
  always @(posedge clk) begin
    if (rst) begin
      s1 <= 4'd0;
      q <= 4'd0;
    end
    else begin
      s1 <= d;
      q <= s1;
    end
  end
endmodule",
        stim: CLOCKED,
        in_v1: true,
        in_v2: true,
    },
    Problem {
        id: "prob045_edge_detect",
        category: Category::SeqReg,
        difficulty: 1.3,
        top: "top_module",
        spec: "Implement a rising-edge detector: output `pulse` is 1 for exactly one cycle after the input `sig` transitions from 0 to 1 (registered output; synchronous reset).",
        golden: "module top_module(input clk, input rst, input sig, output reg pulse);
  reg prev;
  always @(posedge clk) begin
    if (rst) begin
      prev <= 1'b0;
      pulse <= 1'b0;
    end
    else begin
      pulse <= sig & ~prev;
      prev <= sig;
    end
  end
endmodule",
        stim: CLOCKED,
        in_v1: true,
        in_v2: true,
    },
    Problem {
        id: "prob046_sync2ff",
        category: Category::SeqReg,
        difficulty: 0.7,
        top: "top_module",
        spec: "Implement a two-flop synchronizer: the asynchronous input `async_in` passes through two cascaded flip-flops to the output `sync_out`; synchronous reset clears both.",
        golden: "module top_module(input clk, input rst, input async_in, output reg sync_out);
  reg meta;
  always @(posedge clk) begin
    if (rst) begin
      meta <= 1'b0;
      sync_out <= 1'b0;
    end
    else begin
      meta <= async_in;
      sync_out <= meta;
    end
  end
endmodule",
        stim: CLOCKED,
        in_v1: false,
        in_v2: true,
    },
    Problem {
        id: "prob047_accum8",
        category: Category::SeqReg,
        difficulty: 1.1,
        top: "top_module",
        spec: "Implement an 8-bit accumulator: on each rising clock edge add the input `in` to the running sum `acc` (wrapping modulo 256); synchronous reset clears the sum.",
        golden: "module top_module(input clk, input rst, input [7:0] in, output reg [7:0] acc);
  always @(posedge clk) begin
    if (rst) acc <= 8'h00;
    else acc <= acc + in;
  end
endmodule",
        stim: CLOCKED,
        in_v1: true,
        in_v2: true,
    },
    // ------------------------------------------------------------------
    // Counters & shift registers
    // ------------------------------------------------------------------
    Problem {
        id: "prob030_counter4",
        category: Category::SeqCount,
        difficulty: 0.8,
        top: "top_module",
        spec: "Implement a 4-bit binary up-counter with synchronous active-high reset; the counter wraps from 15 to 0.",
        golden: "module top_module(input clk, input rst, output reg [3:0] q);
  always @(posedge clk) begin
    if (rst) q <= 4'd0;
    else q <= q + 4'd1;
  end
endmodule",
        stim: CLOCKED,
        in_v1: true,
        in_v2: true,
    },
    Problem {
        id: "prob050_counter_en",
        category: Category::SeqCount,
        difficulty: 1.0,
        top: "top_module",
        spec: "Implement a 4-bit up-counter with enable: increments only when `en` is 1; synchronous reset clears it.",
        golden: "module top_module(input clk, input rst, input en, output reg [3:0] q);
  always @(posedge clk) begin
    if (rst) q <= 4'd0;
    else if (en) q <= q + 4'd1;
  end
endmodule",
        stim: CLOCKED,
        in_v1: true,
        in_v2: true,
    },
    Problem {
        id: "prob051_counter_updown",
        category: Category::SeqCount,
        difficulty: 1.4,
        top: "top_module",
        spec: "Implement a 4-bit up/down counter: counts up when `up` is 1 and down when `up` is 0, wrapping in both directions; synchronous reset clears it.",
        golden: "module top_module(input clk, input rst, input up, output reg [3:0] q);
  always @(posedge clk) begin
    if (rst) q <= 4'd0;
    else if (up) q <= q + 4'd1;
    else q <= q - 4'd1;
  end
endmodule",
        stim: CLOCKED,
        in_v1: true,
        in_v2: true,
    },
    Problem {
        id: "prob052_counter_mod10",
        category: Category::SeqCount,
        difficulty: 1.5,
        top: "top_module",
        spec: "Implement a decade (mod-10) counter: counts 0 through 9 then wraps to 0; output `nine` is 1 while the count equals 9; synchronous reset.",
        golden: "module top_module(input clk, input rst, output reg [3:0] q, output nine);
  always @(posedge clk) begin
    if (rst) q <= 4'd0;
    else if (q == 4'd9) q <= 4'd0;
    else q <= q + 4'd1;
  end
  assign nine = q == 4'd9;
endmodule",
        stim: CLOCKED,
        in_v1: true,
        in_v2: true,
    },
    Problem {
        id: "prob053_counter_load",
        category: Category::SeqCount,
        difficulty: 1.3,
        top: "top_module",
        spec: "Implement a 4-bit counter with parallel load: when `load` is 1 the counter takes `d`; otherwise it increments; synchronous reset dominates.",
        golden: "module top_module(input clk, input rst, input load, input [3:0] d, output reg [3:0] q);
  always @(posedge clk) begin
    if (rst) q <= 4'd0;
    else if (load) q <= d;
    else q <= q + 4'd1;
  end
endmodule",
        stim: CLOCKED,
        in_v1: true,
        in_v2: true,
    },
    Problem {
        id: "prob054_ring4",
        category: Category::SeqCount,
        difficulty: 1.1,
        top: "top_module",
        spec: "Implement a 4-bit ring counter: reset loads 0001, and each clock rotates the single hot bit left (bit 3 wraps to bit 0).",
        golden: "module top_module(input clk, input rst, output reg [3:0] q);
  always @(posedge clk) begin
    if (rst) q <= 4'b0001;
    else q <= {q[2:0], q[3]};
  end
endmodule",
        stim: CLOCKED,
        in_v1: true,
        in_v2: true,
    },
    Problem {
        id: "prob055_johnson4",
        category: Category::SeqCount,
        difficulty: 1.3,
        top: "top_module",
        spec: "Implement a 4-bit Johnson (twisted-ring) counter: reset clears it, and each clock shifts left injecting the complement of the MSB into the LSB.",
        golden: "module top_module(input clk, input rst, output reg [3:0] q);
  always @(posedge clk) begin
    if (rst) q <= 4'b0000;
    else q <= {q[2:0], ~q[3]};
  end
endmodule",
        stim: CLOCKED,
        in_v1: false,
        in_v2: true,
    },
    Problem {
        id: "prob056_lfsr4",
        category: Category::SeqCount,
        difficulty: 1.5,
        top: "top_module",
        spec: "Implement a 4-bit Fibonacci LFSR with taps at bits 3 and 2 (polynomial x^4+x^3+1): shift left, feeding q[3] XOR q[2] into bit 0; reset loads 0001.",
        golden: "module top_module(input clk, input rst, output reg [3:0] q);
  always @(posedge clk) begin
    if (rst) q <= 4'b0001;
    else q <= {q[2:0], q[3] ^ q[2]};
  end
endmodule",
        stim: CLOCKED_LONG,
        in_v1: true,
        in_v2: true,
    },
    Problem {
        id: "prob057_shift8",
        category: Category::SeqCount,
        difficulty: 0.9,
        top: "top_module",
        spec: "Implement an 8-bit serial-in shift register: each clock shifts left by one, inserting the serial input `sin` at bit 0; synchronous reset clears it.",
        golden: "module top_module(input clk, input rst, input sin, output reg [7:0] q);
  always @(posedge clk) begin
    if (rst) q <= 8'h00;
    else q <= {q[6:0], sin};
  end
endmodule",
        stim: CLOCKED,
        in_v1: true,
        in_v2: true,
    },
    Problem {
        id: "prob058_shift_load",
        category: Category::SeqCount,
        difficulty: 1.4,
        top: "top_module",
        spec: "Implement a 4-bit shift register with parallel load: `load` takes priority and loads `d`; otherwise shift right by one inserting `sin` at the MSB; synchronous reset clears.",
        golden: "module top_module(input clk, input rst, input load, input [3:0] d, input sin, output reg [3:0] q);
  always @(posedge clk) begin
    if (rst) q <= 4'd0;
    else if (load) q <= d;
    else q <= {sin, q[3:1]};
  end
endmodule",
        stim: CLOCKED,
        in_v1: true,
        in_v2: true,
    },
    Problem {
        id: "prob059_gray_counter",
        category: Category::SeqCount,
        difficulty: 1.2,
        top: "top_module",
        spec: "Implement a 4-bit Gray-code counter: an internal binary counter increments each clock, and the output `g` is its Gray encoding (bin XOR bin>>1); synchronous reset.",
        golden: "module top_module(input clk, input rst, output [3:0] g);
  reg [3:0] bin;
  always @(posedge clk) begin
    if (rst) bin <= 4'd0;
    else bin <= bin + 4'd1;
  end
  assign g = bin ^ (bin >> 1);
endmodule",
        stim: CLOCKED,
        in_v1: false,
        in_v2: true,
    },
    Problem {
        id: "prob060_sat_counter",
        category: Category::SeqCount,
        difficulty: 1.6,
        top: "top_module",
        spec: "Implement a 3-bit saturating up/down counter (as used in branch predictors): `inc` increments toward 7 and `dec` decrements toward 0 without wrapping; simultaneous inc and dec hold; synchronous reset clears.",
        golden: "module top_module(input clk, input rst, input inc, input dec, output reg [2:0] q);
  always @(posedge clk) begin
    if (rst) q <= 3'd0;
    else if (inc & ~dec) begin
      if (q != 3'd7) q <= q + 3'd1;
    end
    else if (dec & ~inc) begin
      if (q != 3'd0) q <= q - 3'd1;
    end
  end
endmodule",
        stim: CLOCKED,
        in_v1: true,
        in_v2: true,
    },
    // ------------------------------------------------------------------
    // Finite state machines
    // ------------------------------------------------------------------
    Problem {
        id: "prob061_fsm_toggle",
        category: Category::Fsm,
        difficulty: 1.2,
        top: "top_module",
        spec: "Implement a two-state FSM: output `out` is 0 in state OFF and 1 in state ON; the input `go` toggles the state each cycle it is 1; synchronous reset to OFF.",
        golden: "module top_module(input clk, input rst, input go, output out);
  reg state;
  always @(posedge clk) begin
    if (rst) state <= 1'b0;
    else if (go) state <= ~state;
  end
  assign out = state;
endmodule",
        stim: CLOCKED,
        in_v1: true,
        in_v2: true,
    },
    Problem {
        id: "prob062_fsm_seq101",
        category: Category::Fsm,
        difficulty: 8.0,
        top: "top_module",
        spec: "Implement a Moore FSM detecting the overlapping bit sequence 1-0-1 on input `x`: output `z` is 1 in the cycle after the final 1 of a 101 pattern arrives; synchronous reset.",
        golden: "module top_module(input clk, input rst, input x, output z);
  reg [1:0] state;
  always @(posedge clk) begin
    if (rst) state <= 2'd0;
    else case (state)
      2'd0: state <= x ? 2'd1 : 2'd0;
      2'd1: state <= x ? 2'd1 : 2'd2;
      2'd2: state <= x ? 2'd3 : 2'd0;
      default: state <= x ? 2'd1 : 2'd2;
    endcase
  end
  assign z = state == 2'd3;
endmodule",
        stim: CLOCKED_LONG,
        in_v1: true,
        in_v2: true,
    },
    Problem {
        id: "prob063_fsm_traffic",
        category: Category::Fsm,
        difficulty: 5.5,
        top: "top_module",
        spec: "Implement a traffic-light controller FSM cycling GREEN -> YELLOW -> RED -> GREEN, advancing one step each cycle `tick` is 1. Outputs are one-hot {red, yellow, green}; synchronous reset to GREEN.",
        golden: "module top_module(input clk, input rst, input tick, output red, output yellow, output green);
  reg [1:0] state;
  always @(posedge clk) begin
    if (rst) state <= 2'd0;
    else if (tick) begin
      case (state)
        2'd0: state <= 2'd1;
        2'd1: state <= 2'd2;
        default: state <= 2'd0;
      endcase
    end
  end
  assign green = state == 2'd0;
  assign yellow = state == 2'd1;
  assign red = state == 2'd2;
endmodule",
        stim: CLOCKED,
        in_v1: true,
        in_v2: true,
    },
    Problem {
        id: "prob064_fsm_onehot",
        category: Category::Fsm,
        difficulty: 12.0,
        top: "top_module",
        spec: "Implement a 3-state one-hot FSM over states A=001, B=010, C=100: from A go to B when `w` else stay; from B go to C when `w` else back to A; from C go to A always. Output `y` is 1 in state C. Reset (synchronous) loads state A.",
        golden: "module top_module(input clk, input rst, input w, output y);
  reg [2:0] state;
  always @(posedge clk) begin
    if (rst) state <= 3'b001;
    else case (state)
      3'b001: state <= w ? 3'b010 : 3'b001;
      3'b010: state <= w ? 3'b100 : 3'b001;
      default: state <= 3'b001;
    endcase
  end
  assign y = state[2];
endmodule",
        stim: CLOCKED_LONG,
        in_v1: true,
        in_v2: true,
    },
    Problem {
        id: "prob065_fsm_lock",
        category: Category::Fsm,
        difficulty: 16.0,
        top: "top_module",
        spec: "Implement a sequence lock: the 2-bit input `code` must present the values 1, then 3, then 2 on consecutive cycles to assert `unlock` (Moore output, one cycle). A wrong value returns to the start (or to the second step when the wrong value is itself 1). Synchronous reset.",
        golden: "module top_module(input clk, input rst, input [1:0] code, output unlock);
  reg [1:0] state;
  always @(posedge clk) begin
    if (rst) state <= 2'd0;
    else case (state)
      2'd0: state <= code == 2'd1 ? 2'd1 : 2'd0;
      2'd1: state <= code == 2'd3 ? 2'd2 : (code == 2'd1 ? 2'd1 : 2'd0);
      2'd2: state <= code == 2'd2 ? 2'd3 : (code == 2'd1 ? 2'd1 : 2'd0);
      default: state <= code == 2'd1 ? 2'd1 : 2'd0;
    endcase
  end
  assign unlock = state == 2'd3;
endmodule",
        stim: CLOCKED_LONG,
        in_v1: true,
        in_v2: true,
    },
    Problem {
        id: "prob066_fsm_mealy",
        category: Category::Fsm,
        difficulty: 17.0,
        top: "top_module",
        spec: "Implement a Mealy FSM detecting the sequence 1-1 on input `x`: output `z` is 1 combinationally whenever the previous input was 1 and the current input is 1 (overlapping detection); synchronous reset clears the history.",
        golden: "module top_module(input clk, input rst, input x, output z);
  reg last;
  always @(posedge clk) begin
    if (rst) last <= 1'b0;
    else last <= x;
  end
  assign z = last & x;
endmodule",
        stim: CLOCKED_LONG,
        in_v1: true,
        in_v2: true,
    },
];
