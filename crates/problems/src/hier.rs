//! Hierarchical benchmark problems: multi-module designs with instances
//! and parameter overrides.

use crate::problem::{Category, Problem, StimSpec};

/// All hierarchical problems.
pub(crate) static PROBLEMS: &[Problem] = &[
    Problem {
        id: "prob070_ripple4",
        category: Category::Hier,
        difficulty: 1.6,
        top: "top_module",
        spec: "Build a 4-bit ripple-carry adder from four instances of a one-bit full-adder cell `fa`: inputs `a[3:0]`, `b[3:0]`, `cin`; outputs `sum[3:0]` and `cout`.",
        golden: "module fa(input a, input b, input cin, output s, output cout);
  assign s = a ^ b ^ cin;
  assign cout = (a & b) | (cin & (a ^ b));
endmodule
module top_module(input [3:0] a, input [3:0] b, input cin, output [3:0] sum, output cout);
  wire c0, c1, c2;
  fa f0 (.a(a[0]), .b(b[0]), .cin(cin), .s(sum[0]), .cout(c0));
  fa f1 (.a(a[1]), .b(b[1]), .cin(c0), .s(sum[1]), .cout(c1));
  fa f2 (.a(a[2]), .b(b[2]), .cin(c1), .s(sum[2]), .cout(c2));
  fa f3 (.a(a[3]), .b(b[3]), .cin(c2), .s(sum[3]), .cout(cout));
endmodule",
        stim: StimSpec::Exhaustive,
        in_v1: true,
        in_v2: true,
    },
    Problem {
        id: "prob071_mux_tree",
        category: Category::Hier,
        difficulty: 1.5,
        top: "top_module",
        spec: "Build a 4-to-1 multiplexer as a tree of three 2-to-1 multiplexer instances `mux2`: data inputs `a..d`, select `sel[1:0]`, output `y`.",
        golden: "module mux2(input x, input y, input s, output z);
  assign z = s ? y : x;
endmodule
module top_module(input a, input b, input c, input d, input [1:0] sel, output y);
  wire lo, hi;
  mux2 m0 (.x(a), .y(b), .s(sel[0]), .z(lo));
  mux2 m1 (.x(c), .y(d), .s(sel[0]), .z(hi));
  mux2 m2 (.x(lo), .y(hi), .s(sel[1]), .z(y));
endmodule",
        stim: StimSpec::Exhaustive,
        in_v1: true,
        in_v2: true,
    },
    Problem {
        id: "prob072_param_mask",
        category: Category::Hier,
        difficulty: 1.4,
        top: "top_module",
        spec: "Instantiate the parameterized masking unit `masker` (parameter N, default 4) at width 8 to compute `y = a AND b` bitwise over 8-bit operands.",
        golden: "module masker #(parameter N = 4)(input [N-1:0] a, input [N-1:0] b, output [N-1:0] y);
  assign y = a & b;
endmodule
module top_module(input [7:0] a, input [7:0] b, output [7:0] y);
  masker #(.N(8)) u (.a(a), .b(b), .y(y));
endmodule",
        stim: StimSpec::RandomComb { vectors: 128 },
        in_v1: false,
        in_v2: true,
    },
    Problem {
        id: "prob073_counter_pair",
        category: Category::Hier,
        difficulty: 3.8,
        top: "top_module",
        spec: "Build an 8-bit counter from two 4-bit counter slices `nib_counter` (synchronous reset, enable): the low slice always counts, and the high slice counts only when the low slice is at 15 (carry chaining through the slice's `carry` output).",
        golden: "module nib_counter(input clk, input rst, input en, output reg [3:0] q, output carry);
  always @(posedge clk) begin
    if (rst) q <= 4'd0;
    else if (en) q <= q + 4'd1;
  end
  assign carry = en & (q == 4'hF);
endmodule
module top_module(input clk, input rst, output [7:0] q);
  wire c;
  nib_counter lo (.clk(clk), .rst(rst), .en(1'b1), .q(q[3:0]), .carry(c));
  nib_counter hi (.clk(clk), .rst(rst), .en(c), .q(q[7:4]), .carry());
  // unconnected carry is fine: .carry() above is an explicit no-connect
endmodule",
        stim: StimSpec::Clocked {
            cycles: 64,
            reset: Some("rst"),
            reset_active_high: true,
            reset_cycles: 2,
        },
        in_v1: true,
        in_v2: true,
    },
];
