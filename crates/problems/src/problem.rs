//! The benchmark problem type and stimulus derivation.

use mage_llm::ProblemOracle;
use mage_logic::{fnv1a, LogicVec};
use mage_tb::Stimulus;
use mage_verilog::ast::Direction;
use mage_verilog::{parse, SourceFile};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Problem category, mirroring the VerilogEval mixture.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Category {
    /// Basic gates and boolean expressions.
    CombGate,
    /// Multiplexers and selectors.
    CombMux,
    /// Decoders, encoders, code converters.
    CombCode,
    /// Adders, comparators, ALUs.
    CombArith,
    /// Karnaugh-map / specification-table problems.
    Kmap,
    /// Flip-flops and registers.
    SeqReg,
    /// Counters and shift registers.
    SeqCount,
    /// Finite state machines.
    Fsm,
    /// Hierarchical, multi-module designs.
    Hier,
}

/// How a problem's stimulus is produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StimSpec {
    /// Exhaustive sweep of all input combinations (combinational, total
    /// input width ≤ 12 bits — wider specs fall back to 256 random
    /// vectors).
    Exhaustive,
    /// `vectors` random input vectors (combinational).
    RandomComb {
        /// Number of vectors.
        vectors: usize,
    },
    /// Clocked: assert `reset` (if any) for `reset_cycles`, then drive
    /// random inputs for `cycles` cycles.
    Clocked {
        /// Total post-reset cycles.
        cycles: usize,
        /// Reset input name, when the design has one.
        reset: Option<&'static str>,
        /// `true` when reset is active-high.
        reset_active_high: bool,
        /// Cycles to hold reset at the start.
        reset_cycles: usize,
    },
}

/// One benchmark problem: NL spec, golden design, stimulus recipe.
#[derive(Debug, Clone)]
pub struct Problem {
    /// Stable id, `probNNN_name` in VerilogEval style.
    pub id: &'static str,
    /// Category.
    pub category: Category,
    /// Channel difficulty (≥ 0); the suite averages near 1.0.
    pub difficulty: f64,
    /// Name of the module to implement.
    pub top: &'static str,
    /// The natural-language specification handed to the agents.
    pub spec: &'static str,
    /// Golden Verilog source (top module last when hierarchical).
    pub golden: &'static str,
    /// Stimulus recipe.
    pub stim: StimSpec,
    /// Member of the VerilogEval-v1-Human-style suite.
    pub in_v1: bool,
    /// Member of the VerilogEval-v2-style suite.
    pub in_v2: bool,
}

impl Problem {
    /// Parse the golden source.
    ///
    /// # Panics
    ///
    /// Panics when the embedded golden source is invalid — that is a
    /// library bug caught by the self-consistency tests.
    pub fn golden_file(&self) -> SourceFile {
        parse(self.golden).unwrap_or_else(|e| panic!("golden of {} broken: {e}", self.id))
    }

    /// `(name, width)` of the top module's data inputs — everything
    /// except the clock and reset named by the stimulus recipe.
    pub fn data_inputs(&self) -> Vec<(String, usize)> {
        let file = self.golden_file();
        let module = file.module(self.top).expect("top module present");
        let mut consts = std::collections::HashMap::new();
        for p in &module.params {
            if let Some(v) = mage_sim::fold_const_expr(&p.default, &consts) {
                consts.insert(p.name.clone(), v);
            }
        }
        let (clock, reset) = match self.stim {
            StimSpec::Clocked { reset, .. } => (Some("clk"), reset),
            _ => (None, None),
        };
        module
            .ports
            .iter()
            .filter(|p| p.dir == Direction::Input)
            .filter(|p| Some(p.name.as_str()) != clock && Some(p.name.as_str()) != reset)
            .map(|p| {
                let w = match &p.range {
                    None => 1,
                    Some(r) => {
                        let msb = mage_sim::fold_const_expr(&r.msb, &consts)
                            .and_then(|v| v.to_u64())
                            .unwrap_or(0);
                        let lsb = mage_sim::fold_const_expr(&r.lsb, &consts)
                            .and_then(|v| v.to_u64())
                            .unwrap_or(0);
                        (msb - lsb + 1) as usize
                    }
                };
                (p.name.clone(), w)
            })
            .collect()
    }

    /// Build the problem's stimulus, deterministically from `seed`.
    pub fn stimulus(&self, seed: u64) -> Stimulus {
        let mut rng = StdRng::seed_from_u64(seed ^ fnv1a(self.id.as_bytes()));
        let inputs = self.data_inputs();
        match self.stim {
            StimSpec::Exhaustive => {
                let total: usize = inputs.iter().map(|(_, w)| w).sum();
                if total <= 12 {
                    Stimulus::exhaustive(&inputs)
                } else {
                    random_comb(&inputs, 256, &mut rng)
                }
            }
            StimSpec::RandomComb { vectors } => random_comb(&inputs, vectors, &mut rng),
            StimSpec::Clocked {
                cycles,
                reset,
                reset_active_high,
                reset_cycles,
            } => {
                let mut steps = Vec::with_capacity(reset_cycles + cycles);
                for i in 0..reset_cycles + cycles {
                    let mut drives = Vec::with_capacity(inputs.len() + 1);
                    if let Some(rst) = reset {
                        let active = i < reset_cycles;
                        drives.push((
                            rst.to_string(),
                            LogicVec::from_bool(active == reset_active_high),
                        ));
                    }
                    for (name, w) in &inputs {
                        drives.push((name.clone(), random_vec(*w, &mut rng)));
                    }
                    steps.push(drives);
                }
                Stimulus::clocked("clk", steps)
            }
        }
    }

    /// The benchmark-side grading stimulus: like [`Problem::stimulus`]
    /// but substantially longer (4x the cycles, 3x the vectors), the way
    /// a benchmark's reference testbench is more thorough than anything
    /// an agent writes during the run. Always derived from `seed` alone,
    /// so grading is identical for every system under test.
    pub fn grading_stimulus(&self, seed: u64) -> Stimulus {
        let mut rng = StdRng::seed_from_u64(seed ^ fnv1a(self.id.as_bytes()) ^ 0x6AD3);
        let inputs = self.data_inputs();
        match self.stim {
            StimSpec::Exhaustive => {
                let total: usize = inputs.iter().map(|(_, w)| w).sum();
                if total <= 12 {
                    Stimulus::exhaustive(&inputs)
                } else {
                    random_comb(&inputs, 768, &mut rng)
                }
            }
            StimSpec::RandomComb { vectors } => random_comb(&inputs, vectors * 3, &mut rng),
            StimSpec::Clocked {
                cycles,
                reset,
                reset_active_high,
                reset_cycles,
            } => {
                // Two independent reset phases with long random tails.
                let mut steps = Vec::new();
                for _phase in 0..2 {
                    for i in 0..reset_cycles + cycles * 2 {
                        let mut drives = Vec::with_capacity(inputs.len() + 1);
                        if let Some(rst) = reset {
                            let active = i < reset_cycles;
                            drives.push((
                                rst.to_string(),
                                LogicVec::from_bool(active == reset_active_high),
                            ));
                        }
                        for (name, w) in &inputs {
                            drives.push((name.clone(), random_vec(*w, &mut rng)));
                        }
                        steps.push(drives);
                    }
                }
                Stimulus::clocked("clk", steps)
            }
        }
    }

    /// Build the [`ProblemOracle`] the synthetic channel registers.
    pub fn oracle(&self, seed: u64) -> ProblemOracle {
        ProblemOracle::new(
            self.golden_file(),
            self.top,
            self.stimulus(seed),
            self.difficulty,
        )
    }
}

fn random_vec<R: Rng>(width: usize, rng: &mut R) -> LogicVec {
    // Word-at-a-time: stimulus generation is on the oracle-construction
    // hot path, and bit-by-bit drawing dominated it.
    if width <= 64 {
        LogicVec::from_u64(width, rng.gen())
    } else if width <= 128 {
        LogicVec::from_u128(width, rng.gen())
    } else {
        let mut v = LogicVec::new(width);
        for i in 0..width {
            v.set_bit(i, mage_logic::LogicBit::from(rng.gen::<bool>()));
        }
        v
    }
}

fn random_comb<R: Rng>(inputs: &[(String, usize)], vectors: usize, rng: &mut R) -> Stimulus {
    let steps = (0..vectors)
        .map(|_| {
            inputs
                .iter()
                .map(|(n, w)| (n.clone(), random_vec(*w, rng)))
                .collect()
        })
        .collect();
    Stimulus::combinational(steps)
}

#[cfg(test)]
mod tests {
    use crate::registry;

    #[test]
    fn stimulus_is_seed_deterministic() {
        let p = registry::by_id("prob001_and2").unwrap();
        assert_eq!(p.stimulus(1), p.stimulus(1));
        let q = registry::by_id("prob047_accum8").unwrap();
        assert_eq!(q.stimulus(5), q.stimulus(5));
        assert_ne!(q.stimulus(5), q.stimulus(6));
    }

    #[test]
    fn data_inputs_exclude_clock_and_reset() {
        let p = registry::by_id("prob030_counter4").unwrap();
        let names: Vec<String> = p.data_inputs().into_iter().map(|(n, _)| n).collect();
        assert!(!names.contains(&"clk".to_string()));
        assert!(!names.contains(&"rst".to_string()));
    }
}
