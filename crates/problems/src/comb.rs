//! Combinational benchmark problems: gates, muxes, code converters,
//! arithmetic, and Karnaugh-map specifications.

use crate::problem::{Category, Problem, StimSpec};

/// All combinational problems.
pub(crate) static PROBLEMS: &[Problem] = &[
    // ------------------------------------------------------------------
    // Gates & boolean expressions
    // ------------------------------------------------------------------
    Problem {
        id: "prob001_and2",
        category: Category::CombGate,
        difficulty: 0.25,
        top: "top_module",
        spec: "Implement a 2-input AND gate. Module `top_module` has inputs `a` and `b` and output `y`, where `y = a AND b`.",
        golden: "module top_module(input a, input b, output y);
  assign y = a & b;
endmodule",
        stim: StimSpec::Exhaustive,
        in_v1: true,
        in_v2: true,
    },
    Problem {
        id: "prob002_nor2",
        category: Category::CombGate,
        difficulty: 0.3,
        top: "top_module",
        spec: "Implement a 2-input NOR gate: output `y` is the inverted OR of inputs `a` and `b`.",
        golden: "module top_module(input a, input b, output y);
  assign y = ~(a | b);
endmodule",
        stim: StimSpec::Exhaustive,
        in_v1: false,
        in_v2: true,
    },
    Problem {
        id: "prob003_xnor2",
        category: Category::CombGate,
        difficulty: 0.3,
        top: "top_module",
        spec: "Implement a 2-input XNOR gate: output `y` is 1 exactly when inputs `a` and `b` are equal.",
        golden: "module top_module(input a, input b, output y);
  assign y = ~(a ^ b);
endmodule",
        stim: StimSpec::Exhaustive,
        in_v1: false,
        in_v2: true,
    },
    Problem {
        id: "prob004_vector_not",
        category: Category::CombGate,
        difficulty: 0.35,
        top: "top_module",
        spec: "Given a 4-bit input vector `in`, produce its bitwise complement on the 4-bit output `out_n`.",
        golden: "module top_module(input [3:0] in, output [3:0] out_n);
  assign out_n = ~in;
endmodule",
        stim: StimSpec::Exhaustive,
        in_v1: false,
        in_v2: true,
    },
    Problem {
        id: "prob005_gates3",
        category: Category::CombGate,
        difficulty: 0.45,
        top: "top_module",
        spec: "Given inputs `a` and `b`, drive three outputs: `out_and = a AND b`, `out_or = a OR b`, and `out_xor = a XOR b`.",
        golden: "module top_module(input a, input b, output out_and, output out_or, output out_xor);
  assign out_and = a & b;
  assign out_or = a | b;
  assign out_xor = a ^ b;
endmodule",
        stim: StimSpec::Exhaustive,
        in_v1: true,
        in_v2: true,
    },
    Problem {
        id: "prob006_wire_chain",
        category: Category::CombGate,
        difficulty: 0.6,
        top: "top_module",
        spec: "Implement the two-level network: internal wire `w = a AND b`, wire `x = w OR c`, and output `y = x XOR d`.",
        golden: "module top_module(input a, input b, input c, input d, output y);
  wire w, x;
  assign w = a & b;
  assign x = w | c;
  assign y = x ^ d;
endmodule",
        stim: StimSpec::Exhaustive,
        in_v1: true,
        in_v2: true,
    },
    Problem {
        id: "prob007_aoi22",
        category: Category::CombGate,
        difficulty: 0.55,
        top: "top_module",
        spec: "Implement an AND-OR network: output `y = (a AND b) OR (c AND d).`",
        golden: "module top_module(input a, input b, input c, input d, output y);
  assign y = (a & b) | (c & d);
endmodule",
        stim: StimSpec::Exhaustive,
        in_v1: true,
        in_v2: true,
    },
    Problem {
        id: "prob008_majority3",
        category: Category::CombGate,
        difficulty: 0.7,
        top: "top_module",
        spec: "Implement a 3-input majority function: output `y` is 1 when at least two of the inputs `a`, `b`, `c` are 1.",
        golden: "module top_module(input a, input b, input c, output y);
  assign y = (a & b) | (b & c) | (a & c);
endmodule",
        stim: StimSpec::Exhaustive,
        in_v1: true,
        in_v2: true,
    },
    Problem {
        id: "prob009_reductions",
        category: Category::CombGate,
        difficulty: 0.8,
        top: "top_module",
        spec: "Given an 8-bit input `in`, compute three outputs: `all_ones` (reduction AND), `any_one` (reduction OR), and `parity` (reduction XOR).",
        golden: "module top_module(input [7:0] in, output all_ones, output any_one, output parity);
  assign all_ones = &in;
  assign any_one = |in;
  assign parity = ^in;
endmodule",
        stim: StimSpec::Exhaustive,
        in_v1: true,
        in_v2: true,
    },
    // ------------------------------------------------------------------
    // Multiplexers
    // ------------------------------------------------------------------
    Problem {
        id: "prob010_mux2",
        category: Category::CombMux,
        difficulty: 0.4,
        top: "top_module",
        spec: "Implement a one-bit 2-to-1 multiplexer: output `y` equals `b` when `sel` is 1 and `a` otherwise.",
        golden: "module top_module(input a, input b, input sel, output y);
  assign y = sel ? b : a;
endmodule",
        stim: StimSpec::Exhaustive,
        in_v1: false,
        in_v2: true,
    },
    Problem {
        id: "prob011_mux2_byte",
        category: Category::CombMux,
        difficulty: 0.55,
        top: "top_module",
        spec: "Implement an 8-bit wide 2-to-1 multiplexer selecting between byte inputs `a` and `b` with select `sel`.",
        golden: "module top_module(input [7:0] a, input [7:0] b, input sel, output [7:0] y);
  assign y = sel ? b : a;
endmodule",
        stim: StimSpec::RandomComb { vectors: 128 },
        in_v1: true,
        in_v2: true,
    },
    Problem {
        id: "prob012_mux4_case",
        category: Category::CombMux,
        difficulty: 0.9,
        top: "top_module",
        spec: "Implement a 4-to-1 multiplexer with 4-bit data inputs `a`, `b`, `c`, `d`, a 2-bit select `sel`, and 4-bit output `y`, using a case statement.",
        golden: "module top_module(input [3:0] a, input [3:0] b, input [3:0] c, input [3:0] d, input [1:0] sel, output reg [3:0] y);
  always @(*) begin
    case (sel)
      2'b00: y = a;
      2'b01: y = b;
      2'b10: y = c;
      default: y = d;
    endcase
  end
endmodule",
        stim: StimSpec::RandomComb { vectors: 160 },
        in_v1: true,
        in_v2: true,
    },
    Problem {
        id: "prob013_mux4_ternary",
        category: Category::CombMux,
        difficulty: 0.85,
        top: "top_module",
        spec: "Implement a one-bit 4-to-1 multiplexer from inputs `a`, `b`, `c`, `d` using nested conditional operators on the 2-bit select `sel`.",
        golden: "module top_module(input a, input b, input c, input d, input [1:0] sel, output y);
  assign y = sel[1] ? (sel[0] ? d : c) : (sel[0] ? b : a);
endmodule",
        stim: StimSpec::Exhaustive,
        in_v1: true,
        in_v2: true,
    },
    Problem {
        id: "prob014_demux4",
        category: Category::CombMux,
        difficulty: 0.95,
        top: "top_module",
        spec: "Implement a 1-to-4 demultiplexer: route input `d` to one of the four bits of output `y` chosen by the 2-bit select `sel`; all other bits are 0.",
        golden: "module top_module(input d, input [1:0] sel, output reg [3:0] y);
  always @(*) begin
    y = 4'b0000;
    y[sel] = d;
  end
endmodule",
        stim: StimSpec::Exhaustive,
        in_v1: false,
        in_v2: true,
    },
    // ------------------------------------------------------------------
    // Decoders / encoders / code converters
    // ------------------------------------------------------------------
    Problem {
        id: "prob015_dec2to4_en",
        category: Category::CombCode,
        difficulty: 0.8,
        top: "top_module",
        spec: "Implement a 2-to-4 decoder with enable: when `en` is 1 output bit `y[sel]` is 1 and the rest are 0; when `en` is 0 the output is all zeros.",
        golden: "module top_module(input en, input [1:0] sel, output [3:0] y);
  assign y = en ? (4'b0001 << sel) : 4'b0000;
endmodule",
        stim: StimSpec::Exhaustive,
        in_v1: true,
        in_v2: true,
    },
    Problem {
        id: "prob016_dec3to8",
        category: Category::CombCode,
        difficulty: 1.0,
        top: "top_module",
        spec: "Implement a 3-to-8 decoder: the 8-bit output `y` has exactly the bit indexed by the 3-bit input `sel` set.",
        golden: "module top_module(input [2:0] sel, output reg [7:0] y);
  always @(*) begin
    case (sel)
      3'd0: y = 8'b0000_0001;
      3'd1: y = 8'b0000_0010;
      3'd2: y = 8'b0000_0100;
      3'd3: y = 8'b0000_1000;
      3'd4: y = 8'b0001_0000;
      3'd5: y = 8'b0010_0000;
      3'd6: y = 8'b0100_0000;
      default: y = 8'b1000_0000;
    endcase
  end
endmodule",
        stim: StimSpec::Exhaustive,
        in_v1: true,
        in_v2: true,
    },
    Problem {
        id: "prob017_prienc4",
        category: Category::CombCode,
        difficulty: 1.3,
        top: "top_module",
        spec: "Implement a 4-bit priority encoder: output `pos` is the index of the highest set bit of `in`, and `valid` is 1 when any bit is set; `pos` is 0 when no bit is set.",
        golden: "module top_module(input [3:0] in, output reg [1:0] pos, output valid);
  always @(*) begin
    casez (in)
      4'b1???: pos = 2'd3;
      4'b01??: pos = 2'd2;
      4'b001?: pos = 2'd1;
      default: pos = 2'd0;
    endcase
  end
  assign valid = |in;
endmodule",
        stim: StimSpec::Exhaustive,
        in_v1: true,
        in_v2: true,
    },
    Problem {
        id: "prob018_bin2gray",
        category: Category::CombCode,
        difficulty: 0.7,
        top: "top_module",
        spec: "Convert a 4-bit binary input `bin` to its Gray-code representation `gray` (gray = bin XOR (bin >> 1)).",
        golden: "module top_module(input [3:0] bin, output [3:0] gray);
  assign gray = bin ^ (bin >> 1);
endmodule",
        stim: StimSpec::Exhaustive,
        in_v1: true,
        in_v2: true,
    },
    Problem {
        id: "prob019_sevenseg",
        category: Category::CombCode,
        difficulty: 7.0,
        top: "top_module",
        spec: "Implement a hexadecimal seven-segment decoder: the 4-bit input `hex` selects the active-high segment pattern `seg[6:0]` (gfedcba order) for digits 0-F.",
        golden: "module top_module(input [3:0] hex, output reg [6:0] seg);
  always @(*) begin
    case (hex)
      4'h0: seg = 7'b0111111;
      4'h1: seg = 7'b0000110;
      4'h2: seg = 7'b1011011;
      4'h3: seg = 7'b1001111;
      4'h4: seg = 7'b1100110;
      4'h5: seg = 7'b1101101;
      4'h6: seg = 7'b1111101;
      4'h7: seg = 7'b0000111;
      4'h8: seg = 7'b1111111;
      4'h9: seg = 7'b1101111;
      4'hA: seg = 7'b1110111;
      4'hB: seg = 7'b1111100;
      4'hC: seg = 7'b0111001;
      4'hD: seg = 7'b1011110;
      4'hE: seg = 7'b1111001;
      default: seg = 7'b1110001;
    endcase
  end
endmodule",
        stim: StimSpec::Exhaustive,
        in_v1: true,
        in_v2: true,
    },
    Problem {
        id: "prob020_split_bytes",
        category: Category::CombCode,
        difficulty: 0.6,
        top: "top_module",
        spec: "Split the 16-bit input `in` into its upper byte `hi` and lower byte `lo`, and also produce `swapped`, the 16-bit value with the two bytes exchanged.",
        golden: "module top_module(input [15:0] in, output [7:0] hi, output [7:0] lo, output [15:0] swapped);
  assign hi = in[15:8];
  assign lo = in[7:0];
  assign swapped = {in[7:0], in[15:8]};
endmodule",
        stim: StimSpec::RandomComb { vectors: 128 },
        in_v1: false,
        in_v2: true,
    },
    // ------------------------------------------------------------------
    // Arithmetic
    // ------------------------------------------------------------------
    Problem {
        id: "prob021_halfadd",
        category: Category::CombArith,
        difficulty: 0.5,
        top: "top_module",
        spec: "Implement a half adder: sum `s` and carry `c` of one-bit inputs `a` and `b`.",
        golden: "module top_module(input a, input b, output s, output c);
  assign s = a ^ b;
  assign c = a & b;
endmodule",
        stim: StimSpec::Exhaustive,
        in_v1: true,
        in_v2: true,
    },
    Problem {
        id: "prob022_fulladd",
        category: Category::CombArith,
        difficulty: 0.65,
        top: "top_module",
        spec: "Implement a full adder: sum `s` and carry-out `cout` of one-bit inputs `a`, `b` and carry-in `cin`.",
        golden: "module top_module(input a, input b, input cin, output s, output cout);
  assign s = a ^ b ^ cin;
  assign cout = (a & b) | (cin & (a ^ b));
endmodule",
        stim: StimSpec::Exhaustive,
        in_v1: true,
        in_v2: true,
    },
    Problem {
        id: "prob023_add8",
        category: Category::CombArith,
        difficulty: 0.9,
        top: "top_module",
        spec: "Implement an 8-bit adder with carry-in and carry-out: `{cout, sum} = a + b + cin`.",
        golden: "module top_module(input [7:0] a, input [7:0] b, input cin, output [7:0] sum, output cout);
  assign {cout, sum} = a + b + cin;
endmodule",
        stim: StimSpec::RandomComb { vectors: 192 },
        in_v1: true,
        in_v2: true,
    },
    Problem {
        id: "prob024_sub4",
        category: Category::CombArith,
        difficulty: 1.0,
        top: "top_module",
        spec: "Implement a 4-bit subtractor: `diff = a - b` (modulo 16) and `borrow` is 1 when `a < b`.",
        golden: "module top_module(input [3:0] a, input [3:0] b, output [3:0] diff, output borrow);
  assign diff = a - b;
  assign borrow = a < b;
endmodule",
        stim: StimSpec::Exhaustive,
        in_v1: true,
        in_v2: true,
    },
    Problem {
        id: "prob025_addsub4",
        category: Category::CombArith,
        difficulty: 1.2,
        top: "top_module",
        spec: "Implement a 4-bit adder/subtractor: when `mode` is 0 compute `a + b`, when `mode` is 1 compute `a - b`; result on the 4-bit output `r`.",
        golden: "module top_module(input [3:0] a, input [3:0] b, input mode, output [3:0] r);
  assign r = mode ? a - b : a + b;
endmodule",
        stim: StimSpec::Exhaustive,
        in_v1: true,
        in_v2: true,
    },
    Problem {
        id: "prob026_cmp4",
        category: Category::CombArith,
        difficulty: 0.9,
        top: "top_module",
        spec: "Implement a 4-bit unsigned comparator producing `eq` (a == b), `lt` (a < b) and `gt` (a > b).",
        golden: "module top_module(input [3:0] a, input [3:0] b, output eq, output lt, output gt);
  assign eq = a == b;
  assign lt = a < b;
  assign gt = a > b;
endmodule",
        stim: StimSpec::Exhaustive,
        in_v1: true,
        in_v2: true,
    },
    Problem {
        id: "prob027_minmax4",
        category: Category::CombArith,
        difficulty: 1.0,
        top: "top_module",
        spec: "Given 4-bit unsigned inputs `a` and `b`, output `min` and `max` of the two values.",
        golden: "module top_module(input [3:0] a, input [3:0] b, output [3:0] min, output [3:0] max);
  assign min = a < b ? a : b;
  assign max = a < b ? b : a;
endmodule",
        stim: StimSpec::Exhaustive,
        in_v1: false,
        in_v2: true,
    },
    Problem {
        id: "prob028_absdiff",
        category: Category::CombArith,
        difficulty: 1.0,
        top: "top_module",
        spec: "Compute the absolute difference of two 4-bit unsigned inputs: `y = |a - b|`.",
        golden: "module top_module(input [3:0] a, input [3:0] b, output [3:0] y);
  assign y = a > b ? a - b : b - a;
endmodule",
        stim: StimSpec::Exhaustive,
        in_v1: true,
        in_v2: true,
    },
    Problem {
        id: "prob029_alu4",
        category: Category::CombArith,
        difficulty: 6.0,
        top: "top_module",
        spec: "Implement a 4-bit ALU. The 3-bit opcode `op` selects: 0 ADD, 1 SUB, 2 AND, 3 OR, 4 XOR, 5 set-less-than (unsigned, 1 or 0), 6 shift-left by b[1:0], 7 shift-right by b[1:0]. Also output `zero`, set when the result is 0.",
        golden: "module top_module(input [3:0] a, input [3:0] b, input [2:0] op, output reg [3:0] r, output zero);
  always @(*) begin
    case (op)
      3'd0: r = a + b;
      3'd1: r = a - b;
      3'd2: r = a & b;
      3'd3: r = a | b;
      3'd4: r = a ^ b;
      3'd5: r = {3'b000, a < b};
      3'd6: r = a << b[1:0];
      default: r = a >> b[1:0];
    endcase
  end
  assign zero = r == 4'd0;
endmodule",
        stim: StimSpec::Exhaustive,
        in_v1: true,
        in_v2: true,
    },
    Problem {
        id: "prob031_popcount8",
        category: Category::CombArith,
        difficulty: 1.3,
        top: "top_module",
        spec: "Count the number of 1 bits of the 8-bit input `in`; result on the 4-bit output `count`.",
        golden: "module top_module(input [7:0] in, output reg [3:0] count);
  integer i;
  always @(*) begin
    count = 4'd0;
    for (i = 0; i < 8; i = i + 1)
      count = count + {3'b000, in[i]};
  end
endmodule",
        stim: StimSpec::Exhaustive,
        in_v1: true,
        in_v2: true,
    },
    Problem {
        id: "prob032_reverse8",
        category: Category::CombArith,
        difficulty: 1.1,
        top: "top_module",
        spec: "Reverse the bit order of the 8-bit input `in`: output bit `out[i]` equals `in[7-i]`.",
        golden: "module top_module(input [7:0] in, output reg [7:0] out);
  integer i;
  always @(*) begin
    for (i = 0; i < 8; i = i + 1)
      out[i] = in[7 - i];
  end
endmodule",
        stim: StimSpec::RandomComb { vectors: 128 },
        in_v1: true,
        in_v2: true,
    },
    Problem {
        id: "prob033_sat_add4",
        category: Category::CombArith,
        difficulty: 1.5,
        top: "top_module",
        spec: "Implement a 4-bit saturating adder: `y = a + b`, clamped to 15 when the true sum exceeds 15.",
        golden: "module top_module(input [3:0] a, input [3:0] b, output [3:0] y);
  wire [4:0] full;
  assign full = a + b;
  assign y = full[4] ? 4'hF : full[3:0];
endmodule",
        stim: StimSpec::Exhaustive,
        in_v1: false,
        in_v2: true,
    },
    Problem {
        id: "prob034_mul4",
        category: Category::CombArith,
        difficulty: 1.2,
        top: "top_module",
        spec: "Multiply two 4-bit unsigned inputs, producing the full 8-bit product.",
        golden: "module top_module(input [3:0] a, input [3:0] b, output [7:0] p);
  assign p = {4'b0000, a} * {4'b0000, b};
endmodule",
        stim: StimSpec::Exhaustive,
        in_v1: true,
        in_v2: true,
    },
    // ------------------------------------------------------------------
    // Karnaugh-map / truth-table specifications
    // ------------------------------------------------------------------
    Problem {
        id: "prob093_ece241_2014_q3",
        category: Category::Kmap,
        difficulty: 1.6,
        top: "top_module",
        spec: "For the function f of four variables implemented with a 4-to-1 multiplexer addressed by {a, b}, derive the four mux data inputs `mux_in[3:0]` as functions of `c` and `d`: mux_in[0] covers the minterms where f=1 for ab=00 (f = c OR d), mux_in[1] is constant 0, mux_in[2] covers ab=10 (f = NOT d), and mux_in[3] covers ab=11 (f = c AND d).",
        golden: "module top_module(input c, input d, output reg [3:0] mux_in);
  always @(*) begin
    mux_in[0] = (~c & d) | (c & ~d) | (c & d);
    mux_in[1] = 1'b0;
    mux_in[2] = (~c & ~d) | (c & ~d);
    mux_in[3] = c & d;
  end
endmodule",
        stim: StimSpec::Exhaustive,
        in_v1: true,
        in_v2: true,
    },
    Problem {
        id: "prob036_kmap3",
        category: Category::Kmap,
        difficulty: 1.4,
        top: "top_module",
        spec: "Implement the 3-variable function given by the Karnaugh map with minterms m(1,2,5,6,7) of inputs {a,b,c}: y = (a AND b') OR (b AND c') OR (a' AND b' AND c) is one valid SOP; any equivalent implementation is accepted.",
        golden: "module top_module(input a, input b, input c, output y);
  assign y = (~a & ~b & c) | (~a & b & ~c) | (a & ~b & c) | (a & b & ~c) | (a & b & c);
endmodule",
        stim: StimSpec::Exhaustive,
        in_v1: true,
        in_v2: true,
    },
    Problem {
        id: "prob037_kmap4",
        category: Category::Kmap,
        difficulty: 3.6,
        top: "top_module",
        spec: "Implement the 4-variable function y(a,b,c,d) that is 1 exactly when the 4-bit value {a,b,c,d} is a valid BCD digit (0-9) whose value is even.",
        golden: "module top_module(input a, input b, input c, input d, output y);
  wire [3:0] v;
  assign v = {a, b, c, d};
  assign y = (v <= 4'd9) & ~d;
endmodule",
        stim: StimSpec::Exhaustive,
        in_v1: false,
        in_v2: true,
    },
    Problem {
        id: "prob038_truthtable",
        category: Category::Kmap,
        difficulty: 1.2,
        top: "top_module",
        spec: "Implement the function of three inputs {x3,x2,x1} defined by the truth table whose output is 1 for input rows 2, 3, 5, 7 (row = {x3,x2,x1} as a binary number).",
        golden: "module top_module(input x3, input x2, input x1, output reg f);
  always @(*) begin
    case ({x3, x2, x1})
      3'd2: f = 1'b1;
      3'd3: f = 1'b1;
      3'd5: f = 1'b1;
      3'd7: f = 1'b1;
      default: f = 1'b0;
    endcase
  end
endmodule",
        stim: StimSpec::Exhaustive,
        in_v1: true,
        in_v2: true,
    },
];
