//! The problem registry and suite definitions.

use crate::problem::Problem;
use crate::{comb, extras, hier, seq};

/// Benchmark suite identifiers, mirroring the paper's two evaluations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SuiteId {
    /// VerilogEval-v1-Human-style suite.
    V1Human,
    /// VerilogEval-v2-style suite.
    V2,
}

impl SuiteId {
    /// Display name used in tables.
    pub fn name(self) -> &'static str {
        match self {
            SuiteId::V1Human => "VerilogEval-Human",
            SuiteId::V2 => "VerilogEval-V2",
        }
    }
}

impl std::fmt::Display for SuiteId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// Every problem in the corpus, in id order.
pub fn all_problems() -> Vec<&'static Problem> {
    let mut v: Vec<&'static Problem> = comb::PROBLEMS
        .iter()
        .chain(seq::PROBLEMS.iter())
        .chain(hier::PROBLEMS.iter())
        .chain(extras::PROBLEMS.iter())
        .collect();
    v.sort_by_key(|p| p.id);
    v
}

/// The problems of one suite, in id order.
pub fn suite(id: SuiteId) -> Vec<&'static Problem> {
    all_problems()
        .into_iter()
        .filter(|p| match id {
            SuiteId::V1Human => p.in_v1,
            SuiteId::V2 => p.in_v2,
        })
        .collect()
}

/// Look up a problem by id.
pub fn by_id(id: &str) -> Option<&'static Problem> {
    all_problems().into_iter().find(|p| p.id == id)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_is_nonempty_and_unique() {
        let all = all_problems();
        assert!(all.len() >= 45, "corpus too small: {}", all.len());
        let mut ids: Vec<&str> = all.iter().map(|p| p.id).collect();
        ids.dedup();
        assert_eq!(ids.len(), all.len(), "duplicate problem ids");
    }

    #[test]
    fn suites_have_expected_shape() {
        let v1 = suite(SuiteId::V1Human);
        let v2 = suite(SuiteId::V2);
        assert!(v1.len() >= 35, "v1 too small: {}", v1.len());
        assert!(v2.len() >= 40, "v2 too small: {}", v2.len());
        assert!(v2.len() >= v1.len());
    }

    #[test]
    fn difficulty_mix_centers_near_one() {
        let v2 = suite(SuiteId::V2);
        let mean: f64 = v2.iter().map(|p| p.difficulty).sum::<f64>() / v2.len() as f64;
        assert!(
            (1.0..=2.6).contains(&mean),
            "V2 difficulty mean {mean:.2} out of calibration band"
        );
    }

    #[test]
    fn lookup_by_id() {
        assert!(by_id("prob093_ece241_2014_q3").is_some());
        assert!(by_id("nope").is_none());
    }
}
